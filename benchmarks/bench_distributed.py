"""Distributed-execution benchmarks: spool workers and persistent pools.

Three cases, all recorded in ``benchmarks/BENCH_distributed.json``:

* ``test_spool_multiworker_vs_serial`` — the acceptance case: a
  repeated-topology Monte Carlo campaign through :class:`SpoolBackend`
  with 2 autospawned ``deft worker`` subprocesses versus
  :class:`SerialBackend`, swept across spool batch sizes (1, 4, 16)
  and asserted bit-identical at each. The multi-worker speedup is only
  *asserted* where the machine actually gives the workers >= 2 cores
  and jobs run at full scale — on fewer cores two workers time-slice
  one CPU and a "slowdown" measures contention, not spool overhead —
  but the numbers (and the core count they were taken on) are always
  recorded.
* ``test_spool_fs_ops_per_job`` — the protocol-v2 overhead case: the
  same MC campaign shape executed inline (no subprocesses, so the
  process-global ``deft_spool_fs_ops`` counter sees every operation)
  at ``--batch 1`` versus ``--batch 8``; batching must cut filesystem
  round-trips per job by >= 4x. This is the half of the acceptance bar
  that is measurable on any box, single-core CI included.
* ``test_persistent_pool_across_adaptive_rounds`` — the
  :class:`ProcessPoolBackend` satellite: adaptive Monte Carlo doubling
  rounds against one persistent pool (workers and their warm sessions
  survive between rounds) versus the shut-down-per-batch pool.
"""

import os
import time

from repro.experiments.common import default_config, effective_scale
from repro.montecarlo import montecarlo_jobs, run_montecarlo
from repro.runner import (
    CampaignRunner,
    ProcessPoolBackend,
    ResultCache,
    SerialBackend,
    SystemRef,
)
from repro.distributed import Spool, SpoolBackend, run_worker
from repro.telemetry.metrics import get_registry, set_enabled

from conftest import _SESSION_REPORTS

#: Mirror bench_campaign: strict wall-clock ratios only hold when jobs
#: dominate constant overheads (worker startup, spool polling).
STRICT_TIMING = effective_scale(None) >= 0.5

#: Spool batch sizes swept by the multiworker case.
BATCH_SWEEP = (1, 4, 16)


def _worker_cores() -> int:
    """Cores actually available to spawned workers, not the raw count.

    ``sched_getaffinity`` honours cgroup/taskset restrictions (CI
    runners, containers); ``cpu_count`` is the fallback where it does
    not exist.
    """
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def test_spool_multiworker_vs_serial(tmp_path_factory, bench_metrics):
    """Repeated-topology MC latency campaign: serial vs 2 spool workers,
    swept across spool batch sizes."""
    cores = _worker_cores()
    workers = 2
    args = (SystemRef.baseline4(), ("deft",), (2,), 8)
    kwargs = dict(seed=0, metric="latency", config=default_config(None))

    start = time.perf_counter()
    serial = run_montecarlo(
        *args, runner=CampaignRunner(backend=SerialBackend()), **kwargs
    )
    serial_s = time.perf_counter() - start
    jobs = serial.campaign.total

    sweep: dict[int, float] = {}
    worker_stats: dict = {}
    for batch in BATCH_SWEEP:
        # Fresh spool + cache per point: a shared cache would serve the
        # later points from disk and time nothing.
        cache_dir = tmp_path_factory.mktemp(f"spool-cache-b{batch}")
        spool_dir = tmp_path_factory.mktemp(f"spool-b{batch}")
        backend = SpoolBackend(
            cache=ResultCache(cache_dir), spool_dir=spool_dir,
            workers=workers, batch=batch,
        )
        runner = CampaignRunner(backend=backend, cache=ResultCache(cache_dir))
        start = time.perf_counter()
        try:
            spooled = run_montecarlo(*args, runner=runner, **kwargs)
            sweep[batch] = time.perf_counter() - start
            worker_stats = backend.spool.worker_stats()
        finally:
            runner.close()
        # Correctness is asserted unconditionally at every batch size:
        # bit-identical estimates, no errors.
        assert [p.values for p in spooled.results] == [
            p.values for p in serial.results
        ], f"batch={batch} diverged from serial"
        assert not spooled.campaign.errors
        assert sum(s["jobs_done"] for s in worker_stats.values()) >= jobs

    best_batch = min(sweep, key=sweep.get)
    best_s = sweep[best_batch]
    speedup = serial_s / max(best_s, 1e-9)
    speedup_asserted = STRICT_TIMING and cores >= workers
    skip_reason = None
    if not speedup_asserted:
        skip_reason = (
            f"speedup assertion skipped: {cores} core(s) available to "
            f"{workers} workers"
            if cores < workers
            else "speedup assertion skipped: reduced experiment scale"
        )

    lines = [
        f"== bench_distributed: spool backend ({jobs} repeated-topology "
        f"Monte Carlo simulations, {workers} workers, {cores} cores) ==",
        f"  serial backend:        {serial_s:7.2f}s",
    ]
    for batch in BATCH_SWEEP:
        lines.append(
            f"  spool x{workers}, batch {batch:2d}:   {sweep[batch]:7.2f}s "
            f"(speedup {serial_s / max(sweep[batch], 1e-9):4.2f}x)"
        )
    if skip_reason:
        lines.append(f"  {skip_reason}")
    for worker_id, stats in sorted(worker_stats.items()):
        session = stats.get("session", {})
        lines.append(
            f"    {worker_id}: {stats['jobs_done']} job(s), session "
            f"algorithm {session.get('algorithm.hit', 0)} hit / "
            f"{session.get('algorithm.miss', 0)} miss"
        )
    report_text = "\n".join(lines)
    print()
    print(report_text)
    _SESSION_REPORTS.append(report_text)
    bench_metrics(
        jobs=jobs, workers=workers, cores=cores,
        serial_s=round(serial_s, 3),
        batch_sweep_s={
            str(batch): round(elapsed, 3) for batch, elapsed in sweep.items()
        },
        best_batch=best_batch,
        spool_s=round(best_s, 3),
        multiworker_speedup=round(speedup, 2),
        speedup_asserted=speedup_asserted,
        skip_reason=skip_reason,
        worker_jobs=[s["jobs_done"] for _, s in sorted(worker_stats.items())],
    )

    if speedup_asserted:
        assert speedup >= 1.3, (
            f"expected multi-worker speedup >= 1.3x with batching on "
            f"{cores} cores: best {best_s:.2f}s (batch {best_batch}) vs "
            f"serial {serial_s:.2f}s"
        )


def test_spool_fs_ops_per_job(tmp_path_factory, bench_metrics):
    """Protocol v2 acceptance: >= 4x fewer spool fs ops/job at batch 8.

    Runs the MC campaign case *inline* — enqueue and worker in this
    process — so the process-global ``deft_spool_fs_ops`` counter
    observes every protocol operation on both sides of the queue.
    """
    set_enabled(True)  # the counter is the measurement
    counter = get_registry().counter(
        "deft_spool_fs_ops",
        "Filesystem operations performed by the spool protocol",
    )
    jobs = montecarlo_jobs(
        SystemRef.baseline4(), "deft", 2, 24, seed=0, metric="reachability"
    )

    ops_per_job: dict[int, float] = {}
    for batch in (1, 8):
        spool = Spool(
            tmp_path_factory.mktemp(f"fsops-spool-b{batch}")
        ).ensure()
        cache = ResultCache(tmp_path_factory.mktemp(f"fsops-cache-b{batch}"))
        before = counter.value
        spool.enqueue(jobs, batch_size=batch)
        stats = run_worker(
            spool.root, cache, worker_id=f"bench-b{batch}",
            idle_timeout_s=0.2,
        )
        ops_per_job[batch] = (counter.value - before) / len(jobs)
        assert stats["jobs_done"] == len(jobs)
        assert spool.pending_count() == 0 and spool.claimed_count() == 0

    reduction = ops_per_job[1] / max(ops_per_job[8], 1e-9)
    report_text = "\n".join(
        [
            f"== bench_distributed: spool fs ops per job "
            f"({len(jobs)} inline MC jobs) ==",
            f"  batch 1:  {ops_per_job[1]:6.2f} fs ops/job",
            f"  batch 8:  {ops_per_job[8]:6.2f} fs ops/job "
            f"({reduction:4.2f}x reduction)",
        ]
    )
    print()
    print(report_text)
    _SESSION_REPORTS.append(report_text)
    bench_metrics(
        jobs=len(jobs),
        fs_ops_per_job_batch1=round(ops_per_job[1], 2),
        fs_ops_per_job_batch8=round(ops_per_job[8], 2),
        fs_ops_reduction=round(reduction, 2),
    )
    assert reduction >= 4.0, (
        f"expected >= 4x fs-op reduction at batch 8: "
        f"{ops_per_job[1]:.2f} -> {ops_per_job[8]:.2f} ops/job "
        f"({reduction:.2f}x)"
    )


def test_persistent_pool_across_adaptive_rounds(bench_metrics):
    """Adaptive doubling rounds: persistent vs shut-down-per-batch pool.

    An unreachable CI target forces the sampler to its cap, so each
    (algorithm, k) point runs several doubling rounds — the shape that
    used to re-pay pool startup and the DeFT offline optimization every
    round. The persistent pool pays them once.
    """
    args = (SystemRef.baseline4(), ("deft", "mtr", "rc"), (2, 8), 20)
    kwargs = dict(
        seed=0, metric="reachability",
        target_ci_width=1e-6, max_samples=80,  # unreachable -> 3 rounds
    )

    start = time.perf_counter()
    per_batch = run_montecarlo(
        *args,
        runner=CampaignRunner(
            backend=ProcessPoolBackend(workers=2, persistent=False)
        ),
        **kwargs,
    )
    per_batch_s = time.perf_counter() - start

    runner = CampaignRunner(backend=ProcessPoolBackend(workers=2))
    start = time.perf_counter()
    try:
        persistent = run_montecarlo(*args, runner=runner, **kwargs)
        persistent_s = time.perf_counter() - start
    finally:
        runner.close()

    speedup = per_batch_s / max(persistent_s, 1e-9)
    lines = [
        f"== bench_distributed: persistent pool across adaptive rounds "
        f"({persistent.campaign.total} jobs in doubling batches) ==",
        f"  pool per round:   {per_batch_s:7.2f}s",
        f"  persistent pool:  {persistent_s:7.2f}s (speedup {speedup:4.2f}x)",
    ]
    report_text = "\n".join(lines)
    print()
    print(report_text)
    _SESSION_REPORTS.append(report_text)
    bench_metrics(
        jobs=persistent.campaign.total,
        per_batch_s=round(per_batch_s, 3),
        persistent_s=round(persistent_s, 3),
        persistent_speedup=round(speedup, 2),
    )

    assert [p.values for p in persistent.results] == [
        p.values for p in per_batch.results
    ]
    if STRICT_TIMING:
        assert persistent_s < per_batch_s, (
            f"expected the persistent pool to beat per-round pools: "
            f"{persistent_s:.2f}s vs {per_batch_s:.2f}s"
        )
