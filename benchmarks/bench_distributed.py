"""Distributed-execution benchmarks: spool workers and persistent pools.

Two cases, both recorded in ``benchmarks/BENCH_distributed.json``:

* ``test_spool_multiworker_vs_serial`` — the PR's acceptance case: a
  repeated-topology Monte Carlo campaign through :class:`SpoolBackend`
  with 2 autospawned ``deft worker`` subprocesses versus
  :class:`SerialBackend`, asserted bit-identical and timed (the
  multi-worker speedup is only *asserted* where the machine actually
  has >= 2 cores and jobs run at full scale; the numbers are always
  recorded).
* ``test_persistent_pool_across_adaptive_rounds`` — the
  :class:`ProcessPoolBackend` satellite: adaptive Monte Carlo doubling
  rounds against one persistent pool (workers and their warm sessions
  survive between rounds) versus the shut-down-per-batch pool.
"""

import os
import time

from repro.experiments.common import default_config, effective_scale
from repro.montecarlo import run_montecarlo
from repro.runner import (
    CampaignRunner,
    ProcessPoolBackend,
    ResultCache,
    SerialBackend,
    SystemRef,
)
from repro.distributed import SpoolBackend

from conftest import _SESSION_REPORTS

#: Mirror bench_campaign: strict wall-clock ratios only hold when jobs
#: dominate constant overheads (worker startup, spool polling).
STRICT_TIMING = effective_scale(None) >= 0.5


def test_spool_multiworker_vs_serial(tmp_path_factory, bench_metrics):
    """Repeated-topology MC latency campaign: serial vs 2 spool workers."""
    cores = os.cpu_count() or 1
    workers = 2
    args = (SystemRef.baseline4(), ("deft",), (2,), 8)
    kwargs = dict(seed=0, metric="latency", config=default_config(None))

    start = time.perf_counter()
    serial = run_montecarlo(
        *args, runner=CampaignRunner(backend=SerialBackend()), **kwargs
    )
    serial_s = time.perf_counter() - start

    cache_dir = tmp_path_factory.mktemp("spool-cache")
    spool_dir = tmp_path_factory.mktemp("spool")
    backend = SpoolBackend(
        cache=ResultCache(cache_dir), spool_dir=spool_dir, workers=workers
    )
    runner = CampaignRunner(backend=backend, cache=ResultCache(cache_dir))
    start = time.perf_counter()
    try:
        spooled = run_montecarlo(*args, runner=runner, **kwargs)
        spool_s = time.perf_counter() - start
        worker_stats = backend.spool.worker_stats()
    finally:
        runner.close()

    speedup = serial_s / max(spool_s, 1e-9)
    jobs = serial.campaign.total
    lines = [
        f"== bench_distributed: spool backend ({jobs} repeated-topology "
        f"Monte Carlo simulations, {workers} workers, {cores} cores) ==",
        f"  serial backend:        {serial_s:7.2f}s",
        f"  spool x{workers} workers:      {spool_s:7.2f}s "
        f"(speedup {speedup:4.2f}x)",
    ]
    for worker_id, stats in sorted(worker_stats.items()):
        session = stats.get("session", {})
        lines.append(
            f"    {worker_id}: {stats['jobs_done']} job(s), session "
            f"algorithm {session.get('algorithm.hit', 0)} hit / "
            f"{session.get('algorithm.miss', 0)} miss"
        )
    report_text = "\n".join(lines)
    print()
    print(report_text)
    _SESSION_REPORTS.append(report_text)
    bench_metrics(
        jobs=jobs, workers=workers, cores=cores,
        serial_s=round(serial_s, 3), spool_s=round(spool_s, 3),
        multiworker_speedup=round(speedup, 2),
        worker_jobs=[s["jobs_done"] for _, s in sorted(worker_stats.items())],
    )

    # Correctness is asserted unconditionally: bit-identical estimates.
    assert [p.values for p in spooled.results] == [
        p.values for p in serial.results
    ]
    assert not spooled.campaign.errors
    # Both autospawned workers took part (the queue actually fanned out).
    assert sum(s["jobs_done"] for s in worker_stats.values()) >= jobs
    if STRICT_TIMING and cores >= 2:
        assert spool_s < serial_s, (
            f"expected multi-worker speedup on {cores} cores: "
            f"spool {spool_s:.2f}s vs serial {serial_s:.2f}s"
        )


def test_persistent_pool_across_adaptive_rounds(bench_metrics):
    """Adaptive doubling rounds: persistent vs shut-down-per-batch pool.

    An unreachable CI target forces the sampler to its cap, so each
    (algorithm, k) point runs several doubling rounds — the shape that
    used to re-pay pool startup and the DeFT offline optimization every
    round. The persistent pool pays them once.
    """
    args = (SystemRef.baseline4(), ("deft", "mtr", "rc"), (2, 8), 20)
    kwargs = dict(
        seed=0, metric="reachability",
        target_ci_width=1e-6, max_samples=80,  # unreachable -> 3 rounds
    )

    start = time.perf_counter()
    per_batch = run_montecarlo(
        *args,
        runner=CampaignRunner(
            backend=ProcessPoolBackend(workers=2, persistent=False)
        ),
        **kwargs,
    )
    per_batch_s = time.perf_counter() - start

    runner = CampaignRunner(backend=ProcessPoolBackend(workers=2))
    start = time.perf_counter()
    try:
        persistent = run_montecarlo(*args, runner=runner, **kwargs)
        persistent_s = time.perf_counter() - start
    finally:
        runner.close()

    speedup = per_batch_s / max(persistent_s, 1e-9)
    lines = [
        f"== bench_distributed: persistent pool across adaptive rounds "
        f"({persistent.campaign.total} jobs in doubling batches) ==",
        f"  pool per round:   {per_batch_s:7.2f}s",
        f"  persistent pool:  {persistent_s:7.2f}s (speedup {speedup:4.2f}x)",
    ]
    report_text = "\n".join(lines)
    print()
    print(report_text)
    _SESSION_REPORTS.append(report_text)
    bench_metrics(
        jobs=persistent.campaign.total,
        per_batch_s=round(per_batch_s, 3),
        persistent_s=round(persistent_s, 3),
        persistent_speedup=round(speedup, 2),
    )

    assert [p.values for p in persistent.results] == [
        p.values for p in per_batch.results
    ]
    if STRICT_TIMING:
        assert persistent_s < per_batch_s, (
            f"expected the persistent pool to beat per-round pools: "
            f"{persistent_s:.2f}s vs {per_batch_s:.2f}s"
        )
