"""Substrate microbenchmarks: simulator throughput, optimizer, CDG.

These are classic pytest-benchmark measurements (multiple rounds) of the
library's hot paths, complementing the one-shot figure regenerations.
"""

import pytest

from repro.analysis.cdg import build_cdg
from repro.config import SimulationConfig
from repro.core.optimizer import CompositionOptimizer
from repro.core.tables import build_selection_tables
from repro.core.vl_selection import SelectionProblem
from repro.network.simulator import Simulator
from repro.routing.deft import DeftRouting
from repro.topology.presets import baseline_4_chiplets
from repro.traffic.synthetic import UniformTraffic


@pytest.fixture(scope="module")
def system():
    return baseline_4_chiplets()


@pytest.mark.benchmark(group="substrate")
def test_simulator_cycles_per_second(benchmark, system):
    """1000 loaded cycles of the 128-router baseline under DeFT."""
    config = SimulationConfig(
        warmup_cycles=0, measure_cycles=1_000, drain_cycles=0, watchdog_cycles=0
    )

    def run_window():
        simulator = Simulator(
            system, DeftRouting(system), UniformTraffic(system, 0.006, seed=3), config
        )
        simulator.run_cycles(1_000)
        return simulator

    simulator = benchmark(run_window)
    assert simulator.stats.flit_hops > 0


@pytest.mark.benchmark(group="substrate")
def test_offline_table_construction(benchmark, system):
    """Algorithm 2 across all chiplets and all 15 fault scenarios."""
    tables = benchmark(build_selection_tables, system)
    assert tables[0].num_entries == 15


@pytest.mark.benchmark(group="substrate")
def test_composition_optimizer_single_instance(benchmark):
    """One 16-router / 4-VL selection instance (a single LUT entry)."""
    problem = SelectionProblem.uniform(
        [(x, y) for y in range(4) for x in range(4)],
        [(1, 0), (2, 0), (1, 3), (2, 3)],
    )
    result = benchmark(CompositionOptimizer().optimize, problem)
    assert result.cost >= 0


@pytest.mark.benchmark(group="substrate", min_rounds=1, max_time=5.0)
def test_cdg_construction(benchmark, system):
    """Full channel-dependency-graph build over every PE pair."""
    report = benchmark.pedantic(
        lambda: build_cdg(system, DeftRouting(system)), rounds=1, iterations=1
    )
    assert report.is_acyclic
