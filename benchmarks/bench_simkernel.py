"""Cycle-kernel benchmark: numpy vector kernel vs the reference kernel.

One saturated large-grid simulation run under both kernels on a *warm*
session (the algorithm and its compiled route table — including the
dense int-indexed view the vector kernel consumes — are built once and
shared), reporting simulated cycles per wall-clock second. The two
kernels are bit-identical by contract, so the delivered statistics must
match exactly; the speedup is the point of the struct-of-arrays engine.

The vector kernel's advantage grows with system size and load: the
reference kernel walks every active channel in Python, while the vector
kernel pays a near-constant batch of numpy passes per cycle plus Python
work proportional to packet throughput only. The acceptance bar (>= 10x)
is therefore asserted at full scale on the 32x32-router grid; the CI
smoke lane (``REPRO_EXPERIMENT_SCALE=0.1``) runs a reduced grid where
the ratio is smaller, and records the measurement without asserting it.

Numbers land in ``BENCH_simkernel.json`` next to the other trajectories.
"""

import time

from repro.config import SimulationConfig
from repro.experiments.common import effective_scale
from repro.network.simulator import Simulator
from repro.routing.compiled import compile_routes
from repro.routing.deft import DeftRouting
from repro.topology.presets import chiplet_grid
from repro.traffic.synthetic import UniformTraffic

from conftest import _SESSION_REPORTS

#: The tentpole's acceptance bar: simulated cycles/sec on a warm session.
SPEEDUP_BAR = 10.0

#: Ratio assertions only hold on the full-scale workload — on the smoke
#: grid the reference kernel is fast enough that shared per-cycle costs
#: (traffic generation, packet bookkeeping) compress the gap. Metrics
#: are printed and recorded either way.
STRICT_TIMING = effective_scale(None) >= 0.5


def test_vector_kernel_speedup(bench_metrics):
    full = STRICT_TIMING
    # Full scale: 10x10 chiplets of 4x4 routers (3200 routers with the
    # interposer layer) under load — the regime the ROADMAP's mega-grid
    # campaigns live in, where the reference kernel's per-active-channel
    # walk is at its most expensive.
    # Smoke scale: 3x3 chiplets, same shape, just small enough for CI.
    grid = 10 if full else 3
    system = chiplet_grid(grid, grid)
    algo = DeftRouting(system)
    routes = compile_routes(algo)  # the warm session's shared table
    measure = 300 if full else 120
    cfg = SimulationConfig(
        warmup_cycles=50, measure_cycles=measure, drain_cycles=1500
    )

    def run(kernel):
        traffic = UniformTraffic(system, 0.06, seed=11)
        sim = Simulator(
            system, algo, traffic, cfg, routes=routes, kernel=kernel
        )
        assert sim.kernel_name == kernel, sim.kernel_fallback_reason
        start = time.perf_counter()
        report = sim.run()
        elapsed = time.perf_counter() - start
        return report, report.cycles / max(elapsed, 1e-9)

    run("vector")  # warm-up: numpy dispatch, dense-table memoization
    vec_report, vec_cps = run("vector")
    ref_report, ref_cps = run("reference")
    speedup = vec_cps / max(ref_cps, 1e-9)

    lines = [
        f"== bench_simkernel: {grid}x{grid} chiplet grid "
        f"({len(system.routers)} routers, uniform 0.06, "
        f"{vec_report.cycles} cycles) ==",
        f"  reference kernel: {ref_cps:8.1f} cycles/s",
        f"  vector kernel:    {vec_cps:8.1f} cycles/s "
        f"(speedup {speedup:5.2f}x)",
    ]
    report_text = "\n".join(lines)
    print()
    print(report_text)
    _SESSION_REPORTS.append(report_text)
    bench_metrics(
        routers=len(system.routers),
        cycles=vec_report.cycles,
        reference_cycles_per_s=round(ref_cps, 1),
        vector_cycles_per_s=round(vec_cps, 1),
        speedup=round(speedup, 2),
    )

    # Bit-identity: same cycles, same delivery, same latency, same hops —
    # always asserted, at every scale.
    assert not vec_report.deadlocked and not ref_report.deadlocked
    assert vec_report.cycles == ref_report.cycles
    assert vec_report.stats.packets_delivered == ref_report.stats.packets_delivered
    assert vec_report.stats.average_latency == ref_report.stats.average_latency
    assert vec_report.stats.flit_hops == ref_report.stats.flit_hops
    assert vec_report.metadata["kernel"] == "vector"
    assert ref_report.metadata["kernel"] == "reference"

    if STRICT_TIMING:
        assert speedup >= SPEEDUP_BAR, (
            f"vector kernel below the acceptance bar: {speedup:.2f}x "
            f"(vector {vec_cps:.1f} vs reference {ref_cps:.1f} cycles/s)"
        )
