"""Campaign-runner benchmark: serial vs multi-worker, cold vs warm cache.

Runs a fig4-sized grid (3 algorithms x 6 rates, uniform traffic on the
4-chiplet baseline) three ways and reports wall-clock:

* serial backend, no cache — the pre-runner baseline;
* process-pool backend, no cache — the parallel speedup (asserted only
  when the machine actually has >= 2 cores);
* serial backend with a cold then warm content-addressed cache — the
  incremental-campaign speedup (warm run must be served >= 90% from
  cache and be dramatically faster).

``REPRO_EXPERIMENT_SCALE`` scales the simulated windows as in every
other bench module.

``test_montecarlo_campaign`` additionally benchmarks the Monte Carlo
fault-campaign path: sampling throughput cold vs fully cache-served warm,
and ``test_session_reuse_speedup`` measures the session layer: a
repeated-topology Monte Carlo campaign with per-worker reuse of built
systems, algorithms and compiled route tables versus the original
rebuild-everything-per-job path (must be >= 2x; recorded in
``BENCH_campaign.json``).
"""

import os
import time

from repro.experiments.common import default_config, effective_scale, sweep_jobs
from repro.runner import (
    Campaign,
    CampaignRunner,
    ProcessPoolBackend,
    ResultCache,
    SerialBackend,
    SystemRef,
    reset_session,
)

from conftest import _SESSION_REPORTS

#: Wall-clock ratio assertions only hold when jobs are long enough to
#: dominate constant overheads (pool fork/startup, cache reads). At
#: reduced scale — the CI smoke lane — the numbers are still printed and
#: recorded in BENCH_campaign.json, but the strict ratios are not
#: asserted; correctness (identical results, cache hit counts) always is.
STRICT_TIMING = effective_scale(None) >= 0.5


def _fig4_sized_jobs():
    """The fig4(a) grid shape: 3 algorithms x 6 rates x 1 seed."""
    return sweep_jobs(
        SystemRef.baseline4(),
        ("deft", "mtr", "rc"),
        "uniform",
        (0.002, 0.004, 0.006, 0.008, 0.010, 0.012),
        default_config(None),
        seeds=(1,),
    )


def _timed(runner, jobs, name):
    start = time.perf_counter()
    report = runner.run(Campaign(name=name, jobs=tuple(jobs)))
    report.raise_if_failed()
    return report, time.perf_counter() - start


def test_campaign_serial_vs_parallel_vs_cache(tmp_path_factory, bench_metrics):
    jobs = _fig4_sized_jobs()
    cores = os.cpu_count() or 1
    workers = min(4, cores)

    serial_report, serial_s = _timed(
        CampaignRunner(backend=SerialBackend()), jobs, "serial"
    )

    parallel_report, parallel_s = _timed(
        CampaignRunner(backend=ProcessPoolBackend(workers=workers)), jobs, "parallel"
    )

    cache_dir = tmp_path_factory.mktemp("campaign-cache")
    cold_report, cold_s = _timed(
        CampaignRunner(backend=SerialBackend(), cache=ResultCache(cache_dir)),
        jobs,
        "cold-cache",
    )
    warm_report, warm_s = _timed(
        CampaignRunner(backend=SerialBackend(), cache=ResultCache(cache_dir)),
        jobs,
        "warm-cache",
    )

    lines = [
        "== bench_campaign: fig4-sized grid "
        f"({len(jobs)} jobs, {workers} workers, {cores} cores) ==",
        f"  serial, no cache:      {serial_s:7.2f}s",
        f"  parallel x{workers}:          {parallel_s:7.2f}s "
        f"(speedup {serial_s / parallel_s:4.2f}x)",
        f"  cold cache (populate): {cold_s:7.2f}s",
        f"  warm cache:            {warm_s:7.2f}s "
        f"({warm_report.cache_hits}/{warm_report.total} hits, "
        f"speedup {serial_s / max(warm_s, 1e-9):.0f}x)",
    ]
    report_text = "\n".join(lines)
    print()
    print(report_text)
    _SESSION_REPORTS.append(report_text)
    bench_metrics(
        jobs=len(jobs), workers=workers, cores=cores,
        serial_s=round(serial_s, 3), parallel_s=round(parallel_s, 3),
        cold_cache_s=round(cold_s, 3), warm_cache_s=round(warm_s, 3),
        parallel_speedup=round(serial_s / parallel_s, 2),
        warm_cache_hits=warm_report.cache_hits,
    )

    # Correctness: every execution mode produces identical results.
    assert parallel_report.results == serial_report.results
    assert warm_report.results == serial_report.results

    # Incrementality: a repeated campaign is served >= 90% from cache
    # (here: fully) and beats re-simulating by a wide margin.
    assert warm_report.hit_ratio >= 0.90
    assert warm_report.executed == 0
    if STRICT_TIMING:
        assert warm_s < serial_s / 10

    # Parallelism: real speedup wherever the hardware offers real cores
    # and jobs are long enough that pool startup does not dominate.
    if cores >= 2 and STRICT_TIMING:
        assert parallel_s < serial_s * 0.9, (
            f"expected parallel speedup on {cores} cores: "
            f"{parallel_s:.2f}s vs serial {serial_s:.2f}s"
        )


def test_montecarlo_campaign(tmp_path_factory, bench_metrics):
    """Monte Carlo fault campaign: sampling throughput and cache reuse.

    A fig7mc-sized reachability campaign (3 algorithms x k in {2, 8} x
    100 samples) run cold then warm: the warm pass must be served >= 95%
    from the content-addressed cache with identical estimates.
    """
    from repro.montecarlo import run_montecarlo

    cache_dir = tmp_path_factory.mktemp("mc-cache")
    cores = os.cpu_count() or 1
    workers = min(4, cores)
    args = (SystemRef.baseline4(), ("deft", "mtr", "rc"), (2, 8), 100)

    start = time.perf_counter()
    cold = run_montecarlo(
        *args, seed=0,
        runner=CampaignRunner(
            backend=ProcessPoolBackend(workers=workers),
            cache=ResultCache(cache_dir),
        ),
    )
    cold_s = time.perf_counter() - start
    start = time.perf_counter()
    warm = run_montecarlo(
        *args, seed=0,
        runner=CampaignRunner(backend=SerialBackend(), cache=ResultCache(cache_dir)),
    )
    warm_s = time.perf_counter() - start

    jobs = cold.campaign.total
    lines = [
        f"== bench_campaign: montecarlo reachability ({jobs} samples, "
        f"{workers} workers) ==",
        f"  cold (populate):  {cold_s:7.2f}s ({jobs / max(cold_s, 1e-9):6.0f} samples/s)",
        f"  warm (cache):     {warm_s:7.2f}s "
        f"({warm.campaign.cache_hits}/{warm.campaign.total} hits)",
    ]
    for point in cold.results:
        lines.append("  " + point.row())
    report_text = "\n".join(lines)
    print()
    print(report_text)
    _SESSION_REPORTS.append(report_text)
    bench_metrics(
        jobs=jobs, workers=workers,
        cold_s=round(cold_s, 3), warm_s=round(warm_s, 3),
        cold_samples_per_s=round(jobs / max(cold_s, 1e-9), 1),
        warm_cache_hits=warm.campaign.cache_hits,
    )

    assert warm.campaign.hit_ratio >= 0.95
    assert warm.campaign.executed == 0
    assert [p.values for p in warm.results] == [p.values for p in cold.results]


def test_session_reuse_speedup(bench_metrics):
    """Session reuse + compiled tables vs the seed rebuild-per-job path.

    A repeated-topology Monte Carlo reachability campaign (every job
    shares the 4-chiplet baseline and its DeFT/MTR/RC algorithms, only
    the sampled fault pattern differs). The seed path rebuilt the system,
    the algorithm — for DeFT the whole Algorithm 2 offline optimization —
    and every lookup structure per job; the session path builds each once
    per worker and reuses the compiled sender/receiver tables across
    samples. The acceptance bar is 2x; the measured margin is far larger.
    """
    from repro.montecarlo import run_montecarlo

    args = (SystemRef.baseline4(), ("deft", "mtr", "rc"), (2, 8), 60)

    start = time.perf_counter()
    seed_path = run_montecarlo(
        *args, seed=0,
        runner=CampaignRunner(backend=SerialBackend(use_session=False)),
    )
    seed_s = time.perf_counter() - start

    reset_session()  # cold session: the comparison includes its build cost
    start = time.perf_counter()
    session_path = run_montecarlo(
        *args, seed=0,
        runner=CampaignRunner(backend=SerialBackend(use_session=True)),
    )
    session_s = time.perf_counter() - start

    speedup = seed_s / max(session_s, 1e-9)
    lines = [
        f"== bench_campaign: session reuse ({seed_path.campaign.total} "
        "repeated-topology Monte Carlo jobs) ==",
        f"  seed path (rebuild per job): {seed_s:7.2f}s",
        f"  session + compiled tables:   {session_s:7.2f}s "
        f"(speedup {speedup:4.1f}x)",
    ]
    report_text = "\n".join(lines)
    print()
    print(report_text)
    _SESSION_REPORTS.append(report_text)
    bench_metrics(
        jobs=seed_path.campaign.total,
        seed_path_s=round(seed_s, 3),
        session_s=round(session_s, 3),
        speedup=round(speedup, 2),
    )

    # Identical estimates — the session changes wall-clock, not numbers.
    assert [p.values for p in session_path.results] == [
        p.values for p in seed_path.results
    ]
    # Asserted regardless of STRICT_TIMING: this is the PR's acceptance
    # bar, the workload is analytic (scale-independent), and the measured
    # margin is ~30x — a failure here is a real session regression.
    assert session_s * 2 <= seed_s, (
        f"expected >= 2x from session reuse: seed {seed_s:.2f}s "
        f"vs session {session_s:.2f}s"
    )
