"""Campaign-runner benchmark: serial vs multi-worker, cold vs warm cache.

Runs a fig4-sized grid (3 algorithms x 6 rates, uniform traffic on the
4-chiplet baseline) three ways and reports wall-clock:

* serial backend, no cache — the pre-runner baseline;
* process-pool backend, no cache — the parallel speedup (asserted only
  when the machine actually has >= 2 cores);
* serial backend with a cold then warm content-addressed cache — the
  incremental-campaign speedup (warm run must be served >= 90% from
  cache and be dramatically faster).

``REPRO_EXPERIMENT_SCALE`` scales the simulated windows as in every
other bench module.

``test_montecarlo_campaign`` additionally benchmarks the Monte Carlo
fault-campaign path: sampling throughput cold vs fully cache-served warm.
"""

import os
import time

from repro.experiments.common import default_config, sweep_jobs
from repro.runner import (
    Campaign,
    CampaignRunner,
    ProcessPoolBackend,
    ResultCache,
    SerialBackend,
    SystemRef,
)

from conftest import _SESSION_REPORTS


def _fig4_sized_jobs():
    """The fig4(a) grid shape: 3 algorithms x 6 rates x 1 seed."""
    return sweep_jobs(
        SystemRef.baseline4(),
        ("deft", "mtr", "rc"),
        "uniform",
        (0.002, 0.004, 0.006, 0.008, 0.010, 0.012),
        default_config(None),
        seeds=(1,),
    )


def _timed(runner, jobs, name):
    start = time.perf_counter()
    report = runner.run(Campaign(name=name, jobs=tuple(jobs)))
    report.raise_if_failed()
    return report, time.perf_counter() - start


def test_campaign_serial_vs_parallel_vs_cache(tmp_path_factory):
    jobs = _fig4_sized_jobs()
    cores = os.cpu_count() or 1
    workers = min(4, cores)

    serial_report, serial_s = _timed(
        CampaignRunner(backend=SerialBackend()), jobs, "serial"
    )

    parallel_report, parallel_s = _timed(
        CampaignRunner(backend=ProcessPoolBackend(workers=workers)), jobs, "parallel"
    )

    cache_dir = tmp_path_factory.mktemp("campaign-cache")
    cold_report, cold_s = _timed(
        CampaignRunner(backend=SerialBackend(), cache=ResultCache(cache_dir)),
        jobs,
        "cold-cache",
    )
    warm_report, warm_s = _timed(
        CampaignRunner(backend=SerialBackend(), cache=ResultCache(cache_dir)),
        jobs,
        "warm-cache",
    )

    lines = [
        "== bench_campaign: fig4-sized grid "
        f"({len(jobs)} jobs, {workers} workers, {cores} cores) ==",
        f"  serial, no cache:      {serial_s:7.2f}s",
        f"  parallel x{workers}:          {parallel_s:7.2f}s "
        f"(speedup {serial_s / parallel_s:4.2f}x)",
        f"  cold cache (populate): {cold_s:7.2f}s",
        f"  warm cache:            {warm_s:7.2f}s "
        f"({warm_report.cache_hits}/{warm_report.total} hits, "
        f"speedup {serial_s / max(warm_s, 1e-9):.0f}x)",
    ]
    report_text = "\n".join(lines)
    print()
    print(report_text)
    _SESSION_REPORTS.append(report_text)

    # Correctness: every execution mode produces identical results.
    assert parallel_report.results == serial_report.results
    assert warm_report.results == serial_report.results

    # Incrementality: a repeated campaign is served >= 90% from cache
    # (here: fully) and beats re-simulating by a wide margin.
    assert warm_report.hit_ratio >= 0.90
    assert warm_report.executed == 0
    assert warm_s < serial_s / 10

    # Parallelism: real speedup wherever the hardware offers real cores.
    if cores >= 2:
        assert parallel_s < serial_s * 0.9, (
            f"expected parallel speedup on {cores} cores: "
            f"{parallel_s:.2f}s vs serial {serial_s:.2f}s"
        )


def test_montecarlo_campaign(tmp_path_factory):
    """Monte Carlo fault campaign: sampling throughput and cache reuse.

    A fig7mc-sized reachability campaign (3 algorithms x k in {2, 8} x
    100 samples) run cold then warm: the warm pass must be served >= 95%
    from the content-addressed cache with identical estimates.
    """
    from repro.montecarlo import run_montecarlo

    cache_dir = tmp_path_factory.mktemp("mc-cache")
    cores = os.cpu_count() or 1
    workers = min(4, cores)
    args = (SystemRef.baseline4(), ("deft", "mtr", "rc"), (2, 8), 100)

    start = time.perf_counter()
    cold = run_montecarlo(
        *args, seed=0,
        runner=CampaignRunner(
            backend=ProcessPoolBackend(workers=workers),
            cache=ResultCache(cache_dir),
        ),
    )
    cold_s = time.perf_counter() - start
    start = time.perf_counter()
    warm = run_montecarlo(
        *args, seed=0,
        runner=CampaignRunner(backend=SerialBackend(), cache=ResultCache(cache_dir)),
    )
    warm_s = time.perf_counter() - start

    jobs = cold.campaign.total
    lines = [
        f"== bench_campaign: montecarlo reachability ({jobs} samples, "
        f"{workers} workers) ==",
        f"  cold (populate):  {cold_s:7.2f}s ({jobs / max(cold_s, 1e-9):6.0f} samples/s)",
        f"  warm (cache):     {warm_s:7.2f}s "
        f"({warm.campaign.cache_hits}/{warm.campaign.total} hits)",
    ]
    for point in cold.results:
        lines.append("  " + point.row())
    report_text = "\n".join(lines)
    print()
    print(report_text)
    _SESSION_REPORTS.append(report_text)

    assert warm.campaign.hit_ratio >= 0.95
    assert warm.campaign.executed == 0
    assert [p.values for p in warm.results] == [p.values for p in cold.results]
