"""Variance-reduction benchmark: samples to reach a target Wilson CI.

The acceptance case for the variance-reduced Monte Carlo engine, on the
paper's statistical worst-case point — RC at k=8 on the 4-chiplet
baseline, the Fig. 7 point with the widest spread (DeFT is fully
reachable there; RC's per-pattern reachability varies the most). Each
sampler runs the same adaptive ``--target-ci`` driver loop to the same
stopping width, and we count the simulated jobs it needed:

* ``uniform`` — the legacy estimator, doubling until the pooled Wilson
  interval is narrow enough;
* ``stratified`` — per-chiplet per-direction fault-count strata with
  exact combinatorial weights and Neyman extension rounds. RC's
  sender/receiver counts depend only on the per-direction fault counts,
  so the metric is *constant inside every stratum* and the estimate is
  exact as soon as the strata are covered — the sample cost collapses
  to the coverage floor (two draws per stratum) no matter how tight the
  target;
* ``importance`` — strata drawn from a deviation-tilted defensive
  proposal with self-normalized likelihood-ratio reweighting; helps in
  proportion to how much of the variance the score model explains, and
  is bounded by the defensive mixture.

At full scale (``REPRO_EXPERIMENT_SCALE`` unset or >= 1) the target
width is tight enough that uniform needs >= 2x the jobs stratified
needs — that ratio is asserted and recorded, together with an
exactness cross-check of the stratified mean against the analytic
reachability decomposition, in ``BENCH_montecarlo.json``.
"""

import os

import pytest

from repro.analysis.reachability import average_reachability
from repro.experiments.common import effective_scale
from repro.montecarlo import run_montecarlo
from repro.routing.registry import make_algorithm
from repro.runner import CampaignRunner, SystemRef
from repro.topology.presets import baseline_4_chiplets

ALGORITHM = "rc"
FAULT_K = 8


def drive(sampler, target, max_samples, samples=500):
    with CampaignRunner() as runner:
        report = run_montecarlo(
            SystemRef.baseline4(), (ALGORITHM,), (FAULT_K,), samples,
            seed=0, runner=runner, sampler=sampler,
            target_ci_width=target, max_samples=max_samples,
        )
    point = report.results[0]
    assert point.failed == 0
    return point


@pytest.mark.benchmark(group="montecarlo", min_rounds=1, max_time=1.0)
def test_samples_to_target_ci(bench_metrics):
    scale = effective_scale(None)
    full = scale >= 1.0
    # Stopping targets are FULL interval widths (matching --target-ci).
    # 2e-4 is tight enough that uniform pays ~4x the stratified coverage
    # floor while every sampler still genuinely reaches the target (no
    # sampler is censored by the cap, keeping the ratios honest). The
    # reduced-scale target only smoke-tests the loop; the >= 2x bar is
    # asserted at full scale.
    target = 2e-4 if full else 6e-4

    system = baseline_4_chiplets()
    exact = average_reachability(system, make_algorithm(ALGORITHM, system), FAULT_K)

    uniform = drive("uniform", target, max_samples=128_000)
    stratified = drive("stratified", target, max_samples=128_000)
    importance = drive("importance", target, max_samples=128_000)

    # Correctness before speed: every estimator must have converged onto
    # the analytic decomposition's exact value at its stopping width.
    assert stratified.primary.mean == pytest.approx(exact, abs=1e-9)
    assert abs(uniform.primary.mean - exact) < 5 * target
    assert abs(importance.primary.mean - exact) < 5 * target

    # None of the runs may be censored by the cap — a capped sampler
    # never reached the target and would fake the ratio.
    for point in (uniform, stratified, importance):
        assert point.completed < 128_000

    reduction_stratified = uniform.completed / stratified.completed
    reduction_importance = uniform.completed / importance.completed
    bench_metrics(
        exact_mean=exact,
        target_ci_width=target,
        uniform_jobs=uniform.completed,
        stratified_jobs=stratified.completed,
        importance_jobs=importance.completed,
        stratified_strata=stratified.strata,
        stratified_mean_error=abs(stratified.primary.mean - exact),
        importance_ess=round(importance.ess, 1),
        reduction_stratified=round(reduction_stratified, 2),
        reduction_importance=round(reduction_importance, 2),
        experiment_scale=scale,
    )
    print(
        f"\nsamples to CI width {target}: uniform={uniform.completed} "
        f"stratified={stratified.completed} ({reduction_stratified:.2f}x) "
        f"importance={importance.completed} ({reduction_importance:.2f}x, "
        f"ess={importance.ess:.0f})"
    )
    if full:
        assert reduction_stratified >= 2.0, (
            f"stratified needed {stratified.completed} jobs vs uniform "
            f"{uniform.completed} — less than the required 2x reduction"
        )


@pytest.mark.benchmark(group="montecarlo", min_rounds=1, max_time=1.0)
def test_stratified_exact_at_coverage(bench_metrics):
    """The zero-variance route: one coverage round pins the exact value."""
    point = drive("stratified", target=0.01, max_samples=128_000)
    system = baseline_4_chiplets()
    exact = average_reachability(system, make_algorithm(ALGORITHM, system), FAULT_K)
    assert point.completed == 2 * point.strata  # stopped right at coverage
    assert point.primary.mean == pytest.approx(exact, abs=1e-9)
    assert point.primary.interval.half_width <= 1.1e-9
    bench_metrics(
        coverage_jobs=point.completed,
        strata=point.strata,
        mean_error=abs(point.primary.mean - exact),
    )
