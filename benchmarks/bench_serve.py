"""Campaign-service overhead benchmark: watched vs unwatched drain.

The acceptance bar for ``deft serve`` is that having the service live on
a spool — janitor thread sweeping leases, an SSE client tailing the
event stream, a Prometheus scraper polling ``/metrics`` — costs at most
5% over draining the identical campaign with nothing watching.

``test_serve_overhead`` measures that on a simulate grid drained by a
real ``run_worker`` each round. The dark runs enqueue straight into a
fresh spool; the lit runs submit the same jobs over HTTP to a live
:class:`CampaignServer` with one SSE tail and one metrics scraper
attached for the whole drain. Only the drain is timed (submission is
plumbing either way), runs alternate dark/lit three times, and medians
compare — the same protocol as ``bench_telemetry``. The service only
ever *reads* the spool while workers write it, so the honest cost is
shared-filesystem contention plus the event volume the tailer induces;
this pins it.

``test_trace_reconstruction_cost`` is informational: how long
``deft trace`` takes to stitch the benchmark campaign's event streams
into span trees and render Chrome JSON, recorded per finished job so
the constant is visible across PRs.
"""

import json
import statistics
import threading
import time
import urllib.request

from repro.config import SimulationConfig
from repro.distributed import Spool, run_worker
from repro.experiments.common import effective_scale
from repro.runner import Job, ResultCache, SystemRef, TrafficSpec
from repro.serve import serve_campaigns
from repro.telemetry.trace import chrome_trace, job_traces

from conftest import _SESSION_REPORTS

STRICT_TIMING = effective_scale(None) >= 0.5

#: Serve overhead budget: a watched drain may cost at most this much
#: over the identical unwatched drain (median of ROUNDS runs each).
MAX_OVERHEAD = 0.05

ROUNDS = 3
BATCH = 4

#: Same per-job weight as bench_telemetry: real cycle-accurate windows,
#: so the service's cost is measured against realistic job durations,
#: not amortised away by giant ones.
_SIM_CONFIG = SimulationConfig(
    warmup_cycles=100, measure_cycles=600,
    drain_cycles=3_000, watchdog_cycles=10_000,
)


def _jobs() -> list[Job]:
    return [
        Job.make(
            SystemRef.baseline4(), algorithm,
            TrafficSpec.make("uniform", rate=rate), _SIM_CONFIG, seed=seed,
        )
        for algorithm in ("deft", "rc")
        for rate in (0.004, 0.008)
        for seed in (1, 2)
    ]


def _drain(spool_root, cache_dir, worker_id):
    """Time a full single-worker drain of the spool."""
    cache = ResultCache(cache_dir)
    start = time.perf_counter()
    stats = run_worker(
        spool_root, cache, worker_id=worker_id,
        idle_timeout_s=1.0, lease_s=30.0,
    )
    return stats, time.perf_counter() - start


def _dark_run(root, jobs):
    """Unwatched baseline: enqueue directly, drain, nobody looking."""
    spool = Spool(root / "spool", lease_s=30.0).ensure()
    spool.attach_events("bench-enqueuer")
    spool.enqueue(jobs, batch_size=BATCH)
    return _drain(spool.root, root / "cache", "dark-w")


def _lit_run(root, jobs):
    """Watched drain: live server, SSE tail, and /metrics scraper."""
    server = serve_campaigns(
        root / "spool", root / "cache", port=0, lease_s=30.0, poll_s=0.05,
    )
    stop = threading.Event()
    sse_frames: list[bytes] = []
    scrapes: list[int] = []

    def tail():
        try:
            response = urllib.request.urlopen(
                server.url + "/events?campaign=serve-bench", timeout=30
            )
            with response:
                while not stop.is_set():
                    line = response.readline()
                    if not line:
                        return
                    sse_frames.append(line)
        except OSError:
            pass  # server shutdown races the read; frames already counted

    def scrape():
        while not stop.is_set():
            try:
                with urllib.request.urlopen(
                    server.url + "/metrics", timeout=10
                ) as response:
                    scrapes.append(len(response.read()))
            except OSError:
                pass
            stop.wait(0.1)

    try:
        request = urllib.request.Request(
            server.url + "/campaigns",
            data=json.dumps({
                "name": "serve-bench",
                "jobs": [job.canonical() for job in jobs],
                "batch": BATCH,
            }).encode(),
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request, timeout=30) as response:
            assert response.status == 201
        threads = [
            threading.Thread(target=tail, daemon=True),
            threading.Thread(target=scrape, daemon=True),
        ]
        for thread in threads:
            thread.start()
        stats, elapsed = _drain(server.service.spool.root, root / "cache", "lit-w")
        stop.set()
        for thread in threads:
            thread.join(timeout=5)
    finally:
        stop.set()
        server.close()
    finished = sum(
        1 for line in sse_frames
        if line.startswith(b"data: ") and b'"event": "job_finished"' in line
    )
    assert finished >= len(jobs), "SSE tail missed terminal events"
    assert scrapes, "metrics scraper never completed a scrape"
    return stats, elapsed


def test_serve_overhead(tmp_path, bench_metrics):
    jobs = _jobs()

    # Warm the process session once, untimed (topology/algorithm builds).
    _dark_run(tmp_path / "warm", jobs)

    dark_times, lit_times = [], []
    for round_index in range(ROUNDS):
        _, elapsed = _dark_run(tmp_path / f"dark-{round_index}", jobs)
        dark_times.append(elapsed)
        stats, elapsed = _lit_run(tmp_path / f"lit-{round_index}", jobs)
        assert stats["jobs_done"] == len(jobs)
        lit_times.append(elapsed)

    dark_s = statistics.median(dark_times)
    lit_s = statistics.median(lit_times)
    overhead = lit_s / max(dark_s, 1e-9) - 1.0

    # Correctness always: the watched and unwatched drains computed the
    # same physics (NaN-safe, duration/cached provenance excluded).
    dark_cache = ResultCache(tmp_path / "dark-0" / "cache")
    lit_cache = ResultCache(tmp_path / "lit-0" / "cache")

    def payload(result):
        data = result._comparable()
        data.pop("cached", None)
        return data

    for job in jobs:
        dark_result, lit_result = dark_cache.get(job), lit_cache.get(job)
        assert dark_result is not None and lit_result is not None
        assert payload(dark_result) == payload(lit_result)

    lines = [
        f"== bench_serve: watched vs unwatched drain ({len(jobs)} simulate "
        f"jobs, median of {ROUNDS}) ==",
        f"  unwatched drain:      {dark_s:7.2f}s",
        f"  serve + SSE + scrape: {lit_s:7.2f}s "
        f"(overhead {overhead * 100:+.1f}%, budget {MAX_OVERHEAD * 100:.0f}%)",
    ]
    report_text = "\n".join(lines)
    print()
    print(report_text)
    _SESSION_REPORTS.append(report_text)
    bench_metrics(
        jobs=len(jobs), rounds=ROUNDS,
        dark_s=round(dark_s, 3), lit_s=round(lit_s, 3),
        dark_times=[round(t, 3) for t in dark_times],
        lit_times=[round(t, 3) for t in lit_times],
        overhead_pct=round(overhead * 100, 2),
        max_overhead_pct=MAX_OVERHEAD * 100,
    )

    if STRICT_TIMING:
        assert overhead <= MAX_OVERHEAD, (
            f"serve overhead {overhead * 100:.1f}% exceeds "
            f"{MAX_OVERHEAD * 100:.0f}% budget "
            f"(unwatched {dark_s:.2f}s vs watched {lit_s:.2f}s)"
        )


def test_trace_reconstruction_cost(tmp_path, bench_metrics):
    """Per-job cost of stitching event streams into Chrome trace JSON."""
    jobs = _jobs()
    _dark_run(tmp_path, jobs)

    start = time.perf_counter()
    traces = job_traces(tmp_path / "spool")
    doc = chrome_trace(traces)
    elapsed = time.perf_counter() - start

    finished = len(traces.finished)
    assert finished == len(jobs)
    assert doc["traceEvents"]
    per_job_us = elapsed / finished * 1e6

    report_text = "\n".join([
        f"== bench_serve: trace reconstruction ({finished} jobs) ==",
        f"  stitch + export:      {elapsed * 1000:7.1f}ms "
        f"({per_job_us:.0f} us/job, informational)",
    ])
    print()
    print(report_text)
    _SESSION_REPORTS.append(report_text)
    bench_metrics(
        jobs=finished,
        reconstruct_s=round(elapsed, 4),
        per_job_us=round(per_job_us, 1),
        trace_events=len(doc["traceEvents"]),
    )

    if STRICT_TIMING:
        # Loose sanity bound: reconstruction is file reads + dict walks,
        # never simulation-shaped work.
        assert elapsed < 5.0
