"""Fig. 5 — VC utilization in DeFT under synthetic traffic.

Prints the VC1/VC2 share per region (interposer + each chiplet) for
Uniform, Localized and Hotspot traffic and asserts the paper's balance
claims (~50/50 for Uniform/Localized; bounded deviation for Hotspot).
"""

import pytest

from repro.experiments import fig5

from conftest import assert_and_print


@pytest.mark.benchmark(group="fig5", min_rounds=1, max_time=1.0)
def test_fig5_vc_utilization(benchmark, record_result):
    result = benchmark.pedantic(fig5.run, rounds=1, iterations=1)
    assert_and_print(result, record_result)
