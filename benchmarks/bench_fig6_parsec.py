"""Fig. 6 — latency improvement under PARSEC-like application traffic.

(a) single application on 64 cores; (b) two co-running applications on
32 cores each, pairs sorted by load. Prints DeFT's percentage improvement
versus MTR and versus RC per application/pair and asserts that
improvements grow from single- to multi-application scenarios (the
paper's headline: 3% average single-app, 13.5% average multi-app, up to
40% at high load).
"""

import pytest

from repro.experiments import fig6

from conftest import assert_and_print


@pytest.mark.benchmark(group="fig6", min_rounds=1, max_time=1.0)
def test_fig6_single_and_two_applications(benchmark, record_result):
    results = benchmark.pedantic(fig6.run, rounds=1, iterations=1)
    assert len(results) == 2  # fig6a + fig6b
    for result in results:
        assert_and_print(result, record_result)
