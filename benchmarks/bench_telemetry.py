"""Telemetry overhead benchmark: instrumented vs dark, same campaign.

The acceptance bar for the telemetry layer is that a fully instrumented
run — process metrics recording every job phase and simulator counters,
plus a structured JSONL event stream per job — costs at most 5% over the
same campaign with telemetry disabled.

``test_telemetry_overhead`` measures that on the representative
warm-session workload: a fig4-shaped simulate grid (3 algorithms x 2
rates x 2 seeds on the 4-chiplet baseline) where each job runs a real
cycle-accurate window. Runs alternate disabled/enabled three times each
and compare medians, so a one-off scheduler hiccup cannot decide the
verdict. This case also guards the simulator's hot loop: telemetry is
recorded once per *run*, and anything accidentally moved into the
per-cycle path would blow the 5% budget instantly.

``test_event_unit_cost`` records the absolute worst case — sub-
millisecond analytic Monte Carlo jobs where two event emits + phase
histograms are a visible fraction of the job — as a per-job unit cost
in microseconds. It is informational (no 5% bar: no real campaign is
made of 0.2 ms jobs) but pins the constant in ``BENCH_telemetry.json``
so regressions in the emit path are visible across PRs.
"""

import statistics
import time

from repro.config import SimulationConfig
from repro.experiments.common import effective_scale
from repro.montecarlo import run_montecarlo
from repro.runner import (
    Campaign,
    CampaignRunner,
    Job,
    SerialBackend,
    SystemRef,
    TrafficSpec,
)
from repro.telemetry import (
    EventWriter,
    read_events,
    set_enabled,
    telemetry_enabled,
)
from repro.telemetry.metrics import get_registry

from conftest import _SESSION_REPORTS

STRICT_TIMING = effective_scale(None) >= 0.5

#: Telemetry overhead budget on the simulate workload: enabled may cost
#: at most this much over disabled (median of ROUNDS runs each).
MAX_OVERHEAD = 0.05

ROUNDS = 3

#: ~165 ms/job: long enough to be a realistic simulation, short enough
#: that the full alternating comparison stays under ~15 s.
_SIM_CONFIG = SimulationConfig(
    warmup_cycles=100, measure_cycles=600,
    drain_cycles=3_000, watchdog_cycles=10_000,
)

MC_ARGS = (SystemRef.baseline4(), ("deft", "mtr", "rc"), (2, 8), 60)


def _simulate_jobs() -> list[Job]:
    return [
        Job.make(
            SystemRef.baseline4(), algorithm,
            TrafficSpec.make("uniform", rate=rate), _SIM_CONFIG, seed=seed,
        )
        for algorithm in ("deft", "mtr", "rc")
        for rate in (0.004, 0.008)
        for seed in (1, 2)
    ]


def _alternate(run_once, events_path):
    """ROUNDS alternating dark/instrumented runs; returns the raw data.

    ``run_once(events)`` executes the workload and returns (result,
    elapsed_s). Alternating interleaves the modes through any slow drift
    of the machine; medians then discard one-off hiccups.
    """
    dark_times, lit_times = [], []
    dark_result = lit_result = None
    try:
        for round_index in range(ROUNDS):
            set_enabled(False)
            dark_result, elapsed = run_once(None)
            dark_times.append(elapsed)

            set_enabled(True)
            writer = EventWriter(events_path, f"bench-{round_index}")
            try:
                lit_result, elapsed = run_once(writer)
            finally:
                writer.close()
            lit_times.append(elapsed)
    finally:
        set_enabled(True)
    return dark_times, lit_times, dark_result, lit_result


def test_telemetry_overhead(tmp_path, bench_metrics):
    assert telemetry_enabled(), "benchmark must start with telemetry on"
    jobs = _simulate_jobs()

    def run_once(events):
        runner = CampaignRunner(backend=SerialBackend(events=events))
        start = time.perf_counter()
        report = runner.run(Campaign(name="telemetry-bench", jobs=tuple(jobs)))
        elapsed = time.perf_counter() - start
        report.raise_if_failed()
        return report, elapsed

    # Warm the process session once, untimed: both modes then measure
    # steady-state execution, not the one-off topology/algorithm builds.
    run_once(None)

    events_path = tmp_path / "sim-events.jsonl"
    dark_times, lit_times, dark_report, lit_report = _alternate(
        run_once, events_path
    )

    dark_s = statistics.median(dark_times)
    lit_s = statistics.median(lit_times)
    overhead = lit_s / max(dark_s, 1e-9) - 1.0

    lines = [
        f"== bench_telemetry: instrumented vs dark ({len(jobs)} simulate "
        f"jobs, median of {ROUNDS}) ==",
        f"  telemetry off:        {dark_s:7.2f}s",
        f"  metrics + events on:  {lit_s:7.2f}s "
        f"(overhead {overhead * 100:+.1f}%, budget "
        f"{MAX_OVERHEAD * 100:.0f}%)",
        f"  instruments live:     {len(get_registry())}",
    ]
    report_text = "\n".join(lines)
    print()
    print(report_text)
    _SESSION_REPORTS.append(report_text)
    bench_metrics(
        jobs=len(jobs), rounds=ROUNDS,
        dark_s=round(dark_s, 3), lit_s=round(lit_s, 3),
        dark_times=[round(t, 3) for t in dark_times],
        lit_times=[round(t, 3) for t in lit_times],
        overhead_pct=round(overhead * 100, 2),
        max_overhead_pct=MAX_OVERHEAD * 100,
    )

    # Correctness always: telemetry reads clocks, it never touches the
    # numbers — results must be identical with it on and off
    # (JobResult equality excludes the non-semantic duration/cached).
    assert lit_report.results == dark_report.results
    # The event stream really was exercised: one phase + one finished
    # record per executed job, per instrumented round.
    records = list(read_events(events_path))
    finished = [r for r in records if r["event"] == "job_finished"]
    assert len(finished) == ROUNDS * len(jobs)

    if STRICT_TIMING:
        assert overhead <= MAX_OVERHEAD, (
            f"telemetry overhead {overhead * 100:.1f}% exceeds "
            f"{MAX_OVERHEAD * 100:.0f}% budget "
            f"(dark {dark_s:.2f}s vs instrumented {lit_s:.2f}s)"
        )


def test_event_unit_cost(tmp_path, bench_metrics):
    """Per-job telemetry constant on sub-millisecond analytic jobs."""
    assert telemetry_enabled(), "benchmark must start with telemetry on"

    def run_once(events):
        start = time.perf_counter()
        outcome = run_montecarlo(
            *MC_ARGS, seed=0,
            runner=CampaignRunner(backend=SerialBackend(events=events)),
        )
        return outcome, time.perf_counter() - start

    run_once(None)  # warm session

    dark_times, lit_times, dark_outcome, lit_outcome = _alternate(
        run_once, tmp_path / "mc-events.jsonl"
    )
    dark_s = statistics.median(dark_times)
    lit_s = statistics.median(lit_times)
    jobs = lit_outcome.campaign.total
    unit_cost_us = (lit_s - dark_s) / jobs * 1e6

    lines = [
        f"== bench_telemetry: per-job unit cost ({jobs} analytic Monte "
        f"Carlo jobs, median of {ROUNDS}) ==",
        f"  telemetry off:        {dark_s:7.3f}s",
        f"  metrics + events on:  {lit_s:7.3f}s",
        f"  per-job cost:         {unit_cost_us:7.1f} us "
        "(informational: phases + 2 event emits per job)",
    ]
    report_text = "\n".join(lines)
    print()
    print(report_text)
    _SESSION_REPORTS.append(report_text)
    bench_metrics(
        jobs=jobs, rounds=ROUNDS,
        dark_s=round(dark_s, 3), lit_s=round(lit_s, 3),
        unit_cost_us=round(unit_cost_us, 1),
    )

    # Identical estimates on and off — always asserted.
    assert [p.values for p in lit_outcome.results] == [
        p.values for p in dark_outcome.results
    ]
    if STRICT_TIMING:
        # Loose sanity bound only: two JSON lines + a handful of
        # histogram observes must stay well under a millisecond.
        assert unit_cost_us < 1_000, (
            f"per-job telemetry cost {unit_cost_us:.0f}us — emit path "
            "regressed by an order of magnitude"
        )
