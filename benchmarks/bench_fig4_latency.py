"""Fig. 4 — average latency vs injection rate for DeFT, MTR and RC.

Regenerates all four sub-figures: Uniform/Localized/Hotspot on the
4-chiplet baseline and Uniform on the 6-chiplet system. Prints the
latency table and ASCII chart per sub-figure and asserts the paper's
qualitative claims (DeFT lowest latency, baselines saturate first).
"""

import pytest

from repro.experiments import fig4

from conftest import assert_and_print


@pytest.mark.benchmark(group="fig4", min_rounds=1, max_time=1.0)
def test_fig4a_uniform_4_chiplets(benchmark, record_result):
    result = benchmark.pedantic(fig4.fig4a, rounds=1, iterations=1)
    assert_and_print(result, record_result)


@pytest.mark.benchmark(group="fig4", min_rounds=1, max_time=1.0)
def test_fig4b_localized_4_chiplets(benchmark, record_result):
    result = benchmark.pedantic(fig4.fig4b, rounds=1, iterations=1)
    assert_and_print(result, record_result)


@pytest.mark.benchmark(group="fig4", min_rounds=1, max_time=1.0)
def test_fig4c_hotspot_4_chiplets(benchmark, record_result):
    result = benchmark.pedantic(fig4.fig4c, rounds=1, iterations=1)
    assert_and_print(result, record_result)


@pytest.mark.benchmark(group="fig4", min_rounds=1, max_time=1.0)
def test_fig4d_uniform_6_chiplets(benchmark, record_result):
    result = benchmark.pedantic(fig4.fig4d, rounds=1, iterations=1)
    assert_and_print(result, record_result)
