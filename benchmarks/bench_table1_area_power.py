"""Table I — router area and power at 45 nm / 1 GHz.

Prints the four router estimates (absolute + normalized to MTR) next to
the paper's published values and asserts the <2% area / <1% power DeFT
overhead and the >10% RC boundary-router overhead.
"""

import pytest

from repro.experiments import table1
from repro.power.model import RouterParams, table1 as estimate_table1

from conftest import assert_and_print


@pytest.mark.benchmark(group="table1", min_rounds=1, max_time=1.0)
def test_table1_area_power(benchmark, record_result):
    result = benchmark.pedantic(table1.run, rounds=1, iterations=1)
    assert_and_print(result, record_result)


@pytest.mark.benchmark(group="table1-micro")
def test_model_evaluation_speed(benchmark):
    """The analytical model itself (used inside design-space loops)."""
    params = RouterParams()
    estimates = benchmark(estimate_table1, params)
    assert estimates["DeFT"].area_um2 > 0
