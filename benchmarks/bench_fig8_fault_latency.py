"""Fig. 8 — latency under VL faults for DeFT's VL-selection strategies.

DeFT (offline-optimized tables) vs DeFT-Dis (distance-based) vs DeFT-Ran
(random) under 12.5% (4 faulty directed channels) and 25% (8 faulty)
fault rates on the 4-chiplet system, including the paper's observation
that random selection is relatively better at 25% than at 12.5%.
"""

import pytest

from repro.experiments import fig8

from conftest import assert_and_print


@pytest.mark.benchmark(group="fig8", min_rounds=1, max_time=1.0)
def test_fig8_selection_strategies_under_faults(benchmark, record_result):
    results = benchmark.pedantic(fig8.run, rounds=1, iterations=1)
    assert len(results) == 2  # 12.5% and 25% fault rates
    for result in results:
        assert_and_print(result, record_result)
