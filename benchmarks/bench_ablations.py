"""Ablation studies on DeFT's design choices (DESIGN.md extensions).

* rho sweep on equation (6)'s distance/balance weight;
* traffic-aware offline optimization (Section IV-A's "further
  improvements" remark, Fig. 3(c) behaviour);
* online adaptive (run-time load-aware) VL selection under skewed load;
* vertical-link serialization factor ([18]).
"""

import pytest

from repro.experiments import ablations

from conftest import assert_and_print


@pytest.mark.benchmark(group="ablations", min_rounds=1, max_time=1.0)
def test_rho_sweep(benchmark, record_result):
    result = benchmark.pedantic(ablations.rho_sweep, rounds=1, iterations=1)
    assert_and_print(result, record_result)


@pytest.mark.benchmark(group="ablations", min_rounds=1, max_time=1.0)
def test_traffic_aware_tables(benchmark, record_result):
    result = benchmark.pedantic(ablations.traffic_aware_tables, rounds=1, iterations=1)
    assert_and_print(result, record_result)


@pytest.mark.benchmark(group="ablations", min_rounds=1, max_time=1.0)
def test_adaptive_online_selection(benchmark, record_result):
    result = benchmark.pedantic(ablations.adaptive_selection, rounds=1, iterations=1)
    assert_and_print(result, record_result)


@pytest.mark.benchmark(group="ablations", min_rounds=1, max_time=1.0)
def test_vl_serialization(benchmark, record_result):
    result = benchmark.pedantic(ablations.serialization_sweep, rounds=1, iterations=1)
    assert_and_print(result, record_result)


@pytest.mark.benchmark(group="ablations", min_rounds=1, max_time=1.0)
def test_wear_balance(benchmark, record_result):
    result = benchmark.pedantic(ablations.wear_balance, rounds=1, iterations=1)
    assert_and_print(result, record_result)
