"""Fig. 7 — reachability in the presence of VL faults.

Exact average and worst-case reachability for 1-8 faulty directed VL
channels on the 4- and 6-chiplet systems, per algorithm (DeFT flat at
100%, MTR tolerant of exactly one fault, RC of none). Also benchmarks the
exact DP evaluator itself (it replaces a 10.5M-pattern enumeration).
"""

import pytest

from repro.analysis.reachability import average_reachability, worst_reachability
from repro.experiments import fig7
from repro.routing.mtr import MtrRouting
from repro.topology.presets import baseline_4_chiplets

from conftest import assert_and_print


@pytest.mark.benchmark(group="fig7", min_rounds=1, max_time=1.0)
def test_fig7a_reachability_4_chiplets(benchmark, record_result):
    result = benchmark.pedantic(fig7.fig7a, rounds=1, iterations=1)
    assert_and_print(result, record_result)


@pytest.mark.benchmark(group="fig7", min_rounds=1, max_time=1.0)
def test_fig7b_reachability_6_chiplets(benchmark, record_result):
    result = benchmark.pedantic(fig7.fig7b, rounds=1, iterations=1)
    assert_and_print(result, record_result)


@pytest.mark.benchmark(group="fig7-micro")
def test_exact_dp_evaluator_speed(benchmark):
    """The exact evaluator at the paper's heaviest point (k=8, MTR)."""
    system = baseline_4_chiplets()
    algorithm = MtrRouting(system)

    def evaluate():
        return (
            average_reachability(system, algorithm, 8),
            worst_reachability(system, algorithm, 8),
        )

    avg, worst = benchmark(evaluate)
    assert worst <= avg <= 1.0
