"""Benchmark-suite configuration.

Each ``bench_*`` module regenerates one artifact of the paper (figure or
table), printing the same rows/series the paper reports and asserting the
qualitative shape checks of DESIGN.md §2. Numeric results are also dumped
to ``benchmarks/results/*.json`` so EXPERIMENTS.md can reference the last
measured values.

``REPRO_EXPERIMENT_SCALE`` (float, default 1.0) scales every simulated
window for quicker runs.
"""

from __future__ import annotations

import json
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def pytest_configure(config):
    RESULTS_DIR.mkdir(exist_ok=True)


@pytest.fixture()
def record_result():
    """Persist an experiment's data dict as JSON for EXPERIMENTS.md."""

    def _record(result):
        path = RESULTS_DIR / f"{result.experiment_id}.json"
        payload = {
            "experiment": result.experiment_id,
            "title": result.title,
            "data": result.data,
            "checks": [
                {"description": description, "passed": passed}
                for description, passed in result.checks
            ],
        }
        path.write_text(json.dumps(payload, indent=2, default=str))
        return path

    return _record


#: Reports collected during the session, replayed uncaptured at the end.
_SESSION_REPORTS: list[str] = []


def assert_and_print(result, record_result):
    """Shared epilogue: print the paper-style report, persist, assert."""
    from repro.experiments.common import format_report

    text = format_report(result)
    print()
    print(text)
    _SESSION_REPORTS.append(text)
    record_result(result)
    assert result.all_checks_pass, f"shape checks failed: {result.failed_checks()}"


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    """Replay the paper-style reports after the benchmark table.

    Ordinary ``print`` output is captured by pytest; the terminal summary
    is not, so the regenerated rows/series land in the console (and in
    ``bench_output.txt`` when tee'd) even without ``-s``.
    """
    if not _SESSION_REPORTS:
        return
    terminalreporter.section("regenerated paper artifacts")
    for text in _SESSION_REPORTS:
        terminalreporter.write_line("")
        for line in text.splitlines():
            terminalreporter.write_line(line)
