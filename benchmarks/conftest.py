"""Benchmark-suite configuration.

Each ``bench_*`` module regenerates one artifact of the paper (figure or
table), printing the same rows/series the paper reports and asserting the
qualitative shape checks of DESIGN.md §2. Numeric results are also dumped
to ``benchmarks/results/*.json`` so EXPERIMENTS.md can reference the last
measured values.

Every run additionally writes one machine-readable *trajectory* file per
bench module — ``benchmarks/BENCH_<module>.json`` (``bench_campaign.py``
-> ``BENCH_campaign.json``) — holding per-case wall-clock timings plus
any structured metrics a test records through the ``bench_metrics``
fixture (speedups, cache hit counts, ...). Committing or archiving these
files tracks the performance trajectory across PRs.

``REPRO_EXPERIMENT_SCALE`` (float, default 1.0) scales every simulated
window for quicker runs.
"""

from __future__ import annotations

import json
import pathlib
import time

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Per-module performance trajectory: module short name ->
#: {"cases": {test -> outcome/duration}, "metrics": {test -> recorded dict}}.
_TRAJECTORY: dict[str, dict[str, dict]] = {}


def pytest_configure(config):
    RESULTS_DIR.mkdir(exist_ok=True)


def _module_bucket(nodeid: str) -> dict[str, dict]:
    """The trajectory bucket for a test's bench module."""
    stem = pathlib.Path(nodeid.split("::", 1)[0]).stem
    name = stem[len("bench_"):] if stem.startswith("bench_") else stem
    return _TRAJECTORY.setdefault(name, {"cases": {}, "metrics": {}})


def _case_name(nodeid: str) -> str:
    return nodeid.split("::", 1)[-1]


@pytest.fixture()
def record_result():
    """Persist an experiment's data dict as JSON for EXPERIMENTS.md."""

    def _record(result):
        path = RESULTS_DIR / f"{result.experiment_id}.json"
        payload = {
            "experiment": result.experiment_id,
            "title": result.title,
            "data": result.data,
            "checks": [
                {"description": description, "passed": passed}
                for description, passed in result.checks
            ],
        }
        path.write_text(json.dumps(payload, indent=2, default=str))
        return path

    return _record


@pytest.fixture()
def bench_metrics(request):
    """Record structured per-test metrics into the module's BENCH_*.json.

    Call with keyword arguments (``bench_metrics(serial_s=1.2,
    speedup=3.4)``); repeated calls merge. Values must be JSON scalars
    or plain containers of them.
    """
    bucket = _module_bucket(request.node.nodeid)
    case = _case_name(request.node.nodeid)

    def _record(**values):
        bucket["metrics"].setdefault(case, {}).update(values)

    return _record


def _current_scale() -> float:
    """The scale the experiments actually ran at (clamping included)."""
    from repro.experiments.common import effective_scale

    return effective_scale(None)


def pytest_runtest_logreport(report):
    """Capture every bench case's wall-clock into the trajectory.

    The scale is stamped per case (not just per file): merged files can
    mix runs recorded at different ``REPRO_EXPERIMENT_SCALE`` values, and
    a timing is only comparable across PRs at the same scale.
    """
    if report.when != "call":
        return
    bucket = _module_bucket(report.nodeid)
    bucket["cases"][_case_name(report.nodeid)] = {
        "outcome": report.outcome,
        "duration_s": round(report.duration, 3),
        "experiment_scale": _current_scale(),
    }


def pytest_sessionfinish(session, exitstatus):
    """Write one BENCH_<module>.json trajectory file per bench module run.

    Merged into any existing file rather than overwritten: a partial run
    (``-k`` selection, ``-x`` abort) updates only the cases it executed,
    so the committed trajectory never silently loses data points.
    """
    for name, bucket in _TRAJECTORY.items():
        path = pathlib.Path(__file__).parent / f"BENCH_{name}.json"
        cases: dict = {}
        metrics: dict = {}
        try:
            previous = json.loads(path.read_text())
            cases.update(previous.get("cases", {}))
            metrics.update(previous.get("metrics", {}))
        except (OSError, json.JSONDecodeError):
            pass
        cases.update(bucket["cases"])
        for case, values in bucket["metrics"].items():
            metrics.setdefault(case, {}).update(values)
        payload = {
            "module": f"bench_{name}",
            "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime()) + "Z",
            "cases": cases,
            "metrics": metrics,
        }
        path.write_text(json.dumps(payload, indent=2, sort_keys=True))


#: Reports collected during the session, replayed uncaptured at the end.
_SESSION_REPORTS: list[str] = []


def assert_and_print(result, record_result):
    """Shared epilogue: print the paper-style report, persist, assert."""
    from repro.experiments.common import format_report

    text = format_report(result)
    print()
    print(text)
    _SESSION_REPORTS.append(text)
    record_result(result)
    assert result.all_checks_pass, f"shape checks failed: {result.failed_checks()}"


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    """Replay the paper-style reports after the benchmark table.

    Ordinary ``print`` output is captured by pytest; the terminal summary
    is not, so the regenerated rows/series land in the console (and in
    ``bench_output.txt`` when tee'd) even without ``-s``.
    """
    if not _SESSION_REPORTS:
        return
    terminalreporter.section("regenerated paper artifacts")
    for text in _SESSION_REPORTS:
        terminalreporter.write_line("")
        for line in text.splitlines():
            terminalreporter.write_line(line)
