"""Ad-hoc cross-kernel digest check (dev aid, superseded by the fuzz suite)."""

import sys

import random

from repro.config import SimulationConfig
from repro.fault.model import random_fault_state
from repro.network.simulator import Simulator
from repro.routing.deft import DeftRouting
from repro.routing.mtr import MtrRouting
from repro.routing.naive import NaiveRouting
from repro.routing.rc import RcRouting
from repro.topology.presets import baseline_4_chiplets, baseline_6_chiplets
from repro.traffic.synthetic import UniformTraffic


def check(name, system, algo_cls, rate, seed, cycles, k=0, vl_ser=1):
    cfg = SimulationConfig(
        warmup_cycles=50,
        measure_cycles=cycles,
        drain_cycles=2000,
        watchdog_cycles=2000,
        seed=seed,
        vl_serialization=vl_ser,
    )
    sims = []
    for kernel in ("reference", "vector"):
        algo = algo_cls(system)
        if k:
            algo.set_fault_state(
                random_fault_state(system, k, random.Random(seed + 1))
            )
        traffic = UniformTraffic(system, rate, seed=seed)
        sims.append(Simulator(system, algo, traffic, config=cfg, kernel=kernel))
    ref, vec = sims
    assert vec.kernel_name == "vector", (name, vec.kernel_name, vec.kernel_fallback_reason)
    for c in range(cycles):
        ref._step(True)
        vec._step(True)
        dr, dv = ref.state_digest(), vec.state_digest()
        if dr != dv:
            print(f"FAIL {name} at cycle {c}")
            sr, sv = ref.kernel.snapshot(), vec.kernel.snapshot()
            for i, (a, b) in enumerate(zip(sr, sv)):
                if a != b:
                    print(f"  component {i} differs")
                    if isinstance(a, tuple):
                        for x, y in zip(a, b):
                            if x != y:
                                print(f"    ref: {x}")
                                print(f"    vec: {y}")
                                break
                    else:
                        print(f"    ref: {a}")
                        print(f"    vec: {b}")
            return False
    print(f"ok {name}")
    return True


def main():
    s4 = baseline_4_chiplets()
    s6 = baseline_6_chiplets()
    ok = True
    ok &= check("deft-s4", s4, DeftRouting, 0.01, 3, 400)
    ok &= check("deft-s4-faults", s4, DeftRouting, 0.01, 5, 400, k=4)
    ok &= check("deft-s6-vlser", s6, DeftRouting, 0.008, 9, 300, k=2, vl_ser=2)
    ok &= check("mtr-s4", s4, MtrRouting, 0.01, 11, 400, k=3)
    ok &= check("rc-s4", s4, RcRouting, 0.008, 13, 400)
    ok &= check("naive-s4", s4, NaiveRouting, 0.01, 17, 300)
    sys.exit(0 if ok else 1)


if __name__ == "__main__":
    main()
