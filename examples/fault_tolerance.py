#!/usr/bin/env python
"""Fault tolerance: how DeFT, MTR and RC react to dying vertical links.

Progressively kills VL channels on the baseline system and, for each
algorithm, reports (a) the exact network reachability and (b) a short
simulation showing delivered ratio and latency. Also prints DeFT's
re-optimized VL-selection map (the Fig. 3 behaviour) before and after a
fault.

Run:  python examples/fault_tolerance.py
"""

from repro import (
    DirectedVL,
    FaultState,
    SimulationConfig,
    Simulator,
    UniformTraffic,
    VLDirection,
    baseline_4_chiplets,
    make_algorithm,
)
from repro.analysis.reachability import reachability_of_state
from repro.core.tables import build_selection_tables


def selection_map(system, chiplet: int, faulty_locals: frozenset) -> str:
    """Render the optimized selection of one chiplet as a Fig. 3-style map."""
    tables = build_selection_tables(system)
    selection = tables[chiplet].lookup(faulty_locals)
    spec = system.spec.chiplets[chiplet]
    links = system.vls_of_chiplet(chiplet)
    lines = []
    for y in range(spec.height):
        row = []
        for x in range(spec.width):
            index = y * spec.width + x
            vl_here = any(l.cx == x and l.cy == y for l in links)
            row.append(f"{selection[index]}{'*' if vl_here else ' '}")
        lines.append("    " + " ".join(row))
    return "\n".join(lines)


def main() -> None:
    system = baseline_4_chiplets()
    config = SimulationConfig(warmup_cycles=300, measure_cycles=1_500)

    print("DeFT's offline-optimized VL selection for chiplet 0 (fault-free):")
    print(selection_map(system, 0, frozenset()))
    print("\n...and after losing VL 0 (note the rebalanced 5/5/6 split,")
    print("   not the naive closest-VL 8/4/4 of Fig. 3(b)):")
    print(selection_map(system, 0, frozenset({0})))

    # Grow a fault pattern: one, then four, then eight directed channels.
    patterns = {
        "1 faulty VL (3.1%)": [DirectedVL(0, VLDirection.DOWN)],
        "4 faulty VLs (12.5%)": [
            DirectedVL(vl, VLDirection.DOWN) for vl in (0, 5, 10, 15)
        ],
        "8 faulty VLs (25%)": [
            DirectedVL(vl, VLDirection.DOWN) for vl in (0, 5, 10, 15)
        ] + [DirectedVL(vl, VLDirection.UP) for vl in (2, 7, 8, 13)],
    }

    for label, faults in patterns.items():
        state = FaultState(system, faults)
        print(f"\n=== {label} ===")
        print(f"{'algorithm':>8s} {'reachability':>13s} {'delivered':>10s} {'latency':>9s}")
        for name in ("deft", "mtr", "rc"):
            algorithm = make_algorithm(name, system)
            reach = reachability_of_state(system, algorithm, state)
            algorithm.set_fault_state(state)
            traffic = UniformTraffic(system, rate=0.005, seed=4)
            report = Simulator(system, algorithm, traffic, config).run()
            print(
                f"{name:>8s} {reach * 100:12.2f}% "
                f"{report.delivered_ratio * 100:9.1f}% "
                f"{report.average_latency:8.1f}c"
            )
    print("\nDeFT keeps 100% reachability under every pattern; the")
    print("baselines drop packets whose statically bound VLs died.")


if __name__ == "__main__":
    main()
