#!/usr/bin/env python
"""Quickstart: simulate DeFT on the paper's baseline 2.5D system.

Builds the 4-chiplet / 64-core / active-interposer system of Fig. 1, runs
the DeFT routing algorithm under uniform traffic, and prints the latency
and VC-utilization summary.

Run:  python examples/quickstart.py
"""

from repro import (
    DeftRouting,
    SimulationConfig,
    Simulator,
    UniformTraffic,
    baseline_4_chiplets,
)


def main() -> None:
    # 1. The baseline system: 4 CPU chiplets (4x4 mesh each) on an 8x8
    #    active interposer, 4 border VLs per chiplet, 4 edge DRAMs.
    system = baseline_4_chiplets()
    print(system.spec.describe())

    # 2. DeFT with its offline-optimized VL-selection tables (built on
    #    construction: Algorithm 2 for all 15 per-chiplet fault scenarios).
    algorithm = DeftRouting(system)

    # 3. Uniform random traffic at 0.006 packets/cycle/core.
    traffic = UniformTraffic(system, rate=0.006, seed=1)

    # 4. Simulate: 600 warmup + 3000 measured cycles, generous drain.
    config = SimulationConfig(warmup_cycles=600, measure_cycles=3_000)
    report = Simulator(system, algorithm, traffic, config).run()

    print()
    print(report.summary())
    print()
    print(f"average latency : {report.average_latency:.2f} cycles")
    print(f"delivered ratio : {report.delivered_ratio * 100:.1f}%")
    util = report.stats.vc_utilization_report()["interposer"]
    print(f"interposer VCs  : {util[0] * 100:.1f}% / {util[1] * 100:.1f}% "
          "(DeFT's balanced virtual networks)")


if __name__ == "__main__":
    main()
