#!/usr/bin/env python
"""Deadlock demonstration: the Fig. 1 motivation, made executable.

Two complementary views of why 2.5D chiplet networks deadlock without
protection, and why DeFT does not:

1. **Static** — build the channel dependency graph (CDG) of an
   unprotected nearest-VL routing (each chiplet internally deadlock-free
   XY) and exhibit a concrete cyclic dependency spanning chiplets and
   interposer. DeFT's CDG over (channel, virtual-network) pairs is
   acyclic — the executable version of the paper's Rules 1-3 proof.
2. **Dynamic** — run both configurations under heavy uniform traffic;
   the simulator's no-progress watchdog catches the unprotected network
   wedged, while DeFT keeps delivering.

Run:  python examples/deadlock_demo.py
"""

from repro import DeftRouting, SimulationConfig, Simulator, UniformTraffic, baseline_4_chiplets
from repro.analysis.cdg import build_cdg
from repro.routing.naive import NaiveRouting


def describe_channel(system, channel) -> str:
    (link, vn) = channel
    if isinstance(link[0], str):
        return f"[{link[0]} @router {link[1]}]"
    a, b = system.routers[link[0]], system.routers[link[1]]

    def where(r):
        return "interposer" if r.is_interposer else f"chiplet {r.layer}"

    kind = "vertical" if a.layer != b.layer else "mesh"
    return f"{kind} {where(a)}({a.x},{a.y})->{where(b)}({b.x},{b.y}) VN{vn}"


def main() -> None:
    system = baseline_4_chiplets()

    print("=== Static analysis: channel dependency graphs ===")
    naive_report = build_cdg(system, NaiveRouting(system))
    print(f"unprotected routing: acyclic={naive_report.is_acyclic}")
    cycle = naive_report.cycle()
    print(f"  found a {len(cycle)}-channel dependency cycle; first hops:")
    for channel in cycle[:6]:
        print(f"    {describe_channel(system, channel)}")
    print("    ... (the cycle crosses chiplets through the interposer,")
    print("         exactly the buffer-wait loop sketched in Fig. 1)")

    deft_report = build_cdg(system, DeftRouting(system))
    print(f"\nDeFT: acyclic={deft_report.is_acyclic} over "
          f"{deft_report.graph.number_of_nodes()} (channel, VN) nodes - "
          "Rules 1-3 leave no cycle.")

    print("\n=== Dynamic confirmation: heavy load until wedged ===")
    config = SimulationConfig(
        warmup_cycles=0, measure_cycles=4_000, drain_cycles=0,
        num_vcs=1, watchdog_cycles=1_500,
    )
    traffic = UniformTraffic(system, rate=0.03, seed=1)
    report = Simulator(system, NaiveRouting(system), traffic, config).run()
    print(f"unprotected, 1 VC, rate 0.03: deadlocked={report.deadlocked} "
          f"after delivering {report.stats.packets_delivered} packets")

    config = config.replace(num_vcs=2)
    traffic = UniformTraffic(system, rate=0.03, seed=1)
    report = Simulator(system, DeftRouting(system), traffic, config).run()
    print(f"DeFT, 2 VCs, same load:       deadlocked={report.deadlocked}, "
          f"delivered {report.stats.packets_delivered} packets")


if __name__ == "__main__":
    main()
