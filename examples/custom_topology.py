#!/usr/bin/env python
"""Custom 2.5D topologies: beyond the paper's presets.

DeFT "can be employed in any chiplet system" (Section II-A). This example
builds a heterogeneous 3x1 system with wide 6x4 chiplets, a custom VL
placement, and DRAMs along the top edge; runs the offline VL-selection
optimization; verifies deadlock freedom with the CDG analysis; and
simulates transpose traffic.

Run:  python examples/custom_topology.py
"""

from repro import DeftRouting, SimulationConfig, Simulator, build_system
from repro.analysis.cdg import build_cdg
from repro.analysis.reachability import average_reachability, worst_reachability
from repro.topology.spec import ChipletSpec, SystemSpec
from repro.traffic.synthetic import TransposeTraffic


def main() -> None:
    # Three 6x4 chiplets side by side; 4 VLs each, placed asymmetrically
    # (two on the north edge, two in the south corners).
    vls = ((2, 0), (3, 0), (0, 3), (5, 3))
    chiplets = tuple(
        ChipletSpec(origin=(col * 6, 0), width=6, height=4, vl_positions=vls)
        for col in range(3)
    )
    spec = SystemSpec(
        chiplets=chiplets,
        interposer_width=18,
        interposer_height=4,
        dram_positions=((0, 0), (8, 0), (17, 0)),
        name="custom-3x-wide",
    )
    system = build_system(spec)
    print(system.spec.describe())

    # Offline optimization happens inside DeftRouting's constructor: the
    # composition optimizer handles the 24-router x up-to-4-VL instances.
    algorithm = DeftRouting(system)
    table = algorithm.tables[1]
    print(f"selection table entries per chiplet: {table.num_entries} "
          "(C(4,1)+C(4,2)+C(4,3) faulty scenarios + fault-free)")

    # Deadlock freedom is a property of the rules, not the floorplan.
    report = build_cdg(system, algorithm)
    print(f"CDG acyclic on the custom floorplan: {report.is_acyclic}")

    # Reachability under faults, exact.
    for k in (2, 6):
        avg = average_reachability(system, algorithm, k)
        worst = worst_reachability(system, algorithm, k)
        print(f"reachability with {k} faulty VLs: avg {avg * 100:.1f}%, "
              f"worst {worst * 100:.1f}%")

    traffic = TransposeTraffic(system, rate=0.005, seed=2)
    config = SimulationConfig(warmup_cycles=400, measure_cycles=2_000)
    result = Simulator(system, algorithm, traffic, config).run()
    print()
    print(result.summary())


if __name__ == "__main__":
    main()
