#!/usr/bin/env python
"""Multi-application CMP workloads (the Fig. 6(b) scenario).

Co-runs two PARSEC-like applications on 32 cores each (chiplets 0-1 vs
chiplets 2-3) with shared L2 banks and coherence directories on the
interposer, and compares DeFT against MTR and RC as the combined load
grows — the scenario where the paper reports DeFT's largest gains.

Run:  python examples/multi_app_workloads.py
"""

from repro import SimulationConfig, Simulator, baseline_4_chiplets, make_algorithm
from repro.traffic.parsec import APP_PROFILES, app_pair_load, two_app_workload


def main() -> None:
    system = baseline_4_chiplets()
    config = SimulationConfig(warmup_cycles=400, measure_cycles=2_000)

    pairs = [("FA", "FL"), ("BO", "CA"), ("ST", "FL")]  # light / mid / heavy
    print(f"{'pair':>8s} {'load':>7s} {'DeFT':>8s} {'MTR':>8s} {'RC':>8s} "
          f"{'vs MTR':>8s} {'vs RC':>8s}")
    for app_a, app_b in pairs:
        latencies = {}
        for name in ("deft", "mtr", "rc"):
            algorithm = make_algorithm(name, system)
            traffic = two_app_workload(system, app_a, app_b, seed=3, load_scale=0.85)
            report = Simulator(system, algorithm, traffic, config).run()
            latencies[name] = report.average_latency
        vs_mtr = (latencies["mtr"] - latencies["deft"]) / latencies["mtr"] * 100
        vs_rc = (latencies["rc"] - latencies["deft"]) / latencies["rc"] * 100
        print(
            f"{app_a + '+' + app_b:>8s} {app_pair_load(app_a, app_b):7.3f} "
            f"{latencies['deft']:7.1f}c {latencies['mtr']:7.1f}c "
            f"{latencies['rc']:7.1f}c {vs_mtr:7.1f}% {vs_rc:7.1f}%"
        )

    print("\nApplication profiles (total network load, locality, L2 share):")
    for code, profile in sorted(APP_PROFILES.items()):
        print(
            f"  {code} {profile.name:<14s} load={profile.total_load:.3f} "
            f"local={profile.local_fraction:.0%} l2={profile.l2_fraction:.0%} "
            f"burst={profile.burstiness:.1f}"
        )
    print("\nDeFT's advantage grows with load: balanced VNs + balanced VL")
    print("selection postpone saturation under shared-L2 contention.")


if __name__ == "__main__":
    main()
