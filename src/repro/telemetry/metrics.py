"""Dependency-free metrics core: counters, gauges, histograms, spans.

The instrumentation layer every subsystem records into: the executor
times its job phases, the simulator counts cycles and flit-hops, the
result cache counts hits and misses. One :class:`MetricsRegistry` lives
per process (:func:`get_registry`) — exactly the scope of a worker — and
is rendered on demand as a JSON snapshot (``deft status`` aggregation)
or Prometheus text exposition (``deft worker --metrics-port``).

Design constraints, in order:

* **near-zero overhead when disabled** — a disabled registry hands out
  shared no-op instruments and no-op spans, so instrumented hot paths
  cost one attribute check;
* **no dependencies** — plain counters and fixed-bucket histograms, no
  client library;
* **bounded memory** — histograms hold per-bucket counts, never raw
  observations, so a million-job campaign's latency histogram is a few
  dozen integers.

Disable globally with ``DEFT_TELEMETRY=0`` (read once at registry
creation) or :func:`set_enabled`. Instruments obtained while disabled
stay no-ops — resolve instruments at use time (as all in-tree callers
do) if you toggle at runtime.
"""

from __future__ import annotations

import math
import os
import time
from typing import Iterable, Sequence

#: Environment switch: ``DEFT_TELEMETRY=0`` starts the process-global
#: registry disabled (no-op instruments everywhere).
TELEMETRY_ENV = "DEFT_TELEMETRY"

#: Default histogram buckets (seconds): spans microsecond-scale cache
#: probes up to multi-minute simulation jobs, Prometheus-style.
DEFAULT_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0,
)


def _env_enabled() -> bool:
    return os.environ.get(TELEMETRY_ENV, "1").strip().lower() not in (
        "0", "false", "no", "off",
    )


def percentile(values: Sequence[float], q: float) -> float:
    """Exact q-quantile (0..1) of a sequence, linearly interpolated.

    Shared by every aggregation that has raw samples in hand (campaign
    report summaries, ``deft status`` latency lines). NaN for empty
    input — the caller decides how to render "no data".
    """
    if not values:
        return math.nan
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    position = q * (len(ordered) - 1)
    low = int(position)
    frac = position - low
    if low + 1 >= len(ordered):
        return float(ordered[-1])
    return float(ordered[low] * (1.0 - frac) + ordered[low + 1] * frac)


class Counter:
    """Monotonic counter."""

    __slots__ = ("name", "help", "_value")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """Point-in-time value (queue depth, worker count, progress)."""

    __slots__ = ("name", "help", "_value")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._value = 0.0

    def set(self, value: float) -> None:
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Fixed-bucket histogram with percentile estimation.

    Observations land in cumulative-style buckets (``<= bound``); the
    percentile estimate linearly interpolates inside the winning bucket,
    which is exactly the information loss Prometheus histograms accept.
    Memory is O(buckets) regardless of observation count.
    """

    __slots__ = ("name", "help", "bounds", "bucket_counts", "count", "sum")

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ):
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(not math.isfinite(b) for b in bounds):
            raise ValueError("bucket bounds must be finite (+Inf is implicit)")
        self.name = name
        self.help = help
        self.bounds = bounds
        # One count per finite bound plus the implicit +Inf overflow.
        self.bucket_counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[index] += 1
                return
        self.bucket_counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else math.nan

    def quantile(self, q: float) -> float:
        """Estimated q-quantile from bucket counts (NaN when empty).

        Values in the overflow bucket are reported as the largest finite
        bound — the honest answer a fixed-bucket histogram can give.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return math.nan
        rank = q * self.count
        cumulative = 0
        for index, bound in enumerate(self.bounds):
            in_bucket = self.bucket_counts[index]
            if cumulative + in_bucket >= rank:
                lower = self.bounds[index - 1] if index else 0.0
                if in_bucket == 0:
                    return bound
                frac = (rank - cumulative) / in_bucket
                return lower + (bound - lower) * min(1.0, max(0.0, frac))
            cumulative += in_bucket
        return self.bounds[-1]

    @property
    def p50(self) -> float:
        return self.quantile(0.50)

    @property
    def p95(self) -> float:
        return self.quantile(0.95)


class Span:
    """Context manager timing one block into a histogram."""

    __slots__ = ("_histogram", "_start", "elapsed_s")

    def __init__(self, histogram: Histogram):
        self._histogram = histogram
        self._start = 0.0
        self.elapsed_s = 0.0

    def __enter__(self) -> "Span":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self.elapsed_s = time.perf_counter() - self._start
        self._histogram.observe(self.elapsed_s)


class _NullInstrument:
    """Shared no-op counter/gauge/histogram for disabled registries."""

    __slots__ = ()
    name = ""
    help = ""
    value = 0.0
    count = 0
    sum = 0.0
    mean = math.nan
    p50 = math.nan
    p95 = math.nan
    bounds: tuple[float, ...] = ()
    bucket_counts: list[int] = []

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def quantile(self, q: float) -> float:
        return math.nan


class _NullSpan:
    """No-op span: not even a clock read."""

    __slots__ = ()
    elapsed_s = 0.0

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        pass


NULL_INSTRUMENT = _NullInstrument()
NULL_SPAN = _NullSpan()


def _format_value(value: float) -> str:
    """Prometheus sample value: integral floats without the '.0'."""
    if isinstance(value, float) and value.is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


class MetricsRegistry:
    """Named instruments of one process, creatable and renderable.

    ``counter``/``gauge``/``histogram`` create on first use and return
    the existing instrument afterwards (re-registering a name as a
    different kind is an error). A disabled registry returns shared
    no-op instruments and creates nothing.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}

    def enable(self, enabled: bool = True) -> None:
        self.enabled = enabled

    def _get(self, name: str, kind, **kwargs):
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = kind(name, **kwargs)
            self._instruments[name] = instrument
        elif not isinstance(instrument, kind):
            raise ValueError(
                f"metric {name!r} is a {type(instrument).__name__}, "
                f"not a {kind.__name__}"
            )
        return instrument

    def counter(self, name: str, help: str = "") -> Counter:
        if not self.enabled:
            return NULL_INSTRUMENT  # type: ignore[return-value]
        return self._get(name, Counter, help=help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        if not self.enabled:
            return NULL_INSTRUMENT  # type: ignore[return-value]
        return self._get(name, Gauge, help=help)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        if not self.enabled:
            return NULL_INSTRUMENT  # type: ignore[return-value]
        return self._get(name, Histogram, help=help, buckets=buckets)

    def span(self, name: str, help: str = "") -> Span | _NullSpan:
        """A context manager timing its block into histogram ``name``."""
        if not self.enabled:
            return NULL_SPAN
        return Span(self.histogram(name, help=help))

    def clear(self) -> None:
        self._instruments.clear()

    def __len__(self) -> int:
        return len(self._instruments)

    # -- export ------------------------------------------------------------

    def snapshot(self) -> dict[str, dict]:
        """JSON-compatible dump of every instrument (NaN-free)."""
        out: dict[str, dict] = {}
        for name in sorted(self._instruments):
            instrument = self._instruments[name]
            if isinstance(instrument, Counter):
                out[name] = {"type": "counter", "value": instrument.value}
            elif isinstance(instrument, Gauge):
                out[name] = {"type": "gauge", "value": instrument.value}
            else:
                p50, p95 = instrument.p50, instrument.p95
                out[name] = {
                    "type": "histogram",
                    "count": instrument.count,
                    "sum": instrument.sum,
                    "p50": None if math.isnan(p50) else p50,
                    "p95": None if math.isnan(p95) else p95,
                }
        return out

    def render_prom(self) -> str:
        """Prometheus text exposition (format 0.0.4) of the registry."""
        lines: list[str] = []
        for name in sorted(self._instruments):
            instrument = self._instruments[name]
            if instrument.help:
                lines.append(f"# HELP {name} {instrument.help}")
            if isinstance(instrument, Counter):
                lines.append(f"# TYPE {name} counter")
                lines.append(f"{name} {_format_value(instrument.value)}")
            elif isinstance(instrument, Gauge):
                lines.append(f"# TYPE {name} gauge")
                lines.append(f"{name} {_format_value(instrument.value)}")
            else:
                lines.append(f"# TYPE {name} histogram")
                cumulative = 0
                for bound, count in zip(
                    instrument.bounds, instrument.bucket_counts
                ):
                    cumulative += count
                    lines.append(
                        f'{name}_bucket{{le="{_format_value(float(bound))}"}} '
                        f"{cumulative}"
                    )
                lines.append(
                    f'{name}_bucket{{le="+Inf"}} {instrument.count}'
                )
                lines.append(f"{name}_sum {_format_value(instrument.sum)}")
                lines.append(f"{name}_count {instrument.count}")
        return "\n".join(lines) + ("\n" if lines else "")


#: The process-wide registry; one per worker, created on first use.
_PROCESS_REGISTRY: MetricsRegistry | None = None


def get_registry() -> MetricsRegistry:
    """The calling process's registry (lazily created, env-gated)."""
    global _PROCESS_REGISTRY
    if _PROCESS_REGISTRY is None:
        _PROCESS_REGISTRY = MetricsRegistry(enabled=_env_enabled())
    return _PROCESS_REGISTRY


def set_enabled(enabled: bool) -> None:
    """Flip the process registry on or off (benchmarks, tests)."""
    get_registry().enable(enabled)


def telemetry_enabled() -> bool:
    """The single switch events and metrics share."""
    return get_registry().enabled


def reset_registry() -> None:
    """Discard the process registry (tests)."""
    global _PROCESS_REGISTRY
    _PROCESS_REGISTRY = None
