"""The spool ``manifest/`` area: campaign descriptors + event streams.

A spool is deliberately dumb — jobs in, results out — which means no
single process knows what "the campaign" looks like once the enqueuer
exits. The manifest area fixes that. When a backend announces a
campaign it writes a descriptor under ``manifest/campaigns/`` listing
the campaign's name, shard coordinates, and the full set of job keys;
every participating process appends its events under
``manifest/events/``. Together they are sufficient to reconstruct live
fleet state (``deft status``) from the filesystem alone.

Layout under the spool root::

    manifest/
      campaigns/<id>.json      one per announced campaign (idempotent)
      events/<source>.jsonl    one per emitting process

The campaign id is a digest of the name plus the sorted key set, so
re-announcing the same campaign (a retried enqueuer, an adaptive
refinement loop re-running an identical round) overwrites its own
descriptor instead of accumulating duplicates.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import time
from pathlib import Path
from typing import TYPE_CHECKING, Iterator

from .events import (
    NULL_EVENTS,
    EventTailer,
    EventWriter,
    NullEventWriter,
    _SEGMENT_RE,
    read_events,
)
from .metrics import telemetry_enabled

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..runner.spec import Campaign

MANIFEST_DIR = "manifest"

#: Sharded campaigns are named ``<base>#shard-I-of-N`` by Campaign.shard().
_SHARD_RE = re.compile(r"^(?P<base>.*)#shard-(?P<index>\d+)-of-(?P<count>\d+)$")


def manifest_root(spool_root: str | Path) -> Path:
    return Path(spool_root) / MANIFEST_DIR


def campaigns_dir(spool_root: str | Path) -> Path:
    return manifest_root(spool_root) / "campaigns"


def events_dir(spool_root: str | Path) -> Path:
    return manifest_root(spool_root) / "events"


def ensure_manifest(spool_root: str | Path) -> None:
    campaigns_dir(spool_root).mkdir(parents=True, exist_ok=True)
    events_dir(spool_root).mkdir(parents=True, exist_ok=True)


def _sanitize(name: str) -> str:
    return re.sub(r"[^A-Za-z0-9._-]+", "_", name) or "anonymous"


def event_writer(spool_root: str | Path, source: str) -> EventWriter | NullEventWriter:
    """An event writer for ``source``, or the no-op when telemetry is off."""
    if not telemetry_enabled():
        return NULL_EVENTS
    return EventWriter(
        events_dir(spool_root) / f"{_sanitize(source)}.jsonl", source
    )


def campaign_id(name: str, keys: list[str]) -> str:
    digest = hashlib.sha256()
    digest.update(name.encode("utf-8"))
    for key in sorted(keys):
        digest.update(key.encode("utf-8"))
    return digest.hexdigest()[:12]


def parse_shard(name: str) -> dict | None:
    """Shard coordinates baked into a campaign name, if any.

    ``Campaign.shard`` renames shards ``<base>#shard-I-of-N``; the
    manifest surfaces that so ``deft status`` can group per-shard
    progress under the parent campaign.
    """
    match = _SHARD_RE.match(name)
    if match is None:
        return None
    return {
        "base": match.group("base"),
        "index": int(match.group("index")),
        "count": int(match.group("count")),
    }


def write_campaign_manifest(
    spool_root: str | Path,
    campaign: "Campaign",
    source: str = "",
) -> Path:
    """Persist a campaign descriptor; returns its path.

    The descriptor lists every *unique* job key (the spool dedups on
    enqueue, so progress accounting must too). Written atomically via
    tmp+rename so a concurrent ``deft status`` never reads a torn file.
    """
    ensure_manifest(spool_root)
    keys = sorted({job.key() for job in campaign.jobs})
    payload = {
        "campaign": campaign.name,
        "id": campaign_id(campaign.name, keys),
        "total": len(keys),
        "keys": keys,
        "shard": parse_shard(campaign.name),
        "enqueued_at": time.time(),
        "source": source,
    }
    path = campaigns_dir(spool_root) / f"{payload['id']}.json"
    tmp = path.with_suffix(".tmp")
    tmp.write_text(json.dumps(payload, indent=2, sort_keys=True))
    os.replace(tmp, path)
    return path


def load_campaign_manifests(spool_root: str | Path) -> list[dict]:
    """All campaign descriptors in the spool, oldest-enqueued first."""
    directory = campaigns_dir(spool_root)
    if not directory.is_dir():
        return []
    manifests = []
    for path in sorted(directory.glob("*.json")):
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            continue
        if isinstance(payload, dict) and "keys" in payload:
            manifests.append(payload)
    manifests.sort(key=lambda m: m.get("enqueued_at", 0.0))
    return manifests


def event_streams(spool_root: str | Path) -> list[Path]:
    """Head paths of every source's event stream, one per source.

    Rotated segments (``<stem>.<n>.jsonl``) are folded into their base
    stream rather than listed as streams of their own, so each returned
    path covers a whole source when handed to segment-aware readers
    (:func:`repro.telemetry.events.read_events`, :class:`EventTailer`).
    The head file itself may not exist (a source that rotated and went
    quiet) — the readers handle that.
    """
    directory = events_dir(spool_root)
    if not directory.is_dir():
        return []
    names = {path.name for path in directory.glob("*.jsonl")}
    bases = set()
    for name in names:
        match = _SEGMENT_RE.match(name)
        if match and (match.group("stem") + ".jsonl") in names:
            continue
        if match:
            name = match.group("stem") + ".jsonl"
        bases.add(name)
    return [directory / name for name in sorted(bases)]


def read_all_events(spool_root: str | Path) -> Iterator[dict]:
    """Merge every source's event stream, ordered by timestamp."""
    records: list[dict] = []
    for path in event_streams(spool_root):
        records.extend(read_events(path))
    records.sort(key=lambda r: r.get("ts", 0.0))
    return iter(records)


class SpoolEventTailer:
    """Incremental merged tail of every event stream in a spool.

    Wraps one :class:`EventTailer` per source and merges each round of
    new records by timestamp. New sources appearing after construction
    (a worker joining the fleet) are picked up on the next poll and
    replayed from their beginning — they are new, so their history *is*
    news. With ``replay=False`` the streams that already exist start at
    their current end: only events emitted after attachment flow.
    """

    def __init__(self, spool_root: str | Path, replay: bool = True):
        self.spool_root = Path(spool_root)
        self._tailers: dict[str, EventTailer] = {}
        if not replay:
            for path in event_streams(spool_root):
                self._tailers[path.name] = EventTailer(path, replay=False)

    def poll(self) -> list[dict]:
        """Records appended since the previous poll, ordered by ts."""
        records: list[dict] = []
        for path in event_streams(self.spool_root):
            tailer = self._tailers.get(path.name)
            if tailer is None:
                tailer = self._tailers[path.name] = EventTailer(path)
            records.extend(tailer.poll())
        records.sort(key=lambda r: r.get("ts", 0.0))
        return records
