"""Fleet status aggregation: the engine behind ``deft status``.

:func:`fleet_status` reconstructs the live state of a spool campaign
from the filesystem alone — campaign manifests, per-source event
streams, ``workers/<id>.json`` snapshots, claim leases and the shared
result cache — so an operator (or CI) can ask "how is the fleet doing?"
from any machine that mounts the spool, without access to the enqueuing
process. The result is one JSON-safe dict; :func:`render_status` turns
it into a human dashboard and :func:`render_prom` into Prometheus text
exposition for scrapers.
"""

from __future__ import annotations

import datetime
import math
import time
from pathlib import Path

from ..distributed.spool import Spool
from ..runner.cache import ResultCache
from .manifest import load_campaign_manifests, read_all_events
from .metrics import percentile

#: A worker whose last stats publish is older than this is presumed dead
#: (heartbeat publishing refreshes the snapshot every lease/4 seconds).
DEFAULT_STALE_WORKER_S = 60.0

#: Throughput window: jobs/sec is computed over this trailing span.
DEFAULT_WINDOW_S = 60.0


def _json_float(value: float) -> float | None:
    return None if not math.isfinite(value) else value


def fleet_status(
    spool_dir: str | Path,
    cache_dir: str | Path | None = None,
    *,
    now: float | None = None,
    window_s: float = DEFAULT_WINDOW_S,
    stale_worker_s: float = DEFAULT_STALE_WORKER_S,
) -> dict:
    """One structured snapshot of a spool fleet.

    Args:
        spool_dir: the spool to inspect (read-only).
        cache_dir: the campaign's shared result cache; enables the cache
            census and per-campaign completion accounting.
        now: reference time override (tests freeze the clock).
        window_s: trailing window for the jobs/sec estimate.
        stale_worker_s: silence threshold before a worker counts dead.
    """
    now = now if now is not None else time.time()
    spool = Spool(spool_dir)
    cache = ResultCache(cache_dir) if cache_dir is not None else None

    # -- spool queues and leases -------------------------------------------
    claims = spool.claim_snapshot(now=now)
    stale = [claim for claim in claims if claim["stale"]]
    failed_keys = {
        path.name[: -len(".json")]
        for path in spool.failed_dir.glob("*.json")
    } if spool.failed_dir.is_dir() else set()

    # -- workers -------------------------------------------------------------
    workers = []
    session_totals: dict[str, list[int]] = {}
    for worker_id, payload in sorted(spool.worker_stats().items()):
        updated_at = payload.get("updated_at")
        age = now - updated_at if isinstance(updated_at, (int, float)) else None
        alive = age is not None and age <= stale_worker_s
        session = payload.get("session") or {}
        for flat_key, count in session.items():
            category, _, kind = flat_key.rpartition(".")
            if kind not in ("hit", "miss") or not isinstance(count, int):
                continue
            bucket = session_totals.setdefault(category, [0, 0])
            bucket[0 if kind == "hit" else 1] += count
        workers.append(
            {
                "worker": worker_id,
                "alive": alive,
                "age_s": _json_float(age) if age is not None else None,
                "jobs_done": payload.get("jobs_done", 0),
                "jobs_failed": payload.get("jobs_failed", 0),
                "requeues_swept": payload.get("requeues_swept", 0),
                "pid": payload.get("pid"),
                "rss_bytes": payload.get("rss_bytes"),
                "open_fds": payload.get("open_fds"),
            }
        )
    session_ratios = {
        category: {
            "hits": hits,
            "misses": misses,
            "hit_ratio": _json_float(
                hits / (hits + misses) if hits + misses else math.nan
            ),
        }
        for category, (hits, misses) in sorted(session_totals.items())
    }

    # -- events: throughput, latency, phase splits ---------------------------
    finished: list[dict] = []
    phase_sums = {"setup_s": 0.0, "compile_s": 0.0, "simulate_s": 0.0, "cache_s": 0.0}
    phase_count = 0
    requeues = 0
    expiries = 0
    for record in read_all_events(spool.root):
        event = record.get("event")
        if event == "job_finished":
            finished.append(record)
        elif event == "job_phase":
            phase_count += 1
            for phase in phase_sums:
                value = record.get(phase)
                if isinstance(value, (int, float)):
                    phase_sums[phase] += value
        elif event == "requeue":
            requeues += 1
        elif event == "lease_expired":
            expiries += 1
    durations = [
        record["duration_s"]
        for record in finished
        if isinstance(record.get("duration_s"), (int, float))
        and not record.get("cached")
    ]
    recent = [
        record for record in finished
        if isinstance(record.get("ts"), (int, float))
        and record["ts"] >= now - window_s
    ]
    throughput = {
        "window_s": window_s,
        "finished_in_window": len(recent),
        "jobs_per_s": _json_float(len(recent) / window_s if window_s else math.nan),
        "finished_total": len(finished),
    }
    latency = {
        "count": len(durations),
        "p50_s": _json_float(percentile(durations, 0.50)),
        "p95_s": _json_float(percentile(durations, 0.95)),
        "mean_s": _json_float(
            sum(durations) / len(durations) if durations else math.nan
        ),
    }
    phases = {
        phase: _json_float(total / phase_count if phase_count else math.nan)
        for phase, total in phase_sums.items()
    }

    # -- campaigns: per-shard progress against manifest key sets -------------
    claimed_keys = {claim["key"] for claim in claims}
    campaigns = []
    for manifest in load_campaign_manifests(spool.root):
        keys = manifest.get("keys", [])
        done = 0
        failed = 0
        for key in keys:
            if key in failed_keys:
                failed += 1
            elif cache is not None and cache.has_key(key):
                done += 1
        running = sum(1 for key in keys if key in claimed_keys)
        total = manifest.get("total", len(keys))
        campaigns.append(
            {
                "campaign": manifest.get("campaign"),
                "id": manifest.get("id"),
                "shard": manifest.get("shard"),
                "total": total,
                "done": done,
                "failed": failed,
                "running": running,
                "progress": _json_float(
                    (done + failed) / total if total else math.nan
                ),
                "source": manifest.get("source", ""),
                "enqueued_at": manifest.get("enqueued_at"),
            }
        )

    status = {
        "generated_at": now,
        "spool": {
            "root": str(spool.root),
            "pending": spool.pending_count(),
            "claimed": len(claims),
            "failed": len(failed_keys),
            "stop_requested": spool.stop_requested(),
        },
        "leases": {
            "active": len(claims) - len(stale),
            "stale": len(stale),
            "stale_keys": sorted(claim["key"] for claim in stale),
        },
        "workers": {
            "alive": sum(1 for worker in workers if worker["alive"]),
            "dead": sum(1 for worker in workers if not worker["alive"]),
            "details": workers,
        },
        "session": session_ratios,
        "campaigns": campaigns,
        "throughput": throughput,
        "latency": latency,
        "phases": phases,
        "requeues": {"lease_expired": expiries, "requeued": requeues},
    }
    if cache is not None:
        stats = cache.stats()
        status["cache"] = {"root": str(cache.root), **stats.to_dict()}
    return status


# -- rendering ---------------------------------------------------------------


def _fmt_seconds(value: float | None, digits: int = 2) -> str:
    return "n/a" if value is None else f"{value:.{digits}f}s"


def _fmt_ratio(value: float | None) -> str:
    return "n/a" if value is None else f"{value * 100:.0f}%"


def render_status(status: dict) -> str:
    """The human dashboard for one :func:`fleet_status` snapshot."""
    stamp = datetime.datetime.fromtimestamp(
        status["generated_at"], tz=datetime.timezone.utc
    ).strftime("%Y-%m-%d %H:%M:%S UTC")
    spool = status["spool"]
    leases = status["leases"]
    workers = status["workers"]
    lines = [
        f"fleet @ {spool['root']} — {stamp}",
        (
            f"  jobs: {spool['pending']} pending, {spool['claimed']} claimed, "
            f"{spool['failed']} failed terminally"
            + ("  [STOP requested]" if spool["stop_requested"] else "")
        ),
        f"  leases: {leases['active']} active, {leases['stale']} stale"
        + (
            " (" + ", ".join(key[:12] for key in leases["stale_keys"]) + ")"
            if leases["stale_keys"]
            else ""
        ),
        f"  workers: {workers['alive']} alive, {workers['dead']} dead",
    ]
    for worker in workers["details"]:
        state = "alive" if worker["alive"] else "dead"
        age = (
            f"{worker['age_s']:.0f}s ago"
            if worker["age_s"] is not None
            else "never"
        )
        resources = ""
        if isinstance(worker.get("rss_bytes"), (int, float)):
            resources = f", rss {worker['rss_bytes'] / (1024 * 1024):.0f} MiB"
            if isinstance(worker.get("open_fds"), int):
                resources += f", {worker['open_fds']} fds"
        lines.append(
            f"    {worker['worker']}: {state} (updated {age}), "
            f"{worker['jobs_done']} done, {worker['jobs_failed']} failed"
            + resources
        )
    if status["session"]:
        ratios = ", ".join(
            f"{category} {_fmt_ratio(entry['hit_ratio'])}"
            for category, entry in status["session"].items()
        )
        lines.append(f"  session hit ratios: {ratios}")
    if status["campaigns"]:
        lines.append("  campaigns:")
        for campaign in status["campaigns"]:
            shard = campaign["shard"]
            shard_text = (
                f" [shard {shard['index']}/{shard['count']}]" if shard else ""
            )
            progress = campaign["progress"]
            lines.append(
                f"    {campaign['campaign']}{shard_text}: "
                f"{campaign['done']}/{campaign['total']} done"
                + (f", {campaign['failed']} failed" if campaign["failed"] else "")
                + (f", {campaign['running']} running" if campaign["running"] else "")
                + (
                    f" ({progress * 100:.0f}%)"
                    if progress is not None
                    else ""
                )
            )
    throughput = status["throughput"]
    latency = status["latency"]
    lines.append(
        f"  throughput: {throughput['jobs_per_s'] or 0:.2f} jobs/s over last "
        f"{throughput['window_s']:.0f}s ({throughput['finished_total']} finished total); "
        f"job latency p50 {_fmt_seconds(latency['p50_s'])} "
        f"p95 {_fmt_seconds(latency['p95_s'])} (n={latency['count']})"
    )
    phases = status["phases"]
    if any(value is not None for value in phases.values()):
        lines.append(
            "  phase means: "
            + ", ".join(
                f"{phase[:-2]} {_fmt_seconds(value, 3)}"
                for phase, value in phases.items()
            )
        )
    requeues = status["requeues"]
    if requeues["lease_expired"] or requeues["requeued"]:
        lines.append(
            f"  requeues: {requeues['lease_expired']} lease(s) expired, "
            f"{requeues['requeued']} job(s) requeued"
        )
    cache = status.get("cache")
    if cache:
        lines.append(
            f"  cache: {cache['entries']} entries, "
            f"{cache['total_bytes'] / 1024:.1f} KiB @ {cache['root']}"
        )
    return "\n".join(lines)


def _prom_line(lines: list[str], name: str, kind: str, value, labels: str = "") -> None:
    if value is None:
        return
    if not any(line.startswith(f"# TYPE {name} ") for line in lines):
        lines.append(f"# TYPE {name} {kind}")
    rendered = int(value) if isinstance(value, bool) else value
    lines.append(f"{name}{labels} {rendered}")


def render_prom(status: dict) -> str:
    """Prometheus text exposition of one :func:`fleet_status` snapshot.

    Fleet-level facts become gauges; per-campaign progress is labelled
    by campaign id so overlapping shards stay distinguishable.
    """
    lines: list[str] = []
    spool = status["spool"]
    _prom_line(lines, "deft_spool_pending_jobs", "gauge", spool["pending"])
    _prom_line(lines, "deft_spool_claimed_jobs", "gauge", spool["claimed"])
    _prom_line(lines, "deft_spool_failed_jobs", "gauge", spool["failed"])
    _prom_line(lines, "deft_leases_active", "gauge", status["leases"]["active"])
    _prom_line(lines, "deft_leases_stale", "gauge", status["leases"]["stale"])
    _prom_line(lines, "deft_workers_alive", "gauge", status["workers"]["alive"])
    _prom_line(lines, "deft_workers_dead", "gauge", status["workers"]["dead"])
    for worker in status["workers"]["details"]:
        labels = f'{{worker="{worker["worker"]}"}}'
        _prom_line(lines, "deft_worker_jobs_done", "gauge",
                   worker["jobs_done"], labels)
        _prom_line(lines, "deft_worker_rss_bytes", "gauge",
                   worker.get("rss_bytes"), labels)
        _prom_line(lines, "deft_worker_open_fds", "gauge",
                   worker.get("open_fds"), labels)
    _prom_line(
        lines, "deft_jobs_per_second", "gauge",
        status["throughput"]["jobs_per_s"],
    )
    _prom_line(
        lines, "deft_jobs_finished_total", "gauge",
        status["throughput"]["finished_total"],
    )
    latency = status["latency"]
    for quantile, key in (("0.5", "p50_s"), ("0.95", "p95_s")):
        _prom_line(
            lines, "deft_job_duration_seconds", "gauge", latency[key],
            labels=f'{{quantile="{quantile}"}}',
        )
    for campaign in status["campaigns"]:
        labels = f'{{campaign="{campaign["id"]}"}}'
        _prom_line(lines, "deft_campaign_total_jobs", "gauge",
                   campaign["total"], labels)
        _prom_line(lines, "deft_campaign_done_jobs", "gauge",
                   campaign["done"], labels)
        _prom_line(lines, "deft_campaign_failed_jobs", "gauge",
                   campaign["failed"], labels)
    cache = status.get("cache")
    if cache:
        _prom_line(lines, "deft_cache_entries", "gauge", cache["entries"])
        _prom_line(lines, "deft_cache_bytes", "gauge", cache["total_bytes"])
    return "\n".join(lines) + ("\n" if lines else "")


def health_problems(status: dict) -> list[str]:
    """Why this snapshot is unhealthy, as probe-friendly one-liners.

    Empty means healthy. Backs ``deft status --check`` so cron/CI can
    use the exit code as a fleet probe without parsing JSON. Three
    conditions count as unhealthy: stale leases (a worker stopped
    heartbeating mid-batch), terminal job failures, and a dead fleet —
    workers have been seen but none is alive while work is still
    outstanding. A spool with no workers *and* no work is just idle,
    not unhealthy.
    """
    problems: list[str] = []
    stale = status["leases"]["stale"]
    if stale:
        keys = ", ".join(key[:12] for key in status["leases"]["stale_keys"][:4])
        problems.append(f"{stale} stale lease(s): {keys}")
    failed = status["spool"]["failed"]
    if failed:
        problems.append(f"{failed} terminal job failure(s) in failed/")
    workers = status["workers"]
    outstanding = status["spool"]["pending"] + status["spool"]["claimed"]
    if workers["details"] and workers["alive"] == 0 and outstanding:
        problems.append(
            f"fleet dead: {workers['dead']} known worker(s), none alive, "
            f"{outstanding} job(s) outstanding"
        )
    return problems
