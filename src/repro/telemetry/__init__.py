"""Campaign telemetry: metrics core, structured events, fleet status.

Three layers, each usable alone:

* :mod:`repro.telemetry.metrics` — dependency-free counters, gauges,
  histograms and span timers behind a process-global registry
  (near-zero overhead when disabled; ``DEFT_TELEMETRY=0``).
* :mod:`repro.telemetry.events` + :mod:`repro.telemetry.manifest` —
  structured JSONL event streams and campaign descriptors under a
  spool's ``manifest/`` area, so any process can reconstruct live
  campaign state from the filesystem alone.
* :mod:`repro.telemetry.status` / :mod:`repro.telemetry.httpd` — the
  ``deft status`` aggregator and the Prometheus scrape endpoint.

This package root re-exports only the leaf layers (metrics, events):
``status`` pulls in the spool and cache machinery, and importing it
here would cycle back into ``repro.runner`` — import it explicitly
(``from repro.telemetry.status import fleet_status``).
"""

from .events import (
    EVENT_TYPES,
    NULL_EVENTS,
    EventTailer,
    EventWriter,
    NullEventWriter,
    read_events,
    segment_paths,
)
from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    percentile,
    reset_registry,
    set_enabled,
    telemetry_enabled,
)

__all__ = [
    "EVENT_TYPES",
    "NULL_EVENTS",
    "EventTailer",
    "EventWriter",
    "NullEventWriter",
    "read_events",
    "segment_paths",
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "percentile",
    "reset_registry",
    "set_enabled",
    "telemetry_enabled",
]
