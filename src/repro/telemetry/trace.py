"""Per-job trace reconstruction from the spool's event streams.

The event streams under ``manifest/events/`` record *what happened*
(``job_claimed`` → ``job_phase`` → ``job_finished``, plus lease renewals
and requeues) but not *how it lines up in time* — answering "why was
this campaign slow" from raw JSONL means mental arithmetic across
interleaved sources. This module stitches the streams back into span
trees, one per job attempt:

    job <key> ................ claimed_at → finished_at     (root)
      claim ................. claim + cache probe
      setup ................. topology / system construction
      compile ............... route-table compilation
      simulate .............. cycle loop
      publish ............... result staging + settle tail

The worker emits phase *durations* after execution rather than
per-phase timestamps, so children are laid out sequentially from the
claim timestamp; ``publish`` is the measured remainder up to
``job_finished``. Every child is clamped inside its root, which keeps
spans monotonic even when clocks or rounding disagree by microseconds.

Two consumers: :func:`chrome_trace` exports Chrome/Catapult
``trace_event`` JSON (load it in ``chrome://tracing`` / Perfetto; one
thread lane per worker), and :func:`render_trace_summary` prints a
terminal timeline — p50/p95 per phase and the critical path, i.e. the
slowest end-to-end job chain.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from .manifest import load_campaign_manifests, read_all_events
from .metrics import percentile

#: Child span names, in layout order, present for every finished job.
PHASE_ORDER = ("claim", "setup", "compile", "simulate", "publish")


@dataclass
class JobTrace:
    """One claim→finish attempt of one job."""

    key: str
    worker: str
    attempt: int
    claimed_at: float
    finished_at: float | None = None
    ok: bool | None = None
    cached: bool | None = None
    requeued_at: float | None = None
    #: Raw phase durations from the ``job_phase`` event (``setup_s`` …).
    phase_s: dict = field(default_factory=dict)

    @property
    def finished(self) -> bool:
        return self.finished_at is not None

    @property
    def duration_s(self) -> float:
        if self.finished_at is None:
            return 0.0
        return max(0.0, self.finished_at - self.claimed_at)

    def spans(self) -> list[tuple[str, float, float]]:
        """``(name, start_epoch_s, duration_s)`` children, clamped.

        Sequential layout from ``claimed_at``: claim (incl. the cache
        probe), setup, compile, simulate, then publish as the remainder
        to ``finished_at``. Children never extend past the root, so the
        tree is monotonic by construction.
        """
        if self.finished_at is None:
            return []
        end = self.finished_at
        cursor = self.claimed_at
        durations = {
            "claim": self.phase_s.get("cache_s", 0.0),
            "setup": self.phase_s.get("setup_s", 0.0),
            "compile": self.phase_s.get("compile_s", 0.0),
            "simulate": self.phase_s.get("simulate_s", 0.0),
        }
        spans = []
        for name in PHASE_ORDER[:-1]:
            start = min(cursor, end)
            dur = max(0.0, min(durations[name], end - start))
            spans.append((name, start, dur))
            cursor = start + dur
        spans.append(("publish", min(cursor, end), max(0.0, end - min(cursor, end))))
        return spans


@dataclass
class TraceSet:
    """Everything reconstructed from one spool's event streams."""

    traces: list[JobTrace] = field(default_factory=list)
    #: Fleet-level point events: ``(ts, name, worker, detail)``.
    instants: list[tuple[float, str, str, str]] = field(default_factory=list)
    campaign: str | None = None

    @property
    def finished(self) -> list[JobTrace]:
        return [t for t in self.traces if t.finished]

    @property
    def workers(self) -> list[str]:
        return sorted({t.worker for t in self.traces if t.worker})

    @property
    def start_ts(self) -> float:
        candidates = [t.claimed_at for t in self.traces]
        candidates.extend(ts for ts, *_ in self.instants)
        return min(candidates) if candidates else 0.0

    @property
    def end_ts(self) -> float:
        candidates = [t.finished_at for t in self.traces if t.finished_at]
        candidates.extend(t.claimed_at for t in self.traces)
        candidates.extend(ts for ts, *_ in self.instants)
        return max(candidates) if candidates else 0.0

    def critical_path(self) -> JobTrace | None:
        """The slowest end-to-end job chain (max claim→finish)."""
        finished = self.finished
        if not finished:
            return None
        return max(finished, key=lambda t: t.duration_s)


def reconstruct(
    records: Iterable[dict],
    keys: set[str] | None = None,
    campaign: str | None = None,
) -> TraceSet:
    """Stitch merged event records into per-attempt span trees.

    ``records`` must be timestamp-ordered (what
    :func:`repro.telemetry.manifest.read_all_events` yields). With
    ``keys``, only attempts of those job keys are kept, and lease-level
    instants are kept only for workers that touched them.
    """
    out = TraceSet(campaign=campaign)
    open_by_key: dict[str, JobTrace] = {}
    instants: list[tuple[float, str, str, str]] = []
    touched_workers: set[str] = set()
    for record in records:
        event = record.get("event")
        ts = float(record.get("ts", 0.0))
        key = record.get("key")
        worker = str(record.get("worker") or record.get("source") or "")
        if key is not None and keys is not None and key not in keys:
            continue
        if event == "job_claimed":
            trace = JobTrace(
                key=key,
                worker=worker,
                attempt=int(record.get("attempts", 1)),
                claimed_at=ts,
            )
            open_by_key[key] = trace
            out.traces.append(trace)
            touched_workers.add(worker)
        elif event == "job_phase":
            trace = open_by_key.get(key)
            if trace is not None and not trace.finished:
                trace.phase_s = {
                    name: float(record.get(name, 0.0))
                    for name in ("cache_s", "setup_s", "compile_s", "simulate_s")
                }
        elif event == "job_finished":
            trace = open_by_key.get(key)
            if trace is None or trace.finished:
                # A finish with no observed claim (stream from a v1
                # spool, or a truncated segment): synthesise the root
                # from duration so the job still appears.
                duration = float(record.get("duration_s", 0.0))
                trace = JobTrace(
                    key=key,
                    worker=worker,
                    attempt=int(record.get("attempts", 1)),
                    claimed_at=ts - max(0.0, duration),
                )
                out.traces.append(trace)
            trace.finished_at = ts
            trace.ok = bool(record.get("ok"))
            trace.cached = bool(record.get("cached"))
            open_by_key.pop(key, None)
            touched_workers.add(worker)
        elif event == "requeue":
            trace = open_by_key.get(key)
            if trace is not None:
                trace.requeued_at = ts
            detail = "terminal" if record.get("terminal") else f"attempt {record.get('attempts')}"
            instants.append((ts, "requeue", worker, f"{key} ({detail})"))
        elif event == "lease_renewed":
            instants.append(
                (ts, "lease_renewed", worker,
                 f"batch {record.get('batch')} {record.get('done')}/{record.get('jobs')} done")
            )
        elif event == "lease_expired":
            jobs = record.get("jobs") or []
            instants.append(
                (ts, "lease_expired", worker, f"{len(jobs)} job(s) requeued")
            )
    if keys is not None:
        instants = [
            i for i in instants
            if i[1] == "requeue" or i[2] in touched_workers
        ]
    out.instants = sorted(instants)
    return out


def resolve_campaign_keys(spool_root: str | Path, campaign: str) -> set[str]:
    """Job keys of ``campaign`` (by name, id, or shard base name).

    Shards of the same base campaign are merged. Raises ``ValueError``
    naming the known campaigns when nothing matches.
    """
    manifests = load_campaign_manifests(spool_root)
    keys: set[str] = set()
    known: set[str] = set()
    for manifest in manifests:
        name = manifest.get("campaign", "")
        shard = manifest.get("shard") or {}
        base = shard.get("base") or name
        known.update({name, base})
        if campaign in (name, base, manifest.get("id")):
            keys.update(manifest.get("keys", ()))
    if not keys:
        raise ValueError(
            f"unknown campaign {campaign!r}; spool knows: "
            + (", ".join(sorted(known)) if known else "(none)")
        )
    return keys


def job_traces(spool_root: str | Path, campaign: str | None = None) -> TraceSet:
    """Reconstruct every job attempt recorded in a spool's manifest.

    With ``campaign``, restrict to that campaign's job keys (resolved
    by name, id, or shard base).
    """
    keys = resolve_campaign_keys(spool_root, campaign) if campaign else None
    return reconstruct(read_all_events(spool_root), keys=keys, campaign=campaign)


def _us(ts: float, t0: float) -> int:
    return max(0, int(round((ts - t0) * 1e6)))


def chrome_trace(traces: TraceSet) -> dict:
    """Export a :class:`TraceSet` as Chrome/Catapult trace JSON.

    One process (``deft fleet``), one thread lane per worker, complete
    ("X") events for each finished attempt with its five phase children
    nested inside, instant ("i") events for requeues and lease
    renewals/expiries. Timestamps are microseconds relative to the
    earliest event; the absolute epoch start is in ``otherData``.
    """
    t0 = traces.start_ts
    tids = {worker: index + 1 for index, worker in enumerate(traces.workers)}
    events: list[dict] = [
        {"ph": "M", "pid": 1, "tid": 0, "name": "process_name",
         "args": {"name": "deft fleet"}},
        {"ph": "M", "pid": 1, "tid": 0, "name": "thread_name",
         "args": {"name": "spool"}},
    ]
    for worker, tid in tids.items():
        events.append(
            {"ph": "M", "pid": 1, "tid": tid, "name": "thread_name",
             "args": {"name": worker}}
        )
    for trace in traces.finished:
        tid = tids.get(trace.worker, 0)
        events.append(
            {
                "name": f"job {trace.key[:12]}",
                "cat": "job",
                "ph": "X",
                "pid": 1,
                "tid": tid,
                "ts": _us(trace.claimed_at, t0),
                "dur": max(1, _us(trace.finished_at, t0) - _us(trace.claimed_at, t0)),
                "args": {
                    "key": trace.key,
                    "worker": trace.worker,
                    "attempt": trace.attempt,
                    "ok": trace.ok,
                    "cached": trace.cached,
                },
            }
        )
        for name, start, dur in trace.spans():
            events.append(
                {
                    "name": name,
                    "cat": "phase",
                    "ph": "X",
                    "pid": 1,
                    "tid": tid,
                    "ts": _us(start, t0),
                    "dur": _us(start + dur, t0) - _us(start, t0),
                    "args": {"key": trace.key},
                }
            )
    for ts, name, worker, detail in traces.instants:
        events.append(
            {
                "name": name,
                "cat": "spool",
                "ph": "i",
                "s": "t" if worker in tids else "g",
                "pid": 1,
                "tid": tids.get(worker, 0),
                "ts": _us(ts, t0),
                "args": {"detail": detail, "worker": worker},
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "trace_start_epoch_s": t0,
            "campaign": traces.campaign,
            "jobs_finished": len(traces.finished),
            "jobs_open": len(traces.traces) - len(traces.finished),
            "workers": traces.workers,
        },
    }


def write_chrome_trace(traces: TraceSet, path: str | Path) -> Path:
    path = Path(path)
    path.write_text(json.dumps(chrome_trace(traces), sort_keys=True))
    return path


def _fmt_s(value: float) -> str:
    if value >= 100:
        return f"{value:.0f}s"
    if value >= 1:
        return f"{value:.2f}s"
    return f"{value * 1e3:.1f}ms"


def render_trace_summary(traces: TraceSet) -> str:
    """Terminal span-timeline summary: per-phase p50/p95 + critical path."""
    lines: list[str] = []
    finished = traces.finished
    scope = f"campaign {traces.campaign!r}" if traces.campaign else "all campaigns"
    makespan = max(0.0, traces.end_ts - traces.start_ts)
    lines.append(
        f"trace — {scope}: {len(finished)} finished attempt(s), "
        f"{len(traces.traces) - len(finished)} open, "
        f"{len(traces.workers)} worker(s), makespan {_fmt_s(makespan)}"
    )
    if not finished:
        lines.append("  (no finished attempts — nothing to summarise)")
        return "\n".join(lines)
    per_phase: dict[str, list[float]] = {name: [] for name in PHASE_ORDER}
    for trace in finished:
        for name, _start, dur in trace.spans():
            per_phase[name].append(dur)
    lines.append(f"  {'phase':<10}{'count':>7}{'p50':>10}{'p95':>10}{'total':>10}")
    for name in PHASE_ORDER:
        values = per_phase[name]
        lines.append(
            f"  {name:<10}{len(values):>7}"
            f"{_fmt_s(percentile(values, 0.5)):>10}"
            f"{_fmt_s(percentile(values, 0.95)):>10}"
            f"{_fmt_s(sum(values)):>10}"
        )
    slowest = traces.critical_path()
    parts = " | ".join(
        f"{name} {_fmt_s(dur)}" for name, _start, dur in slowest.spans()
    )
    lines.append(
        f"  critical path: job {slowest.key[:12]} on {slowest.worker or '?'} "
        f"({_fmt_s(slowest.duration_s)} claim→finish, attempt {slowest.attempt}"
        + (", cached" if slowest.cached else "")
        + ")"
    )
    lines.append(f"    {parts}")
    counts = {"requeue": 0, "lease_renewed": 0, "lease_expired": 0}
    for _ts, name, _worker, _detail in traces.instants:
        counts[name] = counts.get(name, 0) + 1
    lines.append(
        "  requeues: {requeue}, lease renewals: {lease_renewed}, "
        "lease expiries: {lease_expired}".format(**counts)
    )
    return "\n".join(lines)
