"""Opt-in metrics HTTP endpoint (``deft worker --metrics-port``).

A stdlib-only Prometheus scrape target: ``GET /metrics`` renders the
process registry's text exposition. The server runs on a daemon thread
so it never blocks worker shutdown, and binds loopback by default —
exposing it wider is a deliberate operator decision (``host=``), not a
default.
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from .metrics import MetricsRegistry, get_registry


class _MetricsHandler(BaseHTTPRequestHandler):
    registry: MetricsRegistry  # injected by serve_metrics via subclassing

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        if self.path.split("?", 1)[0] not in ("/metrics", "/"):
            self.send_error(404, "only /metrics is served")
            return
        body = self.registry.render_prom().encode("utf-8")
        self.send_response(200)
        self.send_header("Content-Type", "text/plain; version=0.0.4")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args) -> None:
        pass  # scrapes are periodic; logging each one is pure noise


def serve_metrics(
    port: int,
    registry: MetricsRegistry | None = None,
    host: str = "127.0.0.1",
) -> ThreadingHTTPServer:
    """Start serving ``/metrics`` in the background; returns the server.

    ``port=0`` binds an ephemeral port — read it back from
    ``server.server_port``. Call ``server.shutdown()`` to stop.
    """
    registry = registry if registry is not None else get_registry()
    handler = type("Handler", (_MetricsHandler,), {"registry": registry})
    server = ThreadingHTTPServer((host, port), handler)
    server.daemon_threads = True
    thread = threading.Thread(
        target=server.serve_forever, name="deft-metrics", daemon=True
    )
    thread.start()
    return server
