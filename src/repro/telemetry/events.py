"""Structured JSONL event emission for campaign reconstruction.

Every process that touches a campaign — the enqueuing runner, both
in-process backends, each ``deft worker`` — appends events to its own
JSONL file under the spool's ``manifest/events/`` area. Because each
writer owns one file (named after its source), concurrent emitters
never interleave partial lines, and any later process can merge the
files by timestamp to reconstruct what the fleet did without talking
to the enqueuer.

The event vocabulary is fixed (:data:`EVENT_TYPES`); emitting an
unknown type is a programming error and raises immediately, so typos
can't silently create unreadable streams. Each record is one JSON
object per line::

    {"ts": 1754..., "event": "job_finished", "source": "worker-a", ...}

Readers must tolerate torn tails: :func:`read_events` skips lines that
don't parse, because a crashed writer may leave a partial final line.

Long-lived fleets would otherwise grow one unbounded file per source,
so the writer rotates size-capped segments: when ``events.jsonl``
exceeds the cap it is renamed ``events.1.jsonl`` (then ``.2``, …) and a
fresh head file starts. Rotation is a single atomic rename that never
rewrites old bytes, which keeps two properties readers depend on:
byte offsets into a segment stay valid after it rotates, and a merged
read across :func:`segment_paths` (rotated segments in index order,
head last) sees every record exactly once, oldest first.
"""

from __future__ import annotations

import json
import os
import re
import threading
import time
from pathlib import Path
from typing import Iterator

#: The complete event vocabulary. Every record's ``event`` field is one
#: of these; consumers can exhaustively switch on them.
EVENT_TYPES = frozenset(
    {
        "campaign_started",
        "job_claimed",
        "job_phase",
        "job_finished",
        "worker_heartbeat",
        "lease_renewed",
        "lease_expired",
        "requeue",
    }
)

#: Record keys the writer owns; payload fields may not collide with them.
RESERVED_FIELDS = frozenset({"ts", "event", "source"})

#: Default size cap per segment before the head file rotates.
DEFAULT_SEGMENT_BYTES = 8 * 1024 * 1024

#: Environment override for the segment cap; ``0`` disables rotation.
SEGMENT_BYTES_ENV = "DEFT_EVENT_SEGMENT_BYTES"

#: Rotated segments are named ``<stem>.<index>.jsonl`` next to the head
#: file ``<stem>.jsonl``; index 1 is the oldest.
_SEGMENT_RE = re.compile(r"^(?P<stem>.+)\.(?P<index>\d+)\.jsonl$")


def default_segment_bytes() -> int:
    """The configured rotation cap (``0`` means never rotate)."""
    raw = os.environ.get(SEGMENT_BYTES_ENV, "")
    try:
        return int(raw)
    except ValueError:
        return DEFAULT_SEGMENT_BYTES


def rotated_path(path: str | Path, index: int) -> Path:
    """The path of rotation segment ``index`` for head file ``path``."""
    path = Path(path)
    stem = path.name[: -len(".jsonl")] if path.name.endswith(".jsonl") else path.stem
    return path.with_name(f"{stem}.{index}.jsonl")


def segment_indices(path: str | Path) -> list[int]:
    """Indices of the rotated segments that exist for ``path``, ascending."""
    path = Path(path)
    stem = path.name[: -len(".jsonl")] if path.name.endswith(".jsonl") else path.stem
    pattern = re.compile(rf"^{re.escape(stem)}\.(\d+)\.jsonl$")
    indices = []
    if path.parent.is_dir():
        for sibling in path.parent.iterdir():
            match = pattern.match(sibling.name)
            if match:
                indices.append(int(match.group(1)))
    return sorted(indices)


def segment_paths(path: str | Path) -> list[Path]:
    """Every existing file of one source's stream, oldest segment first.

    Rotated segments in index order, then the live head file (which may
    not exist yet — or not any more, if the writer rotated and went
    quiet). This is the canonical read order for the whole stream.
    """
    path = Path(path)
    paths = [rotated_path(path, index) for index in segment_indices(path)]
    if path.is_file():
        paths.append(path)
    return paths


class EventWriter:
    """Append-only JSONL emitter, one file per source, thread-safe.

    The file handle opens lazily on the first emit (constructing a
    writer for a spool that never sees traffic costs nothing) and every
    record is flushed so ``deft status`` in another process observes
    events promptly. A lock serialises emits because workers emit from
    both the claim loop and the heartbeat thread.

    When the head file exceeds ``max_segment_bytes`` it rotates: the
    head is renamed to the next free ``<stem>.<n>.jsonl`` and the next
    emit starts a fresh head. A record is never split across segments
    (the size check runs between whole-record writes).
    """

    def __init__(
        self,
        path: str | Path,
        source: str,
        max_segment_bytes: int | None = None,
    ):
        self.path = Path(path)
        self.source = source
        self.max_segment_bytes = (
            default_segment_bytes() if max_segment_bytes is None else max_segment_bytes
        )
        self._lock = threading.Lock()
        self._handle = None
        self._closed = False

    def emit(self, event: str, **fields) -> None:
        if event not in EVENT_TYPES:
            raise ValueError(
                f"unknown event type {event!r}; expected one of "
                f"{sorted(EVENT_TYPES)}"
            )
        clash = RESERVED_FIELDS.intersection(fields)
        if clash:
            raise ValueError(f"fields {sorted(clash)} are reserved")
        record = {"ts": time.time(), "event": event, "source": self.source}
        record.update(fields)
        line = json.dumps(record, separators=(",", ":"), sort_keys=True)
        with self._lock:
            if self._closed:
                return
            if self._handle is None:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                self._handle = open(self.path, "a", encoding="utf-8")
            self._handle.write(line + "\n")
            self._handle.flush()
            if 0 < self.max_segment_bytes <= self._handle.tell():
                self._rotate_locked()

    def _rotate_locked(self) -> None:
        """Seal the head file as the next rotation segment (lock held)."""
        self._handle.close()
        self._handle = None
        indices = segment_indices(self.path)
        target = rotated_path(self.path, (indices[-1] + 1) if indices else 1)
        try:
            os.replace(self.path, target)
        except OSError:
            # Rotation is an optimisation; appending to an oversized
            # head beats losing events on a weird filesystem.
            pass

    def close(self) -> None:
        with self._lock:
            self._closed = True
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def __enter__(self) -> "EventWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class NullEventWriter:
    """No-op stand-in so call sites never branch on "events wired?"."""

    path = None
    source = ""

    def emit(self, event: str, **fields) -> None:
        pass

    def close(self) -> None:
        pass

    def __enter__(self) -> "NullEventWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        pass


#: Shared no-op writer; the default value of every ``events`` hook.
NULL_EVENTS = NullEventWriter()


def _parse_line(raw: bytes) -> dict | None:
    """One JSONL line -> event record, or ``None`` for anything torn."""
    raw = raw.strip()
    if not raw:
        return None
    try:
        record = json.loads(raw.decode("utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError):
        return None
    if isinstance(record, dict) and "event" in record:
        return record
    return None


def read_events(path: str | Path) -> Iterator[dict]:
    """Yield a source's parsed event records, oldest first.

    Reads across every rotation segment in order (``<stem>.1.jsonl``,
    …, then the head file). Unparseable lines (torn tail of a crashed
    writer, manual edits) are skipped rather than fatal — observability
    must not be brittler than the system it observes. A missing stream
    yields nothing.
    """
    for segment in segment_paths(path):
        try:
            with open(segment, "rb") as handle:
                for raw in handle:
                    record = _parse_line(raw)
                    if record is not None:
                        yield record
        except OSError:
            continue


class EventTailer:
    """Incremental reader of one source's stream across rotations.

    Each :meth:`poll` returns the records appended since the last call,
    in order. State is two numbers — the count of rotated segments
    fully consumed and a byte offset into the segment being read — and
    both survive rotation because rotation renames without rewriting:
    an offset taken against the head file is still correct against the
    rotated segment the head became.

    Only complete lines are consumed from the live head; a torn tail is
    left for the next poll (the writer flushes whole records, so it
    will complete). A torn tail in a *sealed* rotated segment can never
    complete and is skipped.
    """

    def __init__(self, path: str | Path, replay: bool = True):
        self.path = Path(path)
        self._consumed = 0
        self._offset = 0
        if not replay:
            indices = segment_indices(self.path)
            self._consumed = indices[-1] if indices else 0
            try:
                self._offset = self.path.stat().st_size
            except OSError:
                self._offset = 0

    def _read_from(self, path: Path, offset: int, sealed: bool) -> tuple[list[dict], int]:
        try:
            with open(path, "rb") as handle:
                handle.seek(offset)
                data = handle.read()
        except OSError:
            return [], offset
        if not sealed:
            cut = data.rfind(b"\n")
            if cut < 0:
                return [], offset
            data = data[: cut + 1]
        records = [r for r in map(_parse_line, data.splitlines()) if r is not None]
        return records, offset + len(data)

    def poll(self) -> list[dict]:
        """Records appended since the previous poll, oldest first."""
        records: list[dict] = []
        while True:
            sealed = rotated_path(self.path, self._consumed + 1)
            if not sealed.is_file():
                break
            chunk, _ = self._read_from(sealed, self._offset, sealed=True)
            records.extend(chunk)
            self._consumed += 1
            self._offset = 0
        chunk, new_offset = self._read_from(self.path, self._offset, sealed=False)
        if rotated_path(self.path, self._consumed + 1).is_file():
            # The head rotated while we were looking at it: the bytes we
            # just read may belong to the *new* head at a stale offset.
            # Drop them and keep the saved offset — the next poll reads
            # the sealed segment from exactly that offset, so nothing is
            # lost or duplicated either way.
            return records
        self._offset = new_offset
        records.extend(chunk)
        return records
