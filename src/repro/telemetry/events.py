"""Structured JSONL event emission for campaign reconstruction.

Every process that touches a campaign — the enqueuing runner, both
in-process backends, each ``deft worker`` — appends events to its own
JSONL file under the spool's ``manifest/events/`` area. Because each
writer owns one file (named after its source), concurrent emitters
never interleave partial lines, and any later process can merge the
files by timestamp to reconstruct what the fleet did without talking
to the enqueuer.

The event vocabulary is fixed (:data:`EVENT_TYPES`); emitting an
unknown type is a programming error and raises immediately, so typos
can't silently create unreadable streams. Each record is one JSON
object per line::

    {"ts": 1754..., "event": "job_finished", "source": "worker-a", ...}

Readers must tolerate torn tails: :func:`read_events` skips lines that
don't parse, because a crashed writer may leave a partial final line.
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path
from typing import Iterator

#: The complete event vocabulary. Every record's ``event`` field is one
#: of these; consumers can exhaustively switch on them.
EVENT_TYPES = frozenset(
    {
        "campaign_started",
        "job_claimed",
        "job_phase",
        "job_finished",
        "worker_heartbeat",
        "lease_renewed",
        "lease_expired",
        "requeue",
    }
)

#: Record keys the writer owns; payload fields may not collide with them.
RESERVED_FIELDS = frozenset({"ts", "event", "source"})


class EventWriter:
    """Append-only JSONL emitter, one file per source, thread-safe.

    The file handle opens lazily on the first emit (constructing a
    writer for a spool that never sees traffic costs nothing) and every
    record is flushed so ``deft status`` in another process observes
    events promptly. A lock serialises emits because workers emit from
    both the claim loop and the heartbeat thread.
    """

    def __init__(self, path: str | Path, source: str):
        self.path = Path(path)
        self.source = source
        self._lock = threading.Lock()
        self._handle = None
        self._closed = False

    def emit(self, event: str, **fields) -> None:
        if event not in EVENT_TYPES:
            raise ValueError(
                f"unknown event type {event!r}; expected one of "
                f"{sorted(EVENT_TYPES)}"
            )
        clash = RESERVED_FIELDS.intersection(fields)
        if clash:
            raise ValueError(f"fields {sorted(clash)} are reserved")
        record = {"ts": time.time(), "event": event, "source": self.source}
        record.update(fields)
        line = json.dumps(record, separators=(",", ":"), sort_keys=True)
        with self._lock:
            if self._closed:
                return
            if self._handle is None:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                self._handle = open(self.path, "a", encoding="utf-8")
            self._handle.write(line + "\n")
            self._handle.flush()

    def close(self) -> None:
        with self._lock:
            self._closed = True
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def __enter__(self) -> "EventWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class NullEventWriter:
    """No-op stand-in so call sites never branch on "events wired?"."""

    path = None
    source = ""

    def emit(self, event: str, **fields) -> None:
        pass

    def close(self) -> None:
        pass

    def __enter__(self) -> "NullEventWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        pass


#: Shared no-op writer; the default value of every ``events`` hook.
NULL_EVENTS = NullEventWriter()


def read_events(path: str | Path) -> Iterator[dict]:
    """Yield parsed event records from one JSONL file, oldest first.

    Unparseable lines (torn tail of a crashed writer, manual edits) are
    skipped rather than fatal — observability must not be brittler than
    the system it observes. A missing file yields nothing.
    """
    path = Path(path)
    if not path.is_file():
        return
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(record, dict) and "event" in record:
                yield record
