"""VL-selection cost model: equations (1)-(6) of the paper.

A *selection set* ``s`` maps every router of a chiplet to one of the
chiplet's alive vertical links. Its cost combines two objectives
(equation 6)::

    C_s = sum_v (rho * D_v) + L_v

* ``L_v`` (equation 3) — load-balance cost: normalized deviation of the
  VL's load from the average load, where a VL's load (equation 1) is the
  summed inter-chiplet traffic rate of the routers that select it.
* ``D_v`` (equation 5) — distance cost: summed Manhattan distance
  (equation 4) between each router and its selected VL.
* ``rho`` — relative weight; the paper found ``rho = 0.01`` efficient.

The same machinery covers both of DeFT's selections: on the source chiplet
(``traffic[r]`` = inter-chiplet *injection* rate of router ``r``; distance
= router -> VL) and on the interposer (``traffic[r]`` = inter-chiplet
traffic *destined* to router ``r``; distance = VL -> router — symmetric,
so one formulation serves both).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from ..errors import OptimizationError

#: The paper's experimentally chosen balance/distance weight.
DEFAULT_RHO = 0.01


@dataclass(frozen=True)
class SelectionProblem:
    """One per-chiplet VL-selection instance.

    Attributes:
        router_positions: chiplet-local ``(x, y)`` of each router taking
            part in the selection, indexed 0..R-1.
        vl_positions: chiplet-local ``(x, y)`` of each *alive* VL,
            indexed 0..V-1 (the optimizer only ever sees alive VLs; fault
            scenarios are expressed by building a problem without the
            faulty ones).
        traffic: inter-chiplet traffic rate ``T_r`` per router (paper's
            ``T``); uniform-by-default offline optimization passes all-ones.
        rho: the distance weight of equation (6).
    """

    router_positions: tuple[tuple[int, int], ...]
    vl_positions: tuple[tuple[int, int], ...]
    traffic: tuple[float, ...]
    rho: float = DEFAULT_RHO

    def __post_init__(self) -> None:
        if not self.vl_positions:
            raise OptimizationError("selection problem needs at least one alive VL")
        if len(self.traffic) != len(self.router_positions):
            raise OptimizationError(
                f"{len(self.router_positions)} routers but {len(self.traffic)} traffic rates"
            )
        if any(t < 0 for t in self.traffic):
            raise OptimizationError("traffic rates must be non-negative")
        if self.rho < 0:
            raise OptimizationError("rho must be non-negative")

    @property
    def num_routers(self) -> int:
        return len(self.router_positions)

    @property
    def num_vls(self) -> int:
        return len(self.vl_positions)

    @property
    def total_traffic(self) -> float:
        return sum(self.traffic)

    def distance(self, router: int, vl: int) -> int:
        """Hop count between a router and a VL (equation 4)."""
        rx, ry = self.router_positions[router]
        vx, vy = self.vl_positions[vl]
        return abs(rx - vx) + abs(ry - vy)

    @classmethod
    def uniform(
        cls,
        router_positions: Sequence[tuple[int, int]],
        vl_positions: Sequence[tuple[int, int]],
        rho: float = DEFAULT_RHO,
    ) -> "SelectionProblem":
        """A problem under the paper's offline assumption of uniform traffic."""
        return cls(
            router_positions=tuple(router_positions),
            vl_positions=tuple(vl_positions),
            traffic=tuple(1.0 for _ in router_positions),
            rho=rho,
        )


def vl_loads(problem: SelectionProblem, selection: Sequence[int]) -> list[float]:
    """Per-VL load ``l_v`` (equation 1) under a selection.

    ``selection[r]`` is the VL index chosen for router ``r``.
    """
    loads = [0.0] * problem.num_vls
    for router, vl in enumerate(selection):
        loads[vl] += problem.traffic[router]
    return loads


def load_cost(problem: SelectionProblem, selection: Sequence[int]) -> float:
    """Total load-balance cost ``sum_v L_v`` (equations 2 and 3).

    When total traffic is zero every assignment balances trivially and the
    cost is zero.
    """
    loads = vl_loads(problem, selection)
    average = sum(loads) / problem.num_vls
    if average == 0:
        return 0.0
    return sum(abs(load - average) / average for load in loads)


def distance_cost(problem: SelectionProblem, selection: Sequence[int]) -> float:
    """Total distance cost ``sum_v D_v`` (equations 4 and 5)."""
    return float(
        sum(problem.distance(router, vl) for router, vl in enumerate(selection))
    )


def selection_cost(problem: SelectionProblem, selection: Sequence[int]) -> float:
    """Overall cost ``C_s`` of a selection set (equation 6)."""
    _validate_selection(problem, selection)
    return problem.rho * distance_cost(problem, selection) + load_cost(problem, selection)


def distance_based_selection(problem: SelectionProblem) -> tuple[int, ...]:
    """The closest-VL selection (ties broken by lower VL index).

    This is the conventional strategy of 3D NoCs that the paper evaluates
    as ``DeFT-Dis`` (Fig. 8) and illustrates in Fig. 3(a)/(b).
    """
    selection = []
    for router in range(problem.num_routers):
        best = min(
            range(problem.num_vls),
            key=lambda vl: (problem.distance(router, vl), vl),
        )
        selection.append(best)
    return tuple(selection)


def _validate_selection(problem: SelectionProblem, selection: Sequence[int]) -> None:
    if len(selection) != problem.num_routers:
        raise OptimizationError(
            f"selection covers {len(selection)} routers, expected {problem.num_routers}"
        )
    for router, vl in enumerate(selection):
        if not (0 <= vl < problem.num_vls):
            raise OptimizationError(f"router {router} selects unknown VL {vl}")


@dataclass
class SelectionResult:
    """Outcome of an optimization run (equation 7's ``s*`` and ``C*_s``)."""

    selection: tuple[int, ...]
    cost: float
    evaluations: int = 0
    method: str = ""
    extras: dict = field(default_factory=dict)

    def loads(self, problem: SelectionProblem) -> list[float]:
        return vl_loads(problem, self.selection)
