"""Per-chiplet fault-scenario enumeration (Section III-B).

DeFT's offline step analyzes the optimal VL selection for every fault
scenario of a chiplet's VLs. For the baseline 4-VL chiplet this is the
paper's "14 combinations of faults (C(4,1) + C(4,2) + C(4,3))" — every
non-empty faulty subset that still leaves at least one VL alive — plus the
fault-free scenario, giving 15 table entries per router side.

A *scenario* is represented by the frozen set of faulty local VL indices,
matching :meth:`repro.fault.model.FaultState.chiplet_down_pattern`.
"""

from __future__ import annotations

import itertools
import math
from typing import Iterator


def enumerate_chiplet_scenarios(
    num_vls: int,
    include_fault_free: bool = True,
) -> Iterator[frozenset[int]]:
    """Yield every admissible per-chiplet fault scenario.

    Scenarios are ordered by fault count then lexicographically, with the
    fault-free scenario (empty set) first when included. The all-faulty
    scenario is never yielded: it disconnects the chiplet, which the paper
    excludes (and for which no selection exists).
    """
    if num_vls < 1:
        raise ValueError("a chiplet needs at least one VL")
    start = 0 if include_fault_free else 1
    for size in range(start, num_vls):
        for combo in itertools.combinations(range(num_vls), size):
            yield frozenset(combo)


def scenario_count(num_vls: int, include_fault_free: bool = False) -> int:
    """Number of faulty scenarios for a chiplet with ``num_vls`` VLs.

    ``scenario_count(4)`` is the paper's 14. With ``include_fault_free``
    it counts the table entries actually stored (15 for 4 VLs).
    """
    total = sum(math.comb(num_vls, k) for k in range(1, num_vls))
    return total + (1 if include_fault_free else 0)
