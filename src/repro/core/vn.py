"""Virtual-network separation: Rules 1-3 and Algorithm 1 of the paper.

DeFT guarantees deadlock freedom with two virtual networks (VN.0 and VN.1),
one virtual channel each in the baseline configuration:

* **Rule 1** — switching from VN.1 back to VN.0 is forbidden (VN.0 -> VN.1
  is allowed).
* **Rule 2** — packets *in VN.0* may not route from an Up port to a
  Horizontal port (i.e. after ascending into a chiplet, a VN.0 packet may
  only eject).
* **Rule 3** — packets *in VN.1* may not route from a Horizontal port to a
  Down port (i.e. a VN.1 packet that has moved horizontally on a chiplet
  can never descend).

"In VN.x" refers to the virtual network of the buffer the packet currently
occupies (its input VC at the router making the decision). The VN of the
*output* VC is what this module computes: :func:`allowed_output_vns`
returns every legal output VN for a hop, and the caller (the DeFT routing
algorithm) picks one — round-robin when both are legal, which is what
produces the paper's balanced VC utilization (Fig. 5).

Port classes here are relative to the router making the decision:

* input ``UP``   — the packet arrived through a vertical channel going up
  (only possible at a chiplet boundary router);
* input ``DOWN`` — the packet arrived through a vertical channel going down
  (only possible at an interposer router);
* output ``UP``  — the hop ascends (interposer router -> chiplet);
* output ``DOWN``— the hop descends (chiplet boundary router -> interposer).
"""

from __future__ import annotations

import enum

from ..errors import RoutingError

#: Virtual network identifiers. With ``num_vcs == 2`` the VN index is the
#: VC index; with more VCs, VCs are partitioned between the two VNs.
VN0 = 0
VN1 = 1


class Location(enum.IntEnum):
    """Which layer the deciding router is on."""

    CHIPLET = 0
    INTERPOSER = 1


class PortClass(enum.IntEnum):
    """Port classification used by the rules (see module docstring)."""

    LOCAL = 0
    HORIZONTAL = 1
    UP = 2
    DOWN = 3


def classify_turn(in_port: PortClass, out_port: PortClass) -> str:
    """Human-readable label of a turn, e.g. ``"HORIZONTAL->DOWN"``.

    Used in error messages and by the CDG analysis reports.
    """
    return f"{in_port.name}->{out_port.name}"


def _rule2_forbids(in_port: PortClass, out_port: PortClass, vn_out: int) -> bool:
    """Rule 2: an Up -> Horizontal turn may not *land* in VN.0.

    Theorem III.4's proof makes the binding side explicit: a packet in
    VN.0 "can be switched to VN.1 to go from Up to Horizontal ports" — so
    the rule constrains the output VC class of the turn (the VN.0 channel
    dependency graph must contain no Up -> Horizontal edges), not the
    packet's current network.
    """
    return (
        vn_out == VN0
        and in_port is PortClass.UP
        and out_port is PortClass.HORIZONTAL
    )


def _rule3_forbids(in_port: PortClass, out_port: PortClass, vn_in: int) -> bool:
    """Rule 3: a packet *sitting in* VN.1 may not turn Horizontal -> Down.

    Here the constraint binds on the input side: a VN.1 horizontal buffer
    must have no dependency on any Down channel (and Rule 1 already
    prevents the packet from escaping to VN.0).
    """
    return (
        vn_in == VN1
        and in_port is PortClass.HORIZONTAL
        and out_port is PortClass.DOWN
    )


def allowed_output_vns(
    in_port: PortClass,
    out_port: PortClass,
    vn_in: int,
) -> tuple[int, ...]:
    """Every VN the *output* VC may belong to for this hop.

    The returned tuple is ordered VN.0-first. It is empty only for the one
    hop Rules 1-3 make illegal outright: a VN.1 packet attempting
    Horizontal -> Down (the DeFT routing algorithm never generates it;
    attempting it is a caller bug).

    Semantics: a packet occupying an input VC of network ``vn_in`` wants
    to move to ``out_port``. Rule 1 limits candidates to ``>= vn_in``;
    Rule 2 strikes VN.0 from Up -> Horizontal turns (the switch-while-
    turning of Theorem III.4); Rule 3 voids the whole set for VN.1
    packets turning Horizontal -> Down.
    """
    if _rule3_forbids(in_port, out_port, vn_in):
        return ()
    candidates = (VN0, VN1) if vn_in == VN0 else (VN1,)  # Rule 1
    return tuple(
        vn for vn in candidates if not _rule2_forbids(in_port, out_port, vn)
    )


def assign_injection_vn(
    source_is_interposer: bool,
    source_is_boundary: bool,
    destination_on_same_chiplet: bool,
    round_robin_state: int,
) -> tuple[int, int]:
    """Algorithm 1's source-router VN assignment.

    Args:
        source_is_interposer: packet injected by an interposer PE (DRAM).
        source_is_boundary: packet injected by a chiplet boundary router.
        destination_on_same_chiplet: intra-chiplet packet (or interposer ->
            interposer packet).
        round_robin_state: the source router's running round-robin counter.

    Returns:
        ``(vn, next_round_robin_state)``. Per Algorithm 1, sources on the
        interposer, on the destination chiplet (intra-chiplet packets), and
        boundary routers round-robin between VN.0 and VN.1; all other
        inter-chiplet packets start in VN.0 (they will need a
        Horizontal -> Down turn at the boundary router, which Rule 3
        forbids in VN.1).
    """
    may_round_robin = (
        source_is_interposer or destination_on_same_chiplet or source_is_boundary
    )
    if may_round_robin:
        vn = VN0 if round_robin_state % 2 == 0 else VN1
        return vn, round_robin_state + 1
    return VN0, round_robin_state


def boundary_down_vns(vn_in: int) -> tuple[int, ...]:
    """Legal output VNs for the down-traversal at a boundary router.

    Algorithm 1: "if going to the interposer then do round-robin
    reassignment between VN.0 and VN.1". A packet arriving in VN.0 may
    descend in either network (Theorem III.3); a packet already in VN.1
    must stay there (Rule 1). The caller round-robins over the returned
    tuple.
    """
    if vn_in == VN0:
        return (VN0, VN1)
    return (VN1,)


def interposer_up_vn() -> int:
    """Output VN for the up-traversal at an interposer router.

    Algorithm 1: packets "coming from the interposer go to (remain in)
    VN.1". Forcing the up-channel VC into VN.1 guarantees the packet can
    perform Up -> Horizontal turns on the destination chiplet without ever
    testing Rule 2 (Theorem III.4).
    """
    return VN1


def check_hop_legal(in_port: PortClass, out_port: PortClass, vn_in: int, vn_out: int) -> None:
    """Validate a concrete hop against all three rules; raise on violation.

    Used by the simulator's self-checking mode and the test-suite to prove
    that the DeFT implementation never performs an illegal hop.
    """
    if vn_out < vn_in:
        raise RoutingError(
            f"Rule 1 violation: VN.{vn_in} -> VN.{vn_out} on {classify_turn(in_port, out_port)}"
        )
    if _rule2_forbids(in_port, out_port, vn_out):
        raise RoutingError(
            f"Rule 2 violation: {classify_turn(in_port, out_port)} landing in VN.{vn_out}"
        )
    if _rule3_forbids(in_port, out_port, vn_in):
        raise RoutingError(f"Rule 3 violation: {classify_turn(in_port, out_port)} in VN.{vn_in}")
