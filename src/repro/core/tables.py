"""Pre-optimized VL-selection lookup tables (the router LUTs).

At design time DeFT runs Algorithm 2 for every per-chiplet fault scenario
and stores the resulting selection sets; at run time a router simply looks
up the entry for the currently observed fault pattern ("14 VL addresses
are saved in each router" for the 4-VL baseline).

A :class:`SelectionTable` holds the table for one chiplet *side* (the same
structure serves the source-chiplet down-selection and the interposer-side
up-selection, per Section III-B: the two selections are symmetric). Keys
are frozen sets of faulty local VL indices; values map each chiplet router
(row-major local index) to the *local VL index* it selects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

from ..errors import OptimizationError
from ..topology.builder import System
from .fault_scenarios import enumerate_chiplet_scenarios
from .optimizer import default_optimizer
from .vl_selection import SelectionProblem, SelectionResult


@dataclass(frozen=True)
class SelectionTable:
    """Offline-optimized selections for one chiplet, all fault scenarios.

    Attributes:
        chiplet: chiplet index within the system.
        entries: scenario (frozen set of faulty local VL indices) ->
            per-router selected local VL index (tuple over the chiplet's
            routers in row-major order).
        costs: the optimized cost ``C*_s`` per scenario, for reporting.
    """

    chiplet: int
    entries: Mapping[frozenset[int], tuple[int, ...]]
    costs: Mapping[frozenset[int], float]

    def lookup(self, faulty: frozenset[int]) -> tuple[int, ...]:
        """The selection for a fault pattern.

        Raises:
            KeyError: for the all-faulty pattern (chiplet disconnected),
                which has no stored entry by construction.
        """
        return self.entries[faulty]

    def vl_for_router(self, local_router_index: int, faulty: frozenset[int]) -> int:
        """Local VL index selected by one router under a fault pattern."""
        return self.entries[faulty][local_router_index]

    @property
    def num_entries(self) -> int:
        return len(self.entries)

    def table_bits(self, num_vls: int) -> int:
        """Storage footprint per router in bits (for the area model).

        Each router stores one VL address per *faulty* scenario (the
        fault-free selection is also held, as the active default). A VL
        address needs ``ceil(log2(num_vls))`` bits.
        """
        address_bits = max(1, (num_vls - 1).bit_length())
        return self.num_entries * address_bits


def build_selection_tables(
    system: System,
    traffic_of_router: Callable[[int], float] | None = None,
    rho: float = 0.01,
    optimizer: Callable[[SelectionProblem], SelectionResult] = default_optimizer,
) -> dict[int, SelectionTable]:
    """Run the offline analysis for every chiplet of a system.

    Args:
        system: the built 2.5D system.
        traffic_of_router: inter-chiplet traffic rate ``T_r`` for a router
            id; ``None`` uses the paper's pessimistic uniform assumption.
        rho: the distance/balance weight of equation (6).
        optimizer: optimization search to use (equation 7's ``O``).

    Returns:
        chiplet index -> :class:`SelectionTable`.
    """
    tables: dict[int, SelectionTable] = {}
    for chiplet in range(system.spec.num_chiplets):
        routers = system.chiplet_routers(chiplet)
        links = system.vls_of_chiplet(chiplet)
        router_positions = tuple((r.x, r.y) for r in routers)
        if traffic_of_router is None:
            traffic = tuple(1.0 for _ in routers)
        else:
            traffic = tuple(float(traffic_of_router(r.id)) for r in routers)
        entries: dict[frozenset[int], tuple[int, ...]] = {}
        costs: dict[frozenset[int], float] = {}
        for scenario in enumerate_chiplet_scenarios(len(links)):
            alive = [link for link in links if link.local_index not in scenario]
            if not alive:  # pragma: no cover - excluded by enumeration
                continue
            problem = SelectionProblem(
                router_positions=router_positions,
                vl_positions=tuple((link.cx, link.cy) for link in alive),
                traffic=traffic,
                rho=rho,
            )
            result = optimizer(problem)
            # Map indices over the alive subset back to local VL indices.
            alive_locals = [link.local_index for link in alive]
            entries[scenario] = tuple(alive_locals[i] for i in result.selection)
            costs[scenario] = result.cost
        tables[chiplet] = SelectionTable(chiplet=chiplet, entries=entries, costs=costs)
    return tables


def distance_tables(system: System) -> dict[int, SelectionTable]:
    """Closest-VL tables for every scenario (the ``DeFT-Dis`` strategy).

    Same lookup interface as the optimized tables so the routing engine is
    agnostic to the selection strategy.
    """
    tables: dict[int, SelectionTable] = {}
    for chiplet in range(system.spec.num_chiplets):
        routers = system.chiplet_routers(chiplet)
        links = system.vls_of_chiplet(chiplet)
        entries: dict[frozenset[int], tuple[int, ...]] = {}
        costs: dict[frozenset[int], float] = {}
        for scenario in enumerate_chiplet_scenarios(len(links)):
            alive = [link for link in links if link.local_index not in scenario]
            selection = []
            for router in routers:
                best = min(
                    alive,
                    key=lambda link: (
                        abs(router.x - link.cx) + abs(router.y - link.cy),
                        link.local_index,
                    ),
                )
                selection.append(best.local_index)
            entries[scenario] = tuple(selection)
            costs[scenario] = float("nan")
        tables[chiplet] = SelectionTable(chiplet=chiplet, entries=entries, costs=costs)
    return tables
