"""DeFT's core mechanisms (the paper's primary contribution).

* :mod:`repro.core.vn` — the virtual-network separation rules (Rules 1-3,
  Fig. 2) and the VN-assignment policy (Algorithm 1).
* :mod:`repro.core.vl_selection` — the VL-selection cost model
  (equations 1-6) and selection-set utilities.
* :mod:`repro.core.optimizer` — optimization searches implementing
  equation 7 / Algorithm 2 (exhaustive, exact composition+assignment,
  local search).
* :mod:`repro.core.fault_scenarios` — per-chiplet fault-scenario
  enumeration (the "14 combinations" of Section III-B).
* :mod:`repro.core.tables` — the per-router lookup tables built offline
  and consulted at run time.
"""

from .vn import (
    VN0,
    VN1,
    Location,
    PortClass,
    allowed_output_vns,
    assign_injection_vn,
    classify_turn,
)
from .vl_selection import (
    SelectionProblem,
    SelectionResult,
    distance_based_selection,
    distance_cost,
    load_cost,
    selection_cost,
    vl_loads,
)
from .optimizer import (
    CompositionOptimizer,
    ExhaustiveOptimizer,
    LocalSearchOptimizer,
    default_optimizer,
)
from .fault_scenarios import enumerate_chiplet_scenarios, scenario_count
from .tables import SelectionTable, build_selection_tables, distance_tables

__all__ = [
    "VN0",
    "VN1",
    "Location",
    "PortClass",
    "allowed_output_vns",
    "assign_injection_vn",
    "classify_turn",
    "SelectionProblem",
    "SelectionResult",
    "distance_based_selection",
    "distance_cost",
    "load_cost",
    "selection_cost",
    "vl_loads",
    "CompositionOptimizer",
    "ExhaustiveOptimizer",
    "LocalSearchOptimizer",
    "default_optimizer",
    "enumerate_chiplet_scenarios",
    "scenario_count",
    "SelectionTable",
    "build_selection_tables",
    "distance_tables",
]
