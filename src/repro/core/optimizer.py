"""Optimization searches for equation (7) / Algorithm 2.

Three interchangeable optimizers produce the selection set ``s*``:

* :class:`ExhaustiveOptimizer` — the literal Algorithm 2 loop over *all*
  ``V^R`` selection sets. Feasible only for small instances (the paper's
  "the search space is small" holds per-scenario only after exploiting
  structure); retained as the ground truth for tests.
* :class:`CompositionOptimizer` — exact for uniform traffic: because the
  balance term (eq. 3) depends only on how many routers pick each VL, it
  enumerates load *compositions* ``(n_1..n_V)`` and solves the remaining
  distance term optimally as a min-cost assignment. Cost:
  ``C(R+V-1, V-1)`` compositions x one Hungarian solve — milliseconds for
  the paper's 16-router/4-VL chiplets instead of ``4^16`` evaluations.
* :class:`LocalSearchOptimizer` — multi-restart first-improvement local
  search over single-router moves and pair swaps; handles arbitrary
  (non-uniform) traffic profiles, e.g. the traffic-aware selection of
  Fig. 3(c).

:func:`default_optimizer` picks the exact method whenever it applies.
"""

from __future__ import annotations

import itertools
import random
from typing import Iterable, Sequence

import numpy as np
from scipy.optimize import linear_sum_assignment

from ..errors import OptimizationError
from .vl_selection import (
    SelectionProblem,
    SelectionResult,
    distance_based_selection,
    selection_cost,
)


class ExhaustiveOptimizer:
    """Algorithm 2 verbatim: evaluate every selection set.

    Guarded by ``max_sets`` so it cannot be launched on instances where the
    enumeration would be astronomically large.
    """

    def __init__(self, max_sets: int = 2_000_000):
        self.max_sets = max_sets

    def optimize(self, problem: SelectionProblem) -> SelectionResult:
        total = problem.num_vls ** problem.num_routers
        if total > self.max_sets:
            raise OptimizationError(
                f"exhaustive search over {total} selection sets exceeds the "
                f"{self.max_sets} limit; use CompositionOptimizer or LocalSearchOptimizer"
            )
        best_selection: tuple[int, ...] | None = None
        best_cost = float("inf")
        evaluations = 0
        for selection in itertools.product(range(problem.num_vls), repeat=problem.num_routers):
            cost = selection_cost(problem, selection)
            evaluations += 1
            if cost < best_cost:
                best_cost = cost
                best_selection = selection
        assert best_selection is not None  # num_vls >= 1 guarantees a candidate
        return SelectionResult(best_selection, best_cost, evaluations, method="exhaustive")


class CompositionOptimizer:
    """Exact optimizer for uniform per-router traffic.

    With uniform traffic ``T_r = T`` the VL load is ``l_v = T * n_v`` where
    ``n_v`` is the number of routers selecting VL ``v``, so the balance
    cost depends only on the composition ``(n_1..n_V)`` of R into V parts.
    For each composition the distance term is minimized independently by a
    min-cost bipartite assignment of routers to VL "slots" (VL ``v``
    duplicated ``n_v`` times). The global optimum is the best composition.

    For *non-uniform* traffic this is a heuristic (the balance term no
    longer depends on counts alone); :func:`default_optimizer` only selects
    it when the traffic vector is uniform.
    """

    def optimize(self, problem: SelectionProblem) -> SelectionResult:
        R, V = problem.num_routers, problem.num_vls
        distance = np.array(
            [[problem.distance(r, v) for v in range(V)] for r in range(R)],
            dtype=float,
        )
        traffic = problem.traffic[0] if problem.traffic else 1.0
        best_cost = float("inf")
        best_selection: tuple[int, ...] | None = None
        evaluations = 0
        for composition in _compositions(R, V):
            balance = _uniform_balance_cost(composition, traffic, V)
            if balance >= best_cost:
                continue  # distance cost is non-negative; prune.
            slots: list[int] = []
            for vl, count in enumerate(composition):
                slots.extend([vl] * count)
            cost_matrix = distance[:, slots]
            rows, cols = linear_sum_assignment(cost_matrix)
            dist = cost_matrix[rows, cols].sum()
            total = problem.rho * float(dist) + balance
            evaluations += 1
            if total < best_cost:
                best_cost = total
                selection = [0] * R
                for r, slot in zip(rows, cols):
                    selection[r] = slots[slot]
                best_selection = tuple(selection)
        if best_selection is None:
            raise OptimizationError("no feasible composition found")
        return SelectionResult(best_selection, best_cost, evaluations, method="composition")


class LocalSearchOptimizer:
    """Multi-restart local search for arbitrary traffic profiles.

    Starts from the distance-based selection plus ``restarts - 1`` random
    selections; repeatedly applies the best single-router move or
    router-pair swap until no improvement remains.
    """

    def __init__(self, restarts: int = 8, seed: int = 0, max_rounds: int = 200):
        if restarts < 1:
            raise OptimizationError("restarts must be >= 1")
        self.restarts = restarts
        self.seed = seed
        self.max_rounds = max_rounds

    def optimize(self, problem: SelectionProblem) -> SelectionResult:
        rng = random.Random(self.seed)
        R, V = problem.num_routers, problem.num_vls
        starts: list[list[int]] = [list(distance_based_selection(problem))]
        for _ in range(self.restarts - 1):
            starts.append([rng.randrange(V) for _ in range(R)])
        best_selection: tuple[int, ...] | None = None
        best_cost = float("inf")
        evaluations = 0
        for start in starts:
            selection, cost, evals = self._descend(problem, start)
            evaluations += evals
            if cost < best_cost:
                best_cost = cost
                best_selection = tuple(selection)
        assert best_selection is not None
        return SelectionResult(best_selection, best_cost, evaluations, method="local-search")

    def _descend(
        self, problem: SelectionProblem, selection: list[int]
    ) -> tuple[list[int], float, int]:
        cost = selection_cost(problem, selection)
        evaluations = 1
        for _ in range(self.max_rounds):
            improved = False
            # Single-router moves.
            for router in range(problem.num_routers):
                original = selection[router]
                for vl in range(problem.num_vls):
                    if vl == original:
                        continue
                    selection[router] = vl
                    candidate = selection_cost(problem, selection)
                    evaluations += 1
                    if candidate < cost - 1e-12:
                        cost = candidate
                        original = vl
                        improved = True
                    else:
                        selection[router] = original
            # Pair swaps (escape count-preserving local minima).
            for a in range(problem.num_routers):
                for b in range(a + 1, problem.num_routers):
                    if selection[a] == selection[b]:
                        continue
                    selection[a], selection[b] = selection[b], selection[a]
                    candidate = selection_cost(problem, selection)
                    evaluations += 1
                    if candidate < cost - 1e-12:
                        cost = candidate
                        improved = True
                    else:
                        selection[a], selection[b] = selection[b], selection[a]
            if not improved:
                break
        return selection, cost, evaluations


def default_optimizer(problem: SelectionProblem) -> SelectionResult:
    """Dispatch to the strongest applicable optimizer.

    * uniform traffic -> :class:`CompositionOptimizer` (exact);
    * tiny instances -> :class:`ExhaustiveOptimizer` (exact);
    * otherwise -> :class:`LocalSearchOptimizer`.
    """
    traffic = problem.traffic
    is_uniform = len(set(traffic)) <= 1
    if is_uniform:
        return CompositionOptimizer().optimize(problem)
    if problem.num_vls ** problem.num_routers <= 200_000:
        return ExhaustiveOptimizer().optimize(problem)
    return LocalSearchOptimizer().optimize(problem)


def _compositions(total: int, parts: int) -> Iterable[tuple[int, ...]]:
    """All tuples of ``parts`` non-negative ints summing to ``total``."""
    if parts == 1:
        yield (total,)
        return
    for head in range(total + 1):
        for tail in _compositions(total - head, parts - 1):
            yield (head,) + tail


def _uniform_balance_cost(composition: Sequence[int], traffic: float, num_vls: int) -> float:
    """Balance cost (eq. 3 summed) for a composition under uniform traffic."""
    total = sum(composition) * traffic
    average = total / num_vls
    if average == 0:
        return 0.0
    return sum(abs(count * traffic - average) / average for count in composition)
