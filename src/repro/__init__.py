"""DeFT: deadlock-free and fault-tolerant routing for 2.5D chiplet networks.

A from-scratch Python reproduction of Taheri, Pasricha and Nikdast,
"DeFT: A Deadlock-Free and Fault-Tolerant Routing Algorithm for 2.5D
Chiplet Networks" (DATE 2022), including the cycle-accurate 2.5D NoC
substrate, the DeFT algorithm, the MTR and RC baselines, the traffic and
fault models, and harnesses regenerating every figure and table of the
paper's evaluation.

Quickstart::

    from repro import (
        SimulationConfig, Simulator, baseline_4_chiplets,
        DeftRouting, UniformTraffic,
    )

    system = baseline_4_chiplets()
    algo = DeftRouting(system)
    traffic = UniformTraffic(system, rate=0.004, seed=1)
    report = Simulator(system, algo, traffic, SimulationConfig()).run()
    print(report.summary())
"""

from .config import SimulationConfig, SweepConfig
from .errors import (
    ConfigurationError,
    DeadlockError,
    FaultModelError,
    OptimizationError,
    ReproError,
    RoutingError,
    TopologyError,
    UnroutablePacketError,
)
from .topology import (
    System,
    SystemSpec,
    ChipletSpec,
    baseline_4_chiplets,
    baseline_6_chiplets,
    build_system,
    chiplet_grid,
    single_chiplet,
)
from .fault import (
    DirectedVL,
    FaultState,
    VLDirection,
    chiplet_fault_pattern,
    fault_free,
    random_fault_state,
)
from .network import Simulator, SimulationReport
from .routing import (
    DeftRouting,
    MtrRouting,
    Port,
    RcRouting,
    RoutingAlgorithm,
    VlSelectionStrategy,
    available_algorithms,
    make_algorithm,
)
from .traffic import (
    HotspotTraffic,
    LocalizedTraffic,
    MultiApplicationTraffic,
    ParsecLikeTraffic,
    TrafficGenerator,
    UniformTraffic,
)

__version__ = "1.0.0"

__all__ = [
    "SimulationConfig",
    "SweepConfig",
    "ReproError",
    "TopologyError",
    "ConfigurationError",
    "RoutingError",
    "UnroutablePacketError",
    "DeadlockError",
    "OptimizationError",
    "FaultModelError",
    "System",
    "SystemSpec",
    "ChipletSpec",
    "baseline_4_chiplets",
    "baseline_6_chiplets",
    "build_system",
    "chiplet_grid",
    "single_chiplet",
    "DirectedVL",
    "FaultState",
    "VLDirection",
    "chiplet_fault_pattern",
    "fault_free",
    "random_fault_state",
    "Simulator",
    "SimulationReport",
    "DeftRouting",
    "MtrRouting",
    "RcRouting",
    "Port",
    "RoutingAlgorithm",
    "VlSelectionStrategy",
    "available_algorithms",
    "make_algorithm",
    "TrafficGenerator",
    "UniformTraffic",
    "LocalizedTraffic",
    "HotspotTraffic",
    "ParsecLikeTraffic",
    "MultiApplicationTraffic",
    "__version__",
]
