"""Traffic-generator registry (string names + parameters -> instances).

The runner's :class:`~repro.runner.spec.TrafficSpec` and the CLI both
build traffic through this registry, so every pattern a campaign can
reference has a canonical name and a flat, JSON-scalar parameter set.

Rate-based synthetic patterns take ``rate`` (packets/cycle/core);
PARSEC-like application traffic takes application codes + ``load_scale``.
"""

from __future__ import annotations

from typing import Callable

from ..errors import ConfigurationError
from ..topology.builder import System
from .base import TrafficGenerator
from .parsec import APP_PROFILES, ParsecLikeTraffic, two_app_workload
from .synthetic import (
    BitComplementTraffic,
    HotspotTraffic,
    LocalizedTraffic,
    TransposeTraffic,
    UniformTraffic,
)


def _parsec(system: System, seed: int, app: str, load_scale: float = 1.0) -> TrafficGenerator:
    try:
        profile = APP_PROFILES[app]
    except KeyError:
        raise ConfigurationError(
            f"unknown PARSEC application {app!r}; available: {sorted(APP_PROFILES)}"
        ) from None
    return ParsecLikeTraffic(system, profile, seed=seed, load_scale=load_scale)


def _parsec_pair(
    system: System, seed: int, app_a: str, app_b: str, load_scale: float = 1.0
) -> TrafficGenerator:
    for app in (app_a, app_b):
        if app not in APP_PROFILES:
            raise ConfigurationError(
                f"unknown PARSEC application {app!r}; available: {sorted(APP_PROFILES)}"
            )
    return two_app_workload(system, app_a, app_b, seed=seed, load_scale=load_scale)


_FACTORIES: dict[str, Callable[..., TrafficGenerator]] = {
    "uniform": lambda system, seed, rate: UniformTraffic(system, rate, seed),
    "localized": lambda system, seed, rate, local_fraction=0.4: LocalizedTraffic(
        system, rate, seed, local_fraction=local_fraction
    ),
    "hotspot": lambda system, seed, rate, hotspot_rate=0.1: HotspotTraffic(
        system, rate, seed, hotspot_rate=hotspot_rate
    ),
    "transpose": lambda system, seed, rate: TransposeTraffic(system, rate, seed),
    "bit-complement": lambda system, seed, rate: BitComplementTraffic(system, rate, seed),
    "parsec": _parsec,
    "parsec-pair": _parsec_pair,
}

#: Patterns parameterized by a single injection ``rate`` — the ones the
#: CLI's sweep/campaign grids iterate over.
RATE_PATTERNS: tuple[str, ...] = (
    "bit-complement",
    "hotspot",
    "localized",
    "transpose",
    "uniform",
)


def available_traffic() -> tuple[str, ...]:
    """Registered traffic-pattern names."""
    return tuple(sorted(_FACTORIES))


def make_traffic(name: str, system: System, seed: int = 1, **params) -> TrafficGenerator:
    """Instantiate a traffic generator by name.

    Raises:
        ConfigurationError: unknown name or invalid parameter set.
    """
    try:
        factory = _FACTORIES[name.lower()]
    except KeyError:
        raise ConfigurationError(
            f"unknown traffic pattern {name!r}; available: {available_traffic()}"
        ) from None
    try:
        return factory(system, seed, **params)
    except TypeError as exc:
        raise ConfigurationError(f"bad parameters for traffic {name!r}: {exc}") from None
