"""Synthetic traffic patterns (paper Section IV-A/B).

* :class:`UniformTraffic` — destination uniform over all other cores.
* :class:`LocalizedTraffic` — a fraction (the paper uses 40%) of packets
  stay on the source chiplet; the rest go to cores on other chiplets.
* :class:`HotspotTraffic` — a few hotspot destinations receive extra
  traffic (the paper uses 3 hotspots at 10% each).
* :class:`TransposeTraffic` / :class:`BitComplementTraffic` — classic mesh
  stress patterns, useful for wider validation of the substrate.
"""

from __future__ import annotations

from typing import Sequence

from ..errors import ConfigurationError
from ..topology.builder import System
from .base import RandomTraffic


class UniformTraffic(RandomTraffic):
    """Uniform-random destinations over every other core."""

    name = "uniform"

    def _pick_destination(self, src: int) -> int:
        cores = self.sources
        dst = src
        while dst == src:
            dst = cores[self.rng.randrange(len(cores))]
        return dst


class LocalizedTraffic(RandomTraffic):
    """Localized traffic: ``local_fraction`` of packets stay intra-chiplet.

    The remaining packets pick a uniform destination among cores of other
    chiplets (always inter-chiplet), which matches the paper's description
    that 40% of packets have source and destination on the same chiplet.
    """

    name = "localized"

    def __init__(self, system: System, rate: float, seed: int = 1,
                 local_fraction: float = 0.4):
        super().__init__(system, rate, seed)
        if not 0 <= local_fraction <= 1:
            raise ConfigurationError("local_fraction must be in [0, 1]")
        self.local_fraction = local_fraction
        self._same_chiplet: dict[int, tuple[int, ...]] = {}
        self._other_chiplets: dict[int, tuple[int, ...]] = {}
        for chiplet in range(system.spec.num_chiplets):
            members = tuple(r.id for r in system.chiplet_routers(chiplet))
            others = tuple(c for c in system.cores if c not in set(members))
            for rid in members:
                self._same_chiplet[rid] = members
                self._other_chiplets[rid] = others

    def _pick_destination(self, src: int) -> int:
        rng = self.rng
        if rng.random() < self.local_fraction:
            peers = self._same_chiplet[src]
            dst = src
            while dst == src:
                dst = peers[rng.randrange(len(peers))]
            return dst
        others = self._other_chiplets[src]
        return others[rng.randrange(len(others))]


class HotspotTraffic(RandomTraffic):
    """Hotspot traffic: chosen nodes absorb a fixed share of all packets.

    With probability ``sum(hotspot_rates)`` the destination is one of the
    hotspots (chosen proportionally); otherwise it is uniform over the
    other cores. The paper's configuration is three hotspots at 10% each.
    """

    name = "hotspot"

    def __init__(self, system: System, rate: float, seed: int = 1,
                 hotspots: Sequence[int] | None = None,
                 hotspot_rate: float = 0.1):
        super().__init__(system, rate, seed)
        if hotspots is None:
            hotspots = self.default_hotspots(system)
        if not hotspots:
            raise ConfigurationError("hotspot traffic needs at least one hotspot")
        self.hotspots = tuple(hotspots)
        self.hotspot_rate = hotspot_rate
        total = hotspot_rate * len(self.hotspots)
        if total >= 1.0:
            raise ConfigurationError(
                f"{len(self.hotspots)} hotspots at rate {hotspot_rate} absorb >= 100%"
            )
        self.total_hotspot_share = total

    @staticmethod
    def default_hotspots(system: System) -> tuple[int, ...]:
        """Three spread-out hotspot cores (one per chiplet, first three chiplets)."""
        hotspots = []
        for chiplet in range(min(3, system.spec.num_chiplets)):
            routers = system.chiplet_routers(chiplet)
            hotspots.append(routers[len(routers) // 2].id)
        return tuple(hotspots)

    def _pick_destination(self, src: int) -> int:
        rng = self.rng
        if rng.random() < self.total_hotspot_share:
            choices = [h for h in self.hotspots if h != src] or list(self.hotspots)
            return choices[rng.randrange(len(choices))]
        cores = self.sources
        dst = src
        while dst == src:
            dst = cores[rng.randrange(len(cores))]
        return dst


class TransposeTraffic(RandomTraffic):
    """Matrix-transpose pattern over the global core grid.

    Core at footprint position (x, y) sends to the core at (y, x). Cores
    whose transpose position has no core (or is themselves) fall back to
    uniform destinations.
    """

    name = "transpose"

    def __init__(self, system: System, rate: float, seed: int = 1):
        super().__init__(system, rate, seed)
        by_footprint = {
            (system.routers[c].gx, system.routers[c].gy): c for c in system.cores
        }
        self._partner: dict[int, int | None] = {}
        for core in system.cores:
            router = system.routers[core]
            partner = by_footprint.get((router.gy, router.gx))
            self._partner[core] = partner if partner not in (None, core) else None

    def _pick_destination(self, src: int) -> int:
        partner = self._partner[src]
        if partner is not None:
            return partner
        cores = self.sources
        dst = src
        while dst == src:
            dst = cores[self.rng.randrange(len(cores))]
        return dst


class BitComplementTraffic(RandomTraffic):
    """Bit-complement pattern over the core index space."""

    name = "bit-complement"

    def __init__(self, system: System, rate: float, seed: int = 1):
        super().__init__(system, rate, seed)
        cores = list(system.cores)
        n = len(cores)
        self._partner = {
            core: cores[(n - 1) - index] for index, core in enumerate(cores)
        }

    def _pick_destination(self, src: int) -> int:
        partner = self._partner[src]
        if partner != src:
            return partner
        cores = self.sources
        dst = src
        while dst == src:
            dst = cores[self.rng.randrange(len(cores))]
        return dst
