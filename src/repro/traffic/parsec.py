"""PARSEC-like CMP traffic (substitution for the paper's GEM5 traces).

The paper generated real-application traffic by running eight PARSEC
benchmarks on GEM5 in full-system mode (64 x86 cores, four coherence
directories, four shared L2 banks) and replaying the traces in Noxim.
Neither GEM5 nor PARSEC is available offline, so this module generates
*synthetic CMP traffic with the same structure*:

* 64 cores (or an assigned subset per application) inject request traffic
  split between: other cores of the same chiplet (coherence locality),
  cores of other chiplets (sharing misses), and the shared L2/directory
  nodes on the interposer;
* the shared L2 banks and directories inject reply traffic back to cores
  at a matching aggregate rate — this is what hotspots the interposer and
  the up-VLs, the effect Fig. 6(b) depends on;
* per-core two-state (burst/idle) Markov modulation adds the burstiness
  that distinguishes application traces from Bernoulli noise.

Each application has a *total* network load (packets/cycle across the
whole application) that is divided among its assigned cores: running one
application on 64 cores yields low per-core rates ("low congestion ...
when running a single application"), while two co-running applications on
32 cores each double per-core intensity and share the L2/directory
nodes — reproducing the paper's observation that DeFT's advantage grows
in multi-application scenarios.

The per-application loads are calibrated so that the two-application
pairs of Fig. 6(b) are ordered by load exactly as the paper sorts them:
FA+FL < CA+FA < FL+DE < DE+FA < BO+CA < BL+DE < SW+CA < ST+FL.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

from ..errors import ConfigurationError
from ..topology.builder import System
from ..topology.geometry import INTERPOSER_LAYER
from .base import TrafficGenerator


@dataclass(frozen=True)
class AppProfile:
    """Traffic profile of one application.

    Attributes:
        name: full benchmark name.
        abbrev: two-letter code used on the paper's x-axis.
        total_load: aggregate injection (packets/cycle) across the app.
        local_fraction: share of core-sourced packets that stay on the
            source chiplet.
        l2_fraction: share of core-sourced packets that target the shared
            L2/directory nodes (each such packet later triggers a reply).
        burstiness: 0 = smooth Bernoulli; towards 1 = strongly bursty.
    """

    name: str
    abbrev: str
    total_load: float
    local_fraction: float
    l2_fraction: float
    burstiness: float


#: Calibrated profiles for the eight PARSEC applications of Fig. 6.
#: Relative total loads satisfy the paper's load ordering of the
#: two-application pairs (see module docstring). Locality/L2 shares follow
#: the published characterization of each benchmark's sharing behaviour
#: (e.g. fluidanimate = neighbour communication -> high locality; canneal
#: = irregular global accesses -> low locality, high L2 traffic).
APP_PROFILES: dict[str, AppProfile] = {
    "FL": AppProfile("fluidanimate", "FL", total_load=0.040, local_fraction=0.55,
                     l2_fraction=0.25, burstiness=0.3),
    "FA": AppProfile("facesim", "FA", total_load=0.080, local_fraction=0.45,
                     l2_fraction=0.30, burstiness=0.3),
    "BL": AppProfile("blackscholes", "BL", total_load=0.120, local_fraction=0.40,
                     l2_fraction=0.30, burstiness=0.1),
    "CA": AppProfile("canneal", "CA", total_load=0.125, local_fraction=0.20,
                     l2_fraction=0.45, burstiness=0.5),
    "BO": AppProfile("bodytrack", "BO", total_load=0.180, local_fraction=0.40,
                     l2_fraction=0.35, burstiness=0.4),
    "DE": AppProfile("dedup", "DE", total_load=0.200, local_fraction=0.35,
                     l2_fraction=0.40, burstiness=0.5),
    "SW": AppProfile("swaptions", "SW", total_load=0.220, local_fraction=0.45,
                     l2_fraction=0.30, burstiness=0.2),
    "ST": AppProfile("streamcluster", "ST", total_load=0.320, local_fraction=0.25,
                     l2_fraction=0.50, burstiness=0.4),
}

#: The two-application combinations of Fig. 6(b), in the paper's order.
FIG6B_PAIRS: tuple[tuple[str, str], ...] = (
    ("FA", "FL"), ("CA", "FA"), ("FL", "DE"), ("DE", "FA"),
    ("BO", "CA"), ("BL", "DE"), ("SW", "CA"), ("ST", "FL"),
)

#: Single-application order of Fig. 6(a).
FIG6A_APPS: tuple[str, ...] = ("FA", "FL", "CA", "DE", "BO", "BL", "SW", "ST")

_BURST_LENGTH = 50          # expected cycles per burst
_BURST_TIME_SHARE = 0.2     # stationary fraction of time spent bursting


def app_pair_load(a: str, b: str) -> float:
    """Combined total load of two co-running applications."""
    return APP_PROFILES[a].total_load + APP_PROFILES[b].total_load


def shared_l2_nodes(system: System) -> tuple[int, ...]:
    """Interposer routers hosting the four shared L2 banks.

    Placed at the centre of the interposer, matching a banked shared-L2
    floorplan on an active interposer.
    """
    w, h = system.spec.interposer_width, system.spec.interposer_height
    cx0, cy0 = w // 2 - 1, h // 2 - 1
    coords = [(cx0, cy0), (cx0 + 1, cy0), (cx0, cy0 + 1), (cx0 + 1, cy0 + 1)]
    return tuple(system.router_id(INTERPOSER_LAYER, x, y) for x, y in coords)


def directory_nodes(system: System) -> tuple[int, ...]:
    """Interposer routers hosting the four coherence directories.

    Co-located with the DRAM PEs of the preset systems (directories sit
    next to the memory controllers they front).
    """
    if system.drams:
        return tuple(system.drams)
    # Fallback for DRAM-less systems: interposer corners.
    w, h = system.spec.interposer_width, system.spec.interposer_height
    coords = [(0, 0), (w - 1, 0), (0, h - 1), (w - 1, h - 1)]
    return tuple(system.router_id(INTERPOSER_LAYER, x, y) for x, y in coords)


class ParsecLikeTraffic(TrafficGenerator):
    """Synthetic trace generator for one application.

    Args:
        system: the 2.5D system.
        profile: application profile (see :data:`APP_PROFILES`).
        cores: router ids of the cores running this application
            (defaults to every core in the system).
        seed: RNG seed.
        load_scale: multiplier on the profile's total load (used by the
            experiment harness for sensitivity sweeps).
    """

    def __init__(
        self,
        system: System,
        profile: AppProfile,
        cores: Sequence[int] | None = None,
        seed: int = 1,
        load_scale: float = 1.0,
    ):
        if load_scale < 0:
            raise ConfigurationError("load_scale must be non-negative")
        self.system = system
        self.profile = profile
        self.name = f"parsec-{profile.abbrev}"
        self.cores: tuple[int, ...] = tuple(cores if cores is not None else system.cores)
        if not self.cores:
            raise ConfigurationError("application needs at least one core")
        self.rng = random.Random(seed)
        self.l2_nodes = shared_l2_nodes(system)
        self.dir_nodes = directory_nodes(system)
        self.service_nodes = self.l2_nodes + self.dir_nodes
        self.core_rate = profile.total_load * load_scale / len(self.cores)
        # Replies: aggregate service-node injection matches the aggregate
        # request traffic directed at the service nodes.
        request_rate_total = profile.total_load * load_scale * profile.l2_fraction
        self.service_rate = request_rate_total / len(self.service_nodes)
        # Burst modulation (two-state Markov chain per core).
        self._bursting: dict[int, bool] = {core: False for core in self.cores}
        self._p_exit = 1.0 / _BURST_LENGTH
        self._p_enter = self._p_exit * _BURST_TIME_SHARE / (1.0 - _BURST_TIME_SHARE)
        beta = profile.burstiness
        self._rate_on = self.core_rate * (1.0 + beta * (1.0 - _BURST_TIME_SHARE) / _BURST_TIME_SHARE)
        self._rate_off = self.core_rate * (1.0 - beta)
        # Pre-computed destination groups per core.
        self._same_chiplet: dict[int, tuple[int, ...]] = {}
        self._remote_cores: dict[int, tuple[int, ...]] = {}
        core_set = set(self.cores)
        for chiplet in range(system.spec.num_chiplets):
            members = tuple(
                r.id for r in system.chiplet_routers(chiplet) if r.id in core_set
            )
            others = tuple(c for c in self.cores if c not in set(members))
            for rid in members:
                self._same_chiplet[rid] = members
                self._remote_cores[rid] = others

    def packets_for_cycle(self, cycle: int) -> list[tuple[int, int]]:
        rng = self.rng
        packets: list[tuple[int, int]] = []
        for core in self.cores:
            bursting = self._bursting[core]
            if bursting:
                if rng.random() < self._p_exit:
                    self._bursting[core] = False
            elif rng.random() < self._p_enter:
                self._bursting[core] = True
            rate = self._rate_on if self._bursting[core] else self._rate_off
            if rng.random() < rate:
                dst = self._pick_core_destination(core)
                if dst is not None and dst != core:
                    packets.append((core, dst))
        for node in self.service_nodes:
            if rng.random() < self.service_rate:
                packets.append((node, self.cores[rng.randrange(len(self.cores))]))
        return packets

    def _pick_core_destination(self, src: int) -> int | None:
        rng = self.rng
        profile = self.profile
        roll = rng.random()
        if roll < profile.l2_fraction:
            return self.service_nodes[rng.randrange(len(self.service_nodes))]
        if roll < profile.l2_fraction + profile.local_fraction:
            peers = self._same_chiplet[src]
            if len(peers) > 1:
                dst = src
                while dst == src:
                    dst = peers[rng.randrange(len(peers))]
                return dst
            return None
        others = self._remote_cores[src]
        if others:
            return others[rng.randrange(len(others))]
        return None


class MultiApplicationTraffic(TrafficGenerator):
    """Co-running applications, each on its own core partition.

    Used for Fig. 6(b): two applications on 32 cores each, splitting the
    4-chiplet system in half while sharing the interposer L2/directories.
    """

    def __init__(self, generators: Sequence[ParsecLikeTraffic]):
        if not generators:
            raise ConfigurationError("need at least one application")
        self.generators = list(generators)
        self.name = "+".join(g.profile.abbrev for g in self.generators)

    def packets_for_cycle(self, cycle: int) -> list[tuple[int, int]]:
        packets: list[tuple[int, int]] = []
        for generator in self.generators:
            packets.extend(generator.packets_for_cycle(cycle))
        return packets


def two_app_workload(
    system: System,
    app_a: str,
    app_b: str,
    seed: int = 1,
    load_scale: float = 1.0,
) -> MultiApplicationTraffic:
    """The Fig. 6(b) setup: ``app_a`` on the first half of the chiplets,
    ``app_b`` on the second half (32 + 32 cores on the baseline system)."""
    num_chiplets = system.spec.num_chiplets
    half = num_chiplets // 2
    cores_a: list[int] = []
    cores_b: list[int] = []
    for chiplet in range(num_chiplets):
        members = [r.id for r in system.chiplet_routers(chiplet)]
        (cores_a if chiplet < half else cores_b).extend(members)
    gen_a = ParsecLikeTraffic(
        system, APP_PROFILES[app_a], cores_a, seed=seed, load_scale=load_scale
    )
    gen_b = ParsecLikeTraffic(
        system, APP_PROFILES[app_b], cores_b, seed=seed + 7919, load_scale=load_scale
    )
    return MultiApplicationTraffic([gen_a, gen_b])
