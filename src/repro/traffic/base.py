"""Traffic-generator interface and trace-driven injection."""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass
from typing import Iterable, Sequence

from ..errors import ConfigurationError
from ..topology.builder import System


class TrafficGenerator(abc.ABC):
    """Produces (source, destination) packet requests per cycle.

    Implementations must be deterministic for a given seed so experiments
    are reproducible.
    """

    name: str = "traffic"

    @abc.abstractmethod
    def packets_for_cycle(self, cycle: int) -> list[tuple[int, int]]:
        """Packets created this cycle as ``(src_router, dst_router)`` pairs."""


class RandomTraffic(TrafficGenerator):
    """Base for Bernoulli-injection synthetic patterns.

    Every source PE independently creates a packet with probability
    ``rate`` per cycle (packets/cycle/node, the x-axis unit of Fig. 4);
    the destination is drawn by :meth:`_pick_destination`.
    """

    def __init__(self, system: System, rate: float, seed: int = 1,
                 sources: Sequence[int] | None = None):
        if rate < 0 or rate > 1:
            raise ConfigurationError(f"injection rate must be in [0, 1], got {rate}")
        self.system = system
        self.rate = rate
        self.seed = seed
        self.sources: tuple[int, ...] = tuple(sources if sources is not None else system.cores)
        self.rng = random.Random(seed)

    def packets_for_cycle(self, cycle: int) -> list[tuple[int, int]]:
        rate = self.rate
        if rate <= 0:
            return []
        rng = self.rng
        packets = []
        for src in self.sources:
            if rng.random() < rate:
                dst = self._pick_destination(src)
                if dst != src:
                    packets.append((src, dst))
        return packets

    def _pick_destination(self, src: int) -> int:  # pragma: no cover - abstract-ish
        raise NotImplementedError


@dataclass(frozen=True)
class TraceEntry:
    """One packet of a pre-generated trace."""

    cycle: int
    src: int
    dst: int


class TraceTraffic(TrafficGenerator):
    """Replays a sorted trace of :class:`TraceEntry` items.

    Entries must be sorted by cycle; an optional ``cycle_offset`` shifts
    the whole trace (used to skip warmup).
    """

    name = "trace"

    def __init__(self, entries: Iterable[TraceEntry], repeat_period: int | None = None):
        self.entries = sorted(entries, key=lambda e: e.cycle)
        self.repeat_period = repeat_period
        self._by_cycle: dict[int, list[tuple[int, int]]] = {}
        for entry in self.entries:
            self._by_cycle.setdefault(entry.cycle, []).append((entry.src, entry.dst))

    def packets_for_cycle(self, cycle: int) -> list[tuple[int, int]]:
        if self.repeat_period:
            cycle = cycle % self.repeat_period
        return self._by_cycle.get(cycle, [])

    @property
    def num_packets(self) -> int:
        return len(self.entries)
