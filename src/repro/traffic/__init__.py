"""Traffic generation.

Synthetic patterns used in the paper's Fig. 4/5 (Uniform, Localized,
Hotspot), classic extras (transpose, bit-complement) for wider testing,
trace-driven injection, and the PARSEC-like CMP workload generator that
substitutes for the paper's GEM5 full-system traces (Fig. 6).
"""

from .base import TraceEntry, TrafficGenerator, TraceTraffic
from .synthetic import (
    BitComplementTraffic,
    HotspotTraffic,
    LocalizedTraffic,
    TransposeTraffic,
    UniformTraffic,
)
from .parsec import (
    APP_PROFILES,
    FIG6A_APPS,
    FIG6B_PAIRS,
    AppProfile,
    MultiApplicationTraffic,
    ParsecLikeTraffic,
    app_pair_load,
    directory_nodes,
    shared_l2_nodes,
    two_app_workload,
)
from .registry import RATE_PATTERNS, available_traffic, make_traffic

__all__ = [
    "TrafficGenerator",
    "TraceEntry",
    "TraceTraffic",
    "UniformTraffic",
    "LocalizedTraffic",
    "HotspotTraffic",
    "TransposeTraffic",
    "BitComplementTraffic",
    "APP_PROFILES",
    "FIG6A_APPS",
    "FIG6B_PAIRS",
    "AppProfile",
    "ParsecLikeTraffic",
    "MultiApplicationTraffic",
    "app_pair_load",
    "directory_nodes",
    "shared_l2_nodes",
    "two_app_workload",
    "RATE_PATTERNS",
    "available_traffic",
    "make_traffic",
]
