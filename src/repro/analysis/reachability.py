"""Exact reachability analysis under VL faults (Fig. 7).

The paper defines reachability as "the ratio of packets that can be
successfully routed, to the total number of injected packets" and reports
the average and worst case over *all combinations* of k faulty directed
VL channels, excluding patterns that disconnect a chiplet. Enumerating
C(32, 8) = 10.5M patterns per point is wasteful; this module computes the
same quantities *exactly* by decomposition:

1. For each of the three algorithms, routability of a core pair (s, d)
   with s on chiplet A and d on chiplet B factorizes as
   ``send_ok(s | down-faults of A) AND deliver_ok(d | up-faults of B)``
   (verified by the test-suite against the algorithms' own
   ``is_routable``). Intra-chiplet pairs are always routable.
2. Per chiplet, enumerate every local fault pattern (2^V - 1 admissible
   down patterns x 2^V - 1 up patterns) and record ``S(p)`` = number of
   senders alive and ``D(q)`` = number of deliverable destinations.
3. The number of reachable cross pairs for a global pattern is
   ``(sum_A S_A)(sum_B D_B) - sum_A S_A * D_A``. Averages over all
   k-fault patterns follow from a chiplet-by-chiplet convolution that
   tracks the moment sums (count, sum S, sum D, sum S*sum D, sum S*D);
   the worst case follows from a DP over (faults, sum S, sum D) keeping
   the minimal sum of per-chiplet S*D products.

Both are exact; :func:`brute_force_reachability` and
:func:`monte_carlo_reachability` exist to validate them on small k.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field

from typing import TYPE_CHECKING

from ..errors import FaultModelError
from ..fault.model import DirectedVL, FaultState, VLDirection, all_fault_patterns
from ..routing.base import RoutingAlgorithm
from ..topology.builder import System
from ..topology.geometry import INTERPOSER_LAYER

if TYPE_CHECKING:  # pragma: no cover
    from ..routing.compiled import CompiledRoutes


@dataclass(frozen=True)
class _ChipletState:
    """One admissible per-chiplet local fault assignment."""

    faults: int      # |down pattern| + |up pattern|
    senders: int     # S(p): routers that can still send inter-chiplet
    receivers: int   # D(q): routers that can still be delivered to
    count: int = 1   # how many (p, q) pattern pairs share this signature


class _ChipletProfile:
    """Per-chiplet enumeration of fault patterns -> (S, D) signatures."""

    def __init__(self, system: System, algorithm: RoutingAlgorithm, chiplet: int,
                 witness_src: int, witness_dst: int):
        self.chiplet = chiplet
        links = system.vls_of_chiplet(chiplet)
        routers = [r.id for r in system.chiplet_routers(chiplet)]
        self.num_routers = len(routers)
        num_vls = len(links)
        # S(p) for every admissible down pattern p (p != full set).
        self.senders: dict[frozenset[int], int] = {}
        # D(q) for every admissible up pattern q.
        self.receivers: dict[frozenset[int], int] = {}
        original = algorithm.fault_state
        try:
            for size in range(num_vls):
                for combo in itertools.combinations(range(num_vls), size):
                    pattern = frozenset(combo)
                    down_faults = [
                        DirectedVL(links[i].index, VLDirection.DOWN) for i in combo
                    ]
                    algorithm.set_fault_state(FaultState(system, down_faults))
                    self.senders[pattern] = sum(
                        1 for r in routers if algorithm.is_routable(r, witness_dst)
                    )
                    up_faults = [
                        DirectedVL(links[i].index, VLDirection.UP) for i in combo
                    ]
                    algorithm.set_fault_state(FaultState(system, up_faults))
                    self.receivers[pattern] = sum(
                        1 for r in routers if algorithm.is_routable(witness_src, r)
                    )
        finally:
            algorithm.set_fault_state(original)

    def states(self) -> list[_ChipletState]:
        """All (down, up) pattern combinations, collapsed by signature."""
        collapsed: dict[tuple[int, int, int], int] = {}
        for p, s in self.senders.items():
            for q, d in self.receivers.items():
                key = (len(p) + len(q), s, d)
                collapsed[key] = collapsed.get(key, 0) + 1
        return [
            _ChipletState(faults=f, senders=s, receivers=d, count=c)
            for (f, s, d), c in sorted(collapsed.items())
        ]


def _profiles(system: System, algorithm: RoutingAlgorithm) -> list[_ChipletProfile]:
    """Build per-chiplet profiles, using witnesses on a different chiplet."""
    num_chiplets = system.spec.num_chiplets
    if num_chiplets < 2:
        raise FaultModelError("reachability analysis needs at least two chiplets")
    profiles = []
    for chiplet in range(num_chiplets):
        other = (chiplet + 1) % num_chiplets
        witness = system.chiplet_routers(other)[0].id
        profiles.append(_ChipletProfile(system, algorithm, chiplet, witness, witness))
    return profiles


def _pair_totals(system: System) -> tuple[int, int]:
    """(intra-chiplet ordered pairs, total ordered core pairs)."""
    sizes = [len(system.chiplet_routers(c)) for c in range(system.spec.num_chiplets)]
    total_cores = sum(sizes)
    intra = sum(n * (n - 1) for n in sizes)
    total = total_cores * (total_cores - 1)
    return intra, total


# ---------------------------------------------------------------------------
# exact average
# ---------------------------------------------------------------------------

def average_reachability(
    system: System, algorithm: RoutingAlgorithm, num_faults: int
) -> float:
    """Exact mean reachability over all admissible ``num_faults`` patterns.

    Convolves per-chiplet states while tracking, for every running fault
    count: the pattern count W, the sums of ``sum S`` (P), ``sum D`` (Q),
    ``(sum S)(sum D)`` (X) and ``sum S*D`` (Y). The expected number of
    reachable cross pairs is ``(X - Y) / W`` at ``num_faults``.
    """
    profiles = _profiles(system, algorithm)
    max_f = num_faults
    # moments[f] = [W, P, Q, X, Y]
    moments: list[list[float]] = [[0.0] * 5 for _ in range(max_f + 1)]
    moments[0][0] = 1.0
    for profile in profiles:
        nxt: list[list[float]] = [[0.0] * 5 for _ in range(max_f + 1)]
        for f in range(max_f + 1):
            W, P, Q, X, Y = moments[f]
            if W == 0 and P == 0 and Q == 0 and X == 0 and Y == 0:
                continue
            for state in profile.states():
                nf = f + state.faults
                if nf > max_f:
                    continue
                c, s, d = state.count, state.senders, state.receivers
                row = nxt[nf]
                row[0] += c * W
                row[1] += c * (P + s * W)
                row[2] += c * (Q + d * W)
                row[3] += c * (X + s * Q + d * P + s * d * W)
                row[4] += c * (Y + s * d * W)
        moments = nxt
    W, _, _, X, Y = moments[num_faults]
    if W == 0:
        raise FaultModelError(
            f"no admissible fault pattern with {num_faults} faults"
        )
    intra, total = _pair_totals(system)
    expected_cross = (X - Y) / W
    return (intra + expected_cross) / total


# ---------------------------------------------------------------------------
# exact worst case
# ---------------------------------------------------------------------------

def worst_reachability(
    system: System, algorithm: RoutingAlgorithm, num_faults: int
) -> float:
    """Exact minimum reachability over all admissible patterns.

    DP over chiplets with state (faults used, sum S, sum D) keeping the
    minimal achievable ``sum_A S_A * D_A``; the final objective
    ``(sum S)(sum D) - min sum S*D`` is minimized over end states with
    exactly ``num_faults`` faults.
    """
    profiles = _profiles(system, algorithm)
    # dp: {(f, sumS, sumD): min sum of S*D}
    dp: dict[tuple[int, int, int], int] = {(0, 0, 0): 0}
    for profile in profiles:
        states = profile.states()
        nxt: dict[tuple[int, int, int], int] = {}
        for (f, ss, sd), y in dp.items():
            for state in states:
                nf = f + state.faults
                if nf > num_faults:
                    continue
                key = (nf, ss + state.senders, sd + state.receivers)
                value = y + state.senders * state.receivers
                if key not in nxt or value < nxt[key]:
                    nxt[key] = value
        dp = nxt
    candidates = [
        ss * sd - y for (f, ss, sd), y in dp.items() if f == num_faults
    ]
    if not candidates:
        raise FaultModelError(
            f"no admissible fault pattern with {num_faults} faults"
        )
    intra, total = _pair_totals(system)
    return (intra + min(candidates)) / total


# ---------------------------------------------------------------------------
# validators
# ---------------------------------------------------------------------------

def reachability_of_state(
    system: System,
    algorithm: RoutingAlgorithm,
    state: FaultState,
    routes: "CompiledRoutes | None" = None,
) -> float:
    """Reachable fraction of ordered core pairs for one concrete pattern.

    With ``routes`` (a :class:`~repro.routing.compiled.CompiledRoutes`
    over the same algorithm), the fraction is read from the compiled
    per-(chiplet, local-pattern) sender/receiver tables instead of
    probing all ordered pairs — the same factorization the exact curves
    use, O(cores) instead of O(cores²), with rows shared across every
    pattern that repeats a local fault pattern (Monte Carlo campaigns).
    Both paths produce bit-identical fractions.
    """
    if routes is not None:
        if routes.algorithm is not algorithm:
            raise FaultModelError("compiled routes belong to a different algorithm")
        return routes.core_reachability(state)
    original = algorithm.fault_state
    algorithm.set_fault_state(state)
    try:
        cores = system.cores
        reachable = sum(
            1
            for s in cores
            for d in cores
            if s != d and algorithm.is_routable(s, d)
        )
    finally:
        algorithm.set_fault_state(original)
    total = len(cores) * (len(cores) - 1)
    return reachable / total


def brute_force_reachability(
    system: System, algorithm: RoutingAlgorithm, num_faults: int
) -> tuple[float, float]:
    """(average, worst) by full enumeration — exponential, for validation."""
    values = [
        reachability_of_state(system, algorithm, state)
        for state in all_fault_patterns(system, num_faults)
    ]
    if not values:
        raise FaultModelError(f"no admissible pattern with {num_faults} faults")
    return sum(values) / len(values), min(values)


def monte_carlo_reachability(
    system: System,
    algorithm: RoutingAlgorithm,
    num_faults: int,
    samples: int = 200,
    seed: int = 0,
) -> tuple[float, float]:
    """(mean, min) over sampled patterns — for statistical validation."""
    rng = random.Random(seed)
    from ..fault.model import random_fault_state

    values = []
    for _ in range(samples):
        state = random_fault_state(system, num_faults, rng)
        values.append(reachability_of_state(system, algorithm, state))
    return sum(values) / len(values), min(values)


# ---------------------------------------------------------------------------
# figure-level API
# ---------------------------------------------------------------------------

@dataclass
class ReachabilityCurve:
    """Average and worst-case reachability per fault count (one Fig. 7 line pair)."""

    algorithm: str
    fault_counts: tuple[int, ...]
    average: list[float] = field(default_factory=list)
    worst: list[float] = field(default_factory=list)


def reachability_curve(
    system: System,
    algorithm: RoutingAlgorithm,
    fault_counts: tuple[int, ...] = (1, 2, 3, 4, 5, 6, 7, 8),
) -> ReachabilityCurve:
    """Compute the Fig. 7 curve (average + worst) for one algorithm."""
    curve = ReachabilityCurve(algorithm=algorithm.name, fault_counts=fault_counts)
    for k in fault_counts:
        curve.average.append(average_reachability(system, algorithm, k))
        curve.worst.append(worst_reachability(system, algorithm, k))
    return curve
