"""Channel-dependency-graph deadlock analysis.

Following Dally & Seitz, a routing function is deadlock-free on a network
iff its channel dependency graph (CDG) is acyclic. Nodes here are
*(directed physical link, virtual network)* pairs; an edge ``c1 -> c2``
means some packet can hold ``c1`` while requesting ``c2``.

The graph is built by symbolically walking every (source, destination)
pair through the actual routing implementation, branching over every
virtual network the algorithm permits at each hop — so the analysis
verifies the *code*, not a paper model of it. The RC baseline's
whole-packet buffer is modelled as a dependency break: chains end when a
packet is absorbed at the boundary router and restart from the RC buffer
(the RC paper's argument; the buffer is granted before injection, so
nothing ever waits on it while holding channels).

Outputs:

* :func:`build_cdg` — the networkx digraph plus bookkeeping.
* :func:`find_dependency_cycle` — a concrete cyclic dependency (list of
  channels) or ``None``; DeFT/MTR/RC must return ``None``; the naive
  configuration of Fig. 1 must not.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable

import networkx as nx

from ..network.flit import Packet
from ..routing.base import Port, RoutingAlgorithm, opposite_port
from ..routing.compiled import CompiledRoutes, compile_routes
from ..errors import UnroutablePacketError
from ..topology.builder import System

#: Maximum hops walked per pair before declaring the route non-minimal.
_MAX_HOPS = 256

Channel = tuple[Hashable, int]  # ((from_router, to_router), vn)


@dataclass
class CdgReport:
    """Result of a CDG construction."""

    graph: nx.DiGraph
    pairs_walked: int
    unroutable_pairs: int = 0
    notes: list[str] = field(default_factory=list)

    @property
    def is_acyclic(self) -> bool:
        return nx.is_directed_acyclic_graph(self.graph)

    def cycle(self) -> list[Channel] | None:
        """A concrete dependency cycle, or None when acyclic."""
        try:
            edges = nx.find_cycle(self.graph)
        except nx.NetworkXNoCycle:
            return None
        return [edge[0] for edge in edges]


def _link_of(system: System, router_id: int, out_port: Port) -> tuple[int, int]:
    """The directed physical link leaving ``router_id`` through ``out_port``."""
    router = system.routers[router_id]
    if out_port == Port.VERTICAL:
        assert router.vertical_neighbor is not None
        return (router_id, router.vertical_neighbor)
    neighbor = router.neighbors[out_port]  # Port EAST..SOUTH == Direction
    return (router_id, neighbor)


def _walk_pair(
    system: System,
    algorithm: RoutingAlgorithm,
    route_fn,
    graph: nx.DiGraph,
    src: int,
    dst: int,
    rc_breaks: bool,
) -> None:
    """Add every dependency of the (src, dst) routes to the graph.

    Walks a symbolic packet with a frontier of (router, in_port, vn,
    holding-channel) states, branching over each VN the algorithm allows.
    ``route_fn`` is either the live ``algorithm.route`` or a compiled
    table's lookup — pairs heading to the same chiplet share most of
    their states, so the table turns repeated derivations into hits.
    """
    probe = Packet(0, src, dst, size=8, created_cycle=0)
    # Algorithm 1 round-robins the injection VN for several source kinds;
    # prepare twice to collect every start VN the source may use.
    start_vns: set[int] = set()
    for _ in range(2):
        algorithm.prepare_packet(probe)
        start_vns.add(probe.vn)
    # State: (router, in_port, vn, held channel or None)
    frontier: list[tuple[int, Port, int, Channel | None]] = [
        (src, Port.LOCAL, vn, None) for vn in sorted(start_vns)
    ]
    seen: set[tuple[int, Port, int, Channel | None]] = set()
    hops = 0
    while frontier:
        hops += 1
        if hops > _MAX_HOPS * 4:
            raise RuntimeError(f"CDG walk did not terminate for pair {src}->{dst}")
        state = frontier.pop()
        if state in seen:
            continue
        seen.add(state)
        router_id, in_port, vn, held = state
        probe.vn = vn
        decision = route_fn(probe, router_id, in_port)
        if decision.out_port == Port.LOCAL:
            continue  # ejection consumes; no further dependency
        link = _link_of(system, router_id, decision.out_port)
        breaks_here = (
            rc_breaks
            and probe.needs_rc
            and decision.out_port == Port.VERTICAL
            and not system.routers[router_id].is_interposer
        )
        next_router = link[1]
        next_in = _arrival_port(system, router_id, next_router, decision.out_port)
        for out_vn in decision.allowed_vns:
            out_channel: Channel = (link, out_vn)
            graph.add_node(out_channel)
            if held is not None and not breaks_here:
                graph.add_edge(held, out_channel)
            if breaks_here:
                # Chain restarts from the RC buffer: model the buffer as a
                # source node feeding the down link (no inbound edges).
                graph.add_edge((("rcbuf", router_id), 0), out_channel)
            frontier.append((next_router, next_in, out_vn, out_channel))


def _arrival_port(system: System, from_router: int, to_router: int, out_port: Port) -> Port:
    """Input port at ``to_router`` for a flit leaving via ``out_port``."""
    if out_port == Port.VERTICAL:
        return Port.VERTICAL
    return opposite_port(out_port)


def build_cdg(
    system: System,
    algorithm: RoutingAlgorithm,
    sources: tuple[int, ...] | None = None,
    destinations: tuple[int, ...] | None = None,
    routes: CompiledRoutes | None | str = "auto",
) -> CdgReport:
    """Construct the CDG of an algorithm over all PE pairs.

    Args:
        system: the 2.5D system.
        algorithm: the routing algorithm (its *current* fault state is
            honoured, so the analysis can also verify faulted networks).
        sources / destinations: override the default of every PE
            (cores + DRAMs).
        routes: route-decision source, as in
            :class:`~repro.network.simulator.Simulator`: ``"auto"``
            (default) compiles the algorithm when possible — the walk
            revisits the same routing states across pairs, so the table
            replaces re-derivation with lookups — ``None`` forces live
            per-hop dispatch.
    """
    graph = nx.DiGraph()
    rc_breaks = any(algorithm.uses_rc_buffer(r.id) for r in system.routers)
    sources = sources if sources is not None else system.pes
    destinations = destinations if destinations is not None else system.pes
    if routes == "auto":
        routes = compile_routes(algorithm)
    elif routes is not None and routes.algorithm is not algorithm:
        raise ValueError("compiled routes were built for a different algorithm")
    route_fn = routes.route if routes is not None else algorithm.route
    algorithm.reset_runtime_state()
    walked = 0
    unroutable = 0
    for src in sources:
        for dst in destinations:
            if src == dst:
                continue
            if not algorithm.is_routable(src, dst):
                unroutable += 1
                continue
            try:
                _walk_pair(system, algorithm, route_fn, graph, src, dst, rc_breaks)
            except UnroutablePacketError:
                unroutable += 1
                continue
            walked += 1
    algorithm.reset_runtime_state()
    return CdgReport(graph=graph, pairs_walked=walked, unroutable_pairs=unroutable)


def find_dependency_cycle(
    system: System, algorithm: RoutingAlgorithm
) -> list[Channel] | None:
    """Convenience: build the CDG and return a cycle (or None if acyclic)."""
    return build_cdg(system, algorithm).cycle()
