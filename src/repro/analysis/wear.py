"""Vertical-link wear and lifetime analysis.

Section III-B motivates VL-utilization balancing with reliability:
"over-utilization of VLs can increase stress-migration-based faults
[15]" (electromigration in microbump pillars under high current density).
This module turns that argument into a measurable quantity: given the
per-VL traffic of a simulation run, it estimates relative microbump
lifetimes with a Black's-equation-style current-density acceleration
model and summarizes how evenly an algorithm spreads wear.

The absolute lifetimes are not calibrated (that would need the bump
metallurgy of [15]); what the model supports is *relative* comparison —
e.g. DeFT's balanced selection vs the distance-based selection's 8/4/4
hot VL under a fault (Fig. 3(b)), which is exactly the paper's argument.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping

from ..network.stats import StatsCollector
from ..topology.builder import System

#: Black's equation current-density exponent; 2.0 is the classic value
#: for electromigration-dominated failure.
DEFAULT_CURRENT_EXPONENT = 2.0


@dataclass(frozen=True)
class VlWearReport:
    """Wear summary for one simulation run.

    Attributes:
        utilization: per directed channel ``(vl_index, direction)`` ->
            flits per cycle.
        relative_mttf: same keys -> lifetime relative to a channel
            carrying the fleet-average load (1.0 = average; > 1 lasts
            longer, < 1 wears out faster).
        min_relative_mttf: the weakest channel's relative lifetime — the
            system-level reliability bottleneck.
        imbalance: max/mean utilization over active channels (1.0 =
            perfectly balanced wear).
    """

    utilization: dict[tuple[int, int], float]
    relative_mttf: dict[tuple[int, int], float]
    min_relative_mttf: float
    imbalance: float

    def hottest_channels(self, count: int = 3) -> list[tuple[tuple[int, int], float]]:
        """The ``count`` most utilized directed channels."""
        ranked = sorted(self.utilization.items(), key=lambda kv: -kv[1])
        return ranked[:count]


def vl_wear_report(
    system: System,
    stats: StatsCollector,
    current_exponent: float = DEFAULT_CURRENT_EXPONENT,
) -> VlWearReport:
    """Estimate relative VL lifetimes from a run's per-VL flit counts.

    Black's equation gives MTTF proportional to ``J^-n`` with ``J`` the
    current density; per-channel flit throughput is the digital proxy for
    ``J``. Lifetimes are normalized to a channel carrying the mean load
    of all *active* channels, so a perfectly balanced selection yields
    ``relative_mttf == 1.0`` everywhere.
    """
    return wear_report_from_loads(
        system, stats.vl_load_report(), stats.cycles_run, current_exponent
    )


def wear_report_from_loads(
    system: System,
    vl_loads: Mapping[int, tuple[int, int]],
    cycles: int,
    current_exponent: float = DEFAULT_CURRENT_EXPONENT,
) -> VlWearReport:
    """Wear report from serialized per-VL ``(down, up)`` flit totals.

    The loads-based entry point lets campaign-runner results — which carry
    ``vl_loads`` instead of a live :class:`StatsCollector` — feed the same
    reliability analysis.
    """
    cycles = max(1, cycles)
    utilization: dict[tuple[int, int], float] = {}
    for link in system.vls:
        down, up = vl_loads.get(link.index, (0, 0))
        utilization[(link.index, 0)] = down / cycles
        utilization[(link.index, 1)] = up / cycles
    active = [value for value in utilization.values() if value > 0]
    if not active:
        ones = {key: 1.0 for key in utilization}
        return VlWearReport(utilization, ones, 1.0, 1.0)
    mean_load = sum(active) / len(active)
    relative_mttf = {}
    for key, load in utilization.items():
        if load <= 0:
            relative_mttf[key] = math.inf
        else:
            relative_mttf[key] = (mean_load / load) ** current_exponent
    finite = [value for value in relative_mttf.values() if math.isfinite(value)]
    min_mttf = min(finite) if finite else 1.0
    imbalance = max(active) / mean_load
    return VlWearReport(
        utilization=utilization,
        relative_mttf=relative_mttf,
        min_relative_mttf=min_mttf,
        imbalance=imbalance,
    )


def wear_summary_row(label: str, report: VlWearReport) -> str:
    """One printable line for experiment reports."""
    return (
        f"{label:>16s}: wear imbalance {report.imbalance:5.2f}x, "
        f"weakest-channel relative MTTF {report.min_relative_mttf:5.2f}"
    )
