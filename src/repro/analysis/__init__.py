"""Static analyses: deadlock (channel-dependency graphs) and reachability.

* :mod:`repro.analysis.cdg` — builds the (channel, VC)-level dependency
  graph induced by a routing algorithm over every source/destination pair
  and checks it for cycles. DeFT/MTR/RC are verified acyclic; the naive
  unprotected configuration reproduces the cyclic dependency of Fig. 1.
* :mod:`repro.analysis.reachability` — exact average/worst-case network
  reachability under k faulty directed VL channels (Fig. 7) via
  per-chiplet decomposition + dynamic programming, with brute-force and
  Monte-Carlo validators.
"""

from .cdg import CdgReport, build_cdg, find_dependency_cycle
from .wear import VlWearReport, vl_wear_report, wear_summary_row
from .reachability import (
    ReachabilityCurve,
    average_reachability,
    brute_force_reachability,
    monte_carlo_reachability,
    reachability_curve,
    reachability_of_state,
    worst_reachability,
)

__all__ = [
    "CdgReport",
    "build_cdg",
    "find_dependency_cycle",
    "VlWearReport",
    "vl_wear_report",
    "wear_summary_row",
    "ReachabilityCurve",
    "average_reachability",
    "brute_force_reachability",
    "monte_carlo_reachability",
    "reachability_curve",
    "reachability_of_state",
    "worst_reachability",
]
