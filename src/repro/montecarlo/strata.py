"""Strata over per-chiplet directed fault-count compositions.

The stratified and importance samplers partition the k-fault sample
space by *composition*: how many of the k faulty directed channels land
on each chiplet's down side and up side. A stratum is the vector
``(d_0, u_0, d_1, u_1, ...)`` — chiplet 0 loses ``d_0`` down and
``u_0`` up channels, and so on. The partition is natural for this
problem because

* the chiplet-disconnection exclusion is exactly "no chiplet with all
  down or all up channels faulty", i.e. ``d_c < V`` and ``u_c < V`` per
  chiplet — admissibility is a *property of the composition*, so each
  stratum's conditional distribution is a product of independent
  uniform per-direction draws with no rejection at all (see
  :func:`repro.fault.model.random_stratified_fault_state`);
* stratum probabilities are *exact* combinatorial ratios
  (``prod_c C(V, d_c) C(V, u_c)`` over the admissible total) — no
  estimation error enters the weights;
* reachability under the send/receive factorization depends on the
  faults only through per-chiplet local patterns, so the composition
  pins each chiplet's sender/receiver counts up to pattern choice —
  for direction-symmetric algorithms (RC is one) the within-stratum
  variance is exactly zero, and for the rest the strata still separate
  the near-disconnecting tail from the benign bulk that uniform
  sampling keeps drawing.

:func:`enumerate_strata` builds the partition with exact weights;
:func:`stratum_scores` prices each stratum's expected reachability
deficit from the compiled per-(chiplet, pattern) tables *before any
simulation runs*; :func:`importance_proposal` turns those scores into a
defensive-mixture proposal; :func:`stratum_sequence` maps global sample
ordinals onto strata deterministically (pure function of the seed), so
every shard driver derives the identical assignment.
"""

from __future__ import annotations

import hashlib
import itertools
import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from ..errors import ConfigurationError
from ..topology.builder import System

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..routing.compiled import CompiledRoutes

#: Compositions beyond this count signal a (system, k) too large for
#: useful stratification — the per-stratum minimum allocation alone
#: would dwarf any sensible sample budget. The 4-chiplet baseline tops
#: out at 3823 strata (k=8), inside the cap.
MAX_STRATA = 4096


def admissible_chiplet_patterns(v: int, j: int) -> int:
    """Admissible ``j``-fault local patterns on a chiplet with ``v`` VLs.

    Counts the ``j``-subsets of the chiplet's ``2v`` directed channels
    that leave at least one down and one up channel alive, by
    inclusion-exclusion over the two disconnecting events::

        C(2v, j) - 2 C(v, j - v) + [j == 2v]

    (``C(v, j - v)`` counts patterns containing *all* down channels —
    the remaining ``j - v`` faults pick among the ``v`` up channels —
    and symmetrically for up; the all-channels pattern is restored
    once.) Equals the sum of ``C(v, d) C(v, u)`` over the admissible
    splits ``d + u = j`` with ``d < v`` and ``u < v`` — the cross-check
    pinning the stratum weights to an independent formula.
    """
    if v < 1:
        raise ConfigurationError(f"chiplet needs at least one VL, got {v}")
    if j < 0 or j > 2 * v:
        return 0
    total = math.comb(2 * v, j)
    full = math.comb(v, j - v) if j >= v else 0
    return total - 2 * full + (1 if j == 2 * v else 0)


@dataclass(frozen=True)
class Stratum:
    """One per-chiplet directed fault-count composition with its mass.

    ``composition`` is ``(d_0, u_0, d_1, u_1, ...)``; ``patterns`` the
    number of admissible global fault patterns in the stratum (product
    of per-direction binomials); ``weight`` its probability under
    uniform admissible sampling — patterns over the total across all
    strata, an exact combinatorial ratio.
    """

    composition: tuple[int, ...]
    patterns: int
    weight: float


def enumerate_strata(
    system: System, fault_count: int, max_strata: int = MAX_STRATA
) -> list[Stratum]:
    """All admissible compositions of ``fault_count`` over directions.

    The weights sum to 1 and each equals the exact probability that a
    uniform draw over admissible k-fault patterns lands in the stratum —
    so the stratified estimator needs no weight estimation at all.
    """
    if fault_count < 0:
        raise ConfigurationError(f"fault count must be >= 0, got {fault_count}")
    vs = [
        len(system.vls_of_chiplet(c)) for c in range(system.spec.num_chiplets)
    ]
    if any(v < 1 for v in vs):
        raise ConfigurationError("every chiplet needs at least one VL")
    # Per-direction slot capacities: d_c and u_c each range 0..V_c-1
    # (V_c would disconnect the chiplet).
    caps = [v - 1 for v in vs for _ in (0, 1)]
    counts: list[tuple[tuple[int, ...], int]] = []

    def extend(prefix: tuple[int, ...], remaining: int, product: int) -> None:
        slot = len(prefix)
        if slot == len(caps):
            if remaining == 0:
                counts.append((prefix, product))
            return
        tail_room = sum(caps[slot + 1 :])
        v = vs[slot // 2]
        lo = max(0, remaining - tail_room)
        for j in range(lo, min(remaining, caps[slot]) + 1):
            extend(prefix + (j,), remaining - j, product * math.comb(v, j))
            if len(counts) > max_strata:
                raise ConfigurationError(
                    f"stratification of k={fault_count} over "
                    f"{len(vs)} chiplets exceeds {max_strata} strata; "
                    "use the uniform sampler for this system"
                )

    extend((), fault_count, 1)
    if not counts:
        raise ConfigurationError(
            f"no admissible {fault_count}-fault pattern exists on this system"
        )
    total = sum(patterns for _, patterns in counts)
    return [
        Stratum(
            composition=composition,
            patterns=patterns,
            weight=patterns / total,
        )
        for composition, patterns in counts
    ]


def stratum_scores(
    system: System,
    routes: "CompiledRoutes | None",
    strata: Sequence[Stratum],
) -> list[float]:
    """Expected reachability deficit of each stratum, pre-simulation.

    For every (chiplet, direction, fault count) the expected number of
    routers that can still send / still receive is computed by averaging
    the compiled per-(chiplet, pattern) reachability tables over the
    direction's equal-probability patterns — the same tables PR 3's
    exact decomposition uses, probed once per local pattern and cached.
    The per-stratum expected reachable fraction then follows the
    send x receive factorization with expectations in place of counts.
    For direction-symmetric algorithms (sender/receiver counts depend
    only on how *many* channels failed) the score is the stratum's exact
    conditional mean; elsewhere it is a proxy — but only proposal
    *efficiency* depends on its accuracy, never correctness: the
    likelihood-ratio reweighting is unbiased for any positive proposal.

    Without compiled tables (``routes is None``) every stratum scores
    0.0 — the defensive mixture then degenerates to the exact weights
    and importance sampling gracefully matches proportional sampling.
    """
    if routes is None:
        return [0.0 for _ in strata]
    num_chiplets = system.spec.num_chiplets
    sizes = [len(system.chiplet_routers(c)) for c in range(num_chiplets)]
    total_cores = sum(sizes)
    total_pairs = total_cores * (total_cores - 1)
    intra = sum(n * (n - 1) for n in sizes)
    if total_pairs == 0 or num_chiplets < 2:
        return [0.0 for _ in strata]

    send_mean: dict[tuple[int, int], float] = {}
    recv_mean: dict[tuple[int, int], float] = {}

    def expect_senders(chiplet: int, d: int) -> float:
        cached = send_mean.get((chiplet, d))
        if cached is None:
            v = len(system.vls_of_chiplet(chiplet))
            patterns = list(itertools.combinations(range(v), d))
            cached = sum(
                routes.chiplet_senders(chiplet, frozenset(p)) for p in patterns
            ) / len(patterns)
            send_mean[(chiplet, d)] = cached
        return cached

    def expect_receivers(chiplet: int, u: int) -> float:
        cached = recv_mean.get((chiplet, u))
        if cached is None:
            v = len(system.vls_of_chiplet(chiplet))
            patterns = list(itertools.combinations(range(v), u))
            cached = sum(
                routes.chiplet_receivers(chiplet, frozenset(p)) for p in patterns
            ) / len(patterns)
            recv_mean[(chiplet, u)] = cached
        return cached

    scores: list[float] = []
    for stratum in strata:
        senders = [
            expect_senders(c, stratum.composition[2 * c])
            for c in range(num_chiplets)
        ]
        receivers = [
            expect_receivers(c, stratum.composition[2 * c + 1])
            for c in range(num_chiplets)
        ]
        cross = sum(senders) * sum(receivers) - sum(
            s * r for s, r in zip(senders, receivers)
        )
        proxy = (intra + cross) / total_pairs
        scores.append(max(0.0, 1.0 - min(1.0, proxy)))
    return scores


def importance_proposal(
    weights: Sequence[float],
    scores: Sequence[float],
    lam: float = 0.25,
    floor: float = 1e-3,
) -> list[float]:
    """Defensive-mixture proposal over strata from deficit scores.

    The variance-optimal proposal for a self-normalized estimator is
    ``q* ∝ w |v - mean|`` — oversample strata whose value *deviates*
    from the mean, on either side, in proportion to how far. With the
    scores as predicted deficits, the tilted component allocates mass
    as ``w (|score - score_mean| + floor)`` where ``score_mean`` is the
    weight-averaged score; in a skewed fault population the big
    deviations are the rare low-reachability strata, so the proposal is
    biased exactly toward the tail uniform sampling misses. The
    ``floor`` keeps every positive-weight stratum reachable even at
    zero deviation. Mixing a ``lam`` fraction of the exact weights back
    in bounds every likelihood ratio by ``1 / lam``, which caps the
    variance an imperfect score model can inflict (defensive importance
    sampling).
    """
    if len(weights) != len(scores):
        raise ConfigurationError(
            f"got {len(scores)} scores for {len(weights)} strata"
        )
    if not weights:
        raise ConfigurationError("importance proposal needs at least one stratum")
    if not 0.0 < lam <= 1.0:
        raise ConfigurationError(f"mixture weight lam must be in (0, 1], got {lam}")
    if floor <= 0.0:
        raise ConfigurationError(f"score floor must be > 0, got {floor}")
    w_total = sum(weights)
    if w_total <= 0.0:
        raise ConfigurationError("stratum weights must sum to > 0")
    score_mean = sum(w * s for w, s in zip(weights, scores)) / w_total
    tilt = [
        w * (abs(s - score_mean) + floor) for w, s in zip(weights, scores)
    ]
    tilt_total = sum(tilt)
    return [
        (1.0 - lam) * t / tilt_total + lam * w / w_total
        for t, w in zip(tilt, weights)
    ]


def stratum_sequence(
    proposal: Sequence[float],
    seed: int,
    fault_count: int,
    start: int,
    count: int,
) -> list[int]:
    """Deterministic stratum index of global ordinals ``start .. start+count-1``.

    Ordinal ``i`` hashes ``(seed, k, i)`` to a uniform in [0, 1) and
    inverts the proposal CDF — a pure function of the campaign spec, so
    every shard driver (and every re-run) assigns the identical stratum
    to the identical ordinal, which is what keeps importance campaigns
    cache-stable and shard-composable.
    """
    cdf: list[float] = []
    acc = 0.0
    for q in proposal:
        acc += q
        cdf.append(acc)
    out: list[int] = []
    for index in range(start, start + count):
        digest = hashlib.sha256(
            f"deft-mc-assign:{seed}:{fault_count}:{index}".encode("utf-8")
        ).digest()
        u = int.from_bytes(digest[:8], "big") / 2**64 * acc
        lo, hi = 0, len(cdf) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if cdf[mid] > u:
                hi = mid
            else:
                lo = mid + 1
        out.append(lo)
    return out
