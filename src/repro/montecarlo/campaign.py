"""Monte Carlo fault-injection campaigns through the campaign runner.

Where :mod:`repro.analysis.reachability` computes Fig. 7 *exactly* by
per-chiplet decomposition, this module estimates the same quantities —
and simulation-only metrics the decomposition cannot provide (latency,
delivery under faults) — by sampling seeded random k-fault scenarios.
Each sample is one :class:`~repro.runner.spec.Job` with
``faults_mode="sample"``, emitted through the :class:`CampaignRunner`,
so Monte Carlo campaigns inherit the runner's parallel backends,
deterministic per-job seeding and the content-addressed result cache:
re-running a campaign with the same spec is served from disk, and
growing ``--samples`` only draws the new indices.

The estimators report sample means, worst observed values and confidence
intervals (normal for means, Wilson for pooled delivery proportions);
``fig7mc`` cross-validates them against the exact curves at small k.

Sampling can also be *adaptive* (``target_ci_width=``): each point keeps
doubling its sample count until the pooled Wilson interval is no wider
than the target (or a cap is hit), with monotonically growing sample
indices so every round stays cache-incremental and deterministic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

from ..config import SimulationConfig
from ..runner import Campaign, CampaignReport, CampaignRunner, Job, SystemRef, TrafficSpec
from ..runner.backends import ProgressFn
from .stats import ConfidenceInterval, normal_mean_interval, sample_mean_std, wilson_interval

#: Metrics a Monte Carlo campaign can estimate: ``reachability`` scores
#: each sampled pattern analytically (no simulation), ``latency`` runs
#: the cycle-accurate simulator under each sampled pattern.
MC_METRICS = ("reachability", "latency")

#: Traffic/config placeholders pinning the canonical form of analytic
#: reachability jobs, so their cache keys never depend on simulation
#: parameters they do not use.
_REACHABILITY_TRAFFIC = ("uniform", 0.0)


@dataclass(frozen=True)
class SampleSummary:
    """Aggregate of one (algorithm, k) group's per-sample values."""

    n: int
    mean: float
    std: float
    worst: float
    interval: ConfidenceInterval


def summarize(
    values: Sequence[float], *, worst: str = "min", confidence: float = 0.95,
    clamp: tuple[float, float] | None = None,
) -> SampleSummary:
    """Mean/std/worst/CI of a sample; ``worst`` picks min or max."""
    mean, std = sample_mean_std(values)
    return SampleSummary(
        n=len(values),
        mean=mean,
        std=std,
        worst=min(values) if worst == "min" else max(values),
        interval=normal_mean_interval(values, confidence, clamp=clamp),
    )


@dataclass
class MonteCarloResult:
    """Estimates for one (algorithm, k) point of a campaign.

    ``primary`` summarizes the campaign's metric (reachability fraction
    or average packet latency). For the latency metric, ``delivery``
    summarizes per-sample delivered ratios and ``delivered_pool`` is the
    Wilson binomial interval over the pooled delivered/measured packet
    counts of every sample.
    """

    algorithm: str
    k: int
    metric: str
    requested: int
    failed: int
    #: Samples that executed OK but whose metric is undefined (e.g. a
    #: latency sample where the fault pattern let no packet through) —
    #: excluded from the estimates but reported, since a latency mean is
    #: conditioned on delivery and silence here would bias the reading.
    dropped: int = 0
    values: list[float] = field(default_factory=list)
    primary: SampleSummary | None = None
    delivery: SampleSummary | None = None
    delivered_pool: ConfidenceInterval | None = None

    @property
    def completed(self) -> int:
        return len(self.values)

    def row(self) -> str:
        """One human-readable table line for CLI/experiment output."""
        if self.primary is None:
            return (
                f"{self.algorithm:>6s} k={self.k:<3d} no usable samples "
                f"({self.failed} failed, {self.dropped} without metric "
                f"of {self.requested})"
            )
        ci = self.primary.interval
        line = (
            f"{self.algorithm:>6s} k={self.k:<3d} n={self.completed:<5d} "
            f"mean={self.primary.mean:8.4f} "
            f"ci=[{ci.low:8.4f}, {ci.high:8.4f}] "
            f"worst={self.primary.worst:8.4f}"
        )
        if self.delivery is not None:
            line += f" delivered={self.delivery.mean:6.4f}"
        if self.failed or self.dropped:
            parts = []
            if self.failed:
                parts.append(f"{self.failed} failed")
            if self.dropped:
                parts.append(f"{self.dropped} without metric")
            line += " (" + ", ".join(parts) + ")"
        return line


@dataclass
class MonteCarloReport:
    """Outcome of :func:`run_montecarlo`: per-point estimates + provenance.

    ``samples`` is the requested per-point count — the *initial batch*
    under adaptive stopping, where each point's actually drawn count is
    its :attr:`MonteCarloResult.requested`.
    """

    metric: str
    samples: int
    seed: int
    confidence: float
    results: list[MonteCarloResult]
    campaign: CampaignReport

    def result_for(self, algorithm: str, k: int) -> MonteCarloResult:
        for result in self.results:
            if result.algorithm == algorithm and result.k == k:
                return result
        raise KeyError(f"no Monte Carlo point for ({algorithm!r}, k={k})")


def montecarlo_jobs(
    system: SystemRef,
    algorithm: str,
    fault_count: int,
    samples: int,
    *,
    seed: int = 0,
    metric: str = "reachability",
    traffic: TrafficSpec | None = None,
    config: SimulationConfig | None = None,
    start: int = 0,
    kernel: str = "auto",
) -> list[Job]:
    """The job list of one (algorithm, k) Monte Carlo group.

    Sample ``i`` is a ``faults_mode="sample"`` job with
    ``fault_sample=i`` and the campaign's master ``seed``; the executor
    derives the pattern RNG from ``(seed, k, i)``, so the job's canonical
    form — and cache key — fully determines the drawn scenario.

    ``start`` offsets the drawn sample indices (``start .. start +
    samples - 1``): the adaptive-stopping loop uses it to extend a group
    without re-emitting — or re-simulating, thanks to the content
    addresses — the samples it already holds.
    """
    if metric not in MC_METRICS:
        raise ValueError(f"metric must be one of {MC_METRICS}, got {metric!r}")
    if samples < 1:
        raise ValueError(f"need at least one sample, got {samples}")
    if start < 0:
        raise ValueError(f"sample start index must be >= 0, got {start}")
    if metric == "reachability":
        # Pinned placeholders: analytic jobs never build traffic or run
        # the simulator, so identical estimates must share cache keys.
        traffic = TrafficSpec.make(
            _REACHABILITY_TRAFFIC[0], rate=_REACHABILITY_TRAFFIC[1]
        )
        config = SimulationConfig()
        kind = "reachability"
    else:
        traffic = traffic or TrafficSpec.make("uniform", rate=0.005)
        config = config or SimulationConfig()
        kind = "simulate"
    return [
        Job.make(
            system=system,
            algorithm=algorithm,
            traffic=traffic,
            config=config,
            seed=seed,
            faults_mode="sample",
            fault_k=fault_count,
            fault_sample=index,
            kind=kind,
            kernel=kernel,
        )
        for index in range(start, start + samples)
    ]


def _estimate_point(
    algorithm: str,
    k: int,
    metric: str,
    outcomes: Sequence,
    requested: int,
    confidence: float,
) -> MonteCarloResult:
    """Aggregate one (algorithm, k) group's job outcomes into estimates."""
    point = MonteCarloResult(
        algorithm=algorithm, k=k, metric=metric,
        requested=requested, failed=sum(1 for r in outcomes if not r.ok),
    )
    ok_results = [r for r in outcomes if r.ok]
    if metric == "reachability":
        point.values = [r.reachability for r in ok_results
                        if math.isfinite(r.reachability)]
        point.dropped = len(ok_results) - len(point.values)
        if point.values:
            point.primary = summarize(
                point.values, worst="min", confidence=confidence, clamp=(0.0, 1.0)
            )
    else:
        kept = [r for r in ok_results if math.isfinite(r.average_latency)]
        point.dropped = len(ok_results) - len(kept)
        point.values = [r.average_latency for r in kept]
        if point.values:
            point.primary = summarize(
                point.values, worst="max", confidence=confidence
            )
            ratios = [r.delivered_ratio for r in kept
                      if math.isfinite(r.delivered_ratio)]
            if ratios:
                point.delivery = summarize(
                    ratios, worst="min", confidence=confidence, clamp=(0.0, 1.0)
                )
            measured = sum(r.packets_measured for r in kept)
            delivered = sum(r.packets_delivered_measured for r in kept)
            if measured:
                point.delivered_pool = wilson_interval(
                    delivered, measured, confidence
                )
    return point


def _stopping_width(
    point: MonteCarloResult, metric: str, total_pairs: int, confidence: float
) -> float | None:
    """Width of the point's Wilson stopping interval, or None if undefined.

    Reachability pools the per-sample reachable-pair counts (each sample
    fraction has denominator ``total_pairs``, so the counts are exact);
    latency pools delivered/measured packets — the Wilson interval the
    report already shows. ``None`` (no usable samples yet) never
    satisfies a target, so sampling continues until the cap.
    """
    if metric == "reachability":
        if not point.values or total_pairs <= 0:
            return None
        reachable = sum(round(value * total_pairs) for value in point.values)
        interval = wilson_interval(
            reachable, len(point.values) * total_pairs, confidence
        )
    else:
        interval = point.delivered_pool
        if interval is None:
            return None
    return interval.high - interval.low


def run_montecarlo(
    system: SystemRef,
    algorithms: Sequence[str],
    fault_counts: Sequence[int],
    samples: int,
    *,
    seed: int = 0,
    metric: str = "reachability",
    traffic: TrafficSpec | None = None,
    config: SimulationConfig | None = None,
    runner: CampaignRunner | None = None,
    confidence: float = 0.95,
    progress: ProgressFn | None = None,
    target_ci_width: float | None = None,
    max_samples: int | None = None,
    kernel: str = "auto",
) -> MonteCarloReport:
    """Run a full (algorithm x k x sample) Monte Carlo campaign.

    The whole grid is submitted as *one* campaign so a parallel backend
    overlaps every sample and a caching runner serves repeats from disk
    (the runner's backends keep per-worker sessions warm, so every sample
    of a group reuses the same built system, algorithm and route tables).
    Failed samples (e.g. no admissible pattern at an extreme k) are
    excluded from the estimates and counted per point.

    With ``target_ci_width``, sampling is *adaptive*: each (algorithm, k)
    point starts with ``samples`` draws and keeps doubling until its
    Wilson stopping interval (pooled reachable pairs for the reachability
    metric, pooled delivered/measured packets for latency) is no wider
    than the target, or ``max_samples`` (default ``16 * samples``) is
    reached. Sample indices keep growing monotonically, so adaptive
    rounds are served incrementally by the content-addressed cache and
    re-runs are deterministic.
    """
    points = [(algorithm, k) for algorithm in algorithms for k in fault_counts]
    name = f"montecarlo-{metric}-{system.label}"
    campaign_runner = runner or CampaignRunner()

    if target_ci_width is None:
        if max_samples is not None:
            raise ValueError(
                "max_samples only applies to adaptive sampling; set "
                "target_ci_width (or drop max_samples)"
            )
        rounds = None
    else:
        if target_ci_width <= 0:
            raise ValueError(f"target_ci_width must be > 0, got {target_ci_width}")
        max_samples = max_samples if max_samples is not None else samples * 16
        if max_samples < samples:
            raise ValueError(
                f"max_samples ({max_samples}) must be >= samples ({samples})"
            )
        # Total ordered core pairs, for pooling reachability fractions
        # back into exact counts — only that metric needs the built
        # system (latency pools packet counts instead). Served from this
        # process's session only when the backend opted into sessions —
        # a --no-session run must not leave a memoized System in the
        # process-global context.
        total_pairs = 0
        if metric == "reachability":
            if getattr(campaign_runner.backend, "use_session", False):
                from ..runner.session import get_session

                built = get_session().system(system)
            else:
                built = system.build()
            cores = len(built.cores)
            total_pairs = cores * (cores - 1)
        rounds = (max_samples, total_pairs)

    outcomes: dict[tuple[str, int], list] = {point: [] for point in points}
    drawn: dict[tuple[str, int], int] = {point: 0 for point in points}
    active = list(points)
    reports: list[CampaignReport] = []
    while active:
        batches: list[tuple[tuple[str, int], list[Job]]] = []
        for point in active:
            already = drawn[point]
            if rounds is None:
                batch = samples
            else:
                batch = min(max(already, samples), rounds[0] - already)
            batches.append((point, montecarlo_jobs(
                system, point[0], point[1], batch,
                seed=seed, metric=metric, traffic=traffic, config=config,
                start=already, kernel=kernel,
            )))
        jobs = [job for _, group in batches for job in group]
        report = campaign_runner.run(
            Campaign(name=name, jobs=tuple(jobs)), progress=progress
        )
        reports.append(report)
        still_active: list[tuple[str, int]] = []
        for point, group in batches:
            outcomes[point].extend(report.result_for(job) for job in group)
            drawn[point] += len(group)
        if rounds is None:
            break
        max_n, total_pairs = rounds
        for point in active:
            estimate = _estimate_point(
                point[0], point[1], metric, outcomes[point], drawn[point], confidence
            )
            width = _stopping_width(estimate, metric, total_pairs, confidence)
            if (width is None or width > target_ci_width) and drawn[point] < max_n:
                still_active.append(point)
        active = still_active

    results = [
        _estimate_point(
            point[0], point[1], metric, outcomes[point], drawn[point], confidence
        )
        for point in points
    ]
    return MonteCarloReport(
        metric=metric, samples=samples, seed=seed, confidence=confidence,
        results=results, campaign=CampaignReport.merge(name, reports),
    )
