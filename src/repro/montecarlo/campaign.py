"""Monte Carlo fault-injection campaigns through the campaign runner.

Where :mod:`repro.analysis.reachability` computes Fig. 7 *exactly* by
per-chiplet decomposition, this module estimates the same quantities —
and simulation-only metrics the decomposition cannot provide (latency,
delivery under faults) — by sampling seeded random k-fault scenarios.
Each sample is one :class:`~repro.runner.spec.Job` with
``faults_mode="sample"``, emitted through the :class:`CampaignRunner`,
so Monte Carlo campaigns inherit the runner's parallel backends,
deterministic per-job seeding and the content-addressed result cache:
re-running a campaign with the same spec is served from disk, and
growing ``--samples`` only draws the new indices.

Three samplers share the engine (``sampler=``):

* ``uniform`` — the original estimator: uniform admissible k-fault
  draws, sample means and pooled Wilson intervals, float-for-float
  unchanged from before the variance-reduction layer existed.
* ``stratified`` — partitions the sample space by per-chiplet
  fault-count composition (:mod:`repro.montecarlo.strata`), weights
  each stratum by its exact combinatorial mass, allocates samples
  proportionally first and by Neyman allocation (``n_s ∝ w_s σ_s``)
  on every adaptive extension. Lopsided compositions — the rare
  near-disconnecting patterns dominating the worst-case curve — are
  guaranteed coverage instead of waiting for uniform luck.
* ``importance`` — additionally *biases* the stratum choice toward
  low expected reachability, scored before any simulation from the
  compiled per-(chiplet, pattern) tables, and undoes the bias with
  unbiased likelihood-ratio reweighting
  (:func:`~repro.montecarlo.stats.importance_estimate`, with ESS
  diagnostics). A defensive mixture bounds the ratios so a bad score
  model can slow convergence but never corrupt it.

Per-(stratum, sample) cache keys are stable: stratified and importance
campaigns over the same spec share their drawn scenarios with each
other and with every earlier run, so overlapping campaigns stay
incremental.

Sampling can be *adaptive* (``target_ci_width=``): each point keeps
extending its sample count (doubling, capped exactly at
``max_samples``) until its stopping interval is no wider than the
target. With ``shard=`` + ``rendezvous_dir=``, N independent drivers
run adaptive campaigns *cooperatively*: every driver derives the full
round deterministically, executes only its key-range slice, and pools
per-round tallies through a :class:`~repro.distributed.rounds.RoundRendezvous`
plus the shared result cache — merged statistics are bit-identical to
the unsharded serial driver, regardless of worker count.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from ..config import SimulationConfig
from ..errors import ConfigurationError
from ..runner import Campaign, CampaignReport, CampaignRunner, Job, SystemRef, TrafficSpec
from ..runner.backends import ProgressFn
from ..runner.result import JobResult
from ..telemetry.metrics import get_registry
from .stats import (
    ConfidenceInterval,
    WeightedEstimate,
    importance_estimate,
    normal_mean_interval,
    sample_mean_std,
    stratified_estimate,
    wilson_interval,
    wilson_intervals,
)
from .strata import (
    Stratum,
    enumerate_strata,
    importance_proposal,
    stratum_scores,
    stratum_sequence,
)

#: Metrics a Monte Carlo campaign can estimate: ``reachability`` scores
#: each sampled pattern analytically (no simulation), ``latency`` runs
#: the cycle-accurate simulator under each sampled pattern.
MC_METRICS = ("reachability", "latency")

#: Sampling strategies of :func:`run_montecarlo`.
MC_SAMPLERS = ("uniform", "stratified", "importance")

#: Traffic/config placeholders pinning the canonical form of analytic
#: reachability jobs, so their cache keys never depend on simulation
#: parameters they do not use.
_REACHABILITY_TRAFFIC = ("uniform", 0.0)

#: Default wait for lagging shard drivers at a round rendezvous.
DEFAULT_ROUND_TIMEOUT = 600.0


@dataclass(frozen=True)
class SampleSummary:
    """Aggregate of one (algorithm, k) group's per-sample values."""

    n: int
    mean: float
    std: float
    worst: float
    interval: ConfidenceInterval


def summarize(
    values: Sequence[float], *, worst: str = "min", confidence: float = 0.95,
    clamp: tuple[float, float] | None = None,
) -> SampleSummary:
    """Mean/std/worst/CI of a sample; ``worst`` picks min or max."""
    mean, std = sample_mean_std(values)
    return SampleSummary(
        n=len(values),
        mean=mean,
        std=std,
        worst=min(values) if worst == "min" else max(values),
        interval=normal_mean_interval(values, confidence, clamp=clamp),
    )


@dataclass
class MonteCarloResult:
    """Estimates for one (algorithm, k) point of a campaign.

    ``primary`` summarizes the campaign's metric (reachability fraction
    or average packet latency). For the latency metric, ``delivery``
    summarizes per-sample delivered ratios and ``delivered_pool`` is the
    Wilson binomial interval over the pooled delivered/measured packet
    counts of every sample.

    For weighted samplers, ``primary.mean`` and ``primary.interval``
    are the *weighted* (unbiased) estimates from :attr:`weighted`;
    ``primary.std`` stays the raw dispersion of the drawn values —
    descriptive only, since the draw itself is deliberately biased.
    ``strata`` counts the point's strata and ``ess`` is the effective
    sample size (equal to n for stratified; the Kish size for
    importance — distrust estimates whose ESS collapsed).
    """

    algorithm: str
    k: int
    metric: str
    requested: int
    failed: int
    #: Samples that executed OK but whose metric is undefined (e.g. a
    #: latency sample where the fault pattern let no packet through) —
    #: excluded from the estimates but reported, since a latency mean is
    #: conditioned on delivery and silence here would bias the reading.
    dropped: int = 0
    values: list[float] = field(default_factory=list)
    primary: SampleSummary | None = None
    delivery: SampleSummary | None = None
    delivered_pool: ConfidenceInterval | None = None
    sampler: str = "uniform"
    strata: int = 0
    ess: float | None = None
    weighted: WeightedEstimate | None = None

    @property
    def completed(self) -> int:
        return len(self.values)

    def row(self) -> str:
        """One human-readable table line for CLI/experiment output."""
        if self.primary is None:
            return (
                f"{self.algorithm:>6s} k={self.k:<3d} no usable samples "
                f"({self.failed} failed, {self.dropped} without metric "
                f"of {self.requested})"
            )
        ci = self.primary.interval
        line = (
            f"{self.algorithm:>6s} k={self.k:<3d} n={self.completed:<5d} "
            f"mean={self.primary.mean:8.4f} "
            f"ci=[{ci.low:8.4f}, {ci.high:8.4f}] "
            f"worst={self.primary.worst:8.4f}"
        )
        if self.delivery is not None:
            line += f" delivered={self.delivery.mean:6.4f}"
        if self.ess is not None and self.sampler == "importance":
            line += f" ess={self.ess:8.1f}"
        if self.failed or self.dropped:
            parts = []
            if self.failed:
                parts.append(f"{self.failed} failed")
            if self.dropped:
                parts.append(f"{self.dropped} without metric")
            line += " (" + ", ".join(parts) + ")"
        return line


@dataclass
class MonteCarloReport:
    """Outcome of :func:`run_montecarlo`: per-point estimates + provenance.

    ``samples`` is the requested per-point count — the *initial batch*
    under adaptive stopping, where each point's actually drawn count is
    its :attr:`MonteCarloResult.requested`.
    """

    metric: str
    samples: int
    seed: int
    confidence: float
    results: list[MonteCarloResult]
    campaign: CampaignReport
    sampler: str = "uniform"

    def result_for(self, algorithm: str, k: int) -> MonteCarloResult:
        for result in self.results:
            if result.algorithm == algorithm and result.k == k:
                return result
        raise KeyError(f"no Monte Carlo point for ({algorithm!r}, k={k})")


def montecarlo_jobs(
    system: SystemRef,
    algorithm: str,
    fault_count: int,
    samples: int,
    *,
    seed: int = 0,
    metric: str = "reachability",
    traffic: TrafficSpec | None = None,
    config: SimulationConfig | None = None,
    start: int = 0,
    kernel: str = "auto",
    stratum: Sequence[int] = (),
) -> list[Job]:
    """The job list of one (algorithm, k) Monte Carlo group.

    Sample ``i`` is a ``faults_mode="sample"`` job with
    ``fault_sample=i`` and the campaign's master ``seed``; the executor
    derives the pattern RNG from ``(seed, k, i)`` — or ``(seed, k,
    stratum, i)`` when ``stratum`` pins a per-chiplet fault-count
    composition — so the job's canonical form — and cache key — fully
    determines the drawn scenario.

    ``start`` offsets the drawn sample indices (``start .. start +
    samples - 1``): the adaptive-stopping loop uses it to extend a group
    without re-emitting — or re-simulating, thanks to the content
    addresses — the samples it already holds. For stratified emission
    the indices are per-stratum ordinals, so every (stratum, ordinal)
    pair is one immutable scenario shared by every campaign that ever
    draws it.
    """
    if metric not in MC_METRICS:
        raise ValueError(f"metric must be one of {MC_METRICS}, got {metric!r}")
    if samples < 1:
        raise ValueError(f"need at least one sample, got {samples}")
    if start < 0:
        raise ValueError(f"sample start index must be >= 0, got {start}")
    if metric == "reachability":
        # Pinned placeholders: analytic jobs never build traffic or run
        # the simulator, so identical estimates must share cache keys.
        traffic = TrafficSpec.make(
            _REACHABILITY_TRAFFIC[0], rate=_REACHABILITY_TRAFFIC[1]
        )
        config = SimulationConfig()
        kind = "reachability"
    else:
        traffic = traffic or TrafficSpec.make("uniform", rate=0.005)
        config = config or SimulationConfig()
        kind = "simulate"
    return [
        Job.make(
            system=system,
            algorithm=algorithm,
            traffic=traffic,
            config=config,
            seed=seed,
            faults_mode="sample",
            fault_k=fault_count,
            fault_sample=index,
            fault_stratum=tuple(stratum),
            kind=kind,
            kernel=kernel,
        )
        for index in range(start, start + samples)
    ]


def _estimate_point(
    algorithm: str,
    k: int,
    metric: str,
    outcomes: Sequence,
    requested: int,
    confidence: float,
) -> MonteCarloResult:
    """Aggregate one (algorithm, k) group's job outcomes into estimates."""
    point = MonteCarloResult(
        algorithm=algorithm, k=k, metric=metric,
        requested=requested, failed=sum(1 for r in outcomes if not r.ok),
    )
    ok_results = [r for r in outcomes if r.ok]
    if metric == "reachability":
        point.values = [r.reachability for r in ok_results
                        if math.isfinite(r.reachability)]
        point.dropped = len(ok_results) - len(point.values)
        if point.values:
            point.primary = summarize(
                point.values, worst="min", confidence=confidence, clamp=(0.0, 1.0)
            )
    else:
        kept = [r for r in ok_results if math.isfinite(r.average_latency)]
        point.dropped = len(ok_results) - len(kept)
        point.values = [r.average_latency for r in kept]
        if point.values:
            point.primary = summarize(
                point.values, worst="max", confidence=confidence
            )
            ratios = [r.delivered_ratio for r in kept
                      if math.isfinite(r.delivered_ratio)]
            if ratios:
                point.delivery = summarize(
                    ratios, worst="min", confidence=confidence, clamp=(0.0, 1.0)
                )
            measured = sum(r.packets_measured for r in kept)
            delivered = sum(r.packets_delivered_measured for r in kept)
            if measured:
                point.delivered_pool = wilson_interval(
                    delivered, measured, confidence
                )
    return point


def _stopping_width(
    point: MonteCarloResult, metric: str, total_pairs: int, confidence: float
) -> float | None:
    """Width of the point's Wilson stopping interval, or None if undefined.

    Reachability pools the per-sample reachable-pair counts (each sample
    fraction has denominator ``total_pairs``, so the counts are exact);
    latency pools delivered/measured packets — the Wilson interval the
    report already shows. ``None`` (no usable samples yet) never
    satisfies a target, so sampling continues until the cap.
    """
    if metric == "reachability":
        if not point.values or total_pairs <= 0:
            return None
        reachable = sum(round(value * total_pairs) for value in point.values)
        interval = wilson_interval(
            reachable, len(point.values) * total_pairs, confidence
        )
    else:
        interval = point.delivered_pool
        if interval is None:
            return None
    return interval.high - interval.low


# ---------------------------------------------------------------------------
# deterministic allocation helpers
# ---------------------------------------------------------------------------


def _largest_remainder(quotas: Sequence[float], total: int) -> list[int]:
    """Round real-valued quotas to integers summing to ``total``.

    Floors first, then hands the leftover units to the largest
    fractional parts (ties broken by index) — the classic
    largest-remainder method, fully deterministic so every shard driver
    computes the identical allocation.
    """
    quota_sum = sum(quotas)
    if quota_sum <= 0:
        raise ConfigurationError("allocation quotas must sum to > 0")
    scaled = [q * total / quota_sum for q in quotas]
    counts = [int(math.floor(s)) for s in scaled]
    leftover = total - sum(counts)
    order = sorted(
        range(len(quotas)), key=lambda i: (-(scaled[i] - counts[i]), i)
    )
    for i in order[:leftover]:
        counts[i] += 1
    return counts


def _allocate_proportional(
    weights: Sequence[float], total: int, minimum: int
) -> list[int]:
    """Proportional allocation with a per-stratum floor.

    Every stratum gets ``minimum`` samples (so a within-stratum variance
    is estimable from round one); the remainder is split proportionally
    to the exact stratum weights.
    """
    base = minimum * len(weights)
    if total < base:
        raise ConfigurationError(
            f"cannot allocate {total} samples over {len(weights)} strata "
            f"with a minimum of {minimum} each"
        )
    extra = _largest_remainder(weights, total - base)
    return [minimum + e for e in extra]


def _allocate_neyman(
    weights: Sequence[float],
    counts: Sequence[int],
    stds: Sequence[float],
    extension: int,
) -> list[int]:
    """Neyman allocation of an extension round from observed variances.

    The optimal fixed-budget split is ``n_s ∝ w_s σ_s``; we aim the
    *cumulative* allocation at that target and hand each stratum the
    positive part of its deficit (never un-drawing existing samples),
    renormalized to the extension budget. Strata with an unknown σ
    (fewer than two samples) borrow the pooled σ of the others; if every
    σ is zero the split degrades to proportional-by-weight.
    """
    pooled_num = sum(
        (n - 1) * s * s for n, s in zip(counts, stds) if n >= 2
    )
    pooled_df = sum(n - 1 for n in counts if n >= 2)
    pooled = math.sqrt(pooled_num / pooled_df) if pooled_df else 0.0
    sigmas = [
        s if n >= 2 else pooled for n, s in zip(counts, stds)
    ]
    scores = [w * s for w, s in zip(weights, sigmas)]
    if sum(scores) <= 0:
        scores = list(weights)
    target_total = sum(counts) + extension
    targets = _largest_remainder(scores, target_total)
    deficits = [max(0, t - n) for t, n in zip(targets, counts)]
    if sum(deficits) == 0:
        # Already past every target (tiny extension round): fall back to
        # splitting the budget directly by score.
        return _largest_remainder(scores, extension)
    return _largest_remainder([float(d) for d in deficits], extension)


# ---------------------------------------------------------------------------
# per-point sampler strategies
# ---------------------------------------------------------------------------


class _UniformPoint:
    """Legacy uniform sampling — float-for-float the original behavior."""

    sampler = "uniform"

    def __init__(self, engine: "_Engine", algorithm: str, k: int):
        self.engine = engine
        self.algorithm = algorithm
        self.k = k
        self.drawn = 0
        self.outcomes: list[JobResult] = []

    def first_budget(self, samples: int) -> int:
        return samples

    def emit(self, budget: int) -> list[Job]:
        e = self.engine
        jobs = montecarlo_jobs(
            e.system, self.algorithm, self.k, budget,
            seed=e.seed, metric=e.metric, traffic=e.traffic, config=e.config,
            start=self.drawn, kernel=e.kernel,
        )
        self.drawn += len(jobs)
        return jobs

    def accumulate(self, results: Sequence[JobResult]) -> None:
        self.outcomes.extend(results)

    def estimate(self, confidence: float) -> MonteCarloResult:
        return _estimate_point(
            self.algorithm, self.k, self.engine.metric,
            self.outcomes, self.drawn, confidence,
        )

    def stopping_width(
        self, estimate: MonteCarloResult, confidence: float
    ) -> float | None:
        return _stopping_width(
            estimate, self.engine.metric, self.engine.total_pairs, confidence
        )


class _WeightedPoint:
    """Shared bookkeeping of the stratified/importance strategies."""

    sampler = "weighted"

    def __init__(
        self, engine: "_Engine", algorithm: str, k: int, strata: list[Stratum]
    ):
        self.engine = engine
        self.algorithm = algorithm
        self.k = k
        self.strata = strata
        self.counts = [0] * len(strata)
        self.drawn = 0
        self.failed = 0
        self.dropped = 0
        #: (stratum index, job) of every emitted job, in emission order.
        self._pending: list[tuple[int, Job]] = []

    def _emit_stratum(self, index: int, count: int) -> list[Job]:
        e = self.engine
        jobs = montecarlo_jobs(
            e.system, self.algorithm, self.k, count,
            seed=e.seed, metric=e.metric, traffic=e.traffic, config=e.config,
            start=self.counts[index], kernel=e.kernel,
            stratum=self.strata[index].composition,
        )
        self.counts[index] += count
        self.drawn += count
        self._pending.extend((index, job) for job in jobs)
        return jobs

    def _value_of(self, result: JobResult) -> float | None:
        """The sample's metric value, or None when failed/undefined."""
        if not result.ok:
            self.failed += 1
            return None
        value = result.reachability
        if not math.isfinite(value):
            self.dropped += 1
            return None
        return value

    def _base_result(
        self, values: list[float], weighted: WeightedEstimate | None
    ) -> MonteCarloResult:
        point = MonteCarloResult(
            algorithm=self.algorithm, k=self.k, metric=self.engine.metric,
            requested=self.drawn, failed=self.failed, dropped=self.dropped,
            values=values, sampler=self.sampler, strata=len(self.strata),
            ess=weighted.ess if weighted else None, weighted=weighted,
        )
        if weighted is not None and values:
            _, raw_std = sample_mean_std(values)
            point.primary = SampleSummary(
                n=len(values),
                mean=weighted.mean,
                std=raw_std,
                worst=min(values),
                interval=weighted.interval,
            )
        return point

    def stopping_width(
        self, estimate: MonteCarloResult, confidence: float
    ) -> float | None:
        if estimate.weighted is None:
            return None
        interval = estimate.weighted.interval
        return interval.high - interval.low


class _StratifiedPoint(_WeightedPoint):
    """Exact-weight stratification with proportional → Neyman allocation."""

    sampler = "stratified"

    def __init__(self, engine, algorithm, k, strata):
        super().__init__(engine, algorithm, k, strata)
        self.values: list[list[float]] = [[] for _ in strata]

    def first_budget(self, samples: int) -> int:
        # Two samples per stratum minimum, so round one already yields a
        # within-stratum variance for the width and for Neyman targeting.
        return max(samples, 2 * len(self.strata))

    def emit(self, budget: int) -> list[Job]:
        weights = [s.weight for s in self.strata]
        if self.drawn == 0:
            allocation = _allocate_proportional(
                weights, budget, minimum=min(2, budget // len(weights))
            )
        else:
            stds = [
                sample_mean_std(v)[1] if len(v) >= 2 else 0.0
                for v in self.values
            ]
            allocation = _allocate_neyman(
                weights, self.counts, stds, budget
            )
        histogram = get_registry().histogram(
            "deft_mc_stratum_allocation",
            "Samples allocated to one stratum in one round",
            buckets=(0, 1, 2, 4, 8, 16, 32, 64, 128, 256),
        )
        jobs: list[Job] = []
        for index, count in enumerate(allocation):
            if count > 0:
                histogram.observe(count)
                jobs.extend(self._emit_stratum(index, count))
        return jobs

    def accumulate(self, results: Sequence[JobResult]) -> None:
        for (index, _job), result in zip(self._pending, results):
            value = self._value_of(result)
            if value is not None:
                self.values[index].append(value)
        self._pending = []

    def estimate(self, confidence: float) -> MonteCarloResult:
        groups = [
            (stratum.weight, values)
            for stratum, values in zip(self.strata, self.values)
        ]
        flat = [v for values in self.values for v in values]
        weighted = None
        if flat:
            weighted = stratified_estimate(groups, confidence)
        return self._base_result(flat, weighted)


class _ImportancePoint(_WeightedPoint):
    """Deficit-tilted stratum choice with likelihood-ratio reweighting."""

    sampler = "importance"

    def __init__(self, engine, algorithm, k, strata, proposal: list[float]):
        super().__init__(engine, algorithm, k, strata)
        self.proposal = proposal
        #: (likelihood ratio, value) pairs in global emission order.
        self.pairs: list[tuple[float, float]] = []
        self._ordinal = 0

    def first_budget(self, samples: int) -> int:
        return samples

    def emit(self, budget: int) -> list[Job]:
        assignment = stratum_sequence(
            self.proposal, self.engine.seed, self.k, self._ordinal, budget
        )
        self._ordinal += budget
        jobs: list[Job] = []
        for stratum_index in assignment:
            jobs.extend(self._emit_stratum(stratum_index, 1))
        return jobs

    def accumulate(self, results: Sequence[JobResult]) -> None:
        for (index, _job), result in zip(self._pending, results):
            value = self._value_of(result)
            if value is not None:
                ratio = self.strata[index].weight / self.proposal[index]
                self.pairs.append((ratio, value))
        self._pending = []

    def estimate(self, confidence: float) -> MonteCarloResult:
        values = [v for _, v in self.pairs]
        weighted = None
        if values:
            weighted = importance_estimate(
                [r for r, _ in self.pairs], values, confidence
            )
        return self._base_result(values, weighted)


# ---------------------------------------------------------------------------
# engine
# ---------------------------------------------------------------------------


def _stopping_widths(
    samplers: dict,
    active: Sequence[tuple[str, int]],
    estimates: dict,
    sampler: str,
    metric: str,
    total_pairs: int,
    confidence: float,
) -> dict[tuple[str, int], float | None]:
    """Stopping widths of every active point, batched where possible.

    Uniform reachability points pool exact reachable-pair counts, so all
    active points share one vectorized Wilson sweep
    (:func:`~repro.montecarlo.stats.wilson_intervals`, bit-identical to
    the scalar path); everything else falls back to the point's own
    scalar width.
    """
    widths: dict[tuple[str, int], float | None] = {}
    if sampler == "uniform" and metric == "reachability" and total_pairs > 0:
        pooled = [
            point for point in active if estimates[point].values
        ]
        successes = [
            sum(round(value * total_pairs) for value in estimates[point].values)
            for point in pooled
        ]
        trials = [len(estimates[point].values) * total_pairs for point in pooled]
        intervals = wilson_intervals(successes, trials, confidence)
        for point, interval in zip(pooled, intervals):
            widths[point] = interval.high - interval.low
        for point in active:
            widths.setdefault(point, None)
        return widths
    for point in active:
        widths[point] = samplers[point].stopping_width(
            estimates[point], confidence
        )
    return widths


@dataclass
class _Engine:
    """Shared campaign context every point sampler reads from."""

    system: SystemRef
    seed: int
    metric: str
    traffic: TrafficSpec | None
    config: SimulationConfig | None
    kernel: str
    total_pairs: int = 0


def _campaign_id(
    system: SystemRef,
    algorithms: Sequence[str],
    fault_counts: Sequence[int],
    samples: int,
    seed: int,
    metric: str,
    confidence: float,
    target_ci_width: float | None,
    max_samples: int | None,
    sampler: str,
    probe_canonical: dict,
) -> str:
    """Content hash of the sampling spec — the rendezvous namespace.

    A pure function of everything that shapes the round structure, so
    all drivers of one campaign meet under the same directory while any
    spec change (even a different target width) gets a fresh one.
    """
    payload = {
        "system": [system.preset, list(system.grid) if system.grid else None],
        "algorithms": list(algorithms),
        "fault_counts": [int(k) for k in fault_counts],
        "samples": samples,
        "seed": seed,
        "metric": metric,
        "confidence": confidence,
        "target_ci_width": target_ci_width,
        "max_samples": max_samples,
        "sampler": sampler,
        "probe": probe_canonical,
    }
    digest = hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode("utf-8")
    ).hexdigest()
    return digest[:16]


def run_montecarlo(
    system: SystemRef,
    algorithms: Sequence[str],
    fault_counts: Sequence[int],
    samples: int,
    *,
    seed: int = 0,
    metric: str = "reachability",
    traffic: TrafficSpec | None = None,
    config: SimulationConfig | None = None,
    runner: CampaignRunner | None = None,
    confidence: float = 0.95,
    progress: ProgressFn | None = None,
    target_ci_width: float | None = None,
    max_samples: int | None = None,
    kernel: str = "auto",
    sampler: str = "uniform",
    shard: tuple[int, int] | None = None,
    rendezvous_dir: str | Path | None = None,
    round_timeout: float = DEFAULT_ROUND_TIMEOUT,
    importance_lambda: float = 0.25,
) -> MonteCarloReport:
    """Run a full (algorithm x k x sample) Monte Carlo campaign.

    The whole grid is submitted as *one* campaign so a parallel backend
    overlaps every sample and a caching runner serves repeats from disk
    (the runner's backends keep per-worker sessions warm, so every sample
    of a group reuses the same built system, algorithm and route tables).
    Failed samples (e.g. no admissible pattern at an extreme k) are
    excluded from the estimates and counted per point.

    ``sampler`` picks the estimator (see the module docstring):
    ``uniform`` (unchanged legacy behavior), ``stratified`` or
    ``importance`` — the weighted samplers support the reachability
    metric, draw at least two samples per stratum in their first round
    and stop on the variance-based Wilson width of their weighted
    estimate.

    With ``target_ci_width``, sampling is *adaptive*: each (algorithm, k)
    point starts with ``samples`` draws and keeps doubling until its
    stopping interval is no wider than the target, or ``max_samples``
    (default ``16 * samples``) is reached — the final extension is
    capped so the total never overshoots the cap. Sample indices keep
    growing monotonically, so adaptive rounds are served incrementally
    by the content-addressed cache and re-runs are deterministic.

    ``shard=(index0, count)`` + ``rendezvous_dir`` runs this driver as
    one of ``count`` cooperating drivers: each executes only its
    key-range slice of every round, publishes a round marker, waits for
    its peers, and pools the full round's outcomes (own results plus
    shared-cache reads for foreign slices) before taking the — then
    bit-identical — stopping decision. Requires a runner with a shared
    result cache; all drivers must be launched with identical
    parameters.
    """
    if sampler not in MC_SAMPLERS:
        raise ValueError(f"sampler must be one of {MC_SAMPLERS}, got {sampler!r}")
    if sampler != "uniform" and metric != "reachability":
        raise ValueError(
            f"the {sampler!r} sampler supports the reachability metric only "
            "(weighted Wilson machinery needs a bounded mean); use "
            "sampler='uniform' for latency campaigns"
        )
    points = [(algorithm, k) for algorithm in algorithms for k in fault_counts]
    name = f"montecarlo-{metric}-{system.label}"
    campaign_runner = runner or CampaignRunner()

    if target_ci_width is None:
        if max_samples is not None:
            raise ValueError(
                "max_samples only applies to adaptive sampling; set "
                "target_ci_width (or drop max_samples)"
            )
        adaptive = False
        max_n = 0
    else:
        if target_ci_width <= 0:
            raise ValueError(f"target_ci_width must be > 0, got {target_ci_width}")
        max_samples = max_samples if max_samples is not None else samples * 16
        if max_samples < samples:
            raise ValueError(
                f"max_samples ({max_samples}) must be >= samples ({samples})"
            )
        adaptive = True
        max_n = max_samples

    # Total ordered core pairs, for pooling reachability fractions back
    # into exact counts — adaptive uniform stopping needs it, and the
    # weighted samplers need the built system for strata enumeration and
    # proposal scoring. Served from this process's session only when the
    # backend opted into sessions — a --no-session run must not leave a
    # memoized System in the process-global context.
    built = None
    if sampler != "uniform" or (adaptive and metric == "reachability"):
        if getattr(campaign_runner.backend, "use_session", False):
            from ..runner.session import get_session

            built = get_session().system(system)
        else:
            built = system.build()
    total_pairs = 0
    if built is not None and metric == "reachability":
        cores = len(built.cores)
        total_pairs = cores * (cores - 1)

    engine = _Engine(
        system=system, seed=seed, metric=metric, traffic=traffic,
        config=config, kernel=kernel, total_pairs=total_pairs,
    )

    # Per-point sampler state. Strata and importance proposals are pure
    # functions of the (system, algorithm, k) spec — every shard driver
    # derives identical weights, scores and assignment sequences.
    strata_of: dict[int, list[Stratum]] = {}
    samplers: dict[tuple[str, int], object] = {}
    for algorithm, k in points:
        if sampler == "uniform":
            samplers[(algorithm, k)] = _UniformPoint(engine, algorithm, k)
            continue
        if k not in strata_of:
            strata_of[k] = enumerate_strata(built, k)
        strata = strata_of[k]
        if sampler == "stratified":
            samplers[(algorithm, k)] = _StratifiedPoint(
                engine, algorithm, k, strata
            )
        else:
            from ..routing.compiled import compile_routes
            from ..routing.registry import make_algorithm

            routes = compile_routes(make_algorithm(algorithm, built))
            scores = stratum_scores(built, routes, strata)
            proposal = importance_proposal(
                [s.weight for s in strata], scores, lam=importance_lambda
            )
            samplers[(algorithm, k)] = _ImportancePoint(
                engine, algorithm, k, strata, proposal
            )

    if adaptive:
        for point in points:
            first = samplers[point].first_budget(samples)
            if first > max_n:
                raise ValueError(
                    f"point {point} needs a first round of {first} samples "
                    f"({samplers[point].sampler} sampling wants two per "
                    f"stratum) but max_samples is {max_n}; raise max_samples"
                )

    rendezvous = None
    if shard is not None:
        index0, count = shard
        if rendezvous_dir is None:
            raise ValueError(
                "sharded Monte Carlo needs rendezvous_dir (the spool "
                "directory shared by all drivers)"
            )
        if campaign_runner.cache is None:
            raise ValueError(
                "sharded Monte Carlo needs a runner with a shared result "
                "cache — foreign shards' samples are read through it"
            )
        from ..distributed.rounds import RoundRendezvous

        probe = montecarlo_jobs(
            system, algorithms[0], fault_counts[0], 1,
            seed=seed, metric=metric, traffic=traffic, config=config,
            kernel=kernel,
        )[0].canonical()
        campaign_id = _campaign_id(
            system, algorithms, fault_counts, samples, seed, metric,
            confidence, target_ci_width, max_samples, sampler, probe,
        )
        rendezvous = RoundRendezvous(rendezvous_dir, campaign_id, index0, count)

    registry = get_registry()
    active = list(points)
    reports: list[CampaignReport] = []
    round_index = 0
    while active:
        batches: list[tuple[tuple[str, int], list[Job]]] = []
        for point in active:
            ps = samplers[point]
            if ps.drawn == 0:
                budget = ps.first_budget(samples)
            else:
                budget = min(max(ps.drawn, samples), max_n - ps.drawn)
            batches.append((point, ps.emit(budget)))
        all_jobs = [job for _, group in batches for job in group]
        registry.counter(
            "deft_mc_rounds_total", "Monte Carlo sampling rounds driven"
        ).inc()
        registry.counter(
            "deft_mc_samples_total", "Monte Carlo sample jobs emitted"
        ).inc(len(all_jobs))
        if rendezvous is None:
            report = campaign_runner.run(
                Campaign(name=name, jobs=tuple(all_jobs)), progress=progress
            )
            reports.append(report)
            outcome_of = {job.key(): report.result_for(job) for job in all_jobs}
        else:
            outcome_of = _run_sharded_round(
                campaign_runner, name, all_jobs, shard, rendezvous,
                round_index, round_timeout, reports, progress,
            )
        for point, group in batches:
            samplers[point].accumulate([outcome_of[job.key()] for job in group])
        round_index += 1
        if not adaptive:
            break
        estimates = {point: samplers[point].estimate(confidence) for point in active}
        widths = _stopping_widths(
            samplers, active, estimates, sampler, metric, total_pairs, confidence
        )
        still_active = []
        for point in active:
            ps = samplers[point]
            width = widths[point]
            if (width is None or width > target_ci_width) and ps.drawn < max_n:
                still_active.append(point)
            else:
                registry.gauge(
                    "deft_mc_samples_to_target",
                    "Samples the most recent point needed to stop",
                ).set(ps.drawn)
        active = still_active

    results = [samplers[point].estimate(confidence) for point in points]
    return MonteCarloReport(
        metric=metric, samples=samples, seed=seed, confidence=confidence,
        results=results, campaign=CampaignReport.merge(name, reports),
        sampler=sampler,
    )


def _run_sharded_round(
    campaign_runner: CampaignRunner,
    name: str,
    all_jobs: list[Job],
    shard: tuple[int, int],
    rendezvous,
    round_index: int,
    round_timeout: float,
    reports: list[CampaignReport],
    progress: ProgressFn | None,
) -> dict[str, JobResult]:
    """Execute one shard slice of a round and pool the full round.

    Emission order, job lists and pooled outcomes are identical on every
    driver; only which slice is *executed* differs. Foreign successes
    are read from the shared cache (their workers published them before
    the owning driver's marker appeared); foreign failures arrive as key
    lists in the markers and are materialized as failed placeholders, so
    the pooled per-point outcome sets — and every downstream float — are
    bit-identical across drivers.
    """
    from ..distributed.rounds import RendezvousError
    from ..distributed.shard import shard_jobs

    index0, count = shard
    mine = shard_jobs(all_jobs, count, index0)
    report = None
    if mine:
        report = campaign_runner.run(
            Campaign(
                name=f"{name}#shard-{index0 + 1}-of-{count}",
                jobs=tuple(mine),
            ),
            progress=progress,
        )
        reports.append(report)
    failed_keys = [result.job_key for result in report.errors] if report else []
    rendezvous.publish(round_index, failed_keys)
    failed_by_shard = rendezvous.gather(round_index, timeout=round_timeout)
    foreign_failed = {
        key for keys in failed_by_shard.values() for key in keys
    }
    outcome_of: dict[str, JobResult] = {}
    for job in all_jobs:
        key = job.key()
        if key in outcome_of:
            continue
        result = report.result_for_key(key) if report else None
        if result is None and key in foreign_failed:
            result = JobResult(
                job_key=key, ok=False,
                error="failed on a peer shard (see its driver log)",
            )
        if result is None:
            result = campaign_runner.cache.get(job)
        if result is None:
            raise RendezvousError(
                f"round {round_index}: job {key[:12]} finished on a peer "
                "shard but never appeared in the shared cache — are all "
                "drivers pointed at the same --cache-dir?"
            )
        outcome_of[key] = result
    return outcome_of
