"""Monte Carlo fault-injection campaigns (statistical Fig. 7 at scale).

Complements the exact reachability decomposition with seeded random
k-fault sampling through the campaign runner — the scale layer for
large k and COLSxROWS systems where enumeration (and the decomposition's
per-chiplet profiles) stop being feasible, and the only way to estimate
simulation-based metrics (latency, delivery) under fault populations.

* :mod:`repro.montecarlo.stats` — confidence-interval estimators;
* :mod:`repro.montecarlo.campaign` — job emission and aggregation.
"""

from .campaign import (
    MC_METRICS,
    MonteCarloReport,
    MonteCarloResult,
    SampleSummary,
    montecarlo_jobs,
    run_montecarlo,
    summarize,
)
from .stats import (
    ConfidenceInterval,
    normal_mean_interval,
    sample_mean_std,
    wilson_interval,
    z_value,
)

__all__ = [
    "MC_METRICS",
    "ConfidenceInterval",
    "MonteCarloReport",
    "MonteCarloResult",
    "SampleSummary",
    "montecarlo_jobs",
    "normal_mean_interval",
    "run_montecarlo",
    "sample_mean_std",
    "summarize",
    "wilson_interval",
    "z_value",
]
