"""Monte Carlo fault-injection campaigns (statistical Fig. 7 at scale).

Complements the exact reachability decomposition with seeded random
k-fault sampling through the campaign runner — the scale layer for
large k and COLSxROWS systems where enumeration (and the decomposition's
per-chiplet profiles) stop being feasible, and the only way to estimate
simulation-based metrics (latency, delivery) under fault populations.

* :mod:`repro.montecarlo.stats` — confidence-interval estimators,
  weighted (stratified/importance) machinery and numpy batch variants;
* :mod:`repro.montecarlo.strata` — per-chiplet fault-count strata with
  exact combinatorial weights and pre-simulation severity scoring;
* :mod:`repro.montecarlo.campaign` — job emission, the sampler engine
  (uniform / stratified / importance) and shard-composed adaptive
  stopping.
"""

from .campaign import (
    MC_METRICS,
    MC_SAMPLERS,
    MonteCarloReport,
    MonteCarloResult,
    SampleSummary,
    montecarlo_jobs,
    run_montecarlo,
    summarize,
)
from .stats import (
    ConfidenceInterval,
    WeightedEstimate,
    batch_mean_std,
    importance_estimate,
    normal_mean_interval,
    normal_mean_intervals,
    sample_mean_std,
    stratified_estimate,
    wilson_from_variance,
    wilson_interval,
    wilson_intervals,
    z_value,
)
from .strata import (
    Stratum,
    admissible_chiplet_patterns,
    enumerate_strata,
    importance_proposal,
    stratum_scores,
    stratum_sequence,
)

__all__ = [
    "MC_METRICS",
    "MC_SAMPLERS",
    "ConfidenceInterval",
    "MonteCarloReport",
    "MonteCarloResult",
    "SampleSummary",
    "Stratum",
    "WeightedEstimate",
    "admissible_chiplet_patterns",
    "batch_mean_std",
    "enumerate_strata",
    "importance_estimate",
    "importance_proposal",
    "montecarlo_jobs",
    "normal_mean_interval",
    "normal_mean_intervals",
    "run_montecarlo",
    "sample_mean_std",
    "stratified_estimate",
    "stratum_scores",
    "stratum_sequence",
    "summarize",
    "wilson_from_variance",
    "wilson_interval",
    "wilson_intervals",
    "z_value",
]
