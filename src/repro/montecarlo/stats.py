"""Sample statistics for Monte Carlo fault campaigns.

Core interval estimators:

* :func:`normal_mean_interval` — a z confidence interval for the mean of
  real-valued samples (per-pattern reachability fractions, latencies);
* :func:`wilson_interval` — the Wilson score interval for a binomial
  proportion (pooled delivered/injected packet counts), which behaves
  sanely near 0 and 1 where the naive normal approximation collapses.

Both return a :class:`ConfidenceInterval`, whose :meth:`~ConfidenceInterval.contains`
is what the ``fig7mc`` experiment uses to cross-validate sampled curves
against the exact reachability decomposition.

The variance-reduction layer adds *weighted* machinery on top:

* :func:`wilson_from_variance` — a Wilson interval for a bounded mean
  whose variance came from a weighted estimator, evaluated at the
  Bernoulli-equivalent sample size ``p (1 - p) / var``. This is the
  common stopping-width currency that lets stratified and importance
  estimates be compared against — and stopped by — the same
  ``--target-ci`` threshold as uniform pooled counts.
* :func:`stratified_estimate` / :func:`importance_estimate` — the
  unbiased weighted point estimators (see each docstring for the exact
  formulas and degenerate-case behaviour), returning a
  :class:`WeightedEstimate` with effective-sample-size diagnostics.

Batch variants (:func:`wilson_intervals`, :func:`normal_mean_intervals`,
:func:`batch_mean_std`) vectorize the per-point python loops with numpy
while remaining bit-identical to the scalar path — column-sequential
accumulation reproduces python's left-to-right ``sum`` exactly, and
elementwise float64 ops round identically to scalar float ops. When
numpy is unavailable they silently fall back to the scalar loop.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

try:  # numpy accelerates the batch paths; everything works without it.
    import numpy as _np
except ImportError:  # pragma: no cover - image always ships numpy
    _np = None

#: Two-sided z critical values for the supported confidence levels.
Z_VALUES = {0.90: 1.6449, 0.95: 1.9600, 0.99: 2.5758}


def z_value(confidence: float) -> float:
    """The two-sided z critical value for a supported confidence level."""
    try:
        return Z_VALUES[round(confidence, 4)]
    except KeyError:
        raise ValueError(
            f"unsupported confidence {confidence}; pick one of {sorted(Z_VALUES)}"
        ) from None


@dataclass(frozen=True)
class ConfidenceInterval:
    """A two-sided interval estimate around a point value."""

    center: float
    low: float
    high: float
    confidence: float

    def contains(self, value: float) -> bool:
        return self.low <= value <= self.high

    @property
    def half_width(self) -> float:
        return (self.high - self.low) / 2.0

    def __str__(self) -> str:  # pragma: no cover - formatting aid
        return f"{self.center:.4f} [{self.low:.4f}, {self.high:.4f}]"


def sample_mean_std(values: Sequence[float]) -> tuple[float, float]:
    """(mean, sample standard deviation); std is 0.0 for n < 2."""
    n = len(values)
    if n == 0:
        raise ValueError("need at least one sample")
    mean = sum(values) / n
    if n < 2:
        return mean, 0.0
    variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    return mean, math.sqrt(variance)


def normal_mean_interval(
    values: Sequence[float],
    confidence: float = 0.95,
    clamp: tuple[float, float] | None = None,
) -> ConfidenceInterval:
    """Normal-approximation CI for the mean of ``values``.

    ``clamp`` bounds the interval to a known support (e.g. ``(0, 1)`` for
    reachability fractions) without moving the center.
    """
    mean, std = sample_mean_std(values)
    half = z_value(confidence) * std / math.sqrt(len(values))
    low, high = mean - half, mean + half
    if clamp is not None:
        low, high = max(low, clamp[0]), min(high, clamp[1])
    return ConfidenceInterval(center=mean, low=low, high=high, confidence=confidence)


def wilson_interval(
    successes: int, trials: int, confidence: float = 0.95
) -> ConfidenceInterval:
    """Wilson score interval for a binomial proportion."""
    if trials <= 0:
        raise ValueError("wilson_interval needs at least one trial")
    if not 0 <= successes <= trials:
        raise ValueError(f"successes {successes} outside [0, {trials}]")
    z = z_value(confidence)
    p = successes / trials
    z2 = z * z
    denom = 1.0 + z2 / trials
    center = (p + z2 / (2 * trials)) / denom
    half = (z / denom) * math.sqrt(p * (1 - p) / trials + z2 / (4 * trials * trials))
    return ConfidenceInterval(
        center=p,
        low=max(0.0, center - half),
        high=min(1.0, center + half),
        confidence=confidence,
    )


def wilson_from_variance(
    mean: float, variance: float, n: float, confidence: float = 0.95
) -> ConfidenceInterval:
    """Wilson interval for a bounded mean with an estimated variance.

    Weighted estimators (stratified, self-normalized importance) produce
    a mean in [0, 1] and a variance-of-the-mean, but no single pooled
    success count a plain Wilson interval could consume. This evaluates
    the Wilson score at the *Bernoulli-equivalent* sample size — the
    number of i.i.d. coin flips whose proportion estimator would have
    the same variance: ``trials = p (1 - p) / var``. A variance-reduced
    estimator therefore earns a proportionally larger equivalent n and a
    proportionally narrower interval, making stopping widths directly
    comparable across samplers.

    Degenerate cases fall back to ``trials = n`` (the raw sample count):
    a zero/negative variance estimate or a mean pinned at 0 or 1 says
    nothing about the true dispersion, and the fallback keeps the width
    honest (shrinking like 1/sqrt(n)) instead of collapsing to zero.
    """
    if n <= 0:
        raise ValueError("wilson_from_variance needs at least one sample")
    if not 0.0 <= mean <= 1.0:
        raise ValueError(f"mean {mean} outside [0, 1]")
    if variance > 0.0 and 0.0 < mean < 1.0:
        trials = max(1.0, mean * (1.0 - mean) / variance)
    else:
        trials = float(n)
    z = z_value(confidence)
    z2 = z * z
    denom = 1.0 + z2 / trials
    center = (mean + z2 / (2.0 * trials)) / denom
    half = (z / denom) * math.sqrt(
        mean * (1.0 - mean) / trials + z2 / (4.0 * trials * trials)
    )
    # The Wilson center is shrunk toward 1/2, so at huge equivalent-n the
    # rounded bounds can land an ulp inside the point estimate; widen to
    # the estimate so contains(mean) always holds.
    return ConfidenceInterval(
        center=mean,
        low=min(mean, max(0.0, center - half)),
        high=max(mean, min(1.0, center + half)),
        confidence=confidence,
    )


@dataclass(frozen=True)
class WeightedEstimate:
    """A weighted (stratified / importance) estimate of a bounded mean.

    ``variance`` is the variance *of the estimator* (already divided by
    the per-group sample counts), ``ess`` the effective sample size —
    equal to ``n`` for stratified estimates, ``(sum w)^2 / sum w^2`` for
    self-normalized importance weights (a collapsed ESS flags a proposal
    mismatched to the integrand long before the interval misleads).
    """

    mean: float
    variance: float
    n: int
    ess: float
    interval: ConfidenceInterval


def stratified_estimate(
    groups: Sequence[tuple[float, Sequence[float]]],
    confidence: float = 0.95,
) -> WeightedEstimate:
    """Unbiased stratified estimate from per-stratum (weight, values).

    Weights are renormalized over the strata that actually have samples,
    so a stratum whose draws all failed redistributes its mass instead of
    silently biasing the total low. The estimator is the textbook one::

        mean = sum_s  w_s * mean_s
        var  = sum_s  w_s^2 * s_s^2 / n_s

    with ``s_s^2`` the within-stratum sample variance. Single-sample
    strata (``n_s = 1``, sample variance undefined) borrow the pooled
    within-stratum variance of the strata with ``n_s >= 2`` — a
    conservative stand-in that keeps the width finite without inventing
    certainty; zero-variance strata genuinely contribute nothing to the
    estimator variance. If *no* stratum has two samples the variance is
    reported as 0 and the interval falls back to the raw-n Wilson width
    (see :func:`wilson_from_variance`). When the variance is zero *with*
    replicated evidence (some stratum had >= 2 samples and every
    replicated stratum was constant) the interval is degenerate at the
    mean: the metric is constant within every stratum, so covering each
    stratum once makes the stratified sum exact — this is what lets a
    direction-split stratification of a count-symmetric metric stop
    after a single full-coverage round.
    """
    sampled = [(w, values) for w, values in groups if len(values) > 0]
    if not sampled:
        raise ValueError("stratified_estimate needs samples in at least one stratum")
    if any(w < 0 for w, _ in sampled):
        raise ValueError("stratum weights must be >= 0")
    total_w = sum(w for w, _ in sampled)
    if total_w <= 0:
        raise ValueError("stratum weights must sum to > 0")
    stats = batch_mean_std([values for _, values in sampled])
    n = sum(len(values) for _, values in sampled)
    mean = sum(
        (w / total_w) * m for (w, _), (m, _) in zip(sampled, stats)
    )
    # Pooled within-stratum variance over strata that can estimate one.
    pooled_num = 0.0
    pooled_df = 0
    for (_, values), (_, std) in zip(sampled, stats):
        if len(values) >= 2:
            pooled_num += (len(values) - 1) * std * std
            pooled_df += len(values) - 1
    pooled = pooled_num / pooled_df if pooled_df else 0.0
    variance = 0.0
    for (w, values), (_, std) in zip(sampled, stats):
        s2 = std * std if len(values) >= 2 else pooled
        variance += (w / total_w) ** 2 * s2 / len(values)
    mean = min(1.0, max(0.0, mean))
    if variance == 0.0 and pooled_df > 0:
        # The estimate is exact up to float summation order (~n * eps
        # over thousands of strata); a 1e-9 pad absorbs that noise while
        # staying far below any practical stopping width.
        interval = ConfidenceInterval(
            center=mean,
            low=max(0.0, mean - 1e-9),
            high=min(1.0, mean + 1e-9),
            confidence=confidence,
        )
    else:
        interval = wilson_from_variance(mean, variance, n, confidence)
    return WeightedEstimate(
        mean=mean, variance=variance, n=n, ess=float(n), interval=interval
    )


def importance_estimate(
    ratios: Sequence[float],
    values: Sequence[float],
    confidence: float = 0.95,
) -> WeightedEstimate:
    """Self-normalized importance estimate from likelihood ratios.

    ``ratios[i]`` is the likelihood ratio ``p(x_i) / q(x_i)`` of sample
    ``i`` under the target vs the proposal. The self-normalized
    estimator divides by the *realized* ratio mass instead of n::

        mean = sum_i  r_i v_i / sum_i r_i
        var  = sum_i  rbar_i^2 (v_i - mean)^2      rbar = r / sum r
        ess  = (sum r)^2 / sum r^2

    Self-normalization trades the last sliver of unbiasedness (it is
    consistent, with O(1/n) bias) for a massive variance reduction when
    ratios are noisy; with a defensive-mixture proposal the ratios are
    bounded so the bias is negligible at campaign sample counts. The ESS
    diagnostic is the classic Kish size — report it, and distrust any
    estimate whose ESS collapsed to a handful of samples.
    """
    if len(ratios) != len(values):
        raise ValueError(
            f"got {len(ratios)} ratios for {len(values)} values"
        )
    if not values:
        raise ValueError("importance_estimate needs at least one sample")
    if any(r < 0 for r in ratios):
        raise ValueError("likelihood ratios must be >= 0")
    total_r = sum(ratios)
    if total_r <= 0:
        raise ValueError("likelihood ratios must sum to > 0")
    n = len(values)
    mean = sum(r * v for r, v in zip(ratios, values)) / total_r
    mean = min(1.0, max(0.0, mean))
    variance = sum(
        (r / total_r) ** 2 * (v - mean) ** 2 for r, v in zip(ratios, values)
    )
    ess = total_r * total_r / sum(r * r for r in ratios)
    return WeightedEstimate(
        mean=mean,
        variance=variance,
        n=n,
        ess=ess,
        interval=wilson_from_variance(mean, variance, ess, confidence),
    )


# -- batch (numpy-vectorized) variants ----------------------------------
#
# The batch functions exist so campaigns estimating many points/strata at
# once pay one vector sweep instead of a python loop per group. They are
# pinned bit-identical to the scalar path: elementwise float64 numpy ops
# round exactly like python floats, and group sums are accumulated
# column-sequentially (one fused add per sample index, vectorized across
# groups) to reproduce python's left-to-right ``sum`` order.


def batch_mean_std(groups: Sequence[Sequence[float]]) -> list[tuple[float, float]]:
    """Vectorized :func:`sample_mean_std` over many groups at once.

    Bit-identical to calling the scalar function per group; empty groups
    raise, mirroring the scalar contract.
    """
    if any(len(g) == 0 for g in groups):
        raise ValueError("need at least one sample")
    if _np is None or not groups:
        return [sample_mean_std(g) for g in groups]
    lengths = _np.array([len(g) for g in groups], dtype=_np.float64)
    width = int(lengths.max())
    padded = _np.zeros((len(groups), width), dtype=_np.float64)
    mask = _np.zeros((len(groups), width), dtype=bool)
    for i, g in enumerate(groups):
        padded[i, : len(g)] = g
        mask[i, : len(g)] = True
    # Column-sequential accumulation == python's left-to-right sum()
    # (the zero pads are exact no-ops under IEEE addition).
    totals = _np.zeros(len(groups), dtype=_np.float64)
    for j in range(width):
        totals += padded[:, j]
    means = totals / lengths
    sq = _np.where(mask, (padded - means[:, None]) ** 2, 0.0)
    ss = _np.zeros(len(groups), dtype=_np.float64)
    for j in range(width):
        ss += sq[:, j]
    multi = lengths >= 2
    stds = _np.where(
        multi, _np.sqrt(ss / _np.where(multi, lengths - 1.0, 1.0)), 0.0
    )
    return [(float(m), float(s)) for m, s in zip(means, stds)]


def normal_mean_intervals(
    groups: Sequence[Sequence[float]],
    confidence: float = 0.95,
    clamp: tuple[float, float] | None = None,
) -> list[ConfidenceInterval]:
    """Vectorized :func:`normal_mean_interval` over many groups at once."""
    z = z_value(confidence)
    stats = batch_mean_std(groups)
    out = []
    for (mean, std), group in zip(stats, groups):
        half = z * std / math.sqrt(len(group))
        low, high = mean - half, mean + half
        if clamp is not None:
            low, high = max(low, clamp[0]), min(high, clamp[1])
        out.append(
            ConfidenceInterval(center=mean, low=low, high=high, confidence=confidence)
        )
    return out


def wilson_intervals(
    successes: Sequence[int],
    trials: Sequence[int],
    confidence: float = 0.95,
) -> list[ConfidenceInterval]:
    """Vectorized :func:`wilson_interval` over many (successes, trials).

    Purely elementwise, so float64 results are bit-identical to the
    scalar path.
    """
    if len(successes) != len(trials):
        raise ValueError(
            f"got {len(successes)} success counts for {len(trials)} trial counts"
        )
    if _np is None or not trials:
        return [
            wilson_interval(s, t, confidence) for s, t in zip(successes, trials)
        ]
    t = _np.array(trials, dtype=_np.float64)
    s = _np.array(successes, dtype=_np.float64)
    if (t <= 0).any():
        raise ValueError("wilson_interval needs at least one trial")
    if ((s < 0) | (s > t)).any():
        raise ValueError("successes outside [0, trials]")
    z = z_value(confidence)
    p = s / t
    z2 = z * z
    denom = 1.0 + z2 / t
    center = (p + z2 / (2 * t)) / denom
    half = (z / denom) * _np.sqrt(p * (1 - p) / t + z2 / (4 * t * t))
    low = _np.maximum(0.0, center - half)
    high = _np.minimum(1.0, center + half)
    return [
        ConfidenceInterval(
            center=float(pi), low=float(lo), high=float(hi), confidence=confidence
        )
        for pi, lo, hi in zip(p, low, high)
    ]
