"""Sample statistics for Monte Carlo fault campaigns.

Dependency-free implementations of the two interval estimators the
campaigns need:

* :func:`normal_mean_interval` — a z confidence interval for the mean of
  real-valued samples (per-pattern reachability fractions, latencies);
* :func:`wilson_interval` — the Wilson score interval for a binomial
  proportion (pooled delivered/injected packet counts), which behaves
  sanely near 0 and 1 where the naive normal approximation collapses.

Both return a :class:`ConfidenceInterval`, whose :meth:`~ConfidenceInterval.contains`
is what the ``fig7mc`` experiment uses to cross-validate sampled curves
against the exact reachability decomposition.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

#: Two-sided z critical values for the supported confidence levels.
Z_VALUES = {0.90: 1.6449, 0.95: 1.9600, 0.99: 2.5758}


def z_value(confidence: float) -> float:
    """The two-sided z critical value for a supported confidence level."""
    try:
        return Z_VALUES[round(confidence, 4)]
    except KeyError:
        raise ValueError(
            f"unsupported confidence {confidence}; pick one of {sorted(Z_VALUES)}"
        ) from None


@dataclass(frozen=True)
class ConfidenceInterval:
    """A two-sided interval estimate around a point value."""

    center: float
    low: float
    high: float
    confidence: float

    def contains(self, value: float) -> bool:
        return self.low <= value <= self.high

    @property
    def half_width(self) -> float:
        return (self.high - self.low) / 2.0

    def __str__(self) -> str:  # pragma: no cover - formatting aid
        return f"{self.center:.4f} [{self.low:.4f}, {self.high:.4f}]"


def sample_mean_std(values: Sequence[float]) -> tuple[float, float]:
    """(mean, sample standard deviation); std is 0.0 for n < 2."""
    n = len(values)
    if n == 0:
        raise ValueError("need at least one sample")
    mean = sum(values) / n
    if n < 2:
        return mean, 0.0
    variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    return mean, math.sqrt(variance)


def normal_mean_interval(
    values: Sequence[float],
    confidence: float = 0.95,
    clamp: tuple[float, float] | None = None,
) -> ConfidenceInterval:
    """Normal-approximation CI for the mean of ``values``.

    ``clamp`` bounds the interval to a known support (e.g. ``(0, 1)`` for
    reachability fractions) without moving the center.
    """
    mean, std = sample_mean_std(values)
    half = z_value(confidence) * std / math.sqrt(len(values))
    low, high = mean - half, mean + half
    if clamp is not None:
        low, high = max(low, clamp[0]), min(high, clamp[1])
    return ConfidenceInterval(center=mean, low=low, high=high, confidence=confidence)


def wilson_interval(
    successes: int, trials: int, confidence: float = 0.95
) -> ConfidenceInterval:
    """Wilson score interval for a binomial proportion."""
    if trials <= 0:
        raise ValueError("wilson_interval needs at least one trial")
    if not 0 <= successes <= trials:
        raise ValueError(f"successes {successes} outside [0, {trials}]")
    z = z_value(confidence)
    p = successes / trials
    z2 = z * z
    denom = 1.0 + z2 / trials
    center = (p + z2 / (2 * trials)) / denom
    half = (z / denom) * math.sqrt(p * (1 - p) / trials + z2 / (4 * trials * trials))
    return ConfidenceInterval(
        center=p,
        low=max(0.0, center - half),
        high=min(1.0, center + half),
        confidence=confidence,
    )
