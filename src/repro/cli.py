"""``deft`` command-line interface.

Subcommands:

* ``deft info`` — describe the preset systems.
* ``deft simulate`` — one simulation run (system x algorithm x traffic).
* ``deft sweep`` — latency vs injection-rate sweep.
* ``deft campaign`` — a batched (algorithm x rate x seed) simulation grid
  through the campaign runner: multi-worker (``--workers``) and served
  incrementally from the content-addressed result cache (``--cache-dir``).
* ``deft reachability`` — exact Fig. 7-style reachability numbers.
* ``deft montecarlo`` — sampled fault-injection campaigns: reachability
  or latency/delivery statistics over seeded random k-fault scenarios,
  with confidence intervals — the statistical Fig. 7 for large k and
  large systems.
* ``deft worker`` — a long-lived spool worker: attach to a spool
  directory, drain its job stream through one warm session, hand
  results to the shared content-addressed cache (the building block of
  multi-machine campaigns; ``deft campaign --backend spool --workers N``
  autospawns local ones).
* ``deft status`` — fleet dashboard for a spool campaign: per-shard
  progress, worker liveness, stale leases, jobs/sec and job-latency
  percentiles, reconstructed from the spool's ``manifest/`` telemetry
  (``--watch`` live view, ``--json`` snapshot, ``--prom`` Prometheus
  text exposition).
* ``deft cache`` — inspect (``stats``, with ``--json``) and clean
  (``prune``) the content-addressed result cache.
* ``deft optimize`` — run the offline VL-selection optimization and print
  the per-router selection map (the Fig. 3 visualization).
* ``deft area`` — the Table I area/power model.
* ``deft experiment <id|all>`` — regenerate a paper artifact
  (``--workers N`` parallelizes the figure's simulation grid).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .analysis.reachability import average_reachability, worst_reachability
from .config import SimulationConfig
from .distributed import SpoolBackend, parse_shard, run_worker, shard_campaign
from .core.tables import build_selection_tables
from .experiments import ablations, fig4, fig5, fig6, fig7, fig7mc, fig8, table1
from .experiments.common import ExperimentResult, format_report
from .fault.model import DirectedVL, FaultState, VLDirection
from .network.kernels import KERNEL_NAMES
from .network.simulator import Simulator
from .routing.registry import available_algorithms, make_algorithm
from .runner import (
    DEFAULT_CACHE_DIR,
    Campaign,
    CampaignRunner,
    ExecutionBackend,
    Job,
    ProcessPoolBackend,
    ResultCache,
    SerialBackend,
    SystemRef,
    TrafficSpec,
)
from .topology.builder import System
from .topology.presets import baseline_4_chiplets, baseline_6_chiplets, chiplet_grid
from .traffic.registry import RATE_PATTERNS, available_traffic, make_traffic

_EXPERIMENTS = {
    "fig4a": lambda scale, runner: [fig4.fig4a(scale, runner=runner)],
    "fig4b": lambda scale, runner: [fig4.fig4b(scale, runner=runner)],
    "fig4c": lambda scale, runner: [fig4.fig4c(scale, runner=runner)],
    "fig4d": lambda scale, runner: [fig4.fig4d(scale, runner=runner)],
    "fig4": fig4.run,
    "fig5": lambda scale, runner: [fig5.run(scale, runner=runner)],
    "fig6a": lambda scale, runner: [fig6.fig6a(scale, runner=runner)],
    "fig6b": lambda scale, runner: [fig6.fig6b(scale, runner=runner)],
    "fig6": fig6.run,
    "fig7a": lambda scale, runner: [fig7.fig7a()],
    "fig7b": lambda scale, runner: [fig7.fig7b()],
    "fig7": fig7.run,
    "fig7mc-a": lambda scale, runner: [fig7mc.fig7mc_validation(scale, runner)],
    "fig7mc-b": lambda scale, runner: [fig7mc.fig7mc_scale(scale, runner)],
    "fig7mc": fig7mc.run,
    "fig8a": lambda scale, runner: [fig8.fig8a(scale, runner=runner)],
    "fig8b": lambda scale, runner: [fig8.fig8b(scale, runner=runner)],
    "fig8": fig8.run,
    "table1": lambda scale, runner: [table1.run(scale)],
    "ablations": ablations.run,
}


def _system_from_args(args: argparse.Namespace) -> System:
    if args.system == "4":
        return baseline_4_chiplets()
    if args.system == "6":
        return baseline_6_chiplets()
    cols, rows = (int(p) for p in args.system.split("x"))
    return chiplet_grid(cols, rows)


def _add_system_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--system",
        default="4",
        help="'4' (baseline), '6' (scaled), or COLSxROWS of 4x4 chiplets",
    )


def _parse_fault_spec(spec: str) -> tuple[int, str]:
    """Parse one ``VL[:down|up]`` flag into ``(vl_index, direction)``.

    The single home of the flag grammar, shared by ``simulate``,
    ``deadlock`` and ``campaign`` as an argparse ``type=`` converter.
    A bare ``VL`` defaults to ``down``; anything else must spell the
    direction exactly — ``3:upp`` used to silently inject a *down*
    fault, and a non-integer VL tracebacked instead of erroring.
    """
    vl_text, sep, direction_text = spec.partition(":")
    if not sep:
        direction = "down"
    else:
        direction = direction_text.strip().lower()
        if direction not in ("down", "up"):
            raise argparse.ArgumentTypeError(
                f"fault direction must be 'down' or 'up', got {direction_text!r} "
                f"in {spec!r}"
            )
    try:
        vl_index = int(vl_text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"fault VL index must be an integer, got {vl_text!r} in {spec!r}"
        ) from None
    if vl_index < 0:
        raise argparse.ArgumentTypeError(
            f"fault VL index must be >= 0, got {vl_index} in {spec!r}"
        )
    return vl_index, direction


def _nonnegative_days(text: str) -> float:
    """Argparse type for ``--older-than``: a finite, non-negative day count."""
    import math

    try:
        days = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"age must be a number of days, got {text!r}"
        ) from None
    # NaN slips through a bare `days < 0` check and would make the prune
    # cutoff comparison sweep every servable entry.
    if not math.isfinite(days) or days < 0:
        raise argparse.ArgumentTypeError(f"age must be a finite number >= 0, got {text}")
    return days


def _fault_state_from_args(system: System, args: argparse.Namespace) -> FaultState:
    faults = []
    for vl_index, direction in args.fault or []:
        vl_direction = VLDirection.UP if direction == "up" else VLDirection.DOWN
        faults.append(DirectedVL(vl_index, vl_direction))
    return FaultState(system, faults)


def _cmd_info(args: argparse.Namespace) -> int:
    for system in (baseline_4_chiplets(), baseline_6_chiplets()):
        print(system.spec.describe())
        for chiplet in range(system.spec.num_chiplets):
            links = system.vls_of_chiplet(chiplet)
            positions = ", ".join(f"({link.cx},{link.cy})" for link in links)
            print(f"  chiplet {chiplet}: VLs at {positions}")
    print(f"algorithms: {', '.join(available_algorithms())}")
    print(f"traffic patterns: {', '.join(available_traffic())}")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    system = _system_from_args(args)
    algorithm = make_algorithm(args.algo, system)
    algorithm.set_fault_state(_fault_state_from_args(system, args))
    traffic = make_traffic(args.traffic, system, seed=args.seed, rate=args.rate)
    config = SimulationConfig(
        warmup_cycles=args.warmup,
        measure_cycles=args.cycles,
        drain_cycles=args.drain,
        seed=args.seed,
    )
    report = Simulator(system, algorithm, traffic, config, kernel=args.kernel).run()
    print(report.summary())
    if args.json:
        payload = {
            "algorithm": report.algorithm,
            "traffic": report.traffic,
            "rate": args.rate,
            "average_latency": report.stats.average_latency,
            "delivered_ratio": report.stats.delivered_ratio,
            "vc_utilization": report.stats.vc_utilization_report(),
        }
        print(json.dumps(payload, indent=2))
    return 0


def _without_nan(value):
    """Replace non-finite floats with None for strict-JSON artifacts."""
    import math

    if isinstance(value, float) and not math.isfinite(value):
        return None
    if isinstance(value, dict):
        return {key: _without_nan(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_without_nan(item) for item in value]
    return value


def _args_error(args: argparse.Namespace, message: str) -> None:
    """Raise the subcommand's argparse usage error (exit code 2)."""
    parser = getattr(args, "_parser", None)
    if parser is not None:
        parser.error(message)
    raise SystemExit(2)


def _runner_from_args(args: argparse.Namespace) -> CampaignRunner:
    """Build the campaign runner the CLI flags describe.

    ``--backend`` picks the execution backend explicitly (``serial``,
    ``process``, ``spool``); the default ``auto`` keeps the historic
    behaviour — ``--workers N`` (N > 1) selects the process pool. A
    cache is attached when ``--cache-dir`` is given (or defaulted) and
    not disabled by ``--no-cache``; ``--compress-cache`` gzips new
    entries; ``--no-session`` turns off the per-worker reuse of built
    systems/algorithms/route tables (rebuild per job).

    The spool backend hands results back *through* the cache, so
    ``--backend spool`` with the cache disabled has nowhere for results
    to land and is rejected up front rather than silently recomputing.
    """
    # 0 is meaningful for the spool backend (external-worker mode: only
    # enqueue and collect); the in-process backends clamp to >= 1.
    workers = getattr(args, "workers", 1)
    workers = 1 if workers is None else workers
    timeout = getattr(args, "timeout", None)
    use_session = not getattr(args, "no_session", False)
    backend_name = getattr(args, "backend", "auto")
    cache = None
    cache_dir = getattr(args, "cache_dir", None)
    if cache_dir and not getattr(args, "no_cache", False):
        cache = ResultCache(cache_dir, compress=getattr(args, "compress_cache", False))
    if backend_name == "auto":
        backend_name = "process" if workers > 1 else "serial"
    if backend_name == "spool":
        if cache is None:
            _args_error(
                args,
                "--backend spool hands results back through the "
                "content-addressed cache: drop --no-cache (and give it a "
                "--cache-dir) so they have somewhere to land",
            )
        stall = getattr(args, "stall_timeout", 300.0)
        backend: ExecutionBackend = SpoolBackend(
            cache=cache,
            spool_dir=getattr(args, "spool_dir", None),
            workers=workers,
            lease_s=getattr(args, "lease", None) or 30.0,
            stall_timeout_s=None if not stall else stall,
            use_session=use_session,
            batch=getattr(args, "batch", "auto"),
        )
    elif backend_name == "process":
        backend = ProcessPoolBackend(
            workers=workers, timeout=timeout, use_session=use_session
        )
    else:
        backend = SerialBackend(use_session=use_session)
    return CampaignRunner(backend=backend, cache=cache)


def _cmd_sweep(args: argparse.Namespace) -> int:
    from .experiments.common import run_sweep, series_rows

    rates = tuple(float(r) for r in args.rates.split(","))
    config = SimulationConfig(
        warmup_cycles=args.warmup,
        measure_cycles=args.cycles,
        drain_cycles=args.drain,
    )
    runner = _runner_from_args(args)
    try:
        series = run_sweep(
            SystemRef.from_cli(args.system),
            tuple(args.algo),
            args.traffic,
            rates,
            config,
            seeds=tuple(range(1, args.repeats + 1)),
            runner=runner,
            kernel=args.kernel,
        )
    finally:
        runner.close()
    for row in series_rows(series):
        print(row)
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    from .experiments.common import series_from_results, series_rows, sweep_jobs

    system = SystemRef.from_cli(args.system)
    rates = tuple(float(r) for r in args.rates.split(","))
    seeds = tuple(range(1, args.seeds + 1))
    config = SimulationConfig(
        warmup_cycles=args.warmup,
        measure_cycles=args.cycles,
        drain_cycles=args.drain,
    )
    faults = tuple(args.fault or [])
    jobs = sweep_jobs(
        system, tuple(args.algo), args.traffic, rates, config, seeds,
        faults=faults, kernel=args.kernel,
    )
    campaign = Campaign(name=f"{args.traffic}-on-{system.label}", jobs=tuple(jobs))
    sharded = args.shard is not None
    if sharded:
        index, num_shards = args.shard
        campaign = shard_campaign(campaign, num_shards, index)
        print(
            f"shard {index + 1}/{num_shards}: {len(campaign.jobs)} of "
            f"{len(jobs)} jobs in this key range",
            file=sys.stderr,
        )
    runner = _runner_from_args(args)

    def progress(done: int, total: int, job: Job, result) -> None:
        if args.quiet:
            return
        status = "cached" if result.cached else (
            "ok" if result.ok else "FAILED"
        )
        print(
            f"  [{done}/{total}] {job.label}: {status}"
            + (f" latency={result.average_latency:.2f}" if result.ok else ""),
            file=sys.stderr,
        )

    try:
        report = runner.run(campaign, progress=progress)
    finally:
        runner.close()

    if sharded:
        # A shard holds an arbitrary slice of the grid; the aggregate
        # series table only makes sense over the full campaign (run it
        # unsharded afterwards — every shard's points come from cache).
        print(report.summary())
    else:
        # Aggregate into the familiar per-algorithm latency table.
        series = series_from_results(
            report.results, tuple(args.algo), rates, seeds, skip_failed=True
        )
        for row in series_rows(series):
            print(row)
        print(report.summary())
    if args.json:
        payload = {
            "campaign": campaign.name,
            "system": system.to_dict(),
            "jobs": [job.canonical() for job in campaign.jobs],
            "results": [result.to_dict() for result in report.results],
            "cache_hits": report.cache_hits,
            "executed": report.executed,
        }
        with open(args.json, "w") as handle:
            # NaN metrics (failed or packet-less jobs) become null so the
            # artifact stays strict JSON for non-Python consumers.
            json.dump(_without_nan(payload), handle, indent=2, allow_nan=False)
        print(f"wrote {args.json}")
    for failed in report.errors:
        print(f"FAILED {failed.job_key[:12]}: {failed.error}", file=sys.stderr)
    return 1 if report.errors else 0


def _cmd_montecarlo(args: argparse.Namespace) -> int:
    from .montecarlo import run_montecarlo
    from .runner import TrafficSpec

    fault_counts = tuple(int(k) for k in args.k.split(","))
    config = SimulationConfig(
        warmup_cycles=args.warmup,
        measure_cycles=args.cycles,
        drain_cycles=args.drain,
    )
    traffic = TrafficSpec.make(args.traffic, rate=args.rate)

    def progress(done: int, total: int, job, result) -> None:
        if args.quiet or done % 50 and done != total:
            return
        print(f"  [{done}/{total}] sampled", file=sys.stderr)

    rendezvous_dir = args.rendezvous_dir
    if args.shard is not None and rendezvous_dir is None:
        rendezvous_dir = str(Path(args.cache_dir) / "rendezvous")

    runner = _runner_from_args(args)
    try:
        report = run_montecarlo(
            SystemRef.from_cli(args.system),
            tuple(args.algo),
            fault_counts,
            args.samples,
            seed=args.seed,
            metric=args.metric,
            traffic=traffic,
            config=config,
            runner=runner,
            confidence=args.confidence,
            progress=progress,
            target_ci_width=args.target_ci,
            max_samples=args.max_samples,
            kernel=args.kernel,
            sampler=args.sampler,
            shard=args.shard,
            rendezvous_dir=rendezvous_dir,
            round_timeout=args.round_timeout,
        )
    except ValueError as error:
        # Invalid sampling parameters (--target-ci 0, a cap below
        # --samples, --max-samples without --target-ci): a clean
        # message, not a traceback.
        print(f"deft montecarlo: {error}", file=sys.stderr)
        return 2
    finally:
        runner.close()
    unit = "reachable core-pair fraction" if args.metric == "reachability" \
        else "average packet latency (cycles)"
    sampling = (
        f"{args.samples} samples/point"
        if args.target_ci is None
        else f"adaptive sampling (start {args.samples}, Wilson CI <= {args.target_ci})"
    )
    if args.sampler != "uniform":
        sampling = f"{args.sampler} {sampling}"
    if args.shard is not None:
        sampling += f", shard {args.shard[0] + 1}/{args.shard[1]}"
    print(
        f"Monte Carlo {args.metric} on {SystemRef.from_cli(args.system).label}: "
        f"{sampling}, seed {args.seed}, "
        f"{int(args.confidence * 100)}% CI ({unit})"
    )
    for point in report.results:
        print(point.row())
        if point.delivered_pool is not None:
            pool = point.delivered_pool
            print(
                f"       pooled delivery {pool.center:.4f} "
                f"[{pool.low:.4f}, {pool.high:.4f}] (Wilson)"
            )
    print(report.campaign.summary())
    if args.json:
        payload = {
            "metric": args.metric,
            "system": SystemRef.from_cli(args.system).to_dict(),
            "samples": args.samples,
            "seed": args.seed,
            "confidence": args.confidence,
            "sampler": args.sampler,
            "points": [
                {
                    "algorithm": p.algorithm,
                    "k": p.k,
                    "requested": p.requested,
                    "completed": p.completed,
                    "failed": p.failed,
                    "dropped": p.dropped,
                    "mean": p.primary.mean if p.primary else None,
                    "std": p.primary.std if p.primary else None,
                    "worst": p.primary.worst if p.primary else None,
                    "ci": [p.primary.interval.low, p.primary.interval.high]
                    if p.primary else None,
                    "strata": p.strata,
                    "ess": p.ess,
                }
                for p in report.results
            ],
            "cache_hits": report.campaign.cache_hits,
            "executed": report.campaign.executed,
        }
        with open(args.json, "w") as handle:
            json.dump(_without_nan(payload), handle, indent=2, allow_nan=False)
        print(f"wrote {args.json}")
    for failed in report.campaign.errors:
        print(f"FAILED {failed.job_key[:12]}: {failed.error}", file=sys.stderr)
    return 1 if report.campaign.errors else 0


def _parse_shard_arg(text: str) -> tuple[int, int]:
    """Argparse type for ``--shard I/N`` (1-based position)."""
    try:
        return parse_shard(text)
    except ValueError as error:
        raise argparse.ArgumentTypeError(str(error)) from None


def _parse_batch_arg(text: str):
    """Argparse type for ``--batch``: a positive int or 'auto'."""
    if text.strip().lower() == "auto":
        return "auto"
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a batch size or 'auto', got {text!r}"
        ) from None
    if value < 1:
        raise argparse.ArgumentTypeError(f"batch size must be >= 1, got {value}")
    return value


def _cmd_worker(args: argparse.Namespace) -> int:
    """Run one long-lived spool worker until STOP/idle-timeout/max-jobs."""
    cache = ResultCache(args.cache_dir, compress=args.compress_cache)
    server = None
    if args.metrics_port is not None:
        from .telemetry.httpd import serve_metrics

        server = serve_metrics(args.metrics_port)
        print(
            f"metrics: http://127.0.0.1:{server.server_port}/metrics",
            file=sys.stderr,
        )
    try:
        stats = run_worker(
            args.spool_dir,
            cache,
            worker_id=args.worker_id,
            lease_s=args.lease,
            max_attempts=args.max_attempts,
            poll_s=args.poll,
            idle_timeout_s=args.idle_timeout,
            max_jobs=args.max_jobs,
            use_session=not args.no_session,
            heartbeat_s=args.heartbeat,
            kernel=args.kernel,
        )
    finally:
        if server is not None:
            server.shutdown()
    print(
        f"worker {stats['worker']}: {stats['jobs_done']} job(s) executed, "
        f"{stats['jobs_failed']} failed, {stats['requeues_swept']} expired "
        f"lease(s) requeued"
    )
    if args.json:
        print(json.dumps(stats, indent=2))
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    """Fleet dashboard: aggregate a spool's manifest/worker/cache state."""
    import time as time_module
    from pathlib import Path

    from .telemetry.status import (
        fleet_status,
        health_problems,
        render_prom,
        render_status,
    )

    if not Path(args.spool_dir).is_dir():
        _args_error(args, f"spool directory not found: {args.spool_dir}")

    def emit_once() -> dict:
        status = fleet_status(
            args.spool_dir,
            cache_dir=args.cache_dir,
            window_s=args.window,
            stale_worker_s=args.stale_after,
        )
        if args.json:
            print(json.dumps(_without_nan(status), indent=2, allow_nan=False))
        elif args.prom:
            print(render_prom(status), end="")
        else:
            print(render_status(status))
        return status

    if args.check and args.watch:
        _args_error(args, "--check is a one-shot probe; drop --watch")
    if not args.watch:
        status = emit_once()
        if args.check:
            problems = health_problems(status)
            for problem in problems:
                print(f"unhealthy: {problem}", file=sys.stderr)
            return 1 if problems else 0
        return 0
    try:
        while True:
            # ANSI clear + home: a live dashboard, not a scrolling log.
            print("\x1b[2J\x1b[H", end="")
            emit_once()
            time_module.sleep(args.interval)
    except KeyboardInterrupt:
        return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the long-lived campaign service over a spool directory."""
    from .serve import serve_campaigns

    server = serve_campaigns(
        args.spool_dir,
        args.cache_dir,
        host=args.host,
        port=args.port,
        background=False,
        lease_s=args.lease,
        batch=args.batch,
        poll_s=args.poll,
        window_s=args.window,
        stale_worker_s=args.stale_after,
        janitor=not args.no_janitor,
    )
    print(
        f"deft serve: {server.url} over spool {args.spool_dir} "
        f"(POST /campaigns, GET /campaigns, /metrics, /events)",
        file=sys.stderr,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.close()
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    """Reconstruct per-job span timelines from a spool's event streams."""
    from pathlib import Path

    from .telemetry.trace import (
        chrome_trace,
        job_traces,
        render_trace_summary,
        write_chrome_trace,
    )

    if not Path(args.spool_dir).is_dir():
        _args_error(args, f"spool directory not found: {args.spool_dir}")
    try:
        traces = job_traces(args.spool_dir, campaign=args.campaign)
    except ValueError as exc:
        _args_error(args, str(exc))
    if args.json:
        print(json.dumps(chrome_trace(traces), sort_keys=True))
    else:
        print(render_trace_summary(traces))
    if args.output is not None:
        path = write_chrome_trace(traces, args.output)
        print(
            f"wrote Chrome trace JSON to {path} "
            "(load in chrome://tracing or https://ui.perfetto.dev)",
            file=sys.stderr,
        )
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    cache = ResultCache(args.cache_dir)
    if args.action == "stats":
        if args.json:
            payload = {"root": str(cache.root), **cache.stats().to_dict()}
            print(json.dumps(payload, indent=2))
        else:
            print(f"cache {cache.root}: {cache.stats().summary()}")
        return 0
    removed = cache.prune(remove_all=args.all, older_than_days=args.older_than)
    what = "everything" if args.all else "stale/corrupt entries and tmp files"
    if args.older_than is not None and not args.all:
        what += f" + results older than {args.older_than:g} day(s)"
    print(f"cache {cache.root}: pruned {what} — removed {removed.summary()}")
    print(f"now: {cache.stats().summary()}")
    return 0


def _cmd_reachability(args: argparse.Namespace) -> int:
    system = _system_from_args(args)
    algorithm = make_algorithm(args.algo, system)
    print(f"{args.algo} on {system.spec.name}:")
    for k in range(1, args.max_faults + 1):
        avg = average_reachability(system, algorithm, k)
        wrst = worst_reachability(system, algorithm, k)
        print(f"  {k} faulty VLs: average {avg * 100:6.2f}%  worst {wrst * 100:6.2f}%")
    return 0


def _cmd_optimize(args: argparse.Namespace) -> int:
    system = _system_from_args(args)
    tables = build_selection_tables(system, rho=args.rho)
    chiplet = args.chiplet
    table = tables[chiplet]
    spec = system.spec.chiplets[chiplet]
    scenario = frozenset(args.faulty or [])
    selection = table.lookup(scenario)
    links = system.vls_of_chiplet(chiplet)
    print(
        f"chiplet {chiplet}, faulty down VLs {sorted(scenario) or 'none'} "
        f"(cost {table.costs[scenario]:.4f}):"
    )
    # Fig. 3-style map: each tile shows the local index of its selected VL.
    for y in range(spec.height):
        row = []
        for x in range(spec.width):
            index = y * spec.width + x
            marker = "*" if any(l.cx == x and l.cy == y for l in links) else " "
            row.append(f"{selection[index]}{marker}")
        print("   " + "  ".join(row))
    print("(* marks a VL tile; digits are the selected VL's local index)")
    return 0


def _cmd_area(args: argparse.Namespace) -> int:
    result = table1.run()
    print(format_report(result))
    return 0


def _cmd_deadlock(args: argparse.Namespace) -> int:
    """Channel-dependency-graph deadlock check for an algorithm."""
    from .analysis.cdg import build_cdg
    from .routing.naive import NaiveRouting

    system = _system_from_args(args)
    if args.algo == "naive":
        algorithm = NaiveRouting(system)
    else:
        algorithm = make_algorithm(args.algo, system)
    algorithm.set_fault_state(_fault_state_from_args(system, args))
    report = build_cdg(system, algorithm)
    print(
        f"{algorithm.name} on {system.spec.name}: "
        f"{report.graph.number_of_nodes()} channels, "
        f"{report.graph.number_of_edges()} dependencies, "
        f"{report.pairs_walked} pairs walked"
        + (f", {report.unroutable_pairs} unroutable" if report.unroutable_pairs else "")
    )
    if report.is_acyclic:
        print("RESULT: acyclic — deadlock-free by Dally & Seitz")
        return 0
    cycle = report.cycle()
    print(f"RESULT: CYCLIC — {len(cycle)}-channel dependency cycle found:")
    for channel in cycle[:10]:
        print(f"  {channel}")
    if len(cycle) > 10:
        print(f"  ... and {len(cycle) - 10} more")
    return 2


def _cmd_report(args: argparse.Namespace) -> int:
    import pathlib

    from .experiments.report import load_recorded, render_summary

    artifacts = load_recorded(pathlib.Path(args.results))
    print(render_summary(artifacts))
    return 0 if all(a.ok for a in artifacts) else 1


def _cmd_experiment(args: argparse.Namespace) -> int:
    names = list(_EXPERIMENTS) if args.name == "all" else [args.name]
    campaign_runner = _runner_from_args(args)
    failed: list[str] = []
    try:
        for name in names:
            experiment = _EXPERIMENTS[name]
            results: list[ExperimentResult] = experiment(args.scale, campaign_runner)
            for result in results:
                print(format_report(result))
                print()
                failed.extend(result.failed_checks())
    finally:
        campaign_runner.close()
    if failed:
        print(f"{len(failed)} shape check(s) failed:", file=sys.stderr)
        for description in failed:
            print(f"  - {description}", file=sys.stderr)
        return 1
    return 0


def _add_kernel_arg(p: argparse.ArgumentParser) -> None:
    """``--kernel`` flag shared by every command that runs the simulator."""
    p.add_argument("--kernel", choices=KERNEL_NAMES, default="auto",
                   help="cycle kernel: 'reference' (object-based ground "
                        "truth), 'vector' (numpy struct-of-arrays, "
                        "bit-identical), or 'auto' (vector when numpy and "
                        "compiled routes are available; honours the "
                        "DEFT_KERNEL environment variable)")


def _add_distributed_args(p: argparse.ArgumentParser) -> None:
    """Backend-selection flags shared by ``campaign`` and ``montecarlo``."""
    p.add_argument("--backend", choices=["auto", "serial", "process", "spool"],
                   default="auto",
                   help="execution backend; 'auto' picks the process pool "
                        "when --workers > 1, 'spool' runs the campaign "
                        "through a filesystem job spool with --workers "
                        "autospawned 'deft worker' processes")
    p.add_argument("--spool-dir", default=None, metavar="DIR",
                   help="spool directory for --backend spool; share it "
                        "(plus --cache-dir) across machines for "
                        "multi-machine campaigns (default: private temp "
                        "spool)")
    p.add_argument("--lease", type=float, default=30.0, metavar="SECONDS",
                   help="spool claim lease: a worker silent this long is "
                        "considered dead and its job is requeued")
    p.add_argument("--stall-timeout", type=float, default=300.0,
                   metavar="SECONDS",
                   help="fail remaining spool jobs after this long with "
                        "no result and nothing in flight; 0 waits forever "
                        "(a held lease never counts as a stall)")
    p.add_argument("--batch", type=_parse_batch_arg, default="auto",
                   metavar="N",
                   help="jobs per spool lease (1-32), or 'auto' to target "
                        "~2s of work per lease from the spool's job-duration "
                        "history; batching amortizes per-job claim/lease/"
                        "heartbeat round-trips, --batch 1 keeps per-job "
                        "crash-requeue granularity")
    p.add_argument("--compress-cache", action="store_true",
                   help="gzip new cache entries (reads accept both forms)")
    p.set_defaults(_parser=p)


def build_parser() -> argparse.ArgumentParser:
    """Construct the `deft` argument parser with all subcommands."""
    parser = argparse.ArgumentParser(
        prog="deft",
        description="DeFT 2.5D chiplet-network reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("info", help="describe preset systems and registries")
    p.set_defaults(func=_cmd_info)

    p = sub.add_parser("simulate", help="run one simulation")
    _add_system_arg(p)
    p.add_argument("--algo", default="deft", choices=available_algorithms())
    p.add_argument("--traffic", default="uniform", choices=RATE_PATTERNS)
    p.add_argument("--rate", type=float, default=0.005)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--warmup", type=int, default=600)
    p.add_argument("--cycles", type=int, default=3000)
    p.add_argument("--drain", type=int, default=20000)
    p.add_argument(
        "--fault",
        action="append",
        type=_parse_fault_spec,
        metavar="VL[:down|up]",
        help="inject a directed VL fault (repeatable), e.g. --fault 3:down",
    )
    p.add_argument("--json", action="store_true", help="also print JSON payload")
    _add_kernel_arg(p)
    p.set_defaults(func=_cmd_simulate)

    p = sub.add_parser("sweep", help="latency vs injection-rate sweep")
    _add_system_arg(p)
    p.add_argument("--algo", nargs="+", default=["deft", "mtr", "rc"])
    p.add_argument("--traffic", default="uniform", choices=RATE_PATTERNS)
    p.add_argument("--rates", default="0.002,0.004,0.006,0.008,0.010")
    p.add_argument("--repeats", type=int, default=1)
    p.add_argument("--warmup", type=int, default=600)
    p.add_argument("--cycles", type=int, default=3000)
    p.add_argument("--drain", type=int, default=20000)
    p.add_argument("--workers", type=int, default=1,
                   help="process-pool workers (1 = in-process serial)")
    p.add_argument("--no-session", action="store_true",
                   help="rebuild systems/algorithms per job instead of reusing "
                        "each worker's warm session")
    _add_kernel_arg(p)
    p.set_defaults(func=_cmd_sweep)

    p = sub.add_parser(
        "campaign",
        help="batched simulation grid through the cached campaign runner",
    )
    _add_system_arg(p)
    p.add_argument("--algo", nargs="+", default=["deft", "mtr", "rc"])
    p.add_argument("--traffic", default="uniform", choices=RATE_PATTERNS)
    p.add_argument("--rates", default="0.002,0.004,0.006,0.008,0.010")
    p.add_argument("--seeds", type=int, default=1,
                   help="seeds 1..N averaged per grid point")
    p.add_argument("--fault", action="append", type=_parse_fault_spec,
                   metavar="VL[:down|up]",
                   help="inject a directed VL fault into every job (repeatable)")
    p.add_argument("--warmup", type=int, default=600)
    p.add_argument("--cycles", type=int, default=3000)
    p.add_argument("--drain", type=int, default=20000)
    p.add_argument("--workers", type=int, default=1,
                   help="process-pool workers (1 = in-process serial)")
    p.add_argument("--no-session", action="store_true",
                   help="rebuild systems/algorithms per job instead of reusing "
                        "each worker's warm session")
    p.add_argument("--timeout", type=float, default=None,
                   help="per-job timeout in seconds (parallel backend only)")
    p.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                   help=f"content-addressed result cache (default {DEFAULT_CACHE_DIR})")
    p.add_argument("--no-cache", action="store_true",
                   help="bypass the result cache entirely")
    p.add_argument("--shard", type=_parse_shard_arg, default=None, metavar="I/N",
                   help="run only the I-th of N deterministic job-key-range "
                        "slices (1-based); shards on different machines "
                        "merge through the shared cache")
    _add_distributed_args(p)
    _add_kernel_arg(p)
    p.add_argument("--quiet", action="store_true", help="suppress per-job progress")
    p.add_argument("--json", metavar="PATH",
                   help="also dump jobs + results as JSON")
    p.set_defaults(func=_cmd_campaign)

    p = sub.add_parser("reachability", help="exact reachability under faults")
    _add_system_arg(p)
    p.add_argument("--algo", default="deft", choices=available_algorithms())
    p.add_argument("--max-faults", type=int, default=8)
    p.set_defaults(func=_cmd_reachability)

    p = sub.add_parser(
        "montecarlo",
        help="sampled fault-injection campaign (statistical Fig. 7 at scale)",
    )
    _add_system_arg(p)
    p.add_argument("--algo", nargs="+", default=["deft", "mtr", "rc"])
    p.add_argument("--k", default="2",
                   help="comma-separated fault counts to sample, e.g. 2 or 4,8,12")
    p.add_argument("--samples", type=int, default=200,
                   help="random fault scenarios per (algorithm, k) point "
                        "(the initial batch when --target-ci is set)")
    p.add_argument("--sampler", choices=["uniform", "stratified", "importance"],
                   default="uniform",
                   help="variance-reduction strategy (reachability metric): "
                        "'stratified' partitions patterns by per-chiplet "
                        "per-direction fault counts with exact combinatorial "
                        "weights, 'importance' oversamples strata scored as "
                        "high-deviation pre-simulation and reweights by "
                        "likelihood ratios; both draw at least two samples "
                        "per stratum in their first round")
    p.add_argument("--target-ci", type=float, default=None, metavar="WIDTH",
                   help="adaptive stopping: keep doubling each point's samples "
                        "until its Wilson CI is no wider than WIDTH")
    p.add_argument("--max-samples", type=int, default=None,
                   help="adaptive-stopping cap per point (default 16 x --samples)")
    p.add_argument("--shard", type=_parse_shard_arg, default=None, metavar="I/N",
                   help="run as the I-th of N cooperating drivers (1-based): "
                        "each executes its deterministic key-range slice of "
                        "every sampling round, then pools the round through "
                        "the shared --cache-dir and a filesystem rendezvous "
                        "so all drivers take bit-identical stopping "
                        "decisions; launch all N with identical parameters")
    p.add_argument("--rendezvous-dir", default=None, metavar="DIR",
                   help="shared directory for --shard round markers "
                        "(default: <cache-dir>/rendezvous)")
    p.add_argument("--round-timeout", type=float, default=600.0,
                   metavar="SECONDS",
                   help="how long a sharded driver waits for its peers' "
                        "round markers before giving up")
    p.add_argument("--seed", type=int, default=0,
                   help="campaign master seed; sample i draws from RNG(seed, k, i)")
    p.add_argument("--metric", choices=["reachability", "latency"],
                   default="reachability",
                   help="analytic reachability per pattern, or simulated "
                        "latency/delivery under each pattern")
    p.add_argument("--confidence", type=float, default=0.95,
                   choices=[0.90, 0.95, 0.99],
                   help="confidence level for the reported intervals")
    p.add_argument("--traffic", default="uniform", choices=RATE_PATTERNS,
                   help="traffic pattern (latency metric only)")
    p.add_argument("--rate", type=float, default=0.005,
                   help="injection rate (latency metric only)")
    p.add_argument("--warmup", type=int, default=600)
    p.add_argument("--cycles", type=int, default=3000)
    p.add_argument("--drain", type=int, default=20000)
    p.add_argument("--workers", type=int, default=1,
                   help="process-pool workers (1 = in-process serial)")
    p.add_argument("--no-session", action="store_true",
                   help="rebuild systems/algorithms per job instead of reusing "
                        "each worker's warm session")
    p.add_argument("--timeout", type=float, default=None,
                   help="per-job timeout in seconds (parallel backend only)")
    p.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                   help=f"content-addressed result cache (default {DEFAULT_CACHE_DIR})")
    p.add_argument("--no-cache", action="store_true",
                   help="bypass the result cache entirely")
    _add_distributed_args(p)
    _add_kernel_arg(p)
    p.add_argument("--quiet", action="store_true", help="suppress progress")
    p.add_argument("--json", metavar="PATH", help="also dump estimates as JSON")
    p.set_defaults(func=_cmd_montecarlo)

    p = sub.add_parser(
        "worker",
        help="long-lived spool worker: drain a job spool through one "
             "warm session (multi-machine campaign building block)",
    )
    p.add_argument("spool_dir", metavar="SPOOL_DIR",
                   help="the spool directory to attach to")
    p.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                   help="where successful results land — must be the "
                        f"campaign's shared cache (default {DEFAULT_CACHE_DIR})")
    p.add_argument("--compress-cache", action="store_true",
                   help="gzip results written to the cache")
    p.add_argument("--worker-id", default=None,
                   help="lease/stats identity (default: hostname-pid)")
    p.add_argument("--lease", type=float, default=None, metavar="SECONDS",
                   help="claim lease duration (default 30)")
    p.add_argument("--heartbeat", type=float, default=None, metavar="SECONDS",
                   help="lease renewal interval; each renewal emits a "
                        "lease_renewed event (default: lease / 4)")
    p.add_argument("--max-attempts", type=int, default=None,
                   help="executions per job before a terminal failure "
                        "(default 3)")
    p.add_argument("--poll", type=float, default=0.1, metavar="SECONDS",
                   help="idle polling interval")
    p.add_argument("--idle-timeout", type=float, default=None, metavar="SECONDS",
                   help="exit after this long with nothing claimable "
                        "(default: wait for the spool's STOP sentinel)")
    p.add_argument("--max-jobs", type=int, default=None,
                   help="exit after executing this many jobs")
    p.add_argument("--no-session", action="store_true",
                   help="rebuild systems/algorithms per job instead of "
                        "keeping this worker's session warm")
    p.add_argument("--metrics-port", type=int, default=None, metavar="PORT",
                   help="serve this process's metrics registry as "
                        "Prometheus text at http://127.0.0.1:PORT/metrics "
                        "(0 = ephemeral port, printed on stderr)")
    p.add_argument("--kernel", choices=KERNEL_NAMES, default="auto",
                   help="node-local cycle-kernel default, applied to claimed "
                        "jobs that did not request one explicitly")
    p.add_argument("--json", action="store_true",
                   help="also print the final worker stats as JSON")
    p.set_defaults(func=_cmd_worker)

    p = sub.add_parser(
        "status",
        help="fleet dashboard for a spool campaign: per-shard progress, "
             "worker liveness, job latency, stale leases",
    )
    p.add_argument("spool_dir", metavar="SPOOL_DIR",
                   help="the spool directory to inspect (read-only)")
    p.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                   help="the campaign's shared result cache, for completion "
                        f"accounting (default {DEFAULT_CACHE_DIR})")
    output = p.add_mutually_exclusive_group()
    output.add_argument("--json", action="store_true",
                        help="print the full status snapshot as JSON")
    output.add_argument("--prom", action="store_true",
                        help="print Prometheus text exposition instead of "
                             "the human dashboard")
    p.add_argument("--watch", action="store_true",
                   help="refresh the dashboard until interrupted")
    p.add_argument("--interval", type=float, default=2.0, metavar="SECONDS",
                   help="refresh interval for --watch (default 2)")
    p.add_argument("--window", type=float, default=60.0, metavar="SECONDS",
                   help="trailing window for the jobs/sec estimate")
    p.add_argument("--stale-after", type=float, default=60.0,
                   metavar="SECONDS",
                   help="a worker silent this long counts as dead")
    p.add_argument("--check", action="store_true",
                   help="health probe: exit non-zero (with reasons on "
                        "stderr) on stale leases, terminal failures, or a "
                        "dead fleet with work outstanding")
    p.set_defaults(func=_cmd_status, _parser=p)

    p = sub.add_parser(
        "serve",
        help="long-running campaign service over a spool: submit and "
             "watch campaigns via HTTP+JSON, SSE event streaming, "
             "Prometheus metrics, Chrome traces",
    )
    p.add_argument("spool_dir", metavar="SPOOL_DIR",
                   help="the spool directory to serve (created if missing)")
    p.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                   help="the fleet's shared result cache, for completion "
                        f"accounting (default {DEFAULT_CACHE_DIR})")
    p.add_argument("--host", default="127.0.0.1",
                   help="bind address (default loopback; exposing wider is "
                        "a deliberate operator decision)")
    p.add_argument("--port", type=int, default=8321,
                   help="bind port (default 8321; 0 = ephemeral, printed "
                        "on stderr)")
    p.add_argument("--lease", type=float, default=None, metavar="SECONDS",
                   help="claim lease duration for enqueued jobs (default 30)")
    p.add_argument("--batch", default="auto", metavar="N|auto",
                   help="jobs per spool lease for submitted campaigns "
                        "(default: auto-size from job-duration history)")
    p.add_argument("--poll", type=float, default=0.2, metavar="SECONDS",
                   help="SSE tail polling interval")
    p.add_argument("--window", type=float, default=60.0, metavar="SECONDS",
                   help="trailing window for the jobs/sec estimate")
    p.add_argument("--stale-after", type=float, default=60.0,
                   metavar="SECONDS",
                   help="a worker silent this long counts as dead")
    p.add_argument("--no-janitor", action="store_true",
                   help="don't sweep expired leases from the service "
                        "(rely on idle workers to reap them)")
    p.set_defaults(func=_cmd_serve, _parser=p)

    p = sub.add_parser(
        "trace",
        help="per-job span timelines from a spool's event streams: "
             "terminal p50/p95 phase summary + critical path, Chrome "
             "trace_event JSON export",
    )
    p.add_argument("spool_dir", metavar="SPOOL_DIR",
                   help="the spool directory to reconstruct (read-only)")
    p.add_argument("--campaign", default=None, metavar="NAME",
                   help="restrict to one campaign (name, id, or shard "
                        "base name; default: every job in the spool)")
    p.add_argument("-o", "--output", default=None, metavar="TRACE.JSON",
                   help="write Chrome/Catapult trace_event JSON here "
                        "(chrome://tracing, Perfetto)")
    p.add_argument("--json", action="store_true",
                   help="print the trace JSON to stdout instead of the "
                        "terminal summary")
    p.set_defaults(func=_cmd_trace, _parser=p)

    p = sub.add_parser("cache", help="inspect or clean the result cache")
    p.add_argument("action", choices=["stats", "prune"])
    p.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                   help=f"cache directory (default {DEFAULT_CACHE_DIR})")
    p.add_argument("--all", action="store_true",
                   help="prune: remove every entry, not just stale/orphaned ones")
    p.add_argument("--older-than", type=_nonnegative_days, default=None,
                   metavar="DAYS",
                   help="prune: also remove servable results last written "
                        "more than DAYS days ago")
    p.add_argument("--json", action="store_true",
                   help="stats: print the machine-readable census as JSON")
    p.set_defaults(func=_cmd_cache)

    p = sub.add_parser("optimize", help="offline VL-selection optimization map")
    _add_system_arg(p)
    p.add_argument("--chiplet", type=int, default=0)
    p.add_argument("--faulty", type=int, nargs="*", help="faulty local VL indices")
    p.add_argument("--rho", type=float, default=0.01)
    p.set_defaults(func=_cmd_optimize)

    p = sub.add_parser("area", help="Table I area/power model")
    p.set_defaults(func=_cmd_area)

    p = sub.add_parser("deadlock", help="CDG deadlock-freedom check")
    _add_system_arg(p)
    p.add_argument(
        "--algo",
        default="deft",
        choices=tuple(available_algorithms()) + ("naive",),
        help="'naive' is the unprotected Fig. 1 configuration",
    )
    p.add_argument("--fault", action="append", type=_parse_fault_spec,
                   metavar="VL[:down|up]")
    p.set_defaults(func=_cmd_deadlock)

    p = sub.add_parser("experiment", help="regenerate a paper artifact")
    p.add_argument("name", choices=sorted(_EXPERIMENTS) + ["all"])
    p.add_argument("--scale", type=float, default=None,
                   help="cycle-scale multiplier (default 1.0 or $REPRO_EXPERIMENT_SCALE)")
    p.add_argument("--workers", type=int, default=1,
                   help="process-pool workers for the figure's simulation grid")
    p.add_argument("--no-session", action="store_true",
                   help="rebuild systems/algorithms per job instead of reusing "
                        "each worker's warm session")
    p.add_argument("--cache-dir", default=None,
                   help="optional content-addressed result cache directory")
    p.add_argument("--no-cache", action="store_true",
                   help="bypass the result cache even if --cache-dir is set")
    p.set_defaults(func=_cmd_experiment)

    p = sub.add_parser("report", help="summarize recorded benchmark results")
    p.add_argument(
        "--results",
        default="benchmarks/results",
        help="directory of recorded artifact JSONs",
    )
    p.set_defaults(func=_cmd_report)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
