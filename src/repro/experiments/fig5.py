"""Fig. 5 — VC utilization in DeFT under synthetic traffic.

The paper reports the share of traffic on each of the two VCs per region
(interposer + each chiplet): balanced 50/50 with less than 0.4% tolerance
for Uniform and Localized traffic, and a deviation below 8% for Hotspot
traffic (three hotspots at a relatively high 10% rate each).
"""

from __future__ import annotations

from ..network.simulator import Simulator
from ..routing.deft import DeftRouting
from ..topology.presets import baseline_4_chiplets
from ..traffic.synthetic import HotspotTraffic, LocalizedTraffic, UniformTraffic
from .common import ExperimentResult, default_config

#: (pattern label, traffic class, rate) — moderate rates below saturation.
_SCENARIOS = (
    ("uniform", UniformTraffic, 0.006),
    ("localized", LocalizedTraffic, 0.008),
    ("hotspot", HotspotTraffic, 0.004),
)

#: Tolerated deviation from a perfect 50/50 split, in percentage points.
#: The paper reports <0.4% for uniform/localized from much longer Noxim
#: runs; our shorter windows keep sampling noise around a couple of
#: percent, so the balanced-check threshold is 4 points, and hotspot is
#: checked against the paper's own 8-point bound.
BALANCED_TOLERANCE_PP = 4.0
#: The paper reports < 8 points for its hotspot configuration; our default
#: windows carry ~1 point of sampling noise on top, hence 9.
HOTSPOT_TOLERANCE_PP = 9.0


def run(scale: float | None = None, seed: int = 1) -> ExperimentResult:
    system = baseline_4_chiplets()
    config = default_config(scale, seed=seed)
    result = ExperimentResult(
        experiment_id="fig5",
        title="Fig. 5 VC utilization in DeFT under synthetic traffic",
    )
    regions = ["interposer"] + [
        f"chiplet-{c}" for c in range(system.spec.num_chiplets)
    ]
    result.rows.append(
        f"{'pattern':>10s}  " + "  ".join(f"{r:>12s}" for r in regions)
    )
    utilizations: dict[str, dict[str, list[float]]] = {}
    for label, traffic_cls, rate in _SCENARIOS:
        algorithm = DeftRouting(system)
        traffic = traffic_cls(system, rate, seed)
        report = Simulator(system, algorithm, traffic, config).run()
        util = report.stats.vc_utilization_report()
        utilizations[label] = util
        cells = [
            f"{util[r][0] * 100:5.1f}/{util[r][1] * 100:4.1f}" for r in regions
        ]
        result.rows.append(f"{label:>10s}  " + "  ".join(f"{c:>12s}" for c in cells))
    result.rows.append("(VC1/VC2 share of flit traversals per region, %)")
    result.data = utilizations
    for label in ("uniform", "localized"):
        worst = max(
            abs(utilizations[label][r][0] * 100 - 50.0) for r in regions
        )
        result.check(
            f"{label}: VC utilization balanced within {BALANCED_TOLERANCE_PP:.0f} points "
            f"(measured max deviation {worst:.1f})",
            worst <= BALANCED_TOLERANCE_PP,
        )
    hotspot_worst = max(
        abs(utilizations["hotspot"][r][0] * 100 - 50.0) for r in regions
    )
    result.check(
        f"hotspot: VC deviation below {HOTSPOT_TOLERANCE_PP:.0f} points (paper's bound; "
        f"measured {hotspot_worst:.1f})",
        hotspot_worst <= HOTSPOT_TOLERANCE_PP,
    )
    return result
