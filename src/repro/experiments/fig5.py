"""Fig. 5 — VC utilization in DeFT under synthetic traffic.

The paper reports the share of traffic on each of the two VCs per region
(interposer + each chiplet): balanced 50/50 with less than 0.4% tolerance
for Uniform and Localized traffic, and a deviation below 8% for Hotspot
traffic (three hotspots at a relatively high 10% rate each).
"""

from __future__ import annotations

from ..runner import CampaignRunner, Job, SystemRef, TrafficSpec
from ..topology.presets import baseline_4_chiplets
from .common import ExperimentResult, default_config, run_jobs

#: (pattern name, rate) — moderate rates below saturation.
_SCENARIOS = (
    ("uniform", 0.006),
    ("localized", 0.008),
    ("hotspot", 0.004),
)

#: Tolerated deviation from a perfect 50/50 split, in percentage points.
#: The paper reports <0.4% for uniform/localized from much longer Noxim
#: runs; our shorter windows keep sampling noise around a couple of
#: percent, so the balanced-check threshold is 4 points, and hotspot is
#: checked against the paper's own 8-point bound.
BALANCED_TOLERANCE_PP = 4.0
#: The paper reports < 8 points for its hotspot configuration; our default
#: windows carry ~1 point of sampling noise on top, hence 9.
HOTSPOT_TOLERANCE_PP = 9.0


def run(
    scale: float | None = None,
    seed: int = 1,
    runner: CampaignRunner | None = None,
) -> ExperimentResult:
    system = baseline_4_chiplets()
    config = default_config(scale, seed=seed)
    result = ExperimentResult(
        experiment_id="fig5",
        title="Fig. 5 VC utilization in DeFT under synthetic traffic",
    )
    regions = ["interposer"] + [
        f"chiplet-{c}" for c in range(system.spec.num_chiplets)
    ]
    result.rows.append(
        f"{'pattern':>10s}  " + "  ".join(f"{r:>12s}" for r in regions)
    )
    jobs = [
        Job.make(
            SystemRef.baseline4(),
            "deft",
            TrafficSpec.make(label, rate=rate),
            config,
            seed=seed,
        )
        for label, rate in _SCENARIOS
    ]
    results = run_jobs(jobs, runner, name="fig5")
    utilizations: dict[str, dict[str, list[float]]] = {}
    for (label, _rate), job_result in zip(_SCENARIOS, results):
        util = job_result.vc_utilization
        utilizations[label] = util
        cells = [
            f"{util[r][0] * 100:5.1f}/{util[r][1] * 100:4.1f}" for r in regions
        ]
        result.rows.append(f"{label:>10s}  " + "  ".join(f"{c:>12s}" for c in cells))
    result.rows.append("(VC1/VC2 share of flit traversals per region, %)")
    result.data = utilizations
    for label in ("uniform", "localized"):
        worst = max(
            abs(utilizations[label][r][0] * 100 - 50.0) for r in regions
        )
        result.check(
            f"{label}: VC utilization balanced within {BALANCED_TOLERANCE_PP:.0f} points "
            f"(measured max deviation {worst:.1f})",
            worst <= BALANCED_TOLERANCE_PP,
        )
    hotspot_worst = max(
        abs(utilizations["hotspot"][r][0] * 100 - 50.0) for r in regions
    )
    result.check(
        f"hotspot: VC deviation below {HOTSPOT_TOLERANCE_PP:.0f} points (paper's bound; "
        f"measured {hotspot_worst:.1f})",
        hotspot_worst <= HOTSPOT_TOLERANCE_PP,
    )
    return result
