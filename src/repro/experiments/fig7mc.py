"""Fig. 7 (Monte Carlo) — sampled reachability, validated and extended.

Two sub-experiments built on :mod:`repro.montecarlo`:

* :func:`fig7mc_validation` — cross-validation on the 4-chiplet baseline
  at small k, where the exact decomposition of
  :mod:`repro.analysis.reachability` is cheap: for every algorithm and
  every k the exact Fig. 7 average must fall inside the sampled mean's
  confidence interval. This is the statistical contract that licenses
  the Monte Carlo numbers wherever exact enumeration is infeasible.
* :func:`fig7mc_scale` — the extension the exact path cannot provide:
  fault counts beyond Fig. 7's k = 8 on a COLSxROWS chiplet grid
  (3x2 of 4x4 chiplets, 56 directed VL channels).

Both emit their samples as one campaign through the runner, so
``deft experiment fig7mc --workers N --cache-dir DIR`` parallelizes and
caches them like any simulation grid.
"""

from __future__ import annotations

from ..analysis.reachability import reachability_curve
from ..montecarlo import run_montecarlo
from ..routing.registry import make_algorithm
from ..runner import SystemRef
from ..topology.presets import baseline_4_chiplets
from .charts import ascii_chart
from .common import ExperimentResult, effective_scale

ALGORITHMS = ("deft", "mtr", "rc")

#: Cross-validation grid: small k on the 4-chiplet baseline, where the
#: exact decomposition is the ground truth.
VALIDATION_FAULT_COUNTS = (1, 2, 3)

#: Extension grid: beyond Fig. 7's k = 8, on a 3x2 grid of 4x4 chiplets.
SCALE_FAULT_COUNTS = (2, 4, 8, 12)
SCALE_GRID = (3, 2)

#: The validation cross-check uses a wide (99%) interval: with a fixed
#: seed the experiment is deterministic, but the margin documents that
#: the contract is statistical, not exact.
VALIDATION_CONFIDENCE = 0.99

MC_SEED = 0


def _sample_count(scale: float | None, base: int, floor: int = 20) -> int:
    """Scale the sample budget like other experiments scale cycles.

    ``floor`` keeps statistically meaningful minimums: the validation
    cross-check needs enough draws that rare degraded patterns (e.g. MTR
    at k=2, where ~99.7% of patterns are fully reachable) actually appear
    — with too few samples the estimator degenerates to a zero-width
    interval at 1.0 and the comparison against the exact mean is vacuous.
    """
    return max(floor, int(base * effective_scale(scale)))


def fig7mc_validation(scale: float | None = None, runner=None) -> ExperimentResult:
    """Sampled vs exact reachability on the 4-chiplet baseline."""
    result = ExperimentResult(
        experiment_id="fig7mc-a",
        title="Fig. 7 MC (a) sampled vs exact - 4 chiplets (32 VLs)",
    )
    samples = _sample_count(scale, 150, floor=100)
    report = run_montecarlo(
        SystemRef.baseline4(), ALGORITHMS, VALIDATION_FAULT_COUNTS, samples,
        seed=MC_SEED, metric="reachability", runner=runner,
        confidence=VALIDATION_CONFIDENCE,
    )
    system = baseline_4_chiplets()
    exact = {
        name: reachability_curve(
            system, make_algorithm(name, system), VALIDATION_FAULT_COUNTS
        )
        for name in ALGORITHMS
    }
    result.rows.append(
        f"{samples} samples per point, seed {MC_SEED}, "
        f"{int(VALIDATION_CONFIDENCE * 100)}% confidence intervals"
    )
    for point in report.results:
        exact_avg = exact[point.algorithm].average[
            VALIDATION_FAULT_COUNTS.index(point.k)
        ]
        result.rows.append(point.row() + f"  exact={exact_avg:8.4f}")
    result.data = {
        "samples": samples,
        "sampled": {
            f"{p.algorithm}:k={p.k}": {
                "mean": p.primary.mean if p.primary else None,
                "ci": [p.primary.interval.low, p.primary.interval.high]
                if p.primary else None,
                "worst": p.primary.worst if p.primary else None,
            }
            for p in report.results
        },
        "exact": {
            name: {"average": curve.average, "worst": curve.worst}
            for name, curve in exact.items()
        },
    }
    for point in report.results:
        exact_avg = exact[point.algorithm].average[
            VALIDATION_FAULT_COUNTS.index(point.k)
        ]
        agrees = point.primary is not None and (
            point.primary.interval.contains(exact_avg)
            # A zero-variance estimator (every sample identical) has a
            # degenerate CI; agreement then means exact equality.
            or abs(point.primary.mean - exact_avg) < 1e-12
        )
        result.check(
            f"{point.algorithm} k={point.k}: exact average inside the sampled CI",
            agrees,
        )
    result.check(
        "every sample completed (admissible patterns exist at small k)",
        all(p.failed == 0 for p in report.results),
    )
    return result


def fig7mc_scale(scale: float | None = None, runner=None) -> ExperimentResult:
    """Sampled reachability beyond k = 8 on a 3x2 chiplet grid."""
    cols, rows = SCALE_GRID
    result = ExperimentResult(
        experiment_id="fig7mc-b",
        title=f"Fig. 7 MC (b) large-k reachability - {cols}x{rows} grid",
    )
    samples = _sample_count(scale, 60)
    report = run_montecarlo(
        SystemRef.from_grid(cols, rows), ALGORITHMS, SCALE_FAULT_COUNTS, samples,
        seed=MC_SEED, metric="reachability", runner=runner,
    )
    result.rows.append(f"{samples} samples per point, seed {MC_SEED}")
    for point in report.results:
        result.rows.append(point.row())
    chart_series = {
        name: [
            (p.k, p.primary.mean * 100)
            for p in report.results
            if p.algorithm == name and p.primary is not None
        ]
        for name in ALGORITHMS
    }
    result.rows.append("")
    result.rows.append(
        ascii_chart(
            chart_series,
            title=f"sampled average reachability (%), {cols}x{rows} grid",
            x_label="number of faulty VLs",
        )
    )
    result.data = {
        "samples": samples,
        "fault_counts": list(SCALE_FAULT_COUNTS),
        "sampled": {
            f"{p.algorithm}:k={p.k}": {
                "mean": p.primary.mean if p.primary else None,
                "worst": p.primary.worst if p.primary else None,
                "failed": p.failed,
            }
            for p in report.results
        },
    }
    by_algo = {
        name: [p for p in report.results if p.algorithm == name]
        for name in ALGORITHMS
    }
    result.check(
        "DeFT keeps 100% sampled reachability through k=12",
        all(
            p.primary is not None and p.primary.mean == 1.0 and p.primary.worst == 1.0
            for p in by_algo["deft"]
        ),
    )
    result.check(
        "sampled averages ordered deft >= mtr >= rc at every k",
        all(
            d.primary is not None and m.primary is not None
            and r.primary is not None
            and d.primary.mean >= m.primary.mean >= r.primary.mean
            for d, m, r in zip(by_algo["deft"], by_algo["mtr"], by_algo["rc"])
        ),
    )
    result.check(
        "worst observed never exceeds the sampled mean",
        all(
            p.primary.worst <= p.primary.mean + 1e-12
            for p in report.results
            if p.primary is not None
        ),
    )
    return result


def run(scale: float | None = None, runner=None) -> list[ExperimentResult]:
    """Both Monte Carlo reachability sub-figures."""
    return [fig7mc_validation(scale, runner), fig7mc_scale(scale, runner)]
