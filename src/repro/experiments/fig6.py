"""Fig. 6 — latency improvement under PARSEC-like application traffic.

(a) one application across all 64 cores — low network load, small
improvements; (b) two applications co-running on 32 cores each — higher
load and shared L2/directory contention, larger improvements, growing
with the pair's traffic load (x-axis sorted by load as in the paper).

Improvement is reported exactly as the paper plots it:
``(latency_baseline - latency_DeFT) / latency_baseline * 100`` for
baseline in {MTR, RC}.
"""

from __future__ import annotations

from ..runner import CampaignRunner, Job, SystemRef, TrafficSpec
from ..traffic.parsec import FIG6A_APPS, FIG6B_PAIRS, app_pair_load
from .common import ExperimentResult, default_config, run_jobs
from .charts import bar_rows

#: Load multiplier keeping the heaviest pair near (not past) saturation,
#: which is where the paper's 40% peak improvement lives.
TWO_APP_LOAD_SCALE = 0.85
SINGLE_APP_LOAD_SCALE = 1.0

ALGORITHMS = ("deft", "mtr", "rc")


def _workload_latencies(
    traffic_specs: list[TrafficSpec],
    config,
    seed: int,
    runner: CampaignRunner | None,
    name: str,
) -> list[dict[str, float]]:
    """Per-workload {algorithm: latency}, all workloads in one campaign."""
    jobs = [
        Job.make(SystemRef.baseline4(), algorithm, spec, config, seed=seed)
        for spec in traffic_specs
        for algorithm in ALGORITHMS
    ]
    results = iter(run_jobs(jobs, runner, name=name))
    return [
        {algorithm: next(results).average_latency for algorithm in ALGORITHMS}
        for _spec in traffic_specs
    ]


def _improvements(latencies: dict[str, float]) -> tuple[float, float]:
    """(vs MTR, vs RC) percentage improvements of DeFT."""
    deft = latencies["deft"]
    vs_mtr = (latencies["mtr"] - deft) / latencies["mtr"] * 100.0
    vs_rc = (latencies["rc"] - deft) / latencies["rc"] * 100.0
    return vs_mtr, vs_rc


def fig6a(
    scale: float | None = None,
    seed: int = 3,
    runner: CampaignRunner | None = None,
) -> ExperimentResult:
    """Single application on all 64 cores."""
    config = default_config(scale, seed=seed)
    result = ExperimentResult(
        experiment_id="fig6a",
        title="Fig. 6(a) latency improvement, single application",
    )
    specs = [
        TrafficSpec.make("parsec", app=app, load_scale=SINGLE_APP_LOAD_SCALE)
        for app in FIG6A_APPS
    ]
    latencies_per_app = _workload_latencies(specs, config, seed, runner, "fig6a")
    improvements: dict[str, tuple[float, float]] = {
        app: _improvements(latencies)
        for app, latencies in zip(FIG6A_APPS, latencies_per_app)
    }
    result.rows.append(f"{'app':>10s} {'vs MTR %':>10s} {'vs RC %':>10s}")
    for app, (vs_mtr, vs_rc) in improvements.items():
        result.rows.append(f"{app:>10s} {vs_mtr:10.1f} {vs_rc:10.1f}")
    avg_mtr = sum(v[0] for v in improvements.values()) / len(improvements)
    avg_rc = sum(v[1] for v in improvements.values()) / len(improvements)
    result.rows.append(f"{'Avg':>10s} {avg_mtr:10.1f} {avg_rc:10.1f}")
    result.data = {"improvements": improvements, "avg": (avg_mtr, avg_rc)}
    result.check(
        "single-application improvements are modest (network mostly uncongested)",
        avg_mtr < 20.0,
    )
    result.check(
        "DeFT does not lose to the baselines on average",
        avg_mtr > -1.0 and avg_rc > 0.0,
    )
    result.check("DeFT beats RC for every application", all(v[1] > 0 for v in improvements.values()))
    return result


def fig6b(
    scale: float | None = None,
    seed: int = 3,
    runner: CampaignRunner | None = None,
) -> ExperimentResult:
    """Two applications on 32 cores each, pairs sorted by load."""
    config = default_config(scale, seed=seed)
    result = ExperimentResult(
        experiment_id="fig6b",
        title="Fig. 6(b) latency improvement, two applications",
    )
    specs = [
        TrafficSpec.make(
            "parsec-pair", app_a=app_a, app_b=app_b, load_scale=TWO_APP_LOAD_SCALE
        )
        for app_a, app_b in FIG6B_PAIRS
    ]
    latencies_per_pair = _workload_latencies(specs, config, seed, runner, "fig6b")
    loads: list[float] = [app_pair_load(a, b) for a, b in FIG6B_PAIRS]
    improvements: dict[str, tuple[float, float]] = {
        f"{app_a}+{app_b}": _improvements(latencies)
        for (app_a, app_b), latencies in zip(FIG6B_PAIRS, latencies_per_pair)
    }
    result.rows.append(f"{'pair':>10s} {'load':>7s} {'vs MTR %':>10s} {'vs RC %':>10s}")
    for (label, (vs_mtr, vs_rc)), load in zip(improvements.items(), loads):
        result.rows.append(f"{label:>10s} {load:7.3f} {vs_mtr:10.1f} {vs_rc:10.1f}")
    avg_mtr = sum(v[0] for v in improvements.values()) / len(improvements)
    avg_rc = sum(v[1] for v in improvements.values()) / len(improvements)
    result.rows.append(f"{'Avg':>10s} {'':7s} {avg_mtr:10.1f} {avg_rc:10.1f}")
    result.rows.append("")
    result.rows.extend(bar_rows({k: v[0] for k, v in improvements.items()}, unit="% vs MTR"))
    result.data = {"improvements": improvements, "loads": loads, "avg": (avg_mtr, avg_rc)}
    result.check(
        "pairs are ordered by increasing load (the paper's x-axis)",
        all(loads[i] < loads[i + 1] for i in range(len(loads) - 1)),
    )
    values = list(improvements.values())
    result.check(
        "improvement grows with load (heaviest pair beats lightest)",
        values[-1][0] > values[0][0],
    )
    result.check(
        "notable improvement for high loads (paper: up to 40%)",
        max(v[0] for v in values) > 15.0,
    )
    result.check("DeFT beats RC for every pair", all(v[1] > 0 for v in values))
    return result


def run(
    scale: float | None = None, runner: CampaignRunner | None = None
) -> list[ExperimentResult]:
    a = fig6a(scale, runner=runner)
    b = fig6b(scale, runner=runner)
    # The paper's headline: more improvement with multiple applications.
    b.check(
        "two-application average improvement exceeds single-application",
        b.data["avg"][0] > a.data["avg"][0],
    )
    return [a, b]
