"""Fig. 6 — latency improvement under PARSEC-like application traffic.

(a) one application across all 64 cores — low network load, small
improvements; (b) two applications co-running on 32 cores each — higher
load and shared L2/directory contention, larger improvements, growing
with the pair's traffic load (x-axis sorted by load as in the paper).

Improvement is reported exactly as the paper plots it:
``(latency_baseline - latency_DeFT) / latency_baseline * 100`` for
baseline in {MTR, RC}.
"""

from __future__ import annotations

from ..network.simulator import Simulator
from ..routing.registry import make_algorithm
from ..topology.presets import baseline_4_chiplets
from ..traffic.parsec import (
    APP_PROFILES,
    FIG6A_APPS,
    FIG6B_PAIRS,
    ParsecLikeTraffic,
    app_pair_load,
    two_app_workload,
)
from .common import ExperimentResult, default_config
from .charts import bar_rows

#: Load multiplier keeping the heaviest pair near (not past) saturation,
#: which is where the paper's 40% peak improvement lives.
TWO_APP_LOAD_SCALE = 0.85
SINGLE_APP_LOAD_SCALE = 1.0

ALGORITHMS = ("deft", "mtr", "rc")


def _latencies(system, traffic_factory, config, seed: int) -> dict[str, float]:
    out: dict[str, float] = {}
    for name in ALGORITHMS:
        algorithm = make_algorithm(name, system)
        traffic = traffic_factory(seed)
        report = Simulator(system, algorithm, traffic, config.replace(seed=seed)).run()
        out[name] = report.stats.average_latency
    return out


def _improvements(latencies: dict[str, float]) -> tuple[float, float]:
    """(vs MTR, vs RC) percentage improvements of DeFT."""
    deft = latencies["deft"]
    vs_mtr = (latencies["mtr"] - deft) / latencies["mtr"] * 100.0
    vs_rc = (latencies["rc"] - deft) / latencies["rc"] * 100.0
    return vs_mtr, vs_rc


def fig6a(scale: float | None = None, seed: int = 3) -> ExperimentResult:
    """Single application on all 64 cores."""
    system = baseline_4_chiplets()
    config = default_config(scale, seed=seed)
    result = ExperimentResult(
        experiment_id="fig6a",
        title="Fig. 6(a) latency improvement, single application",
    )
    improvements: dict[str, tuple[float, float]] = {}
    for app in FIG6A_APPS:
        latencies = _latencies(
            system,
            lambda s, app=app: ParsecLikeTraffic(
                system, APP_PROFILES[app], seed=s,
                load_scale=SINGLE_APP_LOAD_SCALE,
            ),
            config,
            seed,
        )
        improvements[app] = _improvements(latencies)
    result.rows.append(f"{'app':>10s} {'vs MTR %':>10s} {'vs RC %':>10s}")
    for app, (vs_mtr, vs_rc) in improvements.items():
        result.rows.append(f"{app:>10s} {vs_mtr:10.1f} {vs_rc:10.1f}")
    avg_mtr = sum(v[0] for v in improvements.values()) / len(improvements)
    avg_rc = sum(v[1] for v in improvements.values()) / len(improvements)
    result.rows.append(f"{'Avg':>10s} {avg_mtr:10.1f} {avg_rc:10.1f}")
    result.data = {"improvements": improvements, "avg": (avg_mtr, avg_rc)}
    result.check(
        "single-application improvements are modest (network mostly uncongested)",
        avg_mtr < 20.0,
    )
    result.check(
        "DeFT does not lose to the baselines on average",
        avg_mtr > -1.0 and avg_rc > 0.0,
    )
    result.check("DeFT beats RC for every application", all(v[1] > 0 for v in improvements.values()))
    return result


def fig6b(scale: float | None = None, seed: int = 3) -> ExperimentResult:
    """Two applications on 32 cores each, pairs sorted by load."""
    system = baseline_4_chiplets()
    config = default_config(scale, seed=seed)
    result = ExperimentResult(
        experiment_id="fig6b",
        title="Fig. 6(b) latency improvement, two applications",
    )
    improvements: dict[str, tuple[float, float]] = {}
    loads: list[float] = []
    for app_a, app_b in FIG6B_PAIRS:
        label = f"{app_a}+{app_b}"
        loads.append(app_pair_load(app_a, app_b))
        latencies = _latencies(
            system,
            lambda s, a=app_a, b=app_b: two_app_workload(
                system, a, b, seed=s, load_scale=TWO_APP_LOAD_SCALE
            ),
            config,
            seed,
        )
        improvements[label] = _improvements(latencies)
    result.rows.append(f"{'pair':>10s} {'load':>7s} {'vs MTR %':>10s} {'vs RC %':>10s}")
    for (label, (vs_mtr, vs_rc)), load in zip(improvements.items(), loads):
        result.rows.append(f"{label:>10s} {load:7.3f} {vs_mtr:10.1f} {vs_rc:10.1f}")
    avg_mtr = sum(v[0] for v in improvements.values()) / len(improvements)
    avg_rc = sum(v[1] for v in improvements.values()) / len(improvements)
    result.rows.append(f"{'Avg':>10s} {'':7s} {avg_mtr:10.1f} {avg_rc:10.1f}")
    result.rows.append("")
    result.rows.extend(bar_rows({k: v[0] for k, v in improvements.items()}, unit="% vs MTR"))
    result.data = {"improvements": improvements, "loads": loads, "avg": (avg_mtr, avg_rc)}
    result.check(
        "pairs are ordered by increasing load (the paper's x-axis)",
        all(loads[i] < loads[i + 1] for i in range(len(loads) - 1)),
    )
    values = list(improvements.values())
    result.check(
        "improvement grows with load (heaviest pair beats lightest)",
        values[-1][0] > values[0][0],
    )
    result.check(
        "notable improvement for high loads (paper: up to 40%)",
        max(v[0] for v in values) > 15.0,
    )
    result.check("DeFT beats RC for every pair", all(v[1] > 0 for v in values))
    return result


def run(scale: float | None = None) -> list[ExperimentResult]:
    a = fig6a(scale)
    b = fig6b(scale)
    # The paper's headline: more improvement with multiple applications.
    b.check(
        "two-application average improvement exceeds single-application",
        b.data["avg"][0] > a.data["avg"][0],
    )
    return [a, b]
