"""Ablation studies on DeFT's design choices (beyond the paper's figures).

Four ablations on knobs the paper fixes or only mentions:

* **rho sweep** — equation (6) weighs distance vs load balance with
  ``rho = 0.01`` ("we experimentally found rho = 0.01 to be efficient").
  We rebuild the offline tables for several rho values and compare both
  static metrics (total hop distance, load imbalance) and simulated
  latency. Expectation: rho = 0 ignores distance and inflates hop counts;
  very large rho degenerates to distance-based selection; the paper's
  0.01 sits at the sweet spot.
* **traffic-aware offline optimization** — Section IV-A: "Including
  traffic information in the offline optimization results in further
  improvements." We profile hotspot traffic, feed the measured
  inter-chiplet rates into table construction, and compare against the
  default uniform-assumption tables under the same traffic.
* **adaptive online selection** — the DeFT-Ada extension (run-time
  VL-load tracking, Adele-style [16]) against the offline tables under a
  fault scenario.
* **VL serialization** — Section IV-A cites serialization [18] as a way
  to reduce vertical-link cost; we sweep the serialization factor and
  report the latency cost of narrower vertical channels.
"""

from __future__ import annotations

from ..core.tables import build_selection_tables
from ..core.vl_selection import SelectionProblem, distance_cost, load_cost
from ..network.simulator import Simulator
from ..routing.deft import DeftRouting
from ..runner import CampaignRunner, Job, SystemRef, TrafficSpec, faults_to_spec
from ..topology.presets import baseline_4_chiplets
from ..traffic.synthetic import HotspotTraffic
from .common import ExperimentResult, default_config, run_jobs
from .fig8 import fault_pattern_25

RHO_VALUES = (0.0, 0.01, 1.0, 10.0)
SERIALIZATION_FACTORS = (1, 2, 4)


def _table_static_metrics(system, tables) -> tuple[float, float]:
    """(distance cost, balance cost) summed over all single-fault scenarios.

    The fault-free instance has a solution that is simultaneously
    distance-optimal and perfectly balanced (the 4/4/4/4 closest split),
    so rho only influences the *faulted* entries — which is exactly where
    Fig. 8 exercises them.
    """
    total_distance = 0.0
    total_balance = 0.0
    for chiplet, table in tables.items():
        routers = system.chiplet_routers(chiplet)
        links = system.vls_of_chiplet(chiplet)
        for faulty in range(len(links)):
            scenario = frozenset({faulty})
            alive = [l for l in links if l.local_index != faulty]
            problem = SelectionProblem.uniform(
                [(r.x, r.y) for r in routers],
                [(l.cx, l.cy) for l in alive],
            )
            selection = table.lookup(scenario)
            remap = {l.local_index: i for i, l in enumerate(alive)}
            mapped = [remap[s] for s in selection]
            total_distance += distance_cost(problem, mapped)
            total_balance += load_cost(problem, mapped)
    return total_distance, total_balance


def rho_sweep(
    scale: float | None = None,
    seed: int = 13,
    runner: CampaignRunner | None = None,
) -> ExperimentResult:
    """Ablate equation (6)'s rho on the faulted table entries and latency."""
    from .fig8 import fault_pattern_12p5

    system = baseline_4_chiplets()
    config = default_config(scale, seed=seed)
    faults = faults_to_spec(fault_pattern_12p5(system))
    result = ExperimentResult(
        experiment_id="ablation-rho",
        title="Ablation: distance/balance weight rho of eq. (6), 12.5% faults",
    )
    result.rows.append(f"{'rho':>6s} {'distance':>9s} {'imbalance':>10s} {'latency':>9s}")
    jobs = [
        Job.make(
            SystemRef.baseline4(),
            "deft",
            TrafficSpec.make("uniform", rate=0.007),
            config,
            faults=faults,
            seed=seed,
            algorithm_params={"rho": rho},
        )
        for rho in RHO_VALUES
    ]
    results = run_jobs(jobs, runner, name="ablation-rho")
    rows = {}
    for rho, job_result in zip(RHO_VALUES, results):
        tables = build_selection_tables(system, rho=rho)
        distance, balance = _table_static_metrics(system, tables)
        latency = job_result.average_latency
        rows[rho] = {"distance": distance, "imbalance": balance, "latency": latency}
        result.rows.append(f"{rho:6.2f} {distance:9.1f} {balance:10.3f} {latency:9.2f}")
    result.data = rows
    result.check(
        "large rho trades balance for distance (imbalance grows, distance shrinks)",
        rows[10.0]["imbalance"] > rows[0.01]["imbalance"]
        and rows[10.0]["distance"] < rows[0.01]["distance"],
    )
    result.check(
        "the paper's rho=0.01 keeps the faulted entries balance-optimal",
        rows[0.01]["imbalance"] <= rows[0.0]["imbalance"] + 1e-9,
    )
    result.check(
        "the paper's rho=0.01 is not beaten by more than noise (5%)",
        rows[0.01]["latency"]
        <= 1.05 * min(metrics["latency"] for metrics in rows.values()),
    )
    return result


def traffic_aware_tables(scale: float | None = None, seed: int = 17) -> ExperimentResult:
    """Offline optimization fed with the measured traffic profile.

    This ablation stays on the inline simulator: its selection tables are
    parameterized by *measured per-router rate callables*, which have no
    canonical serialized form a campaign job could carry.
    """
    system = baseline_4_chiplets()
    config = default_config(scale, seed=seed)
    result = ExperimentResult(
        experiment_id="ablation-traffic-aware",
        title="Ablation: traffic-aware offline VL selection (Fig. 3(c))",
    )
    rate = 0.0045

    def make_traffic(s: int) -> HotspotTraffic:
        return HotspotTraffic(system, rate, s)

    # 1. Profile: measure per-router inter-chiplet *injection* rates (for
    #    the down-side selection) and *delivery* rates (for the up-side
    #    selection) under the workload — design-time trace analysis. The
    #    distinction matters for hotspot traffic, whose hot destinations
    #    are not hot sources.
    profile_traffic = make_traffic(seed)
    injected: dict[int, int] = {core: 0 for core in system.cores}
    delivered: dict[int, int] = {core: 0 for core in system.cores}
    profile_cycles = 4_000
    for cycle in range(profile_cycles):
        for src, dst in profile_traffic.packets_for_cycle(cycle):
            if not system.same_chiplet(src, dst):
                injected[src] = injected.get(src, 0) + 1
                delivered[dst] = delivered.get(dst, 0) + 1

    def injection_rate(router_id: int) -> float:
        return injected.get(router_id, 0) / profile_cycles

    def delivery_rate(router_id: int) -> float:
        return delivered.get(router_id, 0) / profile_cycles

    latencies = {}
    uniform_tables = build_selection_tables(system)
    aware = DeftRouting(
        system,
        selection_tables=build_selection_tables(system, traffic_of_router=injection_rate),
        up_selection_tables=build_selection_tables(system, traffic_of_router=delivery_rate),
    )
    for label, algorithm in (
        ("uniform-assumption", DeftRouting(system, selection_tables=uniform_tables)),
        ("traffic-aware", aware),
    ):
        report = Simulator(system, algorithm, make_traffic(seed), config).run()
        latencies[label] = report.stats.average_latency
        result.rows.append(f"{label:>20s}: {latencies[label]:8.2f} cycles")
    result.data = latencies
    result.check(
        "traffic-aware tables do not lose to the uniform assumption (5% margin)",
        latencies["traffic-aware"] <= 1.05 * latencies["uniform-assumption"],
    )
    return result


def adaptive_selection(
    scale: float | None = None,
    seed: int = 19,
    runner: CampaignRunner | None = None,
) -> ExperimentResult:
    """Online load-aware selection (DeFT-Ada) vs the offline tables.

    Evaluated under hotspot traffic *and* a 25% fault rate: the offline
    tables were optimized for uniform traffic (the paper's pessimistic
    assumption), so a skewed workload is where run-time load information
    can pay for itself.
    """
    system = baseline_4_chiplets()
    config = default_config(scale, seed=seed)
    result = ExperimentResult(
        experiment_id="ablation-adaptive",
        title="Ablation: online adaptive VL selection, hotspot + 25% faults",
    )
    faults = faults_to_spec(fault_pattern_25(system))
    strategies = (
        ("deft", "offline tables"),
        ("deft-ada", "online adaptive"),
        ("deft-ran", "random"),
    )
    jobs = [
        Job.make(
            SystemRef.baseline4(),
            algorithm,
            TrafficSpec.make("hotspot", rate=0.0045),
            config,
            faults=faults,
            seed=seed,
        )
        for algorithm, _label in strategies
    ]
    results = run_jobs(jobs, runner, name="ablation-adaptive")
    latencies = {}
    for (_algorithm, label), job_result in zip(strategies, results):
        latencies[label] = job_result.average_latency
        result.rows.append(f"{label:>16s}: {latencies[label]:8.2f} cycles "
                           f"(delivered {job_result.delivered_ratio * 100:.1f}%)")
    result.data = latencies
    result.check(
        "adaptive selection beats random selection under skewed load + faults",
        latencies["online adaptive"] < latencies["random"],
    )
    result.check(
        "adaptive selection is competitive with the offline tables (10%)",
        latencies["online adaptive"] <= 1.10 * latencies["offline tables"],
    )
    return result


def serialization_sweep(
    scale: float | None = None,
    seed: int = 23,
    runner: CampaignRunner | None = None,
) -> ExperimentResult:
    """Latency cost of serialized vertical links ([18], Section IV-A)."""
    result = ExperimentResult(
        experiment_id="ablation-serialization",
        title="Ablation: vertical-link serialization factor",
    )
    jobs = [
        Job.make(
            SystemRef.baseline4(),
            "deft",
            TrafficSpec.make("uniform", rate=0.005),
            default_config(scale, seed=seed).replace(vl_serialization=factor),
            seed=seed,
        )
        for factor in SERIALIZATION_FACTORS
    ]
    results = run_jobs(jobs, runner, name="ablation-serialization")
    latencies = {}
    for factor, job_result in zip(SERIALIZATION_FACTORS, results):
        latencies[factor] = job_result.average_latency
        result.rows.append(
            f"serialization x{factor}: {latencies[factor]:8.2f} cycles "
            f"(delivered {job_result.delivered_ratio * 100:.1f}%)"
        )
    result.data = {str(k): v for k, v in latencies.items()}
    factors = list(SERIALIZATION_FACTORS)
    result.check(
        "latency grows monotonically with the serialization factor",
        all(
            latencies[a] <= latencies[b] + 1e-9
            for a, b in zip(factors, factors[1:])
        ),
    )
    result.check(
        "x4 serialization visibly costs latency at this load",
        latencies[factors[-1]] > latencies[factors[0]] * 1.05,
    )
    return result


def wear_balance(
    scale: float | None = None,
    seed: int = 29,
    runner: CampaignRunner | None = None,
) -> ExperimentResult:
    """VL wear under a fault: balanced selection extends the weakest bump.

    Quantifies Section III-B's reliability argument ("over-utilization of
    VLs can increase stress-migration-based faults"): under one faulty
    down-VL per chiplet, compare the wear profile of the optimized
    selection against the distance-based selection whose 8/4/4 split
    (Fig. 3(b)) concentrates current density on one VL.
    """
    from ..analysis.wear import wear_report_from_loads, wear_summary_row
    from .fig8 import fault_pattern_12p5

    system = baseline_4_chiplets()
    config = default_config(scale, seed=seed)
    faults = faults_to_spec(fault_pattern_12p5(system))
    result = ExperimentResult(
        experiment_id="ablation-wear",
        title="Ablation: VL wear balance under 12.5% faults (reliability)",
    )
    strategies = (("deft", "optimized"), ("deft-dis", "distance-based"))
    jobs = [
        Job.make(
            SystemRef.baseline4(),
            algorithm,
            TrafficSpec.make("uniform", rate=0.006),
            config,
            faults=faults,
            seed=seed,
        )
        for algorithm, _label in strategies
    ]
    results = run_jobs(jobs, runner, name="ablation-wear")
    reports = {}
    for (_algorithm, label), job_result in zip(strategies, results):
        wear = wear_report_from_loads(system, job_result.vl_loads, job_result.cycles)
        reports[label] = wear
        result.rows.append(wear_summary_row(label, wear))
    result.data = {
        label: {
            "imbalance": wear.imbalance,
            "min_relative_mttf": wear.min_relative_mttf,
        }
        for label, wear in reports.items()
    }
    result.check(
        "optimized selection wears VLs more evenly than distance-based",
        reports["optimized"].imbalance < reports["distance-based"].imbalance,
    )
    result.check(
        "optimized selection extends the weakest channel's relative lifetime",
        reports["optimized"].min_relative_mttf
        > reports["distance-based"].min_relative_mttf,
    )
    return result


def run(
    scale: float | None = None, runner: CampaignRunner | None = None
) -> list[ExperimentResult]:
    """All five ablation studies."""
    return [
        rho_sweep(scale, runner=runner),
        traffic_aware_tables(scale),
        adaptive_selection(scale, runner=runner),
        serialization_sweep(scale, runner=runner),
        wear_balance(scale, runner=runner),
    ]
