"""Fig. 4 — average latency vs injection rate, DeFT / MTR / RC.

Four sub-figures: (a) Uniform, (b) Localized and (c) Hotspot traffic on
the 4-chiplet baseline, and (d) Uniform traffic on the 6-chiplet system.

Note on rate axes: our substrate's routers are more ideal than the
authors' enhanced Noxim (identical microarchitecture, different pipeline
constants), so saturation sits at slightly higher injection rates; the
sweeps below cover the same region *relative to saturation* as the
paper's 0-0.008/0.010 axes. The qualitative claims checked are those of
the paper: DeFT has the lowest latency everywhere, baselines saturate
first, and the advantage persists for 6 chiplets.
"""

from __future__ import annotations

from ..runner import CampaignRunner, SystemRef
from .common import (
    ExperimentResult,
    default_config,
    run_sweep,
    series_rows,
)
from .charts import ascii_chart

ALGORITHMS = ("deft", "mtr", "rc")

RATES_UNIFORM_4 = (0.002, 0.004, 0.006, 0.008, 0.010, 0.012)
RATES_LOCALIZED_4 = (0.002, 0.005, 0.008, 0.011, 0.014)
RATES_HOTSPOT_4 = (0.001, 0.002, 0.003, 0.004, 0.005, 0.006)
RATES_UNIFORM_6 = (0.002, 0.004, 0.006, 0.008, 0.010)


def _sweep_experiment(
    experiment_id: str,
    title: str,
    system: SystemRef,
    traffic_name: str,
    rates,
    scale: float | None,
    seeds: tuple[int, ...],
    runner: CampaignRunner | None = None,
) -> ExperimentResult:
    config = default_config(scale)
    series = run_sweep(
        system, ALGORITHMS, traffic_name, rates, config, seeds, runner=runner
    )
    result = ExperimentResult(experiment_id=experiment_id, title=title)
    result.rows = series_rows(series)
    result.rows.append("")
    result.rows.append(
        ascii_chart(
            {label: list(zip(line.rates, line.latency)) for label, line in series.items()},
            title=title,
            x_label="packet injection rate",
        )
    )
    result.data = {
        label: {"rates": line.rates, "latency": line.latency}
        for label, line in series.items()
    }
    deft, mtr, rc = series["deft"], series["mtr"], series["rc"]
    top = rates[-1]
    result.check(
        "DeFT has the lowest latency at the highest injection rate",
        deft.latency_at(top) < mtr.latency_at(top)
        and deft.latency_at(top) < rc.latency_at(top),
    )
    result.check(
        "DeFT latency is within noise of the best at every rate",
        all(
            deft.latency[i] <= 1.05 * min(mtr.latency[i], rc.latency[i])
            for i in range(len(rates))
        ),
    )
    result.check(
        "RC pays a visible permission/store-and-forward penalty vs DeFT",
        all(rc.latency[i] > deft.latency[i] for i in range(len(rates))),
    )
    result.check(
        "every algorithm delivers all measured packets below saturation",
        all(
            line.delivered_ratio[0] > 0.999 for line in series.values()
        ),
    )
    return result


def fig4a(
    scale: float | None = None,
    seeds: tuple[int, ...] = (1,),
    runner: CampaignRunner | None = None,
) -> ExperimentResult:
    """Uniform traffic, 4 chiplets."""
    return _sweep_experiment(
        "fig4a",
        "Fig. 4(a) Uniform - 4 chiplets",
        SystemRef.baseline4(),
        "uniform",
        RATES_UNIFORM_4,
        scale,
        seeds,
        runner,
    )


def fig4b(
    scale: float | None = None,
    seeds: tuple[int, ...] = (1,),
    runner: CampaignRunner | None = None,
) -> ExperimentResult:
    """Localized traffic (40% intra-chiplet), 4 chiplets."""
    return _sweep_experiment(
        "fig4b",
        "Fig. 4(b) Localized - 4 chiplets",
        SystemRef.baseline4(),
        "localized",
        RATES_LOCALIZED_4,
        scale,
        seeds,
        runner,
    )


def fig4c(
    scale: float | None = None,
    seeds: tuple[int, ...] = (1,),
    runner: CampaignRunner | None = None,
) -> ExperimentResult:
    """Hotspot traffic (3 hotspots at 10% each), 4 chiplets."""
    return _sweep_experiment(
        "fig4c",
        "Fig. 4(c) Hotspot - 4 chiplets",
        SystemRef.baseline4(),
        "hotspot",
        RATES_HOTSPOT_4,
        scale,
        seeds,
        runner,
    )


def fig4d(
    scale: float | None = None,
    seeds: tuple[int, ...] = (1,),
    runner: CampaignRunner | None = None,
) -> ExperimentResult:
    """Uniform traffic, 6 chiplets (scaling study)."""
    return _sweep_experiment(
        "fig4d",
        "Fig. 4(d) Uniform - 6 chiplets",
        SystemRef.baseline6(),
        "uniform",
        RATES_UNIFORM_6,
        scale,
        seeds,
        runner,
    )


def run(
    scale: float | None = None, runner: CampaignRunner | None = None
) -> list[ExperimentResult]:
    """All four sub-figures."""
    return [
        fig4a(scale, runner=runner),
        fig4b(scale, runner=runner),
        fig4c(scale, runner=runner),
        fig4d(scale, runner=runner),
    ]
