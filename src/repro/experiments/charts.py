"""Minimal ASCII chart rendering for terminal-friendly figure output.

No plotting dependencies are available offline, so experiment reports
render their series as ASCII scatter charts — good enough to eyeball the
crossovers and saturation knees the paper's figures show.
"""

from __future__ import annotations

from typing import Mapping, Sequence

_MARKERS = "ox+*#@%&"


def ascii_chart(
    series: Mapping[str, Sequence[tuple[float, float]]],
    width: int = 64,
    height: int = 16,
    title: str = "",
    y_label: str = "",
    x_label: str = "",
) -> str:
    """Render named (x, y) series as an ASCII scatter chart."""
    points = [(x, y) for line in series.values() for x, y in line]
    if not points:
        return "(no data)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for index, (label, line) in enumerate(series.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        for x, y in line:
            col = int((x - x_min) / x_span * (width - 1))
            row = (height - 1) - int((y - y_min) / y_span * (height - 1))
            grid[row][col] = marker
    lines = []
    if title:
        lines.append(title.center(width + 10))
    top_label = f"{y_max:8.1f} |"
    bottom_label = f"{y_min:8.1f} |"
    for row_index, row in enumerate(grid):
        prefix = top_label if row_index == 0 else (
            bottom_label if row_index == height - 1 else " " * 9 + "|"
        )
        lines.append(prefix + "".join(row))
    lines.append(" " * 9 + "+" + "-" * width)
    lines.append(" " * 10 + f"{x_min:<10.4g}{x_label:^{max(0, width - 20)}}{x_max:>10.4g}")
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]}={label}" for i, label in enumerate(series)
    )
    lines.append(" " * 10 + legend)
    return "\n".join(lines)


def bar_rows(values: Mapping[str, float], width: int = 40, unit: str = "") -> list[str]:
    """Horizontal bar rendering for improvement-style figures (Fig. 6)."""
    if not values:
        return []
    peak = max(abs(v) for v in values.values()) or 1.0
    rows = []
    for label, value in values.items():
        bar = "#" * max(0, int(abs(value) / peak * width))
        sign = "-" if value < 0 else ""
        rows.append(f"{label:>10s} | {sign}{bar} {value:.1f}{unit}")
    return rows
