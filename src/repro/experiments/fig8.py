"""Fig. 8 — latency under VL faults for DeFT's VL-selection strategies.

Compares DeFT's offline-optimized selection against the distance-based
(``DeFT-Dis``, the common 3D-NoC approach) and random (``DeFT-Ran``)
strategies under (a) a 12.5% VL-fault rate (4 faulty directed channels)
and (b) a 25% rate (8 faulty channels) on the 4-chiplet system.

Fault patterns are deterministic and load-balanced across chiplets
(chiplet ``i`` loses the down channel of its VL ``i mod 4``; the 25%
scenario additionally loses the up channel of VL ``(i+2) mod 4``), which
exercises exactly the re-selection behaviour of Fig. 3(b).

Paper claims checked: optimized selection has the lowest latency under
both fault rates; random selection is relatively better at 25% than at
12.5% (good load spread once many VLs are gone, overhead when few are).
"""

from __future__ import annotations

from ..fault.model import DirectedVL, FaultState, VLDirection
from ..runner import CampaignRunner, SystemRef, faults_to_spec
from ..topology.presets import baseline_4_chiplets
from .common import ExperimentResult, default_config, run_sweep, series_rows
from .charts import ascii_chart

STRATEGIES = ("deft", "deft-dis", "deft-ran")
RATES_A = (0.004, 0.005, 0.006, 0.007, 0.008)
RATES_B = (0.004, 0.005, 0.006, 0.007)


def fault_pattern_12p5(system) -> FaultState:
    """4 faulty directed channels: one down VL per chiplet."""
    faults = []
    for chiplet in range(system.spec.num_chiplets):
        links = system.vls_of_chiplet(chiplet)
        link = links[chiplet % len(links)]
        faults.append(DirectedVL(link.index, VLDirection.DOWN))
    return FaultState(system, faults)


def fault_pattern_25(system) -> FaultState:
    """8 faulty directed channels: one down + one up VL per chiplet."""
    faults = []
    for chiplet in range(system.spec.num_chiplets):
        links = system.vls_of_chiplet(chiplet)
        down = links[chiplet % len(links)]
        up = links[(chiplet + 2) % len(links)]
        faults.append(DirectedVL(down.index, VLDirection.DOWN))
        faults.append(DirectedVL(up.index, VLDirection.UP))
    return FaultState(system, faults)


def _faulted_sweep(
    experiment_id: str,
    title: str,
    fault_state_factory,
    rates,
    scale: float | None,
    seed: int,
    runner: CampaignRunner | None = None,
) -> ExperimentResult:
    # The fault pattern is a deterministic function of the topology; it is
    # materialized once here and shipped in every job as its canonical
    # (vl_index, direction) form.
    faults = faults_to_spec(fault_state_factory(baseline_4_chiplets()))
    config = default_config(scale, seed=seed)
    result = ExperimentResult(experiment_id=experiment_id, title=title)
    series = run_sweep(
        SystemRef.baseline4(),
        STRATEGIES,
        "uniform",
        tuple(rates),
        config,
        seeds=(seed,),
        faults=faults,
        runner=runner,
    )
    result.rows = series_rows(series)
    result.rows.append("")
    result.rows.append(
        ascii_chart(
            {label: list(zip(line.rates, line.latency)) for label, line in series.items()},
            title=title,
            x_label="packet injection rate",
        )
    )
    result.data = {
        label: {"rates": line.rates, "latency": line.latency}
        for label, line in series.items()
    }
    top = rates[-1]
    deft = series["deft"]
    result.check(
        "optimized selection has the lowest latency at the highest rate",
        deft.latency_at(top) <= series["deft-dis"].latency_at(top)
        and deft.latency_at(top) <= series["deft-ran"].latency_at(top),
    )
    result.check(
        "DeFT delivers every measured packet despite the faults (100% reachability)",
        all(r > 0.999 for line in series.values() for r in line.delivered_ratio[:1]),
    )
    return result


def fig8a(
    scale: float | None = None,
    seed: int = 5,
    runner: CampaignRunner | None = None,
) -> ExperimentResult:
    """12.5% VL fault rate (4 faulty directed channels)."""
    return _faulted_sweep(
        "fig8a",
        "Fig. 8(a) latency, 12.5% VL faults",
        fault_pattern_12p5,
        RATES_A,
        scale,
        seed,
        runner,
    )


def fig8b(
    scale: float | None = None,
    seed: int = 5,
    runner: CampaignRunner | None = None,
) -> ExperimentResult:
    """25% VL fault rate (8 faulty directed channels)."""
    return _faulted_sweep(
        "fig8b",
        "Fig. 8(b) latency, 25% VL faults",
        fault_pattern_25,
        RATES_B,
        scale,
        seed,
        runner,
    )


def run(
    scale: float | None = None, runner: CampaignRunner | None = None
) -> list[ExperimentResult]:
    a = fig8a(scale, runner=runner)
    b = fig8b(scale, runner=runner)
    # Relative standing of random selection across fault rates (paper:
    # random is competitive at 25% faults, overhead-prone at 12.5%).
    try:
        ran_gap_a = (
            a.data["deft-ran"]["latency"][-1] / a.data["deft"]["latency"][-1]
        )
        ran_gap_b = (
            b.data["deft-ran"]["latency"][-1] / b.data["deft"]["latency"][-1]
        )
        b.check(
            "random selection is relatively closer to DeFT at 25% faults than at 12.5%",
            ran_gap_b <= ran_gap_a * 1.10,
        )
    except (KeyError, ZeroDivisionError):  # pragma: no cover - defensive
        pass
    return [a, b]
