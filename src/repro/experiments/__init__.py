"""Experiment harnesses regenerating every figure and table of the paper.

Each module exposes ``run(scale=1.0, runner=None, ...) ->
ExperimentResult`` and a ``format_report(result) -> str`` renderer.
``scale`` multiplies the simulated measurement window so benchmarks can
trade accuracy for time (``REPRO_EXPERIMENT_SCALE`` overrides the default
from the environment); ``runner`` is an optional
:class:`~repro.runner.CampaignRunner` that parallelizes and caches the
simulation grid behind each figure.

| module    | artifact                                          |
|-----------|---------------------------------------------------|
| fig4      | latency vs injection rate, 3 algorithms           |
| fig5      | VC utilization per region (DeFT)                  |
| fig6      | PARSEC-like latency improvements                  |
| fig7      | reachability under VL faults                      |
| fig7mc    | Monte Carlo reachability: exact cross-check +     |
|           | large-k / COLSxROWS extension                     |
| fig8      | latency under faults, VL-selection strategies     |
| table1    | router area/power                                 |
| ablations | extensions: rho sweep, traffic-aware tables,      |
|           | adaptive online selection, VL serialization, wear |
"""

from .common import (
    ExperimentResult,
    SweepSeries,
    default_config,
    run_jobs,
    run_sweep,
    sweep_jobs,
)
from . import ablations, fig4, fig5, fig6, fig7, fig7mc, fig8, table1

__all__ = [
    "ExperimentResult",
    "SweepSeries",
    "default_config",
    "run_jobs",
    "run_sweep",
    "sweep_jobs",
    "ablations",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig7mc",
    "fig8",
    "table1",
]
