"""Table I — area and power analysis of DeFT, MTR and RC routers.

Rendered exactly in the paper's format: absolute router area (um^2) and
power (mW) plus values normalized to the MTR router, for the four router
configurations (MTR, RC non-boundary, RC boundary, DeFT) at 45 nm / 1 GHz.

Checks encode the paper's headline: DeFT costs less than 2% area and less
than 1% power over MTR, while RC's boundary router pays >10% for its
packet buffer and permission logic.
"""

from __future__ import annotations

from ..power.model import RouterParams, TECHNOLOGY_45NM, table1 as estimate_table1
from .common import ExperimentResult

#: The paper's published Table I values, for side-by-side reporting.
PAPER_VALUES = {
    "MTR": (45878, 11.644),
    "RC non-boundary": (46663, 11.760),
    "RC boundary": (51984, 12.841),
    "DeFT": (46651, 11.693),
}


def run(scale: float | None = None, params: RouterParams | None = None) -> ExperimentResult:
    del scale  # analytical: nothing to scale
    params = params or RouterParams()
    estimates = estimate_table1(params, TECHNOLOGY_45NM)
    baseline = estimates["MTR"]
    result = ExperimentResult(
        experiment_id="table1",
        title="Table I area and power analysis of DeFT, MTR, and RC",
    )
    result.rows.append(
        f"{'router':>16s} {'area um2':>10s} {'norm':>6s} {'power mW':>9s} {'norm':>6s}"
        f"   {'paper area':>10s} {'paper mW':>9s}"
    )
    for name, estimate in estimates.items():
        norm_area, norm_power = estimate.normalized_to(baseline)
        paper_area, paper_power = PAPER_VALUES[name]
        result.rows.append(
            f"{name:>16s} {estimate.area_um2:10.0f} {norm_area:6.3f} "
            f"{estimate.power_mw:9.3f} {norm_power:6.3f}   "
            f"{paper_area:10d} {paper_power:9.3f}"
        )
    result.data = {
        name: {
            "area_um2": estimate.area_um2,
            "power_mw": estimate.power_mw,
            "area_breakdown": estimate.area_breakdown,
            "power_breakdown": estimate.power_breakdown,
        }
        for name, estimate in estimates.items()
    }
    deft_area, deft_power = estimates["DeFT"].normalized_to(baseline)
    rcb_area, rcb_power = estimates["RC boundary"].normalized_to(baseline)
    result.check("DeFT area overhead below 2% (paper: <2%)", deft_area < 1.02)
    result.check("DeFT power overhead below 1% (paper: <1%)", deft_power < 1.01)
    result.check("RC boundary router pays >10% area", rcb_area > 1.10)
    for name, estimate in estimates.items():
        paper_area, paper_power = PAPER_VALUES[name]
        result.check(
            f"{name}: within 1% of the paper's absolute values",
            abs(estimate.area_um2 - paper_area) / paper_area < 0.01
            and abs(estimate.power_mw - paper_power) / paper_power < 0.01,
        )
    return result
