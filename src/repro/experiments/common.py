"""Shared experiment infrastructure: sweeps, results, scaling."""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Callable

from ..config import SimulationConfig
from ..network.simulator import Simulator
from ..routing.registry import make_algorithm
from ..topology.builder import System
from ..traffic.base import TrafficGenerator

#: Environment variable multiplying every experiment's simulated cycles.
SCALE_ENV = "REPRO_EXPERIMENT_SCALE"


def effective_scale(scale: float | None) -> float:
    """Resolve the cycle-scale: explicit argument beats the environment."""
    if scale is not None:
        return scale
    raw = os.environ.get(SCALE_ENV)
    if raw:
        try:
            return max(0.05, float(raw))
        except ValueError:
            pass
    return 1.0


def default_config(scale: float | None = None, seed: int = 1) -> SimulationConfig:
    """The experiments' base simulation configuration.

    ``scale`` stretches/shrinks the warmup + measurement windows; drain is
    kept generous so saturated runs still deliver most tagged packets.
    """
    s = effective_scale(scale)
    return SimulationConfig(
        warmup_cycles=max(100, int(600 * s)),
        measure_cycles=max(300, int(3_000 * s)),
        drain_cycles=max(2_000, int(20_000 * s)),
        seed=seed,
    )


@dataclass
class SweepSeries:
    """One latency-vs-rate line of a figure."""

    label: str
    rates: list[float] = field(default_factory=list)
    latency: list[float] = field(default_factory=list)
    delivered_ratio: list[float] = field(default_factory=list)

    def latency_at(self, rate: float) -> float:
        return self.latency[self.rates.index(rate)]


@dataclass
class ExperimentResult:
    """Outcome of one experiment: printable rows + machine-readable data.

    ``checks`` are the qualitative "shape" assertions of DESIGN.md section
    2 — each a (description, passed) pair. Benchmarks assert all pass.
    """

    experiment_id: str
    title: str
    rows: list[str] = field(default_factory=list)
    data: dict[str, Any] = field(default_factory=dict)
    checks: list[tuple[str, bool]] = field(default_factory=list)

    @property
    def all_checks_pass(self) -> bool:
        return all(ok for _, ok in self.checks)

    def check(self, description: str, passed: bool) -> None:
        self.checks.append((description, passed))

    def failed_checks(self) -> list[str]:
        return [desc for desc, ok in self.checks if not ok]


def format_report(result: ExperimentResult) -> str:
    """Default textual rendering of an experiment result."""
    lines = [f"== {result.experiment_id}: {result.title} =="]
    lines.extend(result.rows)
    lines.append("-- shape checks --")
    for description, passed in result.checks:
        lines.append(f"  [{'PASS' if passed else 'FAIL'}] {description}")
    return "\n".join(lines)


def run_sweep(
    system: System,
    algorithm_names: tuple[str, ...],
    traffic_factory: Callable[[System, float, int], TrafficGenerator],
    rates: tuple[float, ...],
    config: SimulationConfig,
    seeds: tuple[int, ...] = (1,),
) -> dict[str, SweepSeries]:
    """Latency sweep: every algorithm at every rate, averaged over seeds."""
    series: dict[str, SweepSeries] = {}
    for name in algorithm_names:
        line = SweepSeries(label=name)
        for rate in rates:
            latencies: list[float] = []
            delivered: list[float] = []
            for seed in seeds:
                algorithm = make_algorithm(name, system)
                traffic = traffic_factory(system, rate, seed)
                report = Simulator(
                    system, algorithm, traffic, config.replace(seed=seed)
                ).run()
                latencies.append(report.stats.average_latency)
                delivered.append(report.stats.delivered_ratio)
            line.rates.append(rate)
            line.latency.append(sum(latencies) / len(latencies))
            line.delivered_ratio.append(sum(delivered) / len(delivered))
        series[name] = line
    return series


def series_rows(series: dict[str, SweepSeries], unit: str = "cycles") -> list[str]:
    """Tabulate sweep series the way the paper's figures list them."""
    if not series:
        return []
    rates = next(iter(series.values())).rates
    header = "rate      " + "  ".join(f"{label:>10s}" for label in series)
    rows = [header]
    for index, rate in enumerate(rates):
        cells = []
        for line in series.values():
            cells.append(f"{line.latency[index]:10.2f}")
        rows.append(f"{rate:<8.4f}  " + "  ".join(cells))
    rows.append(f"(average packet latency, {unit})")
    return rows
