"""Shared experiment infrastructure: sweeps, results, scaling.

Since the campaign-runner refactor, experiments *emit jobs* and *consume
results*: sweeps declare their (system x algorithm x traffic x rate x
seed) grid as :class:`~repro.runner.spec.Job` values and submit the whole
grid to a :class:`~repro.runner.CampaignRunner` in one batch. The default
runner is serial and uncached (exactly the old inline behaviour); passing
``runner=`` — as ``deft experiment --workers N`` does — parallelizes and
caches every figure without touching the figure code.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Sequence

from ..config import SimulationConfig
from ..runner import CampaignRunner, Job, JobResult, SystemRef, TrafficSpec

#: Environment variable multiplying every experiment's simulated cycles.
SCALE_ENV = "REPRO_EXPERIMENT_SCALE"


def effective_scale(scale: float | None) -> float:
    """Resolve the cycle-scale: explicit argument beats the environment."""
    if scale is not None:
        return scale
    raw = os.environ.get(SCALE_ENV)
    if raw:
        try:
            return max(0.05, float(raw))
        except ValueError:
            pass
    return 1.0


def default_config(scale: float | None = None, seed: int = 1) -> SimulationConfig:
    """The experiments' base simulation configuration.

    ``scale`` stretches/shrinks the warmup + measurement windows; drain is
    kept generous so saturated runs still deliver most tagged packets.
    """
    s = effective_scale(scale)
    return SimulationConfig(
        warmup_cycles=max(100, int(600 * s)),
        measure_cycles=max(300, int(3_000 * s)),
        drain_cycles=max(2_000, int(20_000 * s)),
        seed=seed,
    )


@dataclass
class SweepSeries:
    """One latency-vs-rate line of a figure."""

    label: str
    rates: list[float] = field(default_factory=list)
    latency: list[float] = field(default_factory=list)
    delivered_ratio: list[float] = field(default_factory=list)

    def latency_at(self, rate: float) -> float:
        return self.latency[self.rates.index(rate)]


@dataclass
class ExperimentResult:
    """Outcome of one experiment: printable rows + machine-readable data.

    ``checks`` are the qualitative "shape" assertions of DESIGN.md section
    2 — each a (description, passed) pair. Benchmarks assert all pass.
    """

    experiment_id: str
    title: str
    rows: list[str] = field(default_factory=list)
    data: dict[str, Any] = field(default_factory=dict)
    checks: list[tuple[str, bool]] = field(default_factory=list)

    @property
    def all_checks_pass(self) -> bool:
        return all(ok for _, ok in self.checks)

    def check(self, description: str, passed: bool) -> None:
        self.checks.append((description, passed))

    def failed_checks(self) -> list[str]:
        return [desc for desc, ok in self.checks if not ok]


def format_report(result: ExperimentResult) -> str:
    """Default textual rendering of an experiment result."""
    lines = [f"== {result.experiment_id}: {result.title} =="]
    lines.extend(result.rows)
    lines.append("-- shape checks --")
    for description, passed in result.checks:
        lines.append(f"  [{'PASS' if passed else 'FAIL'}] {description}")
    return "\n".join(lines)


def default_runner(runner: CampaignRunner | None) -> CampaignRunner:
    """Resolve the experiment's runner: serial and uncached by default."""
    return runner if runner is not None else CampaignRunner()


def run_jobs(
    jobs: Sequence[Job],
    runner: CampaignRunner | None = None,
    name: str = "experiment",
) -> list[JobResult]:
    """Submit a job batch and return results aligned with ``jobs``.

    Raises ``RuntimeError`` if any job failed — a silently missing point
    would corrupt the figure it belongs to.
    """
    from ..runner import Campaign

    report = default_runner(runner).run(Campaign(name=name, jobs=tuple(jobs)))
    report.raise_if_failed()
    return report.results


def sweep_jobs(
    system: SystemRef,
    algorithm_names: Sequence[str],
    traffic_name: str,
    rates: Sequence[float],
    config: SimulationConfig,
    seeds: Sequence[int] = (1,),
    *,
    traffic_params: Mapping[str, Any] | None = None,
    faults: Iterable[tuple[int, str]] = (),
    kernel: str = "auto",
) -> list[Job]:
    """The declarative (algorithm x rate x seed) grid of one sweep."""
    extra = dict(traffic_params or {})
    fault_tuple = tuple(faults)
    return [
        Job.make(
            system=system,
            algorithm=name,
            traffic=TrafficSpec.make(traffic_name, rate=rate, **extra),
            config=config,
            faults=fault_tuple,
            seed=seed,
            kernel=kernel,
        )
        for name in algorithm_names
        for rate in rates
        for seed in seeds
    ]


def run_sweep(
    system: SystemRef,
    algorithm_names: tuple[str, ...],
    traffic_name: str,
    rates: tuple[float, ...],
    config: SimulationConfig,
    seeds: tuple[int, ...] = (1,),
    *,
    traffic_params: Mapping[str, Any] | None = None,
    faults: Iterable[tuple[int, str]] = (),
    runner: CampaignRunner | None = None,
    kernel: str = "auto",
) -> dict[str, SweepSeries]:
    """Latency sweep: every algorithm at every rate, averaged over seeds.

    The whole grid is emitted as one campaign, so a parallel runner
    overlaps every point and a caching runner makes re-sweeps incremental.
    """
    jobs = sweep_jobs(
        system, algorithm_names, traffic_name, rates, config, seeds,
        traffic_params=traffic_params, faults=faults, kernel=kernel,
    )
    results = run_jobs(jobs, runner, name=f"sweep-{traffic_name}")
    return series_from_results(results, algorithm_names, rates, seeds)


def series_from_results(
    results: Sequence[JobResult],
    algorithm_names: Sequence[str],
    rates: Sequence[float],
    seeds: Sequence[int],
    *,
    skip_failed: bool = False,
) -> dict[str, SweepSeries]:
    """Group a :func:`sweep_jobs`-ordered result list into sweep series.

    The single aggregation point for the (algorithm x rate x seed) grid
    order that :func:`sweep_jobs` emits. With ``skip_failed``, failed
    points are dropped from per-point averages (NaN if every seed
    failed) instead of poisoning them.
    """
    by_job = iter(results)
    series: dict[str, SweepSeries] = {}
    for name in algorithm_names:
        line = SweepSeries(label=name)
        for rate in rates:
            points = [next(by_job) for _seed in seeds]
            if skip_failed:
                points = [p for p in points if p.ok]
            line.rates.append(rate)
            line.latency.append(
                sum(p.average_latency for p in points) / len(points)
                if points
                else float("nan")
            )
            line.delivered_ratio.append(
                sum(p.delivered_ratio for p in points) / len(points)
                if points
                else float("nan")
            )
        series[name] = line
    return series


def series_rows(series: dict[str, SweepSeries], unit: str = "cycles") -> list[str]:
    """Tabulate sweep series the way the paper's figures list them."""
    if not series:
        return []
    rates = next(iter(series.values())).rates
    header = "rate      " + "  ".join(f"{label:>10s}" for label in series)
    rows = [header]
    for index, rate in enumerate(rates):
        cells = []
        for line in series.values():
            cells.append(f"{line.latency[index]:10.2f}")
        rows.append(f"{rate:<8.4f}  " + "  ".join(cells))
    rows.append(f"(average packet latency, {unit})")
    return rows
