"""Fig. 7 — network reachability under VL faults.

Average and worst-case reachability for 1-8 faulty directed VL channels,
over all fault combinations excluding complete chiplet disconnection,
for (a) the 4-chiplet system (32 VLs) and (b) the 6-chiplet system
(48 VLs). Computed exactly by the decomposition of
:mod:`repro.analysis.reachability` — no pattern enumeration.

Paper claims checked: DeFT is flat at 100% (worst = average); MTR is
fully tolerant only of a single fault; RC tolerates none; worst cases
degrade much faster than averages; MTR dominates RC on average.
"""

from __future__ import annotations

from ..analysis.reachability import reachability_curve
from ..routing.registry import make_algorithm
from ..topology.presets import baseline_4_chiplets, baseline_6_chiplets
from .common import ExperimentResult
from .charts import ascii_chart

FAULT_COUNTS = (1, 2, 3, 4, 5, 6, 7, 8)


def _reachability_experiment(experiment_id: str, title: str, system) -> ExperimentResult:
    result = ExperimentResult(experiment_id=experiment_id, title=title)
    curves = {}
    for name in ("deft", "mtr", "rc"):
        algorithm = make_algorithm(name, system)
        curves[name] = reachability_curve(system, algorithm, FAULT_COUNTS)
    header = "faulty VLs " + " ".join(f"{k:>6d}" for k in FAULT_COUNTS)
    result.rows.append(header)
    chart_series = {}
    for name, curve in curves.items():
        avg = " ".join(f"{v * 100:6.1f}" for v in curve.average)
        wrst = " ".join(f"{v * 100:6.1f}" for v in curve.worst)
        result.rows.append(f"{name + '-Avg.':>10s} {avg}")
        result.rows.append(f"{name + '-Wrst.':>10s} {wrst}")
        chart_series[f"{name}-avg"] = list(
            zip(FAULT_COUNTS, [v * 100 for v in curve.average])
        )
    result.rows.append("(reachability, %)")
    result.rows.append("")
    result.rows.append(
        ascii_chart(chart_series, title=title, x_label="number of faulty VLs")
    )
    result.data = {
        name: {"average": curve.average, "worst": curve.worst}
        for name, curve in curves.items()
    }
    deft, mtr, rc = curves["deft"], curves["mtr"], curves["rc"]
    result.check(
        "DeFT achieves 100% reachability for every fault count (avg and worst)",
        all(v == 1.0 for v in deft.average) and all(v == 1.0 for v in deft.worst),
    )
    result.check(
        "MTR fully tolerates exactly one fault (100% at k=1, less at k=2 worst)",
        mtr.average[0] == 1.0 and mtr.worst[0] == 1.0 and mtr.worst[1] < 1.0,
    )
    result.check("RC tolerates no faults (below 100% at k=1)", rc.average[0] < 1.0)
    result.check(
        "MTR dominates RC on average",
        all(m >= r for m, r in zip(mtr.average, rc.average)),
    )
    result.check(
        "worst cases never exceed averages",
        all(
            w <= a + 1e-12
            for curve in curves.values()
            for w, a in zip(curve.worst, curve.average)
        ),
    )
    return result


def fig7a() -> ExperimentResult:
    """4-chiplet system (32 directed VLs)."""
    return _reachability_experiment(
        "fig7a", "Fig. 7(a) reachability - 4 chiplets (32 VLs)", baseline_4_chiplets()
    )


def fig7b() -> ExperimentResult:
    """6-chiplet system (48 directed VLs)."""
    return _reachability_experiment(
        "fig7b", "Fig. 7(b) reachability - 6 chiplets (48 VLs)", baseline_6_chiplets()
    )


def run(scale: float | None = None, runner=None) -> list[ExperimentResult]:
    """Both reachability sub-figures (analytical; scale/runner unused)."""
    del scale, runner  # analytical: no simulated cycles to scale or batch
    return [fig7a(), fig7b()]
