"""Consolidated reporting over recorded benchmark results.

The benchmark suite dumps every regenerated artifact to
``benchmarks/results/*.json``; this module renders a one-page summary
(per-artifact pass/fail + headline numbers) for the CLI's
``deft report`` command and for EXPERIMENTS.md maintenance.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass

#: Artifact ordering for the summary (paper order, then extensions).
_ORDER = (
    "fig4a", "fig4b", "fig4c", "fig4d",
    "fig5",
    "fig6a", "fig6b",
    "fig7a", "fig7b",
    "fig8a", "fig8b",
    "table1",
    "ablation-rho", "ablation-traffic-aware", "ablation-adaptive",
    "ablation-serialization", "ablation-wear",
)


@dataclass(frozen=True)
class RecordedArtifact:
    """One artifact's recorded outcome."""

    experiment_id: str
    title: str
    checks_passed: int
    checks_total: int
    headline: str

    @property
    def ok(self) -> bool:
        return self.checks_passed == self.checks_total


def _headline(experiment_id: str, data: dict) -> str:
    """A one-line takeaway per artifact kind."""
    try:
        if experiment_id.startswith("fig4"):
            deft = data["deft"]["latency"]
            mtr = data["mtr"]["latency"]
            return (
                f"DeFT {deft[-1]:.0f}c vs MTR {mtr[-1]:.0f}c at top rate"
            )
        if experiment_id == "fig5":
            worst = max(
                abs(values[0] - 0.5)
                for util in data.values()
                for values in [list(util.values())[0]]
            )
            del worst  # structure varies; fall through to generic
        if experiment_id.startswith("fig6"):
            avg = data["avg"]
            return f"avg improvement {avg[0]:.1f}% vs MTR, {avg[1]:.1f}% vs RC"
        if experiment_id.startswith("fig7"):
            mtr = data["mtr"]["average"]
            return f"DeFT 100%, MTR-avg {mtr[-1] * 100:.1f}% at 8 faults"
        if experiment_id.startswith("fig8"):
            return (
                f"DeFT {data['deft']['latency'][-1]:.1f}c vs "
                f"Ran {data['deft-ran']['latency'][-1]:.1f}c at top rate"
            )
        if experiment_id == "table1":
            deft = data["DeFT"]["area_um2"]
            mtr = data["MTR"]["area_um2"]
            return f"DeFT +{(deft / mtr - 1) * 100:.1f}% area vs MTR"
        if experiment_id == "ablation-adaptive":
            return (
                f"adaptive {data['online adaptive']:.1f}c vs "
                f"tables {data['offline tables']:.1f}c"
            )
        if experiment_id == "ablation-wear":
            return (
                f"wear imbalance {data['optimized']['imbalance']:.2f}x vs "
                f"{data['distance-based']['imbalance']:.2f}x"
            )
    except (KeyError, IndexError, TypeError):
        pass
    return ""


def load_recorded(results_dir: pathlib.Path) -> list[RecordedArtifact]:
    """Read every recorded artifact, ordered like the paper."""
    artifacts: dict[str, RecordedArtifact] = {}
    for path in results_dir.glob("*.json"):
        payload = json.loads(path.read_text())
        checks = payload.get("checks", [])
        artifacts[payload["experiment"]] = RecordedArtifact(
            experiment_id=payload["experiment"],
            title=payload.get("title", payload["experiment"]),
            checks_passed=sum(1 for c in checks if c.get("passed")),
            checks_total=len(checks),
            headline=_headline(payload["experiment"], payload.get("data", {})),
        )
    ordered = [artifacts[k] for k in _ORDER if k in artifacts]
    extras = [a for k, a in sorted(artifacts.items()) if k not in _ORDER]
    return ordered + extras


def render_summary(artifacts: list[RecordedArtifact]) -> str:
    """One-page pass/fail + headline table."""
    if not artifacts:
        return (
            "no recorded results found - run "
            "`pytest benchmarks/ --benchmark-only` first"
        )
    lines = [f"{'artifact':>24s}  {'checks':>7s}  headline"]
    for artifact in artifacts:
        status = f"{artifact.checks_passed}/{artifact.checks_total}"
        flag = "" if artifact.ok else "  <-- FAILING"
        lines.append(
            f"{artifact.experiment_id:>24s}  {status:>7s}  {artifact.headline}{flag}"
        )
    total = sum(a.checks_total for a in artifacts)
    passed = sum(a.checks_passed for a in artifacts)
    lines.append(f"{'TOTAL':>24s}  {passed}/{total} shape checks pass")
    return "\n".join(lines)
