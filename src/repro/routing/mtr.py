"""MTR baseline: modular turn-restriction routing (Yin et al., ISCA 2018).

The DeFT paper characterizes MTR by three properties, all reproduced here:

1. **Turn restrictions at boundary routers** break inter-chiplet cyclic
   dependencies, at the price of coupling interposer and chiplet designs
   ("each interposer router needs to know whether a packet can reach its
   destination through a VL while considering the restricted turns").
2. **Limited VL selection** — the restrictions make only a subset of a
   chiplet's VLs usable by each router. We model the effective
   compatibility relation as a *column partition*: a router may only use
   the VLs on its own half of the chiplet (west-half routers use the
   west-column VLs, east-half routers the east-column VLs). With the
   baseline border placement this leaves every router exactly two legal
   VLs — which is precisely the fault profile the paper measures for MTR:
   full reachability under any single VL fault, degradation from two
   faults on (Fig. 7), and a much worse worst case than DeFT.
3. **No selection optimization** — within its legal set a router binds to
   the nearest VL, re-binding (still within the legal set) when a fault
   occurs. An empty legal set makes the pair unreachable.

Deadlock freedom: the published MTR derives bespoke restrictions; rather
than reproduce that derivation, the simulation uses the conservative
*layered* VC discipline (VC0 before the up-traversal, VC1 after) — a fixed
assignment that satisfies DeFT's Rules 1-3 and is therefore provably
deadlock-free, while exhibiting the unbalanced VC utilization that the
paper attributes to the baselines (intra-chiplet and pre-interposer
traffic all rides VC0). See DESIGN.md, "MTR modelling notes".
"""

from __future__ import annotations

from ..core.vn import VN0, VN1
from ..errors import RoutingError, UnroutablePacketError
from ..network.flit import Packet
from ..topology.builder import System, VerticalLink
from ..topology.geometry import INTERPOSER_LAYER
from .base import PhasedRoutingMixin, Port, RouteDecision, RoutingAlgorithm


def _layered_vns(router, in_port: Port, out_port: Port, vn_in: int) -> tuple[int, ...]:
    """Fixed pre-up/post-up VC assignment shared by the MTR and RC models.

    * up-traversals switch to (and stay in) VN.1;
    * every other hop keeps the current VN.

    This is Algorithm 1 with the round-robin choices pinned to VN.0, so it
    inherits DeFT's deadlock-freedom argument while using the VCs in the
    unbalanced way typical of layered escape schemes.
    """
    if out_port == Port.VERTICAL and router.is_interposer:
        return (VN1,)
    return (vn_in,)


class MtrRouting(PhasedRoutingMixin, RoutingAlgorithm):
    """Modular turn-restriction baseline."""

    name = "MTR"
    # route() is a pure function of the packet's bindings (the VL legality
    # and re-binding logic runs in prepare_packet / _bind_up_vl).
    compilable = True

    def __init__(self, system: System):
        super().__init__(system)
        # chiplet -> router id -> ordered legal VLs (nearest first).
        self._legal_down: dict[int, tuple[VerticalLink, ...]] = {}
        self._legal_up: dict[int, tuple[VerticalLink, ...]] = {}
        for chiplet in range(system.spec.num_chiplets):
            for router in system.chiplet_routers(chiplet):
                legal = self._legal_vls(router)
                self._legal_down[router.id] = legal
                self._legal_up[router.id] = legal

    def _legal_vls(self, router) -> tuple[VerticalLink, ...]:
        """VLs compatible with the (modelled) turn restrictions for a router.

        Column partition: the chiplet's VL columns are split at the median;
        a router is restricted to VLs of its own side. Chiplets whose VLs
        all share one column keep every VL legal (nothing to restrict).
        Within the legal set, VLs are ordered nearest-first (stable tie
        break on local index).
        """
        links = self.system.vls_of_chiplet(router.layer)
        columns = sorted({link.cx for link in links})
        if len(columns) >= 2:
            split = columns[len(columns) // 2]  # first east-side column
            west = [link for link in links if link.cx < split]
            east = [link for link in links if link.cx >= split]
            legal = west if router.x < split else east
            if not legal:  # degenerate placements: fall back to all VLs
                legal = list(links)
        else:
            legal = list(links)
        legal.sort(
            key=lambda link: (
                abs(router.x - link.cx) + abs(router.y - link.cy),
                link.local_index,
            )
        )
        return tuple(legal)

    # ------------------------------------------------------------------
    # bindings under the current fault state
    # ------------------------------------------------------------------

    def _bound_down(self, src_router: int) -> VerticalLink | None:
        """Nearest legal VL with a live down channel, if any."""
        for link in self._legal_down[src_router]:
            if self.fault_state.down_ok(link.index):
                return link
        return None

    def _bound_up(self, dst_router: int) -> VerticalLink | None:
        """Nearest legal VL with a live up channel towards a destination."""
        for link in self._legal_up[dst_router]:
            if self.fault_state.up_ok(link.index):
                return link
        return None

    # ------------------------------------------------------------------
    # RoutingAlgorithm contract
    # ------------------------------------------------------------------

    def is_routable(self, src: int, dst: int) -> bool:
        routers = self.system.routers
        src_layer, dst_layer = routers[src].layer, routers[dst].layer
        if src_layer == dst_layer:
            return True
        if src_layer != INTERPOSER_LAYER and self._bound_down(src) is None:
            return False
        if dst_layer != INTERPOSER_LAYER and self._bound_up(dst) is None:
            return False
        return True

    def prepare_packet(self, packet: Packet) -> None:
        src = self.system.routers[packet.src]
        dst = self.system.routers[packet.dst]
        packet.vn = VN0
        packet.down_vl = None
        packet.up_vl = None
        if src.layer != dst.layer and not src.is_interposer:
            link = self._bound_down(packet.src)
            if link is None:
                raise UnroutablePacketError(
                    f"MTR: router {packet.src} has no legal live down VL"
                )
            packet.down_vl = link.index
        if dst.layer != src.layer and not dst.is_interposer:
            if self._bound_up(packet.dst) is None:
                raise UnroutablePacketError(
                    f"MTR: destination {packet.dst} has no legal live up VL"
                )

    def _bind_up_vl(self, packet: Packet) -> None:
        link = self._bound_up(packet.dst)
        if link is None:
            raise RoutingError(f"MTR: destination {packet.dst} lost its up VLs in flight")
        packet.up_vl = link.index

    def route(self, packet: Packet, router_id: int, in_port: Port) -> RouteDecision:
        router = self.system.routers[router_id]
        out_port = self._phased_out_port(packet, router)
        vns = _layered_vns(router, in_port, out_port, packet.vn)
        return RouteDecision(out_port, vns)
