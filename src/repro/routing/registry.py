"""Routing-algorithm registry (string names -> constructors).

Used by the CLI and the experiment harness so that every figure's bench
can be parameterized with plain algorithm names.
"""

from __future__ import annotations

from typing import Callable

from ..errors import ConfigurationError
from ..topology.builder import System
from .base import RoutingAlgorithm
from .deft import DeftRouting, VlSelectionStrategy
from .mtr import MtrRouting
from .rc import RcRouting

_FACTORIES: dict[str, Callable[[System], RoutingAlgorithm]] = {
    "deft": lambda system: DeftRouting(system),
    "deft-dis": lambda system: DeftRouting(system, VlSelectionStrategy.DISTANCE),
    "deft-ran": lambda system: DeftRouting(system, VlSelectionStrategy.RANDOM),
    "deft-ada": lambda system: DeftRouting(system, VlSelectionStrategy.ADAPTIVE),
    "mtr": MtrRouting,
    "rc": RcRouting,
}


def available_algorithms() -> tuple[str, ...]:
    """Registered algorithm names."""
    return tuple(sorted(_FACTORIES))


def make_algorithm(name: str, system: System) -> RoutingAlgorithm:
    """Instantiate an algorithm by name for a system.

    Raises:
        ConfigurationError: for unknown names.
    """
    try:
        factory = _FACTORIES[name.lower()]
    except KeyError:
        raise ConfigurationError(
            f"unknown routing algorithm '{name}'; available: {available_algorithms()}"
        ) from None
    return factory(system)
