"""RC baseline: remote-control deadlock avoidance (Majumder et al., TC 2020).

RC breaks inter-chiplet dependency cycles with hardware rather than turn
or VC rules:

* every boundary router owns an **RC buffer** able to hold one whole
  packet; a descending packet is absorbed completely (store-and-forward)
  before it re-enters the network towards the interposer, so chiplet
  buffers are never held by packets waiting on interposer resources;
* a **permission network** serializes access: a source router must be
  granted the RC buffer of its (statically bound) boundary router before
  it may inject an inter-chiplet packet. The grant round trip costs
  ``2 x hops + 2`` cycles and the token is held until the RC buffer has
  fully drained down the vertical link.

Consequences reproduced from the paper:

* extra serialization latency that grows with load (Figs. 4 and 6);
* a fixed router -> VL binding ("the RC-buffer is shared among the chiplet
  routers that utilize the boundary router"), hence **zero VL-fault
  tolerance** (Fig. 7: "RC cannot tolerate any faults");
* extra area/power for the RC buffer and permission logic on boundary
  routers (Table I).

Like the MTR model, the simulation runs RC on the layered VC discipline
(VC0 before the up-traversal, VC1 after), which is deadlock-free by
DeFT's own rules and matches the unbalanced VC usage of the baselines.
"""

from __future__ import annotations

from collections import deque

from ..core.vn import VN0
from ..errors import RoutingError, UnroutablePacketError
from ..network.flit import Packet
from ..topology.builder import System, VerticalLink
from ..topology.geometry import INTERPOSER_LAYER
from .base import PhasedRoutingMixin, Port, RouteDecision, RoutingAlgorithm
from .mtr import _layered_vns


class _Token:
    """Permission token of one boundary router's RC buffer."""

    __slots__ = ("holder", "grant_cycle", "waiters")

    def __init__(self) -> None:
        self.holder: int | None = None      # packet id
        self.grant_cycle = 0                # cycle the grant reaches the source
        self.waiters: deque[tuple[int, int]] = deque()  # (packet id, src router)


class RcRouting(PhasedRoutingMixin, RoutingAlgorithm):
    """Remote-control baseline."""

    name = "RC"
    # route() is pure; the permission network and RC buffers live in
    # may_inject / on_rc_buffer_drained, outside the compiled table.
    compilable = True

    def __init__(self, system: System, grant_overhead: int = 2):
        super().__init__(system)
        self.grant_overhead = grant_overhead
        # Fixed nearest-VL bindings (never re-bound: the permission network
        # hard-wires each router to one boundary router).
        self._down_binding: dict[int, VerticalLink] = {}
        self._up_binding: dict[int, VerticalLink] = {}
        for chiplet in range(system.spec.num_chiplets):
            links = system.vls_of_chiplet(chiplet)
            for router in system.chiplet_routers(chiplet):
                nearest = min(
                    links,
                    key=lambda link: (
                        abs(router.x - link.cx) + abs(router.y - link.cy),
                        link.local_index,
                    ),
                )
                self._down_binding[router.id] = nearest
                self._up_binding[router.id] = nearest
        self._boundary_routers = {
            link.chiplet_router for link in system.vls
        }
        self._tokens: dict[int, _Token] = {
            b: _Token() for b in self._boundary_routers
        }

    # ------------------------------------------------------------------
    # RoutingAlgorithm contract
    # ------------------------------------------------------------------

    def is_routable(self, src: int, dst: int) -> bool:
        routers = self.system.routers
        src_layer, dst_layer = routers[src].layer, routers[dst].layer
        if src_layer == dst_layer:
            return True
        if src_layer != INTERPOSER_LAYER:
            if not self.fault_state.down_ok(self._down_binding[src].index):
                return False
        if dst_layer != INTERPOSER_LAYER:
            if not self.fault_state.up_ok(self._up_binding[dst].index):
                return False
        return True

    def prepare_packet(self, packet: Packet) -> None:
        src = self.system.routers[packet.src]
        dst = self.system.routers[packet.dst]
        packet.vn = VN0
        packet.down_vl = None
        packet.up_vl = None
        packet.needs_rc = False
        if src.layer != dst.layer and not src.is_interposer:
            link = self._down_binding[packet.src]
            if not self.fault_state.down_ok(link.index):
                raise UnroutablePacketError(
                    f"RC: bound down VL {link.index} of router {packet.src} is faulty"
                )
            packet.down_vl = link.index
            packet.needs_rc = True
            packet.rc_boundary = link.chiplet_router
        if dst.layer != src.layer and not dst.is_interposer:
            link = self._up_binding[packet.dst]
            if not self.fault_state.up_ok(link.index):
                raise UnroutablePacketError(
                    f"RC: bound up VL {link.index} of router {packet.dst} is faulty"
                )

    def _bind_up_vl(self, packet: Packet) -> None:
        link = self._up_binding[packet.dst]
        if not self.fault_state.up_ok(link.index):
            raise RoutingError(f"RC: up VL {link.index} failed in flight")
        packet.up_vl = link.index

    def route(self, packet: Packet, router_id: int, in_port: Port) -> RouteDecision:
        router = self.system.routers[router_id]
        out_port = self._phased_out_port(packet, router)
        vns = _layered_vns(router, in_port, out_port, packet.vn)
        return RouteDecision(out_port, vns)

    # ------------------------------------------------------------------
    # permission network + RC buffers
    # ------------------------------------------------------------------

    def uses_rc_buffer(self, router_id: int) -> bool:
        return router_id in self._boundary_routers

    def packet_needs_rc(self, packet: Packet) -> bool:
        return packet.needs_rc

    def may_inject(self, packet: Packet, cycle: int) -> bool:
        src = self.system.routers[packet.src]
        dst = self.system.routers[packet.dst]
        if src.layer == dst.layer or src.is_interposer:
            return True  # no down-traversal, no RC buffer involved
        boundary = self._down_binding[packet.src].chiplet_router
        token = self._tokens[boundary]
        if token.holder == packet.id:
            return cycle >= token.grant_cycle
        if token.holder is None and not token.waiters:
            self._grant(token, packet.id, packet.src, boundary, cycle)
            return cycle >= token.grant_cycle
        if all(packet.id != waiting for waiting, _ in token.waiters):
            token.waiters.append((packet.id, packet.src))
        if token.holder is None:
            waiting, src_router = token.waiters.popleft()
            self._grant(token, waiting, src_router, boundary, cycle)
            return token.holder == packet.id and cycle >= token.grant_cycle
        return False

    def _grant(self, token: _Token, packet_id: int, src_router: int,
               boundary: int, cycle: int) -> None:
        distance = self.system.distance_on_layer(src_router, boundary)
        token.holder = packet_id
        token.grant_cycle = cycle + 2 * distance + self.grant_overhead

    def on_rc_buffer_drained(self, router_id: int, packet: Packet, cycle: int) -> None:
        token = self._tokens.get(router_id)
        if token is None or token.holder != packet.id:
            return
        token.holder = None
        if token.waiters:
            waiting, src_router = token.waiters.popleft()
            self._grant(token, waiting, src_router, router_id, cycle)

    def reset_runtime_state(self) -> None:
        self._tokens = {b: _Token() for b in self._boundary_routers}

    # -- introspection (used by tests and the area model) -------------------

    def down_binding(self, router_id: int) -> VerticalLink:
        return self._down_binding[router_id]

    def up_binding(self, router_id: int) -> VerticalLink:
        return self._up_binding[router_id]
