"""DeFT routing (the paper's Section III).

Combines:

* the three-phase minimal route skeleton (source chiplet -> down-VL ->
  interposer -> up-VL -> destination chiplet);
* the VN-assignment policy of Algorithm 1 via :mod:`repro.core.vn`
  (round-robin where both VNs are legal, VN.0 for inter-chiplet packets
  from non-boundary sources, forced VN.1 on up-traversals);
* fault-tolerant, congestion-aware VL selection via the pre-optimized
  lookup tables of :mod:`repro.core.tables` (Algorithm 2 offline,
  table lookup online), or the ``distance`` / ``random`` strategies the
  paper evaluates as DeFT-Dis and DeFT-Ran in Fig. 8.

Reachability: DeFT never restricts VL choice, so a pair is routable iff
the source chiplet has a live down channel and the destination chiplet a
live up channel — 100% under every fault pattern that does not disconnect
a chiplet (Fig. 7).
"""

from __future__ import annotations

import enum
import random

from ..core import tables as tables_mod
from ..core.vn import (
    VN0,
    VN1,
    assign_injection_vn,
    boundary_down_vns,
)
from ..errors import RoutingError, UnroutablePacketError
from ..network.flit import Packet
from ..topology.builder import System
from ..topology.geometry import INTERPOSER_LAYER
from .base import PhasedRoutingMixin, Port, RouteDecision, RoutingAlgorithm


class VlSelectionStrategy(enum.Enum):
    """Which VL-selection policy drives the intermediate destinations.

    The first three are the paper's evaluated strategies (Fig. 8);
    ``ADAPTIVE`` is the online congestion-aware extension in the lineage
    of the authors' Adele elevator selection [16]: instead of a design-time
    table, the source picks the alive VL minimizing
    ``outstanding_packets(vl) + rho_online * distance`` using run-time
    load tracking. Evaluated by the ablation experiments.
    """

    OPTIMIZED = "optimized"   # paper's DeFT: offline-optimized lookup tables
    DISTANCE = "distance"     # DeFT-Dis: closest alive VL
    RANDOM = "random"         # DeFT-Ran: uniform among alive VLs
    ADAPTIVE = "adaptive"     # extension: online load-aware selection


class DeftRouting(PhasedRoutingMixin, RoutingAlgorithm):
    """The DeFT routing algorithm.

    Args:
        system: the built 2.5D system.
        strategy: VL-selection strategy (paper default: OPTIMIZED).
        selection_tables: pre-built tables (chiplet -> SelectionTable);
            built on demand with uniform traffic when omitted — the
            paper's pessimistic offline assumption.
        up_selection_tables: optional distinct tables for the
            interposer-side (up-VL) selection; defaults to the same
            tables, which is exact under the uniform-traffic assumption.
        rho: distance/balance weight for table construction (eq. 6).
        seed: RNG seed for the RANDOM strategy.
    """

    name = "DeFT"
    # Compilable: route() is pure given the packet's bindings, except the
    # boundary down-traversal flagged by route_is_stateful below. The
    # online selection state of RANDOM/ADAPTIVE lives in prepare_packet /
    # _bind_up_vl, which the compiled path always runs live.
    compilable = True

    def __init__(
        self,
        system: System,
        strategy: VlSelectionStrategy = VlSelectionStrategy.OPTIMIZED,
        selection_tables: dict[int, tables_mod.SelectionTable] | None = None,
        up_selection_tables: dict[int, tables_mod.SelectionTable] | None = None,
        rho: float = 0.01,
        seed: int = 1,
    ):
        super().__init__(system)
        self.strategy = strategy
        self.name = {
            VlSelectionStrategy.OPTIMIZED: "DeFT",
            VlSelectionStrategy.DISTANCE: "DeFT-Dis",
            VlSelectionStrategy.RANDOM: "DeFT-Ran",
            VlSelectionStrategy.ADAPTIVE: "DeFT-Ada",
        }[strategy]
        if selection_tables is None:
            if strategy is VlSelectionStrategy.DISTANCE:
                selection_tables = tables_mod.distance_tables(system)
            else:
                selection_tables = tables_mod.build_selection_tables(system, rho=rho)
        self.tables = selection_tables
        self.up_tables = up_selection_tables or selection_tables
        self.seed = seed
        self._rng = random.Random(seed)
        # Per-router round-robin state (Algorithm 1). The injection state
        # is a simple alternation counter; the down-traversal state is a
        # pair of per-VN assignment counts so pinned VN.1 packets are
        # accounted for in the balance (see _vns_for_hop).
        self._inject_rr: dict[int, int] = {}
        self._down_rr: dict[int, list[int]] = {}
        # chiplet -> router id -> local (row-major) index, for table lookups.
        self._local_index: dict[int, int] = {}
        for chiplet in range(system.spec.num_chiplets):
            for index, router in enumerate(system.chiplet_routers(chiplet)):
                self._local_index[router.id] = index
        self._vl_of_chiplet_local: dict[tuple[int, int], int] = {
            (link.chiplet, link.local_index): link.index for link in system.vls
        }
        # Online load tracking for the ADAPTIVE strategy: packets bound to
        # each directed VL channel (down/up separately) and not yet
        # delivered.
        self._outstanding_down: dict[int, int] = {}
        self._outstanding_up: dict[int, int] = {}
        #: Distance weight of the online score (extension parameter).
        self.rho_online = 0.5

    # ------------------------------------------------------------------
    # routability (reachability predicate)
    # ------------------------------------------------------------------

    def is_routable(self, src: int, dst: int) -> bool:
        routers = self.system.routers
        src_layer, dst_layer = routers[src].layer, routers[dst].layer
        if src_layer == dst_layer:
            return True
        if src_layer != INTERPOSER_LAYER and not self.fault_state.alive_down_vls(src_layer):
            return False
        if dst_layer != INTERPOSER_LAYER and not self.fault_state.alive_up_vls(dst_layer):
            return False
        return True

    # ------------------------------------------------------------------
    # packet preparation (source router work: VN + down-VL binding)
    # ------------------------------------------------------------------

    def prepare_packet(self, packet: Packet) -> None:
        if not self.is_routable(packet.src, packet.dst):
            raise UnroutablePacketError(
                f"no alive VL path from {packet.src} to {packet.dst}"
            )
        src = self.system.routers[packet.src]
        dst = self.system.routers[packet.dst]
        same_layer = src.layer == dst.layer
        packet.down_vl = None
        packet.up_vl = None
        if not src.is_interposer and not same_layer:
            packet.down_vl = self._select_down_vl(src.layer, packet.src)
        # Algorithm 1 lets boundary-router sources round-robin, which is
        # only legal when the packet descends through the router's own Down
        # port (Local -> Down is exempt from Rule 3). When the selection
        # table routes it to a different VL, the packet needs horizontal
        # hops before descending and must start in VN.0 like any other
        # inter-chiplet packet.
        descends_via_own_vl = (
            src.is_boundary
            and packet.down_vl is not None
            and packet.down_vl == src.vl_index
        )
        rr = self._inject_rr.get(packet.src, 0)
        packet.vn, self._inject_rr[packet.src] = assign_injection_vn(
            source_is_interposer=src.is_interposer,
            source_is_boundary=descends_via_own_vl,
            destination_on_same_chiplet=same_layer,
            round_robin_state=rr,
        )

    def _select_down_vl(self, chiplet: int, src_router: int) -> int:
        alive = self.fault_state.alive_down_vls(chiplet)
        if not alive:
            raise UnroutablePacketError(f"chiplet {chiplet} has no alive down VL")
        if self.strategy is VlSelectionStrategy.RANDOM:
            local = alive[self._rng.randrange(len(alive))]
        elif self.strategy is VlSelectionStrategy.ADAPTIVE:
            local = self._adaptive_pick(
                chiplet, src_router, alive, self._outstanding_down
            )
        else:
            pattern = self.fault_state.chiplet_down_pattern(chiplet)
            table = self.tables[chiplet]
            local = table.vl_for_router(self._local_index[src_router], pattern)
        vl = self._vl_of_chiplet_local[(chiplet, local)]
        if self.strategy is VlSelectionStrategy.ADAPTIVE:
            self._outstanding_down[vl] = self._outstanding_down.get(vl, 0) + 1
        return vl

    def _adaptive_pick(
        self, chiplet: int, anchor_router: int, alive, outstanding: dict[int, int]
    ) -> int:
        """Online score: outstanding bound packets + weighted distance."""
        anchor = self.system.routers[anchor_router]
        best_local, best_score = alive[0], float("inf")
        for local in alive:
            vl = self._vl_of_chiplet_local[(chiplet, local)]
            link = self.system.vls[vl]
            distance = abs(anchor.x - link.cx) + abs(anchor.y - link.cy)
            score = outstanding.get(vl, 0) + self.rho_online * distance
            if score < best_score:
                best_local, best_score = local, score
        return best_local

    def _bind_up_vl(self, packet: Packet) -> None:
        """Interposer-side selection towards the destination chiplet."""
        dst = self.system.routers[packet.dst]
        chiplet = dst.layer
        alive = self.fault_state.alive_up_vls(chiplet)
        if not alive:
            raise RoutingError(f"chiplet {chiplet} has no alive up VL")
        if self.strategy is VlSelectionStrategy.RANDOM:
            local = alive[self._rng.randrange(len(alive))]
        elif self.strategy is VlSelectionStrategy.ADAPTIVE:
            local = self._adaptive_pick(
                chiplet, packet.dst, alive, self._outstanding_up
            )
        else:
            pattern = self.fault_state.chiplet_up_pattern(chiplet)
            table = self.up_tables[chiplet]
            local = table.vl_for_router(self._local_index[packet.dst], pattern)
        packet.up_vl = self._vl_of_chiplet_local[(chiplet, local)]
        if self.strategy is VlSelectionStrategy.ADAPTIVE:
            self._outstanding_up[packet.up_vl] = (
                self._outstanding_up.get(packet.up_vl, 0) + 1
            )

    # ------------------------------------------------------------------
    # per-hop routing
    # ------------------------------------------------------------------

    def route(self, packet: Packet, router_id: int, in_port: Port) -> RouteDecision:
        router = self.system.routers[router_id]
        out_port = self._phased_out_port(packet, router)
        vns = self._vns_for_hop(packet, router, in_port, out_port)
        return RouteDecision(out_port, vns)

    def route_is_stateful(self, packet: Packet, router_id: int, in_port: Port) -> bool:
        """The boundary down-traversal is online state (Algorithm 1).

        At the selected VL's boundary router the VN preference order comes
        from per-router balance counters that every descending packet
        advances — the one hop a compiled table cannot capture. The
        selected VL's boundary router lives on the source chiplet, so the
        check can never fire elsewhere along the three-phase route.
        """
        down_vl = packet.down_vl
        return down_vl is not None and self.system.vls[down_vl].chiplet_router == router_id

    def stateful_boundary_router(self, packet: Packet) -> int:
        """The single stateful hop is the bound down-VL's boundary router.

        ``down_vl`` is bound once in :meth:`prepare_packet` and never
        rebound, so the answer is constant for the packet's lifetime —
        exactly what a batch kernel needs to pre-split table-served hops
        from live-dispatch hops.
        """
        down_vl = packet.down_vl
        if down_vl is None:
            return -1
        return self.system.vls[down_vl].chiplet_router

    def _vns_for_hop(
        self, packet: Packet, router, in_port: Port, out_port: Port
    ) -> tuple[int, ...]:
        vn = packet.vn
        if out_port == Port.LOCAL:
            return (vn,)
        if out_port == Port.VERTICAL:
            if router.is_interposer:
                # Up-traversal: Theorem III.4 — packets ascend "regardless
                # of their VN". A VN.0 packet stays in VN.0 on the up link
                # and switches to VN.1 at the boundary router's
                # Up -> Horizontal turn; a VN.1 packet is pinned by Rule 1.
                # Keeping the packet's VN here is what balances the
                # up-link VCs (the down-traversal round-robin already split
                # the population 50/50).
                if vn == VN1:
                    return (VN1,)
                return (VN0, VN1)
            # Down-traversal at a boundary router: Rule 3 forbids the turn
            # for packets sitting in VN.1 horizontal buffers — Algorithm 1
            # keeps inter-chiplet packets in VN.0 until here, so this can
            # only be a legal state.
            if vn == VN1 and in_port not in (Port.LOCAL, Port.VERTICAL):
                raise RoutingError(
                    "Rule 3 violation: VN.1 packet attempting Horizontal->Down"
                )
            counts = self._down_rr.setdefault(router.id, [0, 0])
            options = boundary_down_vns(vn)
            if len(options) == 1:
                # VN.1-pinned packet (boundary-sourced): it still consumes
                # the down link's VC1 turn, so the balance counter must see
                # it — this is what keeps the VN load split 50/50 (Fig. 5).
                counts[VN1] += 1
                return options
            preferred = VN0 if counts[VN0] <= counts[VN1] else VN1
            counts[preferred] += 1
            return (VN0, VN1) if preferred == VN0 else (VN1, VN0)
        # Up-arrival continuing horizontally: Rule 2 forbids staying in
        # VN.0, so the output VC must be VN.1 (Algorithm 1: "coming from
        # the interposer -> go to (remain in) VN.1").
        if in_port == Port.VERTICAL and not router.is_interposer:
            return (VN1,)
        # Plain horizontal hop: stay in the assigned VN (Algorithm 1).
        return (vn,)

    # ------------------------------------------------------------------

    def on_packet_delivered(self, packet: Packet, cycle: int) -> None:
        """Release the adaptive strategy's load claims for this packet."""
        if self.strategy is not VlSelectionStrategy.ADAPTIVE:
            return
        if packet.down_vl is not None and self._outstanding_down.get(packet.down_vl, 0) > 0:
            self._outstanding_down[packet.down_vl] -= 1
        if packet.up_vl is not None and self._outstanding_up.get(packet.up_vl, 0) > 0:
            self._outstanding_up[packet.up_vl] -= 1

    def reset_runtime_state(self) -> None:
        self._inject_rr.clear()
        self._down_rr.clear()
        self._outstanding_down.clear()
        self._outstanding_up.clear()
        self._rng = random.Random(self.seed)
