"""Routing algorithms for 2.5D chiplet systems.

* :class:`~repro.routing.base.RoutingAlgorithm` — the interface the
  simulator drives (route computation, packet preparation, fault
  rebinding, injection-permission hooks).
* :class:`~repro.routing.deft.DeftRouting` — the paper's contribution,
  with pluggable VL-selection strategies (optimized / distance / random).
* :class:`~repro.routing.mtr.MtrRouting` — modular turn-restriction
  baseline (Yin et al., ISCA 2018).
* :class:`~repro.routing.rc.RcRouting` — remote-control baseline
  (Majumder et al., IEEE TC 2020).
"""

from .base import Port, RouteDecision, RoutingAlgorithm, PhasedRoutingMixin
from .deft import DeftRouting, VlSelectionStrategy
from .mtr import MtrRouting
from .rc import RcRouting
from .registry import available_algorithms, make_algorithm

__all__ = [
    "Port",
    "RouteDecision",
    "RoutingAlgorithm",
    "PhasedRoutingMixin",
    "DeftRouting",
    "VlSelectionStrategy",
    "MtrRouting",
    "RcRouting",
    "available_algorithms",
    "make_algorithm",
]
