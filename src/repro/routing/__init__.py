"""Routing algorithms for 2.5D chiplet systems.

* :class:`~repro.routing.base.RoutingAlgorithm` — the interface the
  simulator drives (route computation, packet preparation, fault
  rebinding, injection-permission hooks).
* :class:`~repro.routing.deft.DeftRouting` — the paper's contribution,
  with pluggable VL-selection strategies (optimized / distance / random).
* :class:`~repro.routing.mtr.MtrRouting` — modular turn-restriction
  baseline (Yin et al., ISCA 2018).
* :class:`~repro.routing.rc.RcRouting` — remote-control baseline
  (Majumder et al., IEEE TC 2020).
* :class:`~repro.routing.compiled.CompiledRoutes` — ahead-of-time route
  and reachability tables over any compilable algorithm (the offline /
  online split of the paper's Algorithm 2, applied to the whole
  contract); consumed by the simulator and the analyses.
"""

from .base import Port, RouteDecision, RoutingAlgorithm, PhasedRoutingMixin
from .compiled import CompiledRoutes, compile_routes
from .deft import DeftRouting, VlSelectionStrategy
from .mtr import MtrRouting
from .rc import RcRouting
from .registry import available_algorithms, make_algorithm

__all__ = [
    "CompiledRoutes",
    "compile_routes",
    "Port",
    "RouteDecision",
    "RoutingAlgorithm",
    "PhasedRoutingMixin",
    "DeftRouting",
    "VlSelectionStrategy",
    "MtrRouting",
    "RcRouting",
    "available_algorithms",
    "make_algorithm",
]
