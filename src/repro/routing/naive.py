"""Naive chiplet routing — the deadlock-prone strawman of Fig. 1.

Three-phase minimal routing with nearest-VL selection and *no* protection:
no VN discipline (every hop stays in VN.0, i.e. a single VC class), no turn
restrictions, no RC buffer. Locally each segment is deadlock-free XY, but
inter-chiplet dependency cycles exist — exactly the motivation example of
the paper's Fig. 1.

Used by the CDG analysis (its dependency graph is cyclic) and by the
integration tests (the simulator's watchdog catches it livelocked/
deadlocked under adversarial load, while DeFT never trips).
"""

from __future__ import annotations

from ..core.vn import VN0
from ..errors import RoutingError, UnroutablePacketError
from ..network.flit import Packet
from ..topology.builder import System, VerticalLink
from ..topology.geometry import INTERPOSER_LAYER
from .base import PhasedRoutingMixin, Port, RouteDecision, RoutingAlgorithm


class NaiveRouting(PhasedRoutingMixin, RoutingAlgorithm):
    """Unprotected nearest-VL routing (deadlock-prone by design)."""

    name = "Naive"
    compilable = True  # stateless single-VN routing; nothing online

    def __init__(self, system: System):
        super().__init__(system)
        self._nearest: dict[int, VerticalLink] = {}
        for chiplet in range(system.spec.num_chiplets):
            links = system.vls_of_chiplet(chiplet)
            for router in system.chiplet_routers(chiplet):
                self._nearest[router.id] = min(
                    links,
                    key=lambda link: (
                        abs(router.x - link.cx) + abs(router.y - link.cy),
                        link.local_index,
                    ),
                )

    def is_routable(self, src: int, dst: int) -> bool:
        routers = self.system.routers
        src_layer, dst_layer = routers[src].layer, routers[dst].layer
        if src_layer == dst_layer:
            return True
        if src_layer != INTERPOSER_LAYER:
            if not self.fault_state.down_ok(self._nearest[src].index):
                return False
        if dst_layer != INTERPOSER_LAYER:
            if not self.fault_state.up_ok(self._nearest[dst].index):
                return False
        return True

    def prepare_packet(self, packet: Packet) -> None:
        src = self.system.routers[packet.src]
        dst = self.system.routers[packet.dst]
        packet.vn = VN0
        packet.down_vl = None
        packet.up_vl = None
        if src.layer != dst.layer and not src.is_interposer:
            link = self._nearest[packet.src]
            if not self.fault_state.down_ok(link.index):
                raise UnroutablePacketError("naive routing cannot avoid the faulty VL")
            packet.down_vl = link.index

    def _bind_up_vl(self, packet: Packet) -> None:
        link = self._nearest[packet.dst]
        if not self.fault_state.up_ok(link.index):
            raise RoutingError("naive routing cannot avoid the faulty up VL")
        packet.up_vl = link.index

    def route(self, packet: Packet, router_id: int, in_port: Port) -> RouteDecision:
        router = self.system.routers[router_id]
        out_port = self._phased_out_port(packet, router)
        # Single VC class, no switching: the unprotected configuration.
        return RouteDecision(out_port, (VN0,))
