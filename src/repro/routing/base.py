"""Routing-algorithm interface and shared 2.5D route mechanics.

Every algorithm implements the same contract so the simulator, the
reachability analysis and the CDG deadlock checker can treat them
uniformly:

* :meth:`RoutingAlgorithm.prepare_packet` — called once at injection;
  binds per-packet routing state (DeFT: the down-VL from the lookup table
  and the initial virtual network; MTR/RC: the statically bound VL).
* :meth:`RoutingAlgorithm.route` — called per hop for the packet's head
  flit; returns the output port and the legal virtual networks for the
  output VC, in preference order.
* :meth:`RoutingAlgorithm.is_routable` — static routability of a
  source/destination pair under the current fault state (the paper's
  reachability predicate).
* injection hooks (:meth:`may_inject`, :meth:`uses_rc_buffer`, ...) that
  default to no-ops and are overridden by RC.

All three algorithms of the paper share the same macroscopic route shape
(Section II-A): source chiplet -> selected down-VL -> interposer ->
selected up-VL -> destination chiplet, with XY-minimal routing inside each
segment. :class:`PhasedRoutingMixin` implements that skeleton; concrete
algorithms only decide *which* VLs and *which* virtual networks.
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..errors import RoutingError
from ..fault.model import FaultState
from ..topology.builder import Router, System
from ..topology.geometry import INTERPOSER_LAYER

if TYPE_CHECKING:  # pragma: no cover
    from ..network.flit import Packet


class Port(enum.IntEnum):
    """Physical router ports. EAST..SOUTH match :class:`Direction` values.

    An *input* port names the side the flit came in through (a flit moving
    east arrives at the next router's WEST input). ``VERTICAL`` is the
    single up/down port of vertically connected routers; ``LOCAL``
    connects the router to its PE/NIC.
    """

    EAST = 0
    WEST = 1
    NORTH = 2
    SOUTH = 3
    LOCAL = 4
    VERTICAL = 5


#: Number of physical ports modelled per router.
PORT_COUNT = 6

#: Ports that are mesh ("Horizontal" in the paper's terms) links.
HORIZONTAL_PORTS = (Port.EAST, Port.WEST, Port.NORTH, Port.SOUTH)

_OPPOSITE_PORT = {
    Port.EAST: Port.WEST,
    Port.WEST: Port.EAST,
    Port.NORTH: Port.SOUTH,
    Port.SOUTH: Port.NORTH,
    Port.VERTICAL: Port.VERTICAL,
}


def opposite_port(port: Port) -> Port:
    """Input port at the receiving router for a flit leaving through ``port``."""
    return _OPPOSITE_PORT[port]


@dataclass(frozen=True)
class RouteDecision:
    """Outcome of route computation for one head flit at one router.

    Attributes:
        out_port: the requested output port.
        allowed_vns: virtual networks the output VC may belong to, in
            preference order (the simulator tries them left to right).
    """

    out_port: Port
    allowed_vns: tuple[int, ...]


class RoutingAlgorithm(abc.ABC):
    """Base class for 2.5D routing algorithms.

    Subclasses must set :attr:`name` and implement the abstract methods.
    The fault state starts empty; :meth:`set_fault_state` installs a new
    one and triggers :meth:`_on_fault_state_changed` so implementations
    can rebind their VL tables.
    """

    name: str = "base"

    #: Whether :meth:`route` decisions may be memoized into a
    #: :class:`~repro.routing.compiled.CompiledRoutes` table. A compilable
    #: algorithm's decision for a hop must be a pure function of
    #: ``(routing phase, bound intermediate target, router, input port,
    #: virtual network)`` under a fixed fault state — except for hops the
    #: algorithm flags through :meth:`route_is_stateful`, which the
    #: compiled path always delegates to the live :meth:`route`. Strictly
    #: opt-in (``False`` here): an algorithm whose ``route()`` reads
    #: online state it did not flag must never be silently compiled.
    compilable: bool = False

    def __init__(self, system: System):
        self.system = system
        self.fault_state = FaultState(system)

    # -- fault management -------------------------------------------------

    def set_fault_state(self, fault_state: FaultState) -> None:
        """Install a new fault state (run-time fault observation)."""
        if fault_state.system is not self.system:
            raise RoutingError("fault state belongs to a different system")
        self.fault_state = fault_state
        self._on_fault_state_changed()

    def _on_fault_state_changed(self) -> None:
        """Hook for subclasses to refresh fault-dependent bindings."""

    # -- abstract contract -------------------------------------------------

    @abc.abstractmethod
    def is_routable(self, src: int, dst: int) -> bool:
        """Whether a packet from ``src`` to ``dst`` can be delivered now."""

    @abc.abstractmethod
    def prepare_packet(self, packet: "Packet") -> None:
        """Bind per-packet routing state at injection time.

        Raises:
            UnroutablePacketError: when the pair is unroutable; the
                simulator counts the packet as dropped at the source.
        """

    @abc.abstractmethod
    def route(self, packet: "Packet", router_id: int, in_port: Port) -> RouteDecision:
        """Route the packet's head flit at ``router_id``."""

    def route_is_stateful(self, packet: "Packet", router_id: int, in_port: Port) -> bool:
        """Whether this hop's decision depends on online mutable state.

        Stateful hops (e.g. DeFT's boundary-router VN round-robin) are
        never served from a compiled table: the compiled path calls the
        live :meth:`route` for them, exactly when the simulator would, so
        online counters advance identically. Must be pure and cheap.
        """
        return False

    def stateful_boundary_router(self, packet: "Packet") -> int | None:
        """Vectorization hint: where along its route this packet's hops
        are stateful.

        Returns ``-1`` when *no* hop of this packet is stateful (so a
        batch kernel may serve every hop from a dense table), a router id
        when exactly that router's hops are stateful, or ``None`` when
        the answer cannot be summarized — the kernel then falls back to
        calling :meth:`route_is_stateful` per hop. The default inspects
        whether the subclass overrides :meth:`route_is_stateful` at all:
        if not, nothing is ever stateful. Only meaningful once the
        packet's bindings (``prepare_packet``) are in place, and must
        stay constant for the packet's lifetime afterwards.
        """
        if type(self).route_is_stateful is RoutingAlgorithm.route_is_stateful:
            return -1
        return None

    # -- optional hooks (overridden by RC) ---------------------------------

    def may_inject(self, packet: "Packet", cycle: int) -> bool:
        """Whether the NIC may start injecting this packet this cycle."""
        return True

    def uses_rc_buffer(self, router_id: int) -> bool:
        """Whether down-traversals at this router go through an RC buffer."""
        return False

    def packet_needs_rc(self, packet: "Packet") -> bool:
        """Whether this packet must traverse an RC buffer before descending."""
        return False

    def on_rc_buffer_drained(self, router_id: int, packet: "Packet", cycle: int) -> None:
        """Called by the simulator when an RC buffer finished draining."""

    def on_packet_delivered(self, packet: "Packet", cycle: int) -> None:
        """Called by the simulator when a packet's tail is ejected.

        Lets adaptive algorithms maintain congestion state (e.g. DeFT's
        online VL-load tracking).
        """

    def reset_runtime_state(self) -> None:
        """Clear per-simulation mutable state (round-robin counters, tokens)."""


class PhasedRoutingMixin:
    """Shared three-phase route skeleton (Section II-A of the paper).

    An inter-chiplet packet is routed minimally to two intermediate
    destinations: the selected down-VL boundary router on the source
    chiplet, then the interposer router beneath the selected up-VL, then
    finally to its destination. Intra-layer segments are XY-minimal.

    Subclasses provide the VL bindings through packet attributes
    (``packet.down_vl`` / ``packet.up_vl``, set in ``prepare_packet`` and
    :meth:`_bind_up_vl`) and decide the VN sets through
    :meth:`_vns_for_hop`.
    """

    system: System

    # - segment target resolution -----------------------------------------

    def _current_target(self, packet: "Packet", router: Router) -> tuple[int, Port | None]:
        """The router the packet is currently heading to within this layer.

        Returns ``(target_router_id, terminal_port)`` where
        ``terminal_port`` is the port to take upon *reaching* the target
        (LOCAL for final delivery, VERTICAL for a layer change) — or
        ``None`` when the target is further away in the mesh.
        """
        dst = self.system.routers[packet.dst]
        if router.layer == INTERPOSER_LAYER:
            if dst.layer == INTERPOSER_LAYER:
                target = packet.dst
                terminal = Port.LOCAL
            else:
                if packet.up_vl is None:
                    self._bind_up_vl(packet)
                assert packet.up_vl is not None
                target = self.system.vls[packet.up_vl].interposer_router
                terminal = Port.VERTICAL
        elif router.layer == dst.layer:
            target = packet.dst
            terminal = Port.LOCAL
        else:
            # On the source chiplet, destination elsewhere: head down.
            if packet.down_vl is None:
                raise RoutingError(
                    f"packet {packet.id} has no bound down-VL on chiplet {router.layer}"
                )
            target = self.system.vls[packet.down_vl].chiplet_router
            terminal = Port.VERTICAL
        if router.id == target:
            return target, terminal
        return target, None

    def _mesh_step(self, router: Router, target_id: int) -> Port:
        """XY-minimal next hop towards a same-layer target."""
        target = self.system.routers[target_id]
        if router.x < target.x:
            return Port.EAST
        if router.x > target.x:
            return Port.WEST
        if router.y > target.y:
            return Port.NORTH
        if router.y < target.y:
            return Port.SOUTH
        raise RoutingError("mesh step requested for the current router")

    def _phased_out_port(self, packet: "Packet", router: Router) -> Port:
        """The output port of the three-phase minimal route at ``router``."""
        target, terminal = self._current_target(packet, router)
        if terminal is not None:
            return terminal
        return self._mesh_step(router, target)

    # - hooks ---------------------------------------------------------------

    def ensure_up_binding(self, packet: "Packet") -> None:
        """Bind the packet's up-VL if not already bound.

        The live path binds lazily inside :meth:`_current_target` at the
        packet's first interposer route computation; the compiled path
        calls this at that same moment (it needs the binding as a table
        key), so strategies with online selection state (RANDOM's RNG,
        ADAPTIVE's load counters) observe an identical call sequence.
        """
        if packet.up_vl is None:
            self._bind_up_vl(packet)

    def _bind_up_vl(self, packet: "Packet") -> None:  # pragma: no cover - abstract-ish
        raise NotImplementedError
