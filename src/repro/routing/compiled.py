"""Compiled route tables: ahead-of-time routing for the online hot path.

The paper's own structure (Section III) is an *offline* table optimization
consumed by a cheap *online* lookup — Algorithm 2 runs at design time, the
router just indexes a LUT. The simulator, however, recomputes every
decision per head flit per hop through Python virtual dispatch, and the
analyses re-derive the same routes pair by pair. :class:`CompiledRoutes`
closes that gap for the whole algorithm contract:

* **Route table** — for a fixed (algorithm, :class:`System`,
  :class:`FaultState`), a flat mapping from the route-determining state
  ``(routing phase, bound intermediate target, router, input port,
  virtual network)`` to the :class:`RouteDecision` the live
  :meth:`~repro.routing.base.RoutingAlgorithm.route` returns. Entries are
  compiled *through the live implementation* on first use, so the table
  is bit-identical to per-hop dispatch by construction, and filled lazily
  so compilation never costs more than the traffic actually routed.
* **Fallback path** — hops whose decision depends on online mutable
  state (DeFT's boundary VN round-robin, flagged via
  :meth:`~repro.routing.base.RoutingAlgorithm.route_is_stateful`) are
  always delegated to the live ``route()``, exactly when the simulator
  would have called it, so online counters advance identically. Binding
  state that lives *outside* ``route()`` (RC's permission network and
  buffers, DeFT-ADAPTIVE's congestion term, DeFT-Ran's RNG — all in
  ``prepare_packet``/``_bind_up_vl``) stays on the algorithm untouched.
* **Reachability tables** — per-(chiplet, local fault pattern) counts of
  routable senders/receivers, the same factorization
  ``send_ok(s | down faults) AND deliver_ok(d | up faults)`` the exact
  Fig. 7 decomposition uses. :func:`~repro.analysis.reachability.reachability_of_state`
  reads these instead of probing all ordered core pairs, and the entries
  are fault-pattern-keyed, so Monte Carlo samples that repeat a local
  pattern (most of them) share table rows across jobs.

The three routing phases mirror :class:`~repro.routing.base.PhasedRoutingMixin`:
heading to the destination within its layer, heading to the bound
down-VL's boundary router, heading to the bound up-VL's interposer
router. Within a phase the decision depends only on the phase anchor
(destination or VL index), never on the rest of the packet — which is
what makes the flat key sound for every algorithm of the paper.

Tables auto-invalidate when a different fault state is installed on the
algorithm (run-time fault observation), so a session-cached instance can
serve many jobs: same-fault sweeps keep their rows, Monte Carlo samples
rebuild only the route rows while keeping the reachability rows.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING

from ..errors import RoutingError
from ..fault.model import DirectedVL, FaultState, VLDirection
from ..topology.geometry import INTERPOSER_LAYER
from .base import Port, RouteDecision, RoutingAlgorithm

if TYPE_CHECKING:  # pragma: no cover
    from ..network.flit import Packet

#: Routing phases of the three-phase minimal route (PhasedRoutingMixin).
PHASE_TO_DST = 0    #: same layer as the destination; anchor = destination id
PHASE_TO_DOWN = 1   #: on the source chiplet; anchor = bound down-VL index
PHASE_TO_UP = 2     #: on the interposer, ascending; anchor = bound up-VL index

_NUM_PORTS = len(Port)


class CompiledRoutes:
    """Lazily compiled route + reachability tables for one algorithm.

    Args:
        algorithm: a routing algorithm whose class declares
            :attr:`~repro.routing.base.RoutingAlgorithm.compilable`.

    Raises:
        RoutingError: when the algorithm is not compilable.
    """

    def __init__(self, algorithm: RoutingAlgorithm):
        if not algorithm.compilable:
            raise RoutingError(
                f"algorithm {algorithm.name!r} does not declare itself compilable"
            )
        self.algorithm = algorithm
        self.system = algorithm.system
        self._fault_state = algorithm.fault_state
        self._layers = tuple(r.layer for r in self.system.routers)
        # Route table: packed state key -> RouteDecision. One dict (not a
        # dense array) so memory tracks the states traffic actually
        # exercises, which stays tiny even for mega-grids.
        self._table: dict[int, RouteDecision] = {}
        # Key packing strides: ((phase * A + anchor) * R + router) * P2 + port/vn.
        self._anchors = max(len(self.system.routers), len(self.system.vls))
        # Reachability tables: (chiplet, frozen local fault pattern) -> count.
        # Keyed by the pattern itself, hence *not* invalidated on fault-state
        # changes — Monte Carlo samples share rows across jobs.
        self._senders: dict[tuple[int, frozenset[int]], int] = {}
        self._receivers: dict[tuple[int, frozenset[int]], int] = {}
        #: Introspection counters (tests, benchmarks).
        self.hits = 0
        self.misses = 0
        self.stateful_calls = 0
        self.invalidations = 0
        # Lazily built numpy view of the table (vector kernel); memoized
        # here so session-cached CompiledRoutes instances carry their
        # dense tables across jobs for free.
        self._dense: "DenseRouteTable | None" = None

    # ------------------------------------------------------------------
    # route table
    # ------------------------------------------------------------------

    def route(self, packet: "Packet", router_id: int, in_port: Port) -> RouteDecision:
        """Table-served drop-in for ``algorithm.route`` (bit-identical)."""
        algorithm = self.algorithm
        fault_state = algorithm.fault_state
        if fault_state is not self._fault_state:
            self._rebind(fault_state)
        layer = self._layers[router_id]
        if layer == self._layers[packet.dst]:
            phase, anchor = PHASE_TO_DST, packet.dst
        elif layer == INTERPOSER_LAYER:
            # Heading up: the up-VL is the phase anchor; bind it now —
            # the same moment the live path's _current_target would.
            algorithm.ensure_up_binding(packet)
            phase, anchor = PHASE_TO_UP, packet.up_vl
        else:
            if packet.down_vl is None:
                # The live path raises a descriptive RoutingError here.
                return algorithm.route(packet, router_id, in_port)
            phase, anchor = PHASE_TO_DOWN, packet.down_vl
        if algorithm.route_is_stateful(packet, router_id, in_port):
            self.stateful_calls += 1
            return algorithm.route(packet, router_id, in_port)
        key = (
            ((phase * self._anchors + anchor) * len(self._layers) + router_id)
            * (_NUM_PORTS * 2)
            + int(in_port) * 2
            + packet.vn
        )
        decision = self._table.get(key)
        if decision is None:
            decision = algorithm.route(packet, router_id, in_port)
            self._table[key] = decision
            self.misses += 1
        else:
            self.hits += 1
        return decision

    def _rebind(self, fault_state: FaultState) -> None:
        """Adopt a newly installed fault state, dropping rows if it differs."""
        if fault_state != self._fault_state:
            self._table.clear()
            self.invalidations += 1
        self._fault_state = fault_state

    @property
    def table_size(self) -> int:
        """Number of compiled route entries currently held."""
        return len(self._table)

    def pack_key(
        self, phase: int, anchor: int, router_id: int, in_port: int, vn: int
    ) -> int:
        """The packed integer key of one route-determining state."""
        return (
            ((phase * self._anchors + anchor) * len(self._layers) + router_id)
            * (_NUM_PORTS * 2)
            + in_port * 2
            + vn
        )

    def dense_table(self) -> "DenseRouteTable":
        """The numpy-indexable view of the route table (memoized).

        Requires numpy. The view resyncs itself lazily from the dict as
        traffic compiles new entries — see :class:`DenseRouteTable`.
        """
        if self._dense is None:
            self._dense = DenseRouteTable(self)
        return self._dense

    # ------------------------------------------------------------------
    # reachability tables (the Fig. 7 factorization)
    # ------------------------------------------------------------------

    def chiplet_senders(self, chiplet: int, down_pattern: frozenset[int]) -> int:
        """Routers of ``chiplet`` that can still send inter-chiplet.

        ``down_pattern`` holds the chiplet's *faulty* local down-channel
        indices. Computed once per pattern by probing the algorithm's own
        ``is_routable`` under a reduced fault state (only these down
        faults, so the witness destination is always deliverable).
        """
        key = (chiplet, down_pattern)
        count = self._senders.get(key)
        if count is None:
            count = self._count_routable(chiplet, down_pattern, VLDirection.DOWN)
            self._senders[key] = count
        return count

    def chiplet_receivers(self, chiplet: int, up_pattern: frozenset[int]) -> int:
        """Routers of ``chiplet`` that can still be delivered to."""
        key = (chiplet, up_pattern)
        count = self._receivers.get(key)
        if count is None:
            count = self._count_routable(chiplet, up_pattern, VLDirection.UP)
            self._receivers[key] = count
        return count

    def _count_routable(
        self, chiplet: int, pattern: frozenset[int], direction: VLDirection
    ) -> int:
        system, algorithm = self.system, self.algorithm
        by_local = {link.local_index: link for link in system.vls_of_chiplet(chiplet)}
        faults = [DirectedVL(by_local[local].index, direction) for local in pattern]
        other = (chiplet + 1) % system.spec.num_chiplets
        witness = system.chiplet_routers(other)[0].id
        saved = algorithm.fault_state
        algorithm.set_fault_state(FaultState(system, faults))
        try:
            if direction is VLDirection.DOWN:
                return sum(
                    1
                    for router in system.chiplet_routers(chiplet)
                    if algorithm.is_routable(router.id, witness)
                )
            return sum(
                1
                for router in system.chiplet_routers(chiplet)
                if algorithm.is_routable(witness, router.id)
            )
        finally:
            algorithm.set_fault_state(saved)

    def core_reachability(self, state: FaultState) -> float:
        """Reachable fraction of ordered core pairs under ``state``.

        Exactly :func:`~repro.analysis.reachability.reachability_of_state`
        via the send/receive factorization: intra-chiplet pairs are always
        routable; a cross pair is routable iff its source can send under
        the source chiplet's down faults and its destination can receive
        under the destination chiplet's up faults. Integer arithmetic
        throughout, so the resulting float is bit-identical to the
        pairwise probe.
        """
        system = self.system
        if state.system is not system:
            raise RoutingError("fault state belongs to a different system")
        num_chiplets = system.spec.num_chiplets
        sizes = [len(system.chiplet_routers(c)) for c in range(num_chiplets)]
        total_cores = sum(sizes)
        total = total_cores * (total_cores - 1)
        intra = sum(n * (n - 1) for n in sizes)
        if num_chiplets < 2:
            return 1.0 if total else 0.0
        senders = [
            self.chiplet_senders(c, state.chiplet_down_pattern(c))
            for c in range(num_chiplets)
        ]
        receivers = [
            self.chiplet_receivers(c, state.chiplet_up_pattern(c))
            for c in range(num_chiplets)
        ]
        cross = sum(senders) * sum(receivers) - sum(
            s * d for s, d in zip(senders, receivers)
        )
        return (intra + cross) / total


class DenseRouteTable:
    """Batch-lookup view of a :class:`CompiledRoutes` table.

    Not a literal dense array — the key space (phases x anchors x routers
    x ports x VNs) reaches tens of millions of slots on mega-grids while
    traffic exercises a few thousand, so the view keeps the *compiled*
    keys as a sorted int64 array with a parallel array of interned
    decision codes and answers batch queries via ``searchsorted``.
    Decisions are interned by value (``(out_port, allowed_vns)``), so
    codes remain valid across table invalidations.

    Sync policy: the view trails the dict and resyncs with geometric
    backoff (when the dict has grown 25% + 16 entries past the last
    sync, or the fault state was rebound). Keys compiled since the last
    sync simply miss — callers route those through
    :meth:`CompiledRoutes.route`, which is where new entries come from
    in the first place, so a miss is never wrong, only slower.
    """

    def __init__(self, routes: CompiledRoutes):
        import numpy as np

        self._np = np
        self._routes = routes
        self._keys = np.empty(0, dtype=np.int64)
        self._codes = np.empty(0, dtype=np.int32)
        #: code -> representative RouteDecision (value-interned).
        self.decisions: list[RouteDecision] = []
        self._code_of: dict[tuple[int, tuple[int, ...]], int] = {}
        #: Codes of the dict's entries in insertion order, so a resync
        #: only interns entries compiled since the previous one.
        self._insertion_codes: list[int] = []
        self._synced_invalidations = routes.invalidations
        self._resync_at = 0
        #: Introspection counters (tests, benchmarks).
        self.lookups = 0
        self.misses = 0
        self.resyncs = 0

    def code_for(self, decision: RouteDecision) -> int:
        """Intern a decision, returning its stable integer code."""
        key = (int(decision.out_port), tuple(int(v) for v in decision.allowed_vns))
        code = self._code_of.get(key)
        if code is None:
            code = len(self.decisions)
            self._code_of[key] = code
            self.decisions.append(decision)
        return code

    def maybe_resync(self) -> None:
        """Adopt dict growth / invalidation if the backoff threshold passed."""
        routes = self._routes
        stale = routes.invalidations != self._synced_invalidations
        if not stale and len(routes._table) < self._resync_at:
            return
        np = self._np
        table = routes._table
        n = len(table)
        keys = np.fromiter(table.keys(), dtype=np.int64, count=n)
        if stale or n < len(self._insertion_codes):
            self._insertion_codes.clear()
        done = len(self._insertion_codes)
        if n > done:
            self._insertion_codes.extend(
                self.code_for(d)
                for d in itertools.islice(table.values(), done, None)
            )
        codes = np.asarray(self._insertion_codes, dtype=np.int32)
        order = np.argsort(keys)
        self._keys = keys[order]
        self._codes = codes[order]
        self._synced_invalidations = routes.invalidations
        self._resync_at = n + (n >> 2) + 16
        self.resyncs += 1

    def lookup(self, keys: "object") -> tuple["object", "object"]:
        """Batch lookup: (decision codes, found mask) for packed keys.

        ``codes`` is only meaningful where ``found`` is True; unfound
        keys must be routed through :meth:`CompiledRoutes.route`.
        """
        np = self._np
        self.lookups += len(keys)  # type: ignore[arg-type]
        if len(self._keys) == 0:  # type: ignore[arg-type]
            found = np.zeros(len(keys), dtype=bool)  # type: ignore[arg-type]
            self.misses += len(keys)  # type: ignore[arg-type]
            return np.zeros(len(keys), dtype=np.int32), found  # type: ignore[arg-type]
        pos = np.searchsorted(self._keys, keys)
        pos[pos == len(self._keys)] = 0  # any in-range slot; masked below
        found = self._keys[pos] == keys
        self.misses += int(len(found) - int(found.sum()))
        return self._codes[pos], found


def compile_routes(algorithm: RoutingAlgorithm) -> CompiledRoutes | None:
    """A :class:`CompiledRoutes` for the algorithm, or None if uncompilable."""
    if not algorithm.compilable:
        return None
    return CompiledRoutes(algorithm)
