"""Distributed campaign execution.

The subsystem that takes the campaign runner beyond one machine:

* :mod:`repro.distributed.spool` — :class:`Spool`, a broker-less
  filesystem job queue (atomic claims, leases with heartbeats, crash
  requeue, terminal failure hand-off);
* :mod:`repro.distributed.worker` — :func:`run_worker`, the long-lived
  ``deft worker`` process wrapping one warm
  :class:`~repro.runner.session.SessionContext`;
* :mod:`repro.distributed.shard` — deterministic campaign partitioning
  by job-key range, merged through the content-addressed result cache;
* :mod:`repro.distributed.backend` — :class:`SpoolBackend`, the
  :class:`~repro.runner.backends.ExecutionBackend` that enqueues a
  campaign, autospawns local workers and blocks until results land;
* :mod:`repro.distributed.rounds` — :class:`RoundRendezvous`, the
  filesystem barrier that lets N shard drivers pool per-round Monte
  Carlo tallies and take bit-identical adaptive-stopping decisions.
"""

from .backend import SpoolBackend, auto_batch_size
from .rounds import RendezvousError, RoundRendezvous
from .shard import (
    coverage_check,
    parse_shard,
    shard_bounds,
    shard_campaign,
    shard_jobs,
    shard_of_key,
)
from .spool import BatchClaim, BatchEntry, Claim, Spool
from .worker import run_worker

__all__ = [
    "BatchClaim",
    "BatchEntry",
    "Claim",
    "RendezvousError",
    "RoundRendezvous",
    "Spool",
    "SpoolBackend",
    "auto_batch_size",
    "coverage_check",
    "parse_shard",
    "run_worker",
    "shard_bounds",
    "shard_campaign",
    "shard_jobs",
    "shard_of_key",
]
