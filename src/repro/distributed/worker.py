"""Long-lived ``deft worker`` processes.

A worker is the remote half of the ROADMAP's execution model: its warm
state is exactly one :class:`~repro.runner.session.SessionContext`. It
attaches to a spool directory, drains the job stream — claiming, heart-
beating, executing through the process session so repeated topologies
amortize their builds — and hands successful results to the shared
content-addressed :class:`~repro.runner.cache.ResultCache`. Failed
executions are retried by requeueing up to the spool's ``max_attempts``;
the final failure lands in the spool's ``failed/`` directory for the
backend to collect.

After every job the worker serializes its session stats (system /
algorithm / route-table / fault-state hit counts) into
``<spool>/workers/<id>.json``, so an operator of a many-machine campaign
can see exactly how warm each worker is without attaching a debugger.

Exit conditions: the spool's ``STOP`` sentinel, ``max_jobs`` executed,
or ``idle_timeout_s`` with nothing claimable. Between claims an idle
worker also acts as the reaper for other workers' expired leases.
"""

from __future__ import annotations

import os
import threading
import time
from pathlib import Path

from ..runner.cache import ResultCache
from ..runner.execute import execute_job
from ..runner.session import SessionContext, get_session
from ..runner.spec import Job
from .spool import Claim, Spool

#: How often an idle worker polls the spool for new jobs.
DEFAULT_POLL_S = 0.1


class _Heartbeat:
    """Background thread extending one claim's lease while a job runs.

    The executor is a single long synchronous call, so the lease must be
    renewed off-thread; the interval is a fraction of the lease so a
    healthy worker can never look dead.
    """

    def __init__(self, spool: Spool, claim: Claim):
        self._spool = spool
        self._claim = claim
        self._interval = max(0.05, spool.lease_s / 4.0)
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        while not self._stop.wait(self._interval):
            self._spool.heartbeat(self._claim)

    def __enter__(self) -> "_Heartbeat":
        self._thread.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self._stop.set()
        self._thread.join()


def _session_stats(session: SessionContext | None) -> dict[str, int]:
    """The session's (category, hit/miss) counters as flat JSON keys."""
    if session is None:
        return {}
    return {
        f"{category}.{kind}": count
        for (category, kind), count in sorted(session.stats.items())
    }


def run_worker(
    spool_dir: str | Path,
    cache: ResultCache,
    *,
    worker_id: str | None = None,
    lease_s: float | None = None,
    max_attempts: int | None = None,
    poll_s: float = DEFAULT_POLL_S,
    idle_timeout_s: float | None = None,
    max_jobs: int | None = None,
    use_session: bool = True,
    heartbeat: bool = True,
) -> dict:
    """Drain a spool until stopped; returns the final stats payload.

    Args:
        spool_dir: the spool to attach to.
        cache: where successful results land (the shared merge point).
        worker_id: identity for leases and stats; defaults to host+pid.
        lease_s / max_attempts: spool protocol overrides.
        poll_s: idle polling interval.
        idle_timeout_s: exit after this long with nothing claimable
            (``None`` = wait for the ``STOP`` sentinel indefinitely).
        max_jobs: exit after executing this many jobs (tests, draining).
        use_session: keep this process's warm
            :class:`~repro.runner.session.SessionContext` across jobs.
        heartbeat: renew leases while executing (disabled only by tests
            that simulate a stalled worker).
    """
    spool = Spool(
        spool_dir,
        **{
            key: value
            for key, value in (
                ("lease_s", lease_s), ("max_attempts", max_attempts)
            )
            if value is not None
        },
    ).ensure()
    if worker_id is None:
        worker_id = f"{os.uname().nodename}-{os.getpid()}"
    session = get_session() if use_session else None
    stats = {
        "worker": worker_id,
        "pid": os.getpid(),
        "started_at": time.time(),
        "jobs_done": 0,
        "jobs_failed": 0,
        "requeues_swept": 0,
    }

    def publish() -> None:
        stats["updated_at"] = time.time()
        stats["session"] = _session_stats(session)
        spool.write_worker_stats(worker_id, stats)

    publish()
    idle_since = time.monotonic()
    while True:
        if spool.stop_requested():
            break
        if max_jobs is not None and stats["jobs_done"] >= max_jobs:
            break
        claim = spool.claim(worker_id)
        if claim is None:
            swept = spool.requeue_expired()
            stats["requeues_swept"] += swept
            if swept:
                continue
            if (
                idle_timeout_s is not None
                and time.monotonic() - idle_since >= idle_timeout_s
            ):
                break
            time.sleep(poll_s)
            continue
        idle_since = time.monotonic()
        result = _execute_claim(
            spool, cache, claim, session, heartbeat=heartbeat
        )
        stats["jobs_done"] += 1
        if not result.ok:
            stats["jobs_failed"] += 1
        publish()
        idle_since = time.monotonic()
    publish()
    return stats


def _execute_claim(
    spool: Spool,
    cache: ResultCache,
    claim: Claim,
    session: SessionContext | None,
    heartbeat: bool = True,
):
    """Execute one claimed job and land its result.

    A result another worker already published (duplicate execution after
    a lease expiry, or an overlapping campaign) short-circuits the run —
    the cache is the source of truth either way. Failed executions are
    requeued for a fresh attempt until ``max_attempts``, then recorded
    terminally in the spool.
    """
    job: Job = claim.job
    cached = cache.get(job)
    if cached is not None:
        spool.complete(claim)
        return cached
    if heartbeat:
        with _Heartbeat(spool, claim):
            result = execute_job(job, session=session)
    else:
        result = execute_job(job, session=session)
    if result.ok:
        cache.put(job, result)
    elif claim.attempts >= spool.max_attempts:
        spool.record_failure(claim.key, result, claim.attempts)
    else:
        # A failed execution gets a fresh attempt on any worker: the
        # failure may be environmental (OOM kill of a sibling, a flaky
        # mount). The carried attempt count makes deterministic failures
        # terminal after max_attempts instead of cycling forever.
        spool.requeue_claim(claim)
    spool.complete(claim)
    return result
