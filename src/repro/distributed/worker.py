"""Long-lived ``deft worker`` processes.

A worker is the remote half of the ROADMAP's execution model: its warm
state is exactly one :class:`~repro.runner.session.SessionContext`. It
attaches to a spool directory and drains the job stream *batch by
batch* (spool protocol v2): each :meth:`~repro.distributed.spool.Spool.
claim_batch` takes every job in one pending file under a single lease,
one heartbeat thread covers the whole batch, and the jobs run back to
back through the process session so repeated topologies amortize their
builds. Successful results are handed to the shared content-addressed
:class:`~repro.runner.cache.ResultCache` — buffered briefly and landed
with :meth:`~repro.runner.cache.ResultCache.put_many`, then marked
settled in the lease, in that order, so a settled job *always* has a
durable result and a crash requeues only work whose results could still
be missing. Failed executions are retried by requeueing up to the
spool's ``max_attempts``; the final failure lands in the spool's
``failed/`` directory for the backend to collect.

Telemetry: the worker publishes its stats snapshot
(``<spool>/workers/<id>.json`` — job counts, session hit rates) after
every batch *and on every heartbeat*, so even a SIGKILLed worker leaves
a near-current record behind; and it appends structured events
(``job_claimed``, ``job_phase``, ``job_finished``, ``worker_heartbeat``,
plus the spool's own ``lease_renewed``) to its stream under the spool's
``manifest/events/`` area, from which ``deft status`` reconstructs
fleet state (see :mod:`repro.telemetry.manifest`).

Exit conditions: the spool's ``STOP`` sentinel, ``max_jobs`` executed,
or ``idle_timeout_s`` with nothing claimable. Both STOP and ``max_jobs``
are honoured *between jobs inside a batch*: the unexecuted remainder is
released back to pending with its pre-claim attempt counts. Between
claims an idle worker also acts as the reaper for other workers'
expired leases.
"""

from __future__ import annotations

import dataclasses
import os
import threading
import time
from pathlib import Path
from typing import Callable

from ..runner.cache import ResultCache
from ..runner.execute import execute_job
from ..runner.session import SessionContext, get_session
from ..runner.spec import Job
from .spool import BatchClaim, BatchEntry, Spool

#: How often an idle worker polls the spool for new jobs.
DEFAULT_POLL_S = 0.1

#: Heartbeat interval as a fraction of the lease, when not overridden.
HEARTBEAT_FRACTION = 4.0


def default_heartbeat_s(lease_s: float) -> float:
    """Lease-derived renewal interval: a healthy worker can never look
    dead, even if one renewal is arbitrarily delayed by a slow mount."""
    return max(0.05, lease_s / HEARTBEAT_FRACTION)


class _Heartbeat:
    """Background thread extending one batch's lease while jobs run.

    The executor runs jobs as long synchronous calls, so the lease must
    be renewed off-thread; one thread covers every job in the batch.
    ``on_beat`` (the worker's stats publisher) runs after each renewal;
    its failures are swallowed — observability must never kill the lease
    renewal that keeps the batch alive.
    """

    def __init__(
        self,
        spool: Spool,
        claim: BatchClaim,
        interval_s: float | None = None,
        on_beat: Callable[[], None] | None = None,
    ):
        self._spool = spool
        self._claim = claim
        self._on_beat = on_beat
        self._interval = (
            interval_s
            if interval_s is not None
            else default_heartbeat_s(spool.lease_s)
        )
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        while not self._stop.wait(self._interval):
            self._spool.heartbeat_batch(self._claim)
            if self._on_beat is not None:
                try:
                    self._on_beat()
                except Exception:
                    pass

    def __enter__(self) -> "_Heartbeat":
        self._thread.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self._stop.set()
        self._thread.join()


def _proc_resources() -> dict[str, int]:
    """Resident-set size and open-fd count of this process via /proc.

    Best-effort: on platforms without a Linux-style procfs (macOS CI,
    containers with a masked /proc) the keys are simply absent and the
    dashboards render nothing for them.
    """
    out: dict[str, int] = {}
    try:
        with open("/proc/self/statm", "rb") as handle:
            resident_pages = int(handle.read().split()[1])
        out["rss_bytes"] = resident_pages * os.sysconf("SC_PAGE_SIZE")
    except (OSError, ValueError, IndexError):
        pass
    try:
        out["open_fds"] = len(os.listdir("/proc/self/fd"))
    except OSError:
        pass
    return out


def _session_stats(session: SessionContext | None) -> dict[str, int]:
    """The session's (category, hit/miss) counters as flat JSON keys.

    Read from the heartbeat thread while the main thread executes jobs,
    so the dict can mutate mid-copy; retry a few times and settle for
    the last consistent snapshot rather than crash the publisher.
    """
    if session is None:
        return {}
    for _ in range(3):
        try:
            return {
                f"{category}.{kind}": count
                for (category, kind), count in sorted(session.stats.items())
            }
        except RuntimeError:
            continue
    return {}


def run_worker(
    spool_dir: str | Path,
    cache: ResultCache,
    *,
    worker_id: str | None = None,
    lease_s: float | None = None,
    max_attempts: int | None = None,
    poll_s: float = DEFAULT_POLL_S,
    idle_timeout_s: float | None = None,
    max_jobs: int | None = None,
    use_session: bool = True,
    heartbeat: bool = True,
    heartbeat_s: float | None = None,
    kernel: str | None = None,
) -> dict:
    """Drain a spool until stopped; returns the final stats payload.

    Args:
        spool_dir: the spool to attach to.
        cache: where successful results land (the shared merge point).
        worker_id: identity for leases and stats; defaults to host+pid.
        lease_s / max_attempts: spool protocol overrides.
        poll_s: idle polling interval.
        idle_timeout_s: exit after this long with nothing claimable
            (``None`` = wait for the ``STOP`` sentinel indefinitely).
        max_jobs: exit after executing this many jobs (tests, draining).
            Honoured mid-batch: the unexecuted remainder is released
            back to pending.
        use_session: keep this process's warm
            :class:`~repro.runner.session.SessionContext` across jobs.
        heartbeat: renew leases while executing (disabled only by tests
            that simulate a stalled worker).
        heartbeat_s: lease renewal interval; defaults to a quarter of
            the lease (:func:`default_heartbeat_s`). Each renewal emits
            a ``lease_renewed`` event.
        kernel: node-local cycle-kernel preference. Applied only to
            claimed jobs that still say ``auto`` — a job's explicit
            kernel request always wins over the worker's default.
            Results are kernel-independent, so this never affects cache
            keys or payloads.
    """
    spool = Spool(
        spool_dir,
        **{
            key: value
            for key, value in (
                ("lease_s", lease_s), ("max_attempts", max_attempts)
            )
            if value is not None
        },
    ).ensure()
    if worker_id is None:
        worker_id = f"{os.uname().nodename}-{os.getpid()}"
    events = spool.attach_events(worker_id)
    session = get_session() if use_session else None
    stats = {
        "worker": worker_id,
        "pid": os.getpid(),
        "started_at": time.time(),
        "jobs_done": 0,
        "jobs_failed": 0,
        "batches_claimed": 0,
        "jobs_released": 0,
        "requeues_swept": 0,
    }

    def publish() -> None:
        stats["updated_at"] = time.time()
        stats["session"] = _session_stats(session)
        stats.update(_proc_resources())
        spool.write_worker_stats(worker_id, stats)

    def on_beat() -> None:
        # Every heartbeat refreshes the on-disk snapshot AND leaves an
        # event behind: liveness is observable even for a worker that is
        # SIGKILLed mid-batch and never reaches its per-batch publish.
        publish()
        events.emit(
            "worker_heartbeat",
            worker=worker_id,
            jobs_done=stats["jobs_done"],
            jobs_failed=stats["jobs_failed"],
        )

    publish()
    idle_since = time.monotonic()
    try:
        while True:
            if spool.stop_requested():
                break
            if max_jobs is not None and stats["jobs_done"] >= max_jobs:
                break
            batch = spool.claim_batch(worker_id)
            if batch is None:
                swept = spool.requeue_expired()
                stats["requeues_swept"] += swept
                if swept:
                    continue
                if (
                    idle_timeout_s is not None
                    and time.monotonic() - idle_since >= idle_timeout_s
                ):
                    break
                time.sleep(poll_s)
                continue
            idle_since = time.monotonic()
            stats["batches_claimed"] += 1
            _drain_batch(
                spool, cache, batch, session,
                heartbeat=heartbeat, heartbeat_s=heartbeat_s,
                events=events, on_beat=on_beat,
                stats=stats, max_jobs=max_jobs, kernel=kernel,
            )
            publish()
            idle_since = time.monotonic()
        publish()
    finally:
        events.close()
    return stats


def _drain_batch(
    spool: Spool,
    cache: ResultCache,
    batch: BatchClaim,
    session: SessionContext | None,
    *,
    heartbeat: bool = True,
    heartbeat_s: float | None = None,
    events=None,
    on_beat: Callable[[], None] | None = None,
    stats: dict | None = None,
    max_jobs: int | None = None,
    kernel: str | None = None,
) -> None:
    """Execute every job in one claimed batch and land the results.

    Successful results are buffered and flushed with ``cache.put_many``
    — one temp-dir + rename pass per flush instead of per-job write
    churn — and only *then* marked settled in the lease, so settlement
    never outruns durability. Flushes happen when ``_FLUSH_S`` of work
    has accumulated and at batch end; a crash in between requeues those
    jobs, whose re-execution short-circuits on the cache.

    STOP and ``max_jobs`` are checked between jobs; the unexecuted
    remainder is released back to pending with pre-claim attempt counts.

    Emits ``job_claimed``, ``job_phase`` (setup/compile/simulate/cache
    wall-clock splits) and ``job_finished`` per job when ``events`` is
    given.
    """
    if events is None:
        events = spool.events
    if stats is None:
        stats = {"jobs_done": 0, "jobs_failed": 0, "jobs_released": 0}
    interval = (
        heartbeat_s
        if heartbeat_s is not None
        else default_heartbeat_s(spool.lease_s)
    )
    flush_s = min(1.0, interval)
    pending_puts: list[tuple[Job, object]] = []
    pending_done: list[str] = []
    last_flush = time.perf_counter()

    def flush(force: bool = False) -> None:
        nonlocal last_flush
        if not force and time.perf_counter() - last_flush < flush_s:
            return
        if pending_puts:
            cache.put_many(pending_puts)
            pending_puts.clear()
        if pending_done:
            spool.flush_done(batch, pending_done)
            pending_done.clear()
        last_flush = time.perf_counter()

    def run_entries() -> None:
        for index, entry in enumerate(batch.entries):
            if entry.key in batch.done:
                continue
            if spool.stop_requested() or (
                max_jobs is not None and stats["jobs_done"] >= max_jobs
            ):
                flush(force=True)
                stats["jobs_released"] += spool.release_entries(
                    batch, batch.entries[index:]
                )
                return
            if kernel and kernel != "auto" and entry.job.kernel == "auto":
                entry.job = dataclasses.replace(entry.job, kernel=kernel)
            events.emit(
                "job_claimed",
                key=entry.key,
                worker=batch.worker,
                batch=batch.batch,
                attempts=entry.attempts,
            )
            result = _execute_entry(
                spool, cache, batch, entry, session, events, pending_puts
            )
            stats["jobs_done"] += 1
            if not result.ok:
                stats["jobs_failed"] += 1
                # Failure settlement (requeue / terminal record) already
                # landed inside _execute_entry; flush eagerly so the
                # lease reflects it before anything else can expire it.
                pending_done.append(entry.key)
                flush(force=True)
                continue
            pending_done.append(entry.key)
            flush()
        flush(force=True)
        spool.complete_batch(batch)

    if heartbeat:
        with _Heartbeat(spool, batch, interval_s=interval, on_beat=on_beat):
            run_entries()
    else:
        run_entries()


def _execute_entry(
    spool: Spool,
    cache: ResultCache,
    batch: BatchClaim,
    entry: BatchEntry,
    session: SessionContext | None,
    events,
    pending_puts: list,
):
    """Execute one job of a claimed batch; stage its result for flushing.

    A result another worker already published (duplicate execution after
    a lease expiry, or an overlapping campaign) short-circuits the run —
    the cache is the source of truth either way. Failed executions are
    requeued for a fresh attempt until ``max_attempts``, then recorded
    terminally in the spool.
    """
    job: Job = entry.job
    cache_start = time.perf_counter()
    cached = cache.get(job)
    cache_s = time.perf_counter() - cache_start
    if cached is not None:
        events.emit(
            "job_phase",
            key=entry.key,
            worker=batch.worker,
            setup_s=0.0, compile_s=0.0, simulate_s=0.0,
            cache_s=round(cache_s, 6),
        )
        events.emit(
            "job_finished",
            key=entry.key,
            worker=batch.worker,
            ok=cached.ok,
            cached=True,
            duration_s=cache_s,
            attempts=entry.attempts,
        )
        return cached
    phases: dict = {}
    result = execute_job(job, session=session, phases=phases)
    if result.ok:
        pending_puts.append((job, result))
    elif entry.attempts >= spool.max_attempts:
        spool.record_failure(entry.key, result, entry.attempts)
    else:
        # A failed execution gets a fresh attempt on any worker: the
        # failure may be environmental (OOM kill of a sibling, a flaky
        # mount). The carried attempt count makes deterministic failures
        # terminal after max_attempts instead of cycling forever.
        spool.requeue_entry(batch, entry)
    events.emit(
        "job_phase",
        key=entry.key,
        worker=batch.worker,
        setup_s=round(phases.get("setup_s", 0.0), 6),
        compile_s=round(phases.get("compile_s", 0.0), 6),
        simulate_s=round(phases.get("simulate_s", 0.0), 6),
        cache_s=round(cache_s, 6),
    )
    events.emit(
        "job_finished",
        key=entry.key,
        worker=batch.worker,
        ok=result.ok,
        cached=False,
        duration_s=result.duration_s,
        attempts=entry.attempts,
    )
    return result
