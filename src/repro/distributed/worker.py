"""Long-lived ``deft worker`` processes.

A worker is the remote half of the ROADMAP's execution model: its warm
state is exactly one :class:`~repro.runner.session.SessionContext`. It
attaches to a spool directory, drains the job stream — claiming, heart-
beating, executing through the process session so repeated topologies
amortize their builds — and hands successful results to the shared
content-addressed :class:`~repro.runner.cache.ResultCache`. Failed
executions are retried by requeueing up to the spool's ``max_attempts``;
the final failure lands in the spool's ``failed/`` directory for the
backend to collect.

Telemetry: the worker publishes its stats snapshot
(``<spool>/workers/<id>.json`` — job counts, session hit rates) after
every job *and on every heartbeat*, so even a SIGKILLed worker leaves a
near-current record behind; and it appends structured events
(``job_claimed``, ``job_phase``, ``job_finished``, ``worker_heartbeat``)
to its stream under the spool's ``manifest/events/`` area, from which
``deft status`` reconstructs fleet state (see
:mod:`repro.telemetry.manifest`).

Exit conditions: the spool's ``STOP`` sentinel, ``max_jobs`` executed,
or ``idle_timeout_s`` with nothing claimable. Between claims an idle
worker also acts as the reaper for other workers' expired leases.
"""

from __future__ import annotations

import dataclasses
import os
import threading
import time
from pathlib import Path
from typing import Callable

from ..runner.cache import ResultCache
from ..runner.execute import execute_job
from ..runner.session import SessionContext, get_session
from ..runner.spec import Job
from .spool import Claim, Spool

#: How often an idle worker polls the spool for new jobs.
DEFAULT_POLL_S = 0.1


class _Heartbeat:
    """Background thread extending one claim's lease while a job runs.

    The executor is a single long synchronous call, so the lease must be
    renewed off-thread; the interval is a fraction of the lease so a
    healthy worker can never look dead. ``on_beat`` (the worker's stats
    publisher) runs after each renewal; its failures are swallowed —
    observability must never kill the lease renewal that keeps the job
    alive.
    """

    def __init__(
        self,
        spool: Spool,
        claim: Claim,
        on_beat: Callable[[], None] | None = None,
    ):
        self._spool = spool
        self._claim = claim
        self._on_beat = on_beat
        self._interval = max(0.05, spool.lease_s / 4.0)
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        while not self._stop.wait(self._interval):
            self._spool.heartbeat(self._claim)
            if self._on_beat is not None:
                try:
                    self._on_beat()
                except Exception:
                    pass

    def __enter__(self) -> "_Heartbeat":
        self._thread.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self._stop.set()
        self._thread.join()


def _session_stats(session: SessionContext | None) -> dict[str, int]:
    """The session's (category, hit/miss) counters as flat JSON keys.

    Read from the heartbeat thread while the main thread executes jobs,
    so the dict can mutate mid-copy; retry a few times and settle for
    the last consistent snapshot rather than crash the publisher.
    """
    if session is None:
        return {}
    for _ in range(3):
        try:
            return {
                f"{category}.{kind}": count
                for (category, kind), count in sorted(session.stats.items())
            }
        except RuntimeError:
            continue
    return {}


def run_worker(
    spool_dir: str | Path,
    cache: ResultCache,
    *,
    worker_id: str | None = None,
    lease_s: float | None = None,
    max_attempts: int | None = None,
    poll_s: float = DEFAULT_POLL_S,
    idle_timeout_s: float | None = None,
    max_jobs: int | None = None,
    use_session: bool = True,
    heartbeat: bool = True,
    kernel: str | None = None,
) -> dict:
    """Drain a spool until stopped; returns the final stats payload.

    Args:
        spool_dir: the spool to attach to.
        cache: where successful results land (the shared merge point).
        worker_id: identity for leases and stats; defaults to host+pid.
        lease_s / max_attempts: spool protocol overrides.
        poll_s: idle polling interval.
        idle_timeout_s: exit after this long with nothing claimable
            (``None`` = wait for the ``STOP`` sentinel indefinitely).
        max_jobs: exit after executing this many jobs (tests, draining).
        use_session: keep this process's warm
            :class:`~repro.runner.session.SessionContext` across jobs.
        heartbeat: renew leases while executing (disabled only by tests
            that simulate a stalled worker).
        kernel: node-local cycle-kernel preference. Applied only to
            claimed jobs that still say ``auto`` — a job's explicit
            kernel request always wins over the worker's default.
            Results are kernel-independent, so this never affects cache
            keys or payloads.
    """
    spool = Spool(
        spool_dir,
        **{
            key: value
            for key, value in (
                ("lease_s", lease_s), ("max_attempts", max_attempts)
            )
            if value is not None
        },
    ).ensure()
    if worker_id is None:
        worker_id = f"{os.uname().nodename}-{os.getpid()}"
    events = spool.attach_events(worker_id)
    session = get_session() if use_session else None
    stats = {
        "worker": worker_id,
        "pid": os.getpid(),
        "started_at": time.time(),
        "jobs_done": 0,
        "jobs_failed": 0,
        "requeues_swept": 0,
    }

    def publish() -> None:
        stats["updated_at"] = time.time()
        stats["session"] = _session_stats(session)
        spool.write_worker_stats(worker_id, stats)

    def on_beat() -> None:
        # Every heartbeat refreshes the on-disk snapshot AND leaves an
        # event behind: liveness is observable even for a worker that is
        # SIGKILLed mid-job and never reaches its per-job publish.
        publish()
        events.emit(
            "worker_heartbeat",
            worker=worker_id,
            jobs_done=stats["jobs_done"],
            jobs_failed=stats["jobs_failed"],
        )

    publish()
    idle_since = time.monotonic()
    try:
        while True:
            if spool.stop_requested():
                break
            if max_jobs is not None and stats["jobs_done"] >= max_jobs:
                break
            claim = spool.claim(worker_id)
            if claim is None:
                swept = spool.requeue_expired()
                stats["requeues_swept"] += swept
                if swept:
                    continue
                if (
                    idle_timeout_s is not None
                    and time.monotonic() - idle_since >= idle_timeout_s
                ):
                    break
                time.sleep(poll_s)
                continue
            idle_since = time.monotonic()
            if kernel and kernel != "auto" and claim.job.kernel == "auto":
                claim.job = dataclasses.replace(claim.job, kernel=kernel)
            events.emit(
                "job_claimed",
                key=claim.key,
                worker=worker_id,
                attempts=claim.attempts,
            )
            result = _execute_claim(
                spool, cache, claim, session,
                heartbeat=heartbeat, events=events, on_beat=on_beat,
            )
            stats["jobs_done"] += 1
            if not result.ok:
                stats["jobs_failed"] += 1
            publish()
            idle_since = time.monotonic()
        publish()
    finally:
        events.close()
    return stats


def _execute_claim(
    spool: Spool,
    cache: ResultCache,
    claim: Claim,
    session: SessionContext | None,
    heartbeat: bool = True,
    events=None,
    on_beat: Callable[[], None] | None = None,
):
    """Execute one claimed job and land its result.

    A result another worker already published (duplicate execution after
    a lease expiry, or an overlapping campaign) short-circuits the run —
    the cache is the source of truth either way. Failed executions are
    requeued for a fresh attempt until ``max_attempts``, then recorded
    terminally in the spool.

    Emits ``job_phase`` (setup/compile/simulate/cache wall-clock splits)
    and ``job_finished`` for every claim when ``events`` is given.
    """
    if events is None:
        events = spool.events
    job: Job = claim.job
    cache_start = time.perf_counter()
    cached = cache.get(job)
    cache_s = time.perf_counter() - cache_start
    if cached is not None:
        spool.complete(claim)
        events.emit(
            "job_phase",
            key=claim.key,
            worker=claim.worker,
            setup_s=0.0, compile_s=0.0, simulate_s=0.0,
            cache_s=round(cache_s, 6),
        )
        events.emit(
            "job_finished",
            key=claim.key,
            worker=claim.worker,
            ok=cached.ok,
            cached=True,
            duration_s=cache_s,
            attempts=claim.attempts,
        )
        return cached
    phases: dict = {}
    if heartbeat:
        with _Heartbeat(spool, claim, on_beat=on_beat):
            result = execute_job(job, session=session, phases=phases)
    else:
        result = execute_job(job, session=session, phases=phases)
    if result.ok:
        put_start = time.perf_counter()
        cache.put(job, result)
        cache_s += time.perf_counter() - put_start
    elif claim.attempts >= spool.max_attempts:
        spool.record_failure(claim.key, result, claim.attempts)
    else:
        # A failed execution gets a fresh attempt on any worker: the
        # failure may be environmental (OOM kill of a sibling, a flaky
        # mount). The carried attempt count makes deterministic failures
        # terminal after max_attempts instead of cycling forever.
        spool.requeue_claim(claim)
    spool.complete(claim)
    events.emit(
        "job_phase",
        key=claim.key,
        worker=claim.worker,
        setup_s=round(phases.get("setup_s", 0.0), 6),
        compile_s=round(phases.get("compile_s", 0.0), 6),
        simulate_s=round(phases.get("simulate_s", 0.0), 6),
        cache_s=round(cache_s, 6),
    )
    events.emit(
        "job_finished",
        key=claim.key,
        worker=claim.worker,
        ok=result.ok,
        cached=False,
        duration_s=result.duration_s,
        attempts=claim.attempts,
    )
    return result
