"""``SpoolBackend``: campaign execution through the filesystem spool.

The spool-queue equivalent of :class:`~repro.runner.backends.ProcessPoolBackend`:
``run`` enqueues the batch, optionally autospawns N local ``deft worker``
subprocesses (long-lived — they survive between ``run`` calls, so
adaptive Monte Carlo rounds reuse their warm sessions), then blocks
until every job's terminal result lands — successes in the shared
content-addressed :class:`~repro.runner.cache.ResultCache`, failures in
the spool's ``failed/`` directory.

Because the cache is the result channel, the same campaign can be
served by workers on any machine that mounts the spool + cache
directories: autospawning is a convenience, not part of the protocol.
While waiting, the backend doubles as the lease reaper (crashed workers'
jobs are requeued after lease expiry) and as the supervisor for its own
autospawned workers (dead ones are respawned within a bounded budget).
"""

from __future__ import annotations

import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path
from typing import Sequence

from ..runner.backends import ExecutionBackend, ProgressFn
from ..runner.cache import ResultCache
from ..runner.result import JobResult
from ..runner.spec import Job
from ..telemetry.manifest import read_all_events, write_campaign_manifest
from .spool import DEFAULT_LEASE_S, DEFAULT_MAX_ATTEMPTS, MAX_BATCH, Spool

#: Respawned worker budget, as a multiple of the configured worker count.
_RESPAWN_FACTOR = 2

#: Auto batch sizing targets about this much work under each lease:
#: enough to amortize the per-lease filesystem round-trips over short
#: jobs, short enough that a crashed worker forfeits only ~2s of work.
TARGET_LEASE_WORK_S = 2.0

#: How many trailing ``job_finished`` durations inform auto sizing.
_SIZING_WINDOW = 256


def auto_batch_size(spool_root: str | Path) -> int:
    """Job-size-aware batch size from the spool's own execution history.

    Reads the trailing window of non-cached ``job_finished`` durations
    from the spool's merged event streams (the cross-process record the
    ``deft_job_phase_*`` histograms are built from) and sizes batches to
    ~:data:`TARGET_LEASE_WORK_S` of work per lease, clamped to
    [1, ``MAX_BATCH``]: sub-second MC jobs batch aggressively, long
    simulate jobs stay at 1 so crash requeue keeps per-job granularity.
    A spool with no history yet sizes to 1 (exactly protocol-v1
    behaviour) — pin ``--batch`` explicitly for a cold spool's first
    campaign if its job sizes are known.
    """
    durations: list[float] = []
    for record in read_all_events(spool_root):
        if record.get("event") != "job_finished" or record.get("cached"):
            continue
        duration = record.get("duration_s")
        if isinstance(duration, (int, float)) and duration >= 0:
            durations.append(float(duration))
    durations = durations[-_SIZING_WINDOW:]
    if not durations:
        return 1
    mean = sum(durations) / len(durations)
    if mean <= 0:
        return MAX_BATCH
    return max(1, min(MAX_BATCH, round(TARGET_LEASE_WORK_S / mean)))


def _worker_command(
    spool_dir: Path,
    cache: ResultCache,
    *,
    worker_id: str,
    lease_s: float,
    max_attempts: int,
    poll_s: float,
    use_session: bool,
) -> list[str]:
    """The ``deft worker`` invocation for one autospawned subprocess."""
    command = [
        sys.executable, "-m", "repro.cli", "worker", str(spool_dir),
        "--cache-dir", str(cache.root),
        "--worker-id", worker_id,
        "--lease", str(lease_s),
        "--max-attempts", str(max_attempts),
        "--poll", str(poll_s),
    ]
    if cache.compress:
        command.append("--compress-cache")
    if not use_session:
        command.append("--no-session")
    return command


class SpoolBackend(ExecutionBackend):
    """Execute campaigns through a spool directory and worker processes.

    Args:
        cache: the shared result cache — required, it is the channel
            successful results come back through.
        spool_dir: the spool directory; ``None`` creates a private
            temporary spool removed on :meth:`close`.
        workers: local ``deft worker`` subprocesses to autospawn
            (0 = rely entirely on externally started workers).
        lease_s: claim lease duration (crash-requeue latency).
        max_attempts: executions per job before a terminal failure.
        poll_s: result/requeue polling interval.
        stall_timeout_s: fail the remaining jobs if no result lands for
            this long while *nothing is in flight* — no claim held, so
            no worker anywhere is executing (``None`` waits forever).
            A held lease always counts as progress: jobs longer than the
            timeout are safe as long as their worker heartbeats.
        use_session: passed through to autospawned workers.
        batch: jobs per spool lease — an int (clamped to
            [1, ``MAX_BATCH``]) or ``"auto"`` to size from the spool's
            job-duration history (:func:`auto_batch_size`).
    """

    def __init__(
        self,
        cache: ResultCache,
        spool_dir: str | Path | None = None,
        workers: int = 2,
        lease_s: float = DEFAULT_LEASE_S,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        poll_s: float = 0.05,
        stall_timeout_s: float | None = 300.0,
        use_session: bool = True,
        batch: int | str = "auto",
    ):
        if cache is None:
            raise ValueError(
                "SpoolBackend needs a ResultCache: the content-addressed "
                "cache is where workers hand results back"
            )
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        self.cache = cache
        self._tmp: tempfile.TemporaryDirectory | None = None
        if spool_dir is None:
            self._tmp = tempfile.TemporaryDirectory(prefix="deft-spool-")
            spool_dir = self._tmp.name
        self.spool = Spool(spool_dir, lease_s=lease_s, max_attempts=max_attempts)
        if batch != "auto":
            batch = int(batch)
            if batch < 1:
                raise ValueError(f"batch must be >= 1 or 'auto', got {batch}")
            batch = min(batch, MAX_BATCH)
        self.batch = batch
        self._workers = workers
        self.poll_s = poll_s
        self.stall_timeout_s = stall_timeout_s
        self.use_session = use_session
        self._procs: list[subprocess.Popen] = []
        self._spawned = 0
        self._closed = False
        # The enqueuing side's telemetry stream: its lease-expiry sweeps
        # and campaign announcements land under the spool's manifest/
        # area alongside the workers' streams.
        self.events = self.spool.attach_events(
            f"enqueuer-{os.uname().nodename}-{os.getpid()}"
        )

    def announce_campaign(self, campaign) -> None:
        """Persist the campaign manifest so any process can track it.

        The manifest (name, shard coordinates, full job-key set) plus the
        ``campaign_started`` event are what let ``deft status`` compute
        per-shard progress with no access to this enqueuing process.
        """
        if self._closed:
            return
        self.spool.ensure()
        write_campaign_manifest(
            self.spool.root, campaign, source=self.events.source
        )
        self.events.emit(
            "campaign_started",
            campaign=campaign.name,
            total=len({job.key() for job in campaign.jobs}),
        )

    #: Workers hand successful results straight to :attr:`cache`; the
    #: runner must not re-serialize them into the same cache.
    persists_results = True

    @property
    def workers(self) -> int:
        return max(1, self._workers)

    # -- worker supervision ----------------------------------------------

    def _spawn_worker(self) -> None:
        worker_id = f"auto-{os.getpid()}-{self._spawned}"
        self._spawned += 1
        command = _worker_command(
            self.spool.root, self.cache,
            worker_id=worker_id,
            lease_s=self.spool.lease_s,
            max_attempts=self.spool.max_attempts,
            poll_s=self.poll_s,
            use_session=self.use_session,
        )
        # Workers must import `repro` even when the package is not
        # installed (src layout): prepend this process's package root.
        env = dict(os.environ)
        package_root = str(Path(__file__).resolve().parents[2])
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            package_root if not existing
            else package_root + os.pathsep + existing
        )
        log_path = self.spool.workers_dir / f"{worker_id}.log"
        log_path.parent.mkdir(parents=True, exist_ok=True)
        with open(log_path, "ab") as log:
            self._procs.append(
                subprocess.Popen(
                    command, env=env, stdout=log, stderr=subprocess.STDOUT
                )
            )

    def _supervise(self, unresolved: bool) -> int:
        """Reap dead autospawned workers; respawn while work remains.

        Returns the number of live autospawned workers. The respawn
        budget (`_RESPAWN_FACTOR` x workers beyond the initial set)
        bounds crash loops: once exhausted, remaining jobs fail through
        the spool's ``max_attempts`` requeue accounting or the stall
        timeout rather than spinning forever.
        """
        live: list[subprocess.Popen] = []
        died = 0
        for proc in self._procs:
            if proc.poll() is None:
                live.append(proc)
            else:
                died += 1
        self._procs = live
        if unresolved and self._workers:
            budget = self._workers * (1 + _RESPAWN_FACTOR)
            while len(self._procs) < self._workers and self._spawned < budget:
                self._spawn_worker()
        return len(self._procs)

    # -- execution --------------------------------------------------------

    def run(
        self, jobs: Sequence[Job], on_result: ProgressFn | None = None
    ) -> list[JobResult]:
        if not jobs:
            return []
        if self._closed:
            raise RuntimeError("SpoolBackend is closed")
        self.spool.ensure()
        self.spool.clear_stop()

        # Dedup by content address; the result list is re-aligned at the
        # end, so duplicate submissions resolve to the same result.
        unique: dict[str, Job] = {}
        for job in jobs:
            unique.setdefault(job.key(), job)
        batch_size = (
            auto_batch_size(self.spool.root)
            if self.batch == "auto"
            else self.batch
        )
        self.spool.enqueue(unique.values(), batch_size=batch_size)
        if self._workers and not self._procs:
            for _ in range(self._workers):
                self._spawn_worker()

        resolved: dict[str, JobResult] = {}
        last_progress = time.monotonic()
        while len(resolved) < len(unique):
            progressed = False
            for key, job in unique.items():
                if key in resolved:
                    continue
                result = self.cache.get(job)
                if result is not None:
                    # Freshly executed this campaign (the runner already
                    # served pre-existing hits) — report it as such.
                    result.cached = False
                else:
                    result = self.spool.failed_result(key)
                if result is None:
                    continue
                resolved[key] = result
                progressed = True
                if on_result is not None:
                    on_result(len(resolved), len(unique), job, result)
            if len(resolved) == len(unique):
                break
            if progressed:
                last_progress = time.monotonic()
            self.spool.requeue_expired()
            live = self._supervise(unresolved=True)
            # A held (unexpired) claim means some worker — local or on
            # another machine — is executing right now: never give up
            # while work is in flight, however long the job runs.
            in_flight = self.spool.claimed_count() > 0
            if in_flight:
                last_progress = time.monotonic()
            stalled = (
                self.stall_timeout_s is not None
                and not in_flight
                and time.monotonic() - last_progress > self.stall_timeout_s
            )
            abandoned = self._workers > 0 and live == 0 and not in_flight
            if stalled or abandoned:
                reason = (
                    "no live spool workers left (respawn budget exhausted)"
                    if abandoned
                    else f"no spool progress for {self.stall_timeout_s}s"
                )
                for key, job in unique.items():
                    if key not in resolved:
                        resolved[key] = JobResult(
                            job_key=key, ok=False, error=reason
                        )
                        if on_result is not None:
                            on_result(len(resolved), len(unique), job,
                                      resolved[key])
                break
            time.sleep(self.poll_s)
        return [resolved[job.key()] for job in jobs]

    # -- lifecycle --------------------------------------------------------

    def close(self, timeout_s: float = 10.0) -> None:
        """Stop autospawned workers and release a private spool."""
        if self._closed:
            return
        self._closed = True
        try:
            if self._procs:
                self.spool.request_stop()
            deadline = time.monotonic() + timeout_s
            for proc in self._procs:
                remaining = max(0.0, deadline - time.monotonic())
                try:
                    proc.wait(timeout=remaining)
                except subprocess.TimeoutExpired:
                    proc.kill()
                    proc.wait()
            self._procs = []
        finally:
            self.events.close()
            if self._tmp is not None:
                self._tmp.cleanup()
                self._tmp = None

    def __enter__(self) -> "SpoolBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass
