"""Broker-less filesystem job spool.

A :class:`Spool` is a directory any number of worker processes can pull
jobs from — local subprocesses today, machines sharing the directory
over NFS/SSHFS tomorrow. There is no broker and no daemon: every queue
transition is an atomic filesystem operation, so the only thing workers
need in common is the directory.

Layout::

    <root>/
      jobs/<key>.json     pending job specs (canonical Job form + attempts)
      claims/<key>.json   leased jobs: payload + worker id + lease deadline
      requeue/<key>.json  transient reaper staging (recovered if orphaned)
      failed/<key>.json   terminal failures handed back to the backend
      workers/<id>.json   per-worker observability stats (session hit rates)
      manifest/           campaign descriptors + JSONL event streams
                          (see :mod:`repro.telemetry.manifest`)
      STOP                shutdown sentinel for long-lived workers

Protocol:

* **enqueue** — write ``jobs/<key>.json`` atomically (tmp + rename). The
  file name is the job's content address, so re-enqueueing is idempotent
  and overlapping campaigns merge.
* **claim** — create ``claims/<key>.json`` with ``O_CREAT | O_EXCL``
  (atomic, single winner even on NFS v3+), then unlink the pending file.
  The claim file carries the job payload, the worker id and a lease
  deadline.
* **heartbeat** — atomically rewrite the claim file with a fresh
  deadline while the job executes.
* **requeue** — any participant may sweep expired claims: the winner
  atomically renames the claim into ``requeue/`` (single winner again),
  bumps the attempt count and republishes the job — or, past
  ``max_attempts``, writes a terminal failure. A reaper that dies
  mid-requeue leaves an orphan in ``requeue/`` that the next sweep
  recovers.
* **results** — *successful* results are handed off to the existing
  content-addressed :class:`~repro.runner.cache.ResultCache` (the merge
  point shards and machines already share); the spool itself only
  carries inputs, leases and terminal failures.

A worker that finishes a job after losing its lease simply writes the
same content-addressed result a second time — execution is a pure
function of the job, so duplicate execution is benign (wasted cycles,
never wrong numbers).
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path

from ..runner.result import JobResult
from ..runner.spec import Job
from ..telemetry.events import NULL_EVENTS
from ..telemetry.manifest import ensure_manifest, event_writer

#: Shutdown sentinel file name (``Spool.request_stop``).
STOP_SENTINEL = "STOP"

#: Default lease duration: a worker must heartbeat within this window or
#: its claim is considered dead and the job is requeued.
DEFAULT_LEASE_S = 30.0

#: Give up and record a terminal failure after this many executions of
#: the same job (first attempt included).
DEFAULT_MAX_ATTEMPTS = 3


@dataclass
class Claim:
    """One worker's lease on one job."""

    key: str
    job: Job
    attempts: int  #: 1-based: the attempt this claim is executing
    worker: str
    deadline: float


def _write_json(path: Path, payload: dict) -> None:
    """Atomic publish: readers never observe partial files."""
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(payload, handle)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def _read_json(path: Path) -> dict | None:
    """Read a payload, or None if it vanished or is mid-write garbage."""
    try:
        return json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return None


class Spool:
    """A filesystem job queue with leases, crash requeue and failures.

    Args:
        root: the spool directory (created on :meth:`ensure`).
        lease_s: how long a claim stays valid between heartbeats.
        max_attempts: executions per job before a terminal failure.
    """

    def __init__(
        self,
        root: str | Path,
        lease_s: float = DEFAULT_LEASE_S,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
    ):
        if lease_s <= 0:
            raise ValueError(f"lease_s must be > 0, got {lease_s}")
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        self.root = Path(root)
        self.lease_s = lease_s
        self.max_attempts = max_attempts
        self.jobs_dir = self.root / "jobs"
        self.claims_dir = self.root / "claims"
        self.requeue_dir = self.root / "requeue"
        self.failed_dir = self.root / "failed"
        self.workers_dir = self.root / "workers"
        # Telemetry sink for this spool's own protocol transitions (lease
        # expiries, requeues). Defaults to the shared no-op; the owning
        # process (worker, backend) wires a real writer via
        # :meth:`attach_events` so the emitting source is identified.
        self.events = NULL_EVENTS

    def ensure(self) -> "Spool":
        for directory in (
            self.jobs_dir, self.claims_dir, self.requeue_dir,
            self.failed_dir, self.workers_dir,
        ):
            directory.mkdir(parents=True, exist_ok=True)
        ensure_manifest(self.root)
        return self

    def attach_events(self, source: str):
        """Route this spool's protocol events to ``manifest/events/``.

        Returns the writer so the caller can emit its own events (job
        lifecycle, heartbeats) through the same stream. No-op writer
        when telemetry is disabled.
        """
        self.events = event_writer(self.root, source)
        return self.events

    # -- enqueue ----------------------------------------------------------

    def enqueue(self, jobs) -> int:
        """Publish jobs as pending; returns how many were newly enqueued.

        Idempotent by content address: a key already pending or claimed
        is left alone (another shard or an earlier round published it).
        A stale terminal failure for a re-enqueued key is cleared first —
        failures are environment artefacts and must be retried, exactly
        as the result cache never serves them.
        """
        self.ensure()
        enqueued = 0
        for job in jobs:
            key = job.key()
            if (self.jobs_dir / f"{key}.json").exists() or (
                self.claims_dir / f"{key}.json"
            ).exists():
                continue
            try:
                (self.failed_dir / f"{key}.json").unlink()
            except OSError:
                pass
            # canonical() excludes the kernel preference (it is not part
            # of the cache identity); carry it on the wire separately so
            # workers honour it.
            job_payload = job.canonical()
            if job.kernel != "auto":
                job_payload["kernel"] = job.kernel
            _write_json(
                self.jobs_dir / f"{key}.json",
                {"job": job_payload, "attempts": 0, "enqueued_at": time.time()},
            )
            enqueued += 1
        return enqueued

    # -- claim / heartbeat / complete -------------------------------------

    def claim(self, worker: str, now: float | None = None) -> Claim | None:
        """Atomically claim one pending job, oldest key first.

        ``O_CREAT | O_EXCL`` on the claim file is the mutual exclusion:
        exactly one claimer wins each key, with no locks and no broker.
        Returns ``None`` when nothing is claimable.
        """
        now = now if now is not None else time.time()
        try:
            pending = sorted(path.name for path in self.jobs_dir.glob("*.json"))
        except OSError:
            return None
        for name in pending:
            payload = _read_json(self.jobs_dir / name)
            if payload is None:
                continue
            key = name[: -len(".json")]
            deadline = now + self.lease_s
            claim_payload = dict(
                payload,
                attempts=int(payload.get("attempts", 0)) + 1,
                worker=worker,
                claimed_at=now,
                deadline=deadline,
            )
            claim_path = self.claims_dir / name
            try:
                fd = os.open(
                    claim_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644
                )
            except FileExistsError:
                continue  # lost the race for this key
            except OSError:
                continue
            try:
                with os.fdopen(fd, "w") as handle:
                    json.dump(claim_payload, handle)
            except BaseException:
                try:
                    claim_path.unlink()
                except OSError:
                    pass
                raise
            try:
                (self.jobs_dir / name).unlink()
            except OSError:
                pass  # already consumed by a racing reaper; claim stands
            return Claim(
                key=key,
                job=Job.from_canonical(claim_payload["job"]),
                attempts=claim_payload["attempts"],
                worker=worker,
                deadline=deadline,
            )
        return None

    def heartbeat(self, claim: Claim, now: float | None = None) -> None:
        """Extend a claim's lease (atomic rewrite of the claim file)."""
        now = now if now is not None else time.time()
        path = self.claims_dir / f"{claim.key}.json"
        payload = _read_json(path)
        if payload is None or payload.get("worker") != claim.worker:
            return  # lease already lost; the reaper owns this key now
        claim.deadline = now + self.lease_s
        payload["deadline"] = claim.deadline
        _write_json(path, payload)

    def complete(self, claim: Claim) -> None:
        """Release a finished claim (the result already landed elsewhere)."""
        try:
            (self.claims_dir / f"{claim.key}.json").unlink()
        except OSError:
            pass  # lease expired and was reaped mid-run: benign duplicate

    # -- crash requeue ----------------------------------------------------

    def requeue_expired(self, now: float | None = None) -> int:
        """Requeue every claim whose lease deadline has passed.

        Any participant (worker between jobs, the backend while polling)
        may run this; the rename into ``requeue/`` makes each expiry
        single-winner. Returns the number of claims acted on. Also
        recovers ``requeue/`` orphans left by a reaper that died between
        its rename and its republish.
        """
        now = now if now is not None else time.time()
        acted = 0
        for path in self.claims_dir.glob("*.json"):
            payload = _read_json(path)
            if payload is None:
                continue
            deadline = payload.get("deadline")
            if not isinstance(deadline, (int, float)) or deadline >= now:
                continue
            staged = self.requeue_dir / path.name
            try:
                os.replace(path, staged)  # single winner per expiry
            except OSError:
                continue
            self.events.emit(
                "lease_expired",
                key=path.name[: -len(".json")],
                worker=payload.get("worker"),
                attempts=int(payload.get("attempts", 1)),
                deadline=deadline,
            )
            self._republish(staged, payload)
            acted += 1
        # Orphan recovery: a reaper died after the rename above. The
        # staged file is untouched by anyone else, so age (mtime) older
        # than a lease means its owner is gone.
        for staged in self.requeue_dir.glob("*.json"):
            try:
                if now - staged.stat().st_mtime < self.lease_s:
                    continue
            except OSError:
                continue
            payload = _read_json(staged)
            if payload is None:
                continue
            self._republish(staged, payload)
            acted += 1
        return acted

    def _republish(self, staged: Path, payload: dict) -> None:
        """Second half of a requeue: back to pending, or terminally failed."""
        attempts = int(payload.get("attempts", 1))
        key = staged.name[: -len(".json")]
        self.events.emit(
            "requeue",
            key=key,
            attempts=attempts,
            terminal=attempts >= self.max_attempts,
        )
        if attempts >= self.max_attempts:
            result = JobResult(
                job_key=key,
                ok=False,
                error=(
                    f"gave up after {attempts} attempt(s): lease expired "
                    f"(last worker {payload.get('worker', '?')!r} died or stalled)"
                ),
            )
            self.record_failure(key, result, attempts)
        else:
            _write_json(
                self.jobs_dir / staged.name,
                {
                    "job": payload["job"],
                    "attempts": attempts,
                    "enqueued_at": time.time(),
                },
            )
        try:
            staged.unlink()
        except OSError:
            pass

    def requeue_claim(self, claim: Claim) -> None:
        """Republish a claimed job for a fresh attempt (failed execution).

        The attempt count carries over, so deterministic failures burn
        through ``max_attempts`` instead of cycling forever. The caller
        still holds the claim while this runs (publish-then-release), so
        no other worker can claim the key before the republish lands.
        """
        self.events.emit(
            "requeue", key=claim.key, attempts=claim.attempts, terminal=False
        )
        _write_json(
            self.jobs_dir / f"{claim.key}.json",
            {
                "job": claim.job.canonical(),
                "attempts": claim.attempts,
                "enqueued_at": time.time(),
            },
        )

    # -- terminal failures ------------------------------------------------

    def record_failure(self, key: str, result: JobResult, attempts: int) -> None:
        """Persist a terminal failed result for the backend to collect."""
        _write_json(
            self.failed_dir / f"{key}.json",
            {"result": result.to_dict(), "attempts": attempts},
        )

    def failed_result(self, key: str) -> JobResult | None:
        payload = _read_json(self.failed_dir / f"{key}.json")
        if payload is None:
            return None
        try:
            return JobResult.from_dict(payload["result"])
        except (KeyError, TypeError, ValueError):
            return None

    # -- shutdown sentinel ------------------------------------------------

    @property
    def _stop_path(self) -> Path:
        return self.root / STOP_SENTINEL

    def request_stop(self) -> None:
        self.ensure()
        self._stop_path.touch()

    def clear_stop(self) -> None:
        try:
            self._stop_path.unlink()
        except OSError:
            pass

    def stop_requested(self) -> bool:
        return self._stop_path.exists()

    # -- observability ----------------------------------------------------

    def write_worker_stats(self, worker: str, payload: dict) -> None:
        """Publish one worker's stats snapshot (``workers/<id>.json``)."""
        _write_json(self.workers_dir / f"{worker}.json", payload)

    def worker_stats(self) -> dict[str, dict]:
        """All published worker stats, by worker id."""
        stats: dict[str, dict] = {}
        for path in self.workers_dir.glob("*.json"):
            payload = _read_json(path)
            if payload is not None:
                stats[path.name[: -len(".json")]] = payload
        return stats

    def pending_count(self) -> int:
        return sum(1 for _ in self.jobs_dir.glob("*.json"))

    def claimed_count(self) -> int:
        return sum(1 for _ in self.claims_dir.glob("*.json"))

    def claim_snapshot(self, now: float | None = None) -> list[dict]:
        """Read-only view of every live claim, for ``deft status``.

        Each entry carries the key, the claiming worker, the lease
        deadline and whether the lease is already stale relative to
        ``now`` (a stale lease means its worker died or stalled and the
        job awaits the next reaper sweep).
        """
        now = now if now is not None else time.time()
        snapshot: list[dict] = []
        if not self.claims_dir.is_dir():
            return snapshot
        for path in sorted(self.claims_dir.glob("*.json")):
            payload = _read_json(path)
            if payload is None:
                continue
            deadline = payload.get("deadline")
            valid = isinstance(deadline, (int, float))
            snapshot.append(
                {
                    "key": path.name[: -len(".json")],
                    "worker": payload.get("worker"),
                    "attempts": int(payload.get("attempts", 1)),
                    "deadline": deadline if valid else None,
                    "stale": (deadline < now) if valid else True,
                }
            )
        return snapshot
