"""Broker-less filesystem job spool (protocol v2: batched leases).

A :class:`Spool` is a directory any number of worker processes can pull
jobs from — local subprocesses today, machines sharing the directory
over NFS/SSHFS tomorrow. There is no broker and no daemon: every queue
transition is an atomic filesystem operation, so the only thing workers
need in common is the directory.

Layout::

    <root>/
      spool.json          protocol version manifest (v2; absent = v1)
      jobs/<key>.json     pending single-job specs (v1 wire format)
      jobs/batch-*.json   pending multi-job batches (v2, one file per batch)
      claims/<name>.json  leased jobs: payload + worker id + lease deadline
                          (one lease file covers every job in a batch)
      requeue/<name>.json transient reaper staging (recovered if orphaned)
      failed/<key>.json   terminal failures handed back to the backend
      workers/<id>.json   per-worker observability stats (session hit rates)
      manifest/           campaign descriptors + JSONL event streams
                          (see :mod:`repro.telemetry.manifest`)
      STOP                shutdown sentinel for long-lived workers

Protocol:

* **enqueue** — write pending files atomically (tmp + rename).
  ``batch_size=1`` (the default) writes one v1-format file per job,
  named by the job's content address, so re-enqueueing is idempotent
  and overlapping campaigns merge. ``batch_size>1`` groups jobs into
  ``batch-<digest>-n<K>.json`` files — the per-job filesystem round
  trips of enqueue/claim/lease are amortized over the whole batch.
* **claim** — :meth:`claim_batch` takes one pending file under one
  lease. A batch file is claimed by a single atomic rename into
  ``claims/`` (exactly one winner per batch, even on NFS); a v1
  single-job file is claimed with the original ``O_CREAT | O_EXCL``
  claim-file dance and becomes a batch of one. Either way the lease
  file carries every job payload, the worker id, the lease deadline
  and the set of jobs already settled.
* **heartbeat** — atomically rewrite the one lease file with a fresh
  deadline while the batch executes: one heartbeat stream covers every
  job in the batch.
* **settle** — as jobs inside a batch finish, the worker marks them
  settled in the lease (:meth:`flush_done`), *after* their results are
  durable in the cache. A crash therefore requeues only jobs that are
  not yet settled; anything re-executed because its settle flush had
  not landed yet is served straight from the cache on reclaim.
* **requeue** — any participant may sweep expired leases: the winner
  atomically renames the lease into ``requeue/`` (single winner again)
  and republishes the *unsettled remainder* with carried attempt
  counts — or, past ``max_attempts``, writes terminal failures. A
  reaper that dies mid-requeue leaves an orphan in ``requeue/`` that
  the next sweep recovers.
* **results** — *successful* results are handed off to the existing
  content-addressed :class:`~repro.runner.cache.ResultCache` (the merge
  point shards and machines already share); the spool itself only
  carries inputs, leases and terminal failures.

Compatibility: a v1 spool directory (no ``spool.json``, per-key pending
files only) is fully drainable by v2 workers — every v1 file is claimed
as a batch of one. v2 spools that only ever enqueue with
``batch_size=1`` are byte-compatible with v1 workers.

A worker that finishes a job after losing its lease simply writes the
same content-addressed result a second time — execution is a pure
function of the job, so duplicate execution is benign (wasted cycles,
never wrong numbers).

Telemetry: the spool counts its own filesystem operations into the
``deft_spool_fs_ops`` counter (scans, reads, writes, renames, unlinks)
and observes every claim's job count into the ``deft_spool_batch_size``
histogram, so the per-job round-trip reduction from batching is
directly measurable (``benchmarks/bench_distributed.py`` records it).
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import tempfile
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

from ..runner.result import JobResult
from ..runner.spec import Job
from ..telemetry.events import NULL_EVENTS
from ..telemetry.manifest import ensure_manifest, event_writer
from ..telemetry.metrics import get_registry

#: Shutdown sentinel file name (``Spool.request_stop``).
STOP_SENTINEL = "STOP"

#: Default lease duration: a worker must heartbeat within this window or
#: its claim is considered dead and the job is requeued.
DEFAULT_LEASE_S = 30.0

#: Give up and record a terminal failure after this many executions of
#: the same job (first attempt included).
DEFAULT_MAX_ATTEMPTS = 3

#: The spool wire-protocol version this code writes (``spool.json``).
#: Version 1 (implicit: no ``spool.json``) is still fully readable.
PROTOCOL_VERSION = 2

#: Hard clamp on jobs per batch file / lease (also the auto-sizing cap).
MAX_BATCH = 32

#: Batch pending/lease files: ``batch-<digest>-n<jobs>.json``. The job
#: count lives in the name so queue depths never require file reads.
_BATCH_NAME_RE = re.compile(r"^batch-[0-9a-f]+-n(\d+)\.json$")

#: ``deft_spool_batch_size`` buckets: powers of two up to the clamp.
BATCH_SIZE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, float(MAX_BATCH))


def _fs_ops(n: int = 1) -> None:
    """Count spool filesystem round-trips (no-op when telemetry is off)."""
    get_registry().counter(
        "deft_spool_fs_ops",
        "Filesystem operations performed by the spool protocol",
    ).inc(n)


@dataclass
class BatchEntry:
    """One job inside a claimed batch."""

    key: str
    job: Job
    attempts: int        #: 1-based: the attempt this claim is executing
    payload: dict        #: wire-format job dict (carries kernel preference)


@dataclass
class BatchClaim:
    """One worker's lease over a batch of jobs (possibly just one).

    ``done`` holds the keys already settled — result durable in the
    cache, or requeued/terminally failed. The lease file mirrors it on
    every :meth:`Spool.flush_done` / heartbeat rewrite, so a reaper
    requeues only the unsettled remainder. ``lock`` serialises lease
    rewrites between the executing thread and the heartbeat thread.
    """

    batch: str           #: batch id (lease file stem)
    name: str            #: lease file name inside ``claims/``
    worker: str
    deadline: float
    entries: list[BatchEntry]
    v1: bool             #: lease file uses the v1 single-job wire format
    done: set[str] = field(default_factory=set)
    lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def remaining(self) -> list[BatchEntry]:
        return [e for e in self.entries if e.key not in self.done]


@dataclass
class Claim:
    """Single-job compatibility view over a :class:`BatchClaim`.

    The v1 API (:meth:`Spool.claim` / ``heartbeat`` / ``complete`` /
    ``requeue_claim``) hands these out; they delegate to the underlying
    batch lease, so code written against protocol v1 keeps working.
    """

    key: str
    job: Job
    attempts: int  #: 1-based: the attempt this claim is executing
    worker: str
    deadline: float
    batch: BatchClaim | None = None


def _write_json(path: Path, payload: dict) -> None:
    """Atomic publish: readers never observe partial files."""
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(payload, handle)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    _fs_ops(2)  # write + publish rename


def _read_json(path: Path) -> dict | None:
    """Read a payload, or None if it vanished or is mid-write garbage."""
    _fs_ops()
    try:
        return json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return None


def _job_count_of(name: str) -> int:
    """Jobs carried by one pending/lease file, from the name alone."""
    match = _BATCH_NAME_RE.match(name)
    return int(match.group(1)) if match else 1


def _entries_of(payload: dict) -> list[dict]:
    """Normalize either wire format into a list of per-job dicts.

    v2 batch payloads carry ``jobs: [{key, job, attempts}, ...]``; v1
    single payloads carry top-level ``job`` + ``attempts`` (the key is
    the file name, supplied by the caller when needed).
    """
    if "jobs" in payload:
        return [dict(entry) for entry in payload.get("jobs", ())]
    return [
        {
            "key": payload.get("key"),
            "job": payload["job"],
            "attempts": int(payload.get("attempts", 0)),
        }
    ]


class Spool:
    """A filesystem job queue with batched leases, crash requeue and
    terminal failures.

    Args:
        root: the spool directory (created on :meth:`ensure`).
        lease_s: how long a claim stays valid between heartbeats.
        max_attempts: executions per job before a terminal failure.
    """

    def __init__(
        self,
        root: str | Path,
        lease_s: float = DEFAULT_LEASE_S,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
    ):
        if lease_s <= 0:
            raise ValueError(f"lease_s must be > 0, got {lease_s}")
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        self.root = Path(root)
        self.lease_s = lease_s
        self.max_attempts = max_attempts
        self.jobs_dir = self.root / "jobs"
        self.claims_dir = self.root / "claims"
        self.requeue_dir = self.root / "requeue"
        self.failed_dir = self.root / "failed"
        self.workers_dir = self.root / "workers"
        self._claim_counter = 0
        # Telemetry sink for this spool's own protocol transitions (lease
        # expiries, renewals, requeues). Defaults to the shared no-op; the
        # owning process (worker, backend) wires a real writer via
        # :meth:`attach_events` so the emitting source is identified.
        self.events = NULL_EVENTS

    def ensure(self) -> "Spool":
        for directory in (
            self.jobs_dir, self.claims_dir, self.requeue_dir,
            self.failed_dir, self.workers_dir,
        ):
            directory.mkdir(parents=True, exist_ok=True)
        version_path = self.root / "spool.json"
        if not version_path.exists():
            _write_json(version_path, {"protocol": PROTOCOL_VERSION})
        else:
            self._check_protocol()
        ensure_manifest(self.root)
        return self

    def _check_protocol(self) -> None:
        """Refuse spools written by a *newer* protocol than this code.

        A missing ``spool.json`` means protocol v1 — fully readable, v1
        pending files are claimed as batches of one.
        """
        version = self.protocol_version()
        if version > PROTOCOL_VERSION:
            raise ValueError(
                f"spool {self.root} uses protocol v{version}; this worker "
                f"speaks up to v{PROTOCOL_VERSION} — upgrade the worker"
            )

    def protocol_version(self) -> int:
        payload = _read_json(self.root / "spool.json")
        if payload is None:
            return 1
        return int(payload.get("protocol", 1))

    def attach_events(self, source: str):
        """Route this spool's protocol events to ``manifest/events/``.

        Returns the writer so the caller can emit its own events (job
        lifecycle, heartbeats) through the same stream. No-op writer
        when telemetry is disabled.
        """
        self.events = event_writer(self.root, source)
        return self.events

    # -- enqueue ----------------------------------------------------------

    def enqueue(self, jobs, batch_size: int = 1) -> int:
        """Publish jobs as pending; returns how many were newly enqueued.

        Idempotent by content address: a key already pending or claimed
        is left alone (another shard or an earlier round published it).
        A stale terminal failure for a re-enqueued key is cleared first —
        failures are environment artefacts and must be retried, exactly
        as the result cache never serves them.

        ``batch_size`` groups jobs into multi-job pending files claimed
        under a single lease: short jobs batch aggressively to amortize
        the per-job claim/lease/heartbeat round-trips, long jobs stay at
        1 so crash requeue keeps per-job granularity. Clamped to
        [1, ``MAX_BATCH``].
        """
        self.ensure()
        batch_size = max(1, min(int(batch_size), MAX_BATCH))
        if batch_size == 1:
            return self._enqueue_singles(jobs)
        return self._enqueue_batched(jobs, batch_size)

    @staticmethod
    def _wire_job(job: Job) -> dict:
        # canonical() excludes the kernel preference (it is not part of
        # the cache identity); carry it on the wire separately so
        # workers honour it.
        payload = job.canonical()
        if job.kernel != "auto":
            payload["kernel"] = job.kernel
        return payload

    def _enqueue_singles(self, jobs) -> int:
        """v1 wire format: one pending file per job, named by its key.

        Per-key existence probes are the cheap dedup here — but they
        cannot see keys hidden inside multi-job batch files, so when any
        batch file is present the batched path (which reads them) takes
        over with group size 1.
        """
        _fs_ops(2)  # batch-file presence probes
        if any(self.jobs_dir.glob("batch-*.json")) or any(
            self.claims_dir.glob("batch-*.json")
        ):
            return self._enqueue_batched(jobs, 1)
        enqueued = 0
        for job in jobs:
            key = job.key()
            _fs_ops(2)  # pending + claimed existence probes
            if (self.jobs_dir / f"{key}.json").exists() or (
                self.claims_dir / f"{key}.json"
            ).exists():
                continue
            self._clear_failure(key)
            self._write_single(job)
            enqueued += 1
        return enqueued

    def _write_single(self, job: Job) -> None:
        _write_json(
            self.jobs_dir / f"{job.key()}.json",
            {
                "job": self._wire_job(job),
                "attempts": 0,
                "enqueued_at": time.time(),
            },
        )

    def _in_flight_keys(self) -> set[str]:
        """Every key currently pending or claimed (both wire formats).

        One directory scan each plus one read per *file* — amortized
        over the batch this is far cheaper than the per-job existence
        probes of the single-file path.
        """
        keys: set[str] = set()
        for directory in (self.jobs_dir, self.claims_dir):
            _fs_ops()  # directory scan
            try:
                names = [p for p in directory.glob("*.json")]
            except OSError:
                continue
            for path in names:
                if _BATCH_NAME_RE.match(path.name):
                    payload = _read_json(path)
                    if payload is None:
                        continue
                    for entry in _entries_of(payload):
                        if entry.get("key"):
                            keys.add(entry["key"])
                else:
                    keys.add(path.name[: -len(".json")])
        return keys

    def _enqueue_batched(self, jobs, batch_size: int) -> int:
        """v2 wire format: group fresh jobs into multi-job batch files."""
        in_flight = self._in_flight_keys()
        _fs_ops()  # one failed/ scan replaces per-job unlink attempts
        try:
            failed_keys = {
                path.name[: -len(".json")]
                for path in self.failed_dir.glob("*.json")
            }
        except OSError:
            failed_keys = set()
        fresh: list[Job] = []
        seen: set[str] = set(in_flight)
        for job in jobs:
            key = job.key()
            if key in seen:
                continue
            seen.add(key)
            if key in failed_keys:
                self._clear_failure(key)
            fresh.append(job)
        enqueued = 0
        for start in range(0, len(fresh), batch_size):
            group = fresh[start:start + batch_size]
            if len(group) == 1:
                # A remainder of one keeps the v1 single-file format —
                # drainable by v1 workers, and no batch machinery for
                # a lease that covers a single job anyway. (Dedup
                # already happened against the gathered in-flight keys.)
                self._write_single(group[0])
                enqueued += 1
                continue
            entries = [
                {
                    "key": job.key(),
                    "job": self._wire_job(job),
                    "attempts": 0,
                }
                for job in group
            ]
            self._write_batch(entries)
            enqueued += len(group)
        return enqueued

    def _write_batch(self, entries: list[dict]) -> str:
        """Publish one pending batch file; returns its name."""
        digest = hashlib.sha256()
        for entry in entries:
            digest.update(str(entry["key"]).encode("utf-8"))
        batch_id = f"batch-{digest.hexdigest()[:12]}-n{len(entries)}"
        _write_json(
            self.jobs_dir / f"{batch_id}.json",
            {
                "batch": batch_id,
                "jobs": entries,
                "enqueued_at": time.time(),
            },
        )
        return batch_id

    def _clear_failure(self, key: str) -> None:
        _fs_ops()
        try:
            (self.failed_dir / f"{key}.json").unlink()
        except OSError:
            pass

    # -- claim / heartbeat / settle / complete ----------------------------

    def claim_batch(
        self, worker: str, now: float | None = None
    ) -> BatchClaim | None:
        """Atomically claim one pending file — all its jobs, one lease.

        A batch file is claimed by a single atomic rename into
        ``claims/`` (exactly one winner); a v1 single-job file keeps the
        original ``O_CREAT | O_EXCL`` mutual exclusion and comes back as
        a batch of one. Returns ``None`` when nothing is claimable.
        Every claimed job's attempt count is bumped in the lease.
        """
        now = now if now is not None else time.time()
        _fs_ops()  # pending directory scan
        try:
            pending = sorted(path.name for path in self.jobs_dir.glob("*.json"))
        except OSError:
            return None
        for name in pending:
            if _BATCH_NAME_RE.match(name):
                claimed = self._claim_batch_file(worker, name, now)
            else:
                claimed = self._claim_single_file(worker, name, now)
            if claimed is not None:
                get_registry().histogram(
                    "deft_spool_batch_size",
                    "Jobs claimed per spool lease",
                    buckets=BATCH_SIZE_BUCKETS,
                ).observe(len(claimed))
                return claimed
        return None

    def _claim_batch_file(
        self, worker: str, name: str, now: float
    ) -> BatchClaim | None:
        """Claim a v2 batch file: one rename is the mutual exclusion."""
        staged = self.claims_dir / name
        _fs_ops()
        try:
            os.rename(self.jobs_dir / name, staged)  # single winner
        except OSError:
            return None  # lost the race (or the file vanished)
        payload = _read_json(staged)
        if payload is None:
            # Unreadable mid-claim (torn write at enqueue): drop the
            # file rather than leaking a dead lease.
            _fs_ops()
            try:
                staged.unlink()
            except OSError:
                pass
            return None
        deadline = now + self.lease_s
        entries: list[BatchEntry] = []
        wire_entries: list[dict] = []
        for raw in _entries_of(payload):
            attempts = int(raw.get("attempts", 0)) + 1
            try:
                job = Job.from_canonical(raw["job"])
            except Exception:
                continue  # skip a single corrupt entry, claim the rest
            key = raw.get("key") or job.key()
            entries.append(BatchEntry(key, job, attempts, dict(raw)))
            wire_entries.append(
                {"key": key, "job": raw["job"], "attempts": attempts}
            )
        if not entries:
            _fs_ops()
            try:
                staged.unlink()
            except OSError:
                pass
            return None
        claim = BatchClaim(
            batch=name[: -len(".json")],
            name=name,
            worker=worker,
            deadline=deadline,
            entries=entries,
            v1=False,
        )
        _write_json(
            staged,
            {
                "batch": claim.batch,
                "jobs": wire_entries,
                "worker": worker,
                "claimed_at": now,
                "deadline": deadline,
                "done": [],
            },
        )
        return claim

    def _claim_single_file(
        self, worker: str, name: str, now: float
    ) -> BatchClaim | None:
        """Claim a v1 per-key file with the original O_EXCL dance."""
        payload = _read_json(self.jobs_dir / name)
        if payload is None:
            return None
        key = name[: -len(".json")]
        deadline = now + self.lease_s
        attempts = int(payload.get("attempts", 0)) + 1
        claim_payload = dict(
            payload,
            attempts=attempts,
            worker=worker,
            claimed_at=now,
            deadline=deadline,
        )
        claim_path = self.claims_dir / name
        _fs_ops()
        try:
            fd = os.open(claim_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
        except OSError:
            return None  # lost the race for this key
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(claim_payload, handle)
        except BaseException:
            try:
                claim_path.unlink()
            except OSError:
                pass
            raise
        _fs_ops()
        try:
            (self.jobs_dir / name).unlink()
        except OSError:
            pass  # already consumed by a racing reaper; claim stands
        try:
            job = Job.from_canonical(claim_payload["job"])
        except Exception:
            _fs_ops()
            try:
                claim_path.unlink()
            except OSError:
                pass
            return None
        entry = BatchEntry(key, job, attempts, dict(payload, key=key))
        return BatchClaim(
            batch=key,
            name=name,
            worker=worker,
            deadline=deadline,
            entries=[entry],
            v1=True,
        )

    def claim(self, worker: str, now: float | None = None) -> Claim | None:
        """v1 compatibility API: claim one job.

        Claims one pending file and returns its first job as a
        :class:`Claim` bound to the underlying batch lease. On spools
        enqueued with ``batch_size=1`` (the default) this is exactly the
        protocol-v1 behaviour.
        """
        batch = self.claim_batch(worker, now=now)
        if batch is None:
            return None
        entry = batch.remaining[0]
        return Claim(
            key=entry.key,
            job=entry.job,
            attempts=entry.attempts,
            worker=worker,
            deadline=batch.deadline,
            batch=batch,
        )

    def _rewrite_lease(
        self, claim: BatchClaim, now: float, renew: bool = True
    ) -> bool:
        """Atomically republish a batch's lease file (deadline + done).

        Returns False when the lease is already lost (a reaper renamed
        it away) — the caller no longer owns these jobs. Serialised per
        batch so the heartbeat thread and the executor never interleave.
        """
        with claim.lock:
            path = self.claims_dir / claim.name
            payload = _read_json(path)
            if payload is None or payload.get("worker") != claim.worker:
                return False  # lease already lost; the reaper owns it now
            if renew:
                claim.deadline = now + self.lease_s
            payload["deadline"] = claim.deadline
            if not claim.v1:
                payload["done"] = sorted(claim.done)
                # Mirror per-job settlement into the wire entries so a
                # reaper carries exactly the surviving attempt counts.
                payload["jobs"] = [
                    {"key": e.key, "job": e.payload["job"], "attempts": e.attempts}
                    for e in claim.entries
                ]
            _write_json(path, payload)
            return True

    def heartbeat_batch(
        self, claim: BatchClaim, now: float | None = None
    ) -> bool:
        """Extend a batch lease; one rewrite covers every job in it.

        Emits a ``lease_renewed`` event so expired-lease postmortems can
        see exactly when a worker last proved liveness for which keys.
        """
        now = now if now is not None else time.time()
        if not self._rewrite_lease(claim, now):
            return False
        self.events.emit(
            "lease_renewed",
            batch=claim.batch,
            worker=claim.worker,
            deadline=claim.deadline,
            jobs=len(claim.entries),
            done=len(claim.done),
        )
        return True

    def flush_done(self, claim: BatchClaim, keys) -> None:
        """Mark jobs settled in the lease (results already durable).

        Call only *after* the results have landed in the cache: settled
        jobs are excluded from crash requeue, so settlement must never
        outrun durability. Settling the final job completes the batch.
        """
        with claim.lock:  # the heartbeat thread iterates `done`
            claim.done.update(keys)
            settled = len(claim.done) >= len(claim.entries)
        if settled:
            self.complete_batch(claim)
            return
        self._rewrite_lease(claim, time.time(), renew=True)

    def complete_batch(self, claim: BatchClaim) -> None:
        """Release a finished batch (results already landed elsewhere)."""
        _fs_ops()
        try:
            (self.claims_dir / claim.name).unlink()
        except OSError:
            pass  # lease expired and was reaped mid-run: benign duplicate

    def release_entries(self, claim: BatchClaim, entries) -> int:
        """Hand unexecuted jobs back to pending (STOP / max-jobs exit).

        The jobs were never run, so their *pre-claim* attempt counts are
        restored — releasing is not a failed attempt. Returns how many
        were republished. The caller still holds the lease, so no other
        worker can double-claim the keys before the republish lands.
        """
        released = [
            {
                "key": e.key,
                "job": e.payload["job"],
                "attempts": e.attempts - 1,
            }
            for e in entries
            if e.key not in claim.done
        ]
        if not released:
            return 0
        self._republish_entries(released, bump=False)
        with claim.lock:
            claim.done.update(e["key"] for e in released)
            settled = len(claim.done) >= len(claim.entries)
        if settled:
            self.complete_batch(claim)
        else:
            self._rewrite_lease(claim, time.time(), renew=True)
        return len(released)

    def requeue_entry(self, claim: BatchClaim, entry: BatchEntry) -> None:
        """Republish one failed batch job for a fresh attempt elsewhere.

        The attempt count carries over, so deterministic failures burn
        through ``max_attempts`` instead of cycling forever. Does *not*
        settle the entry in the lease — the worker flushes that
        immediately after, keeping the publish-then-settle ordering in
        one place.
        """
        self.events.emit(
            "requeue", key=entry.key, attempts=entry.attempts, terminal=False
        )
        self._republish_entries(
            [
                {
                    "key": entry.key,
                    "job": entry.payload["job"],
                    "attempts": entry.attempts,
                }
            ],
            bump=False,
        )

    # v1 single-claim compatibility wrappers ------------------------------

    def heartbeat(self, claim: Claim, now: float | None = None) -> None:
        """Extend a claim's lease (v1 API; delegates to the batch)."""
        if claim.batch is None:
            return
        if self.heartbeat_batch(claim.batch, now=now):
            claim.deadline = claim.batch.deadline

    def complete(self, claim: Claim) -> None:
        """Release a finished claim (v1 API; settles it in the batch)."""
        if claim.batch is None:
            return
        self.flush_done(claim.batch, [claim.key])

    def requeue_claim(self, claim: Claim) -> None:
        """Republish a claimed job for a fresh attempt (failed execution).

        The attempt count carries over, so deterministic failures burn
        through ``max_attempts`` instead of cycling forever. The caller
        still holds the claim while this runs (publish-then-release), so
        no other worker can claim the key before the republish lands.
        """
        self.events.emit(
            "requeue", key=claim.key, attempts=claim.attempts, terminal=False
        )
        entry = {
            "key": claim.key,
            "job": self._wire_job(claim.job),
            "attempts": claim.attempts,
        }
        self._republish_entries([entry], bump=False)
        if claim.batch is not None:
            with claim.batch.lock:
                claim.batch.done.add(claim.key)
                settled = len(claim.batch.done) >= len(claim.batch.entries)
            if settled:
                self.complete_batch(claim.batch)

    # -- crash requeue ----------------------------------------------------

    def requeue_expired(self, now: float | None = None) -> int:
        """Requeue every lease whose deadline has passed.

        Any participant (worker between batches, the backend while
        polling) may run this; the rename into ``requeue/`` makes each
        expiry single-winner. Only the *unsettled remainder* of a batch
        is republished — settled jobs' results are already durable.
        Returns the number of leases acted on. Also recovers
        ``requeue/`` orphans left by a reaper that died between its
        rename and its republish.
        """
        now = now if now is not None else time.time()
        acted = 0
        _fs_ops()
        for path in self.claims_dir.glob("*.json"):
            payload = _read_json(path)
            if payload is None:
                continue
            deadline = payload.get("deadline")
            if not isinstance(deadline, (int, float)) or deadline >= now:
                continue
            staged = self.requeue_dir / path.name
            _fs_ops()
            try:
                os.replace(path, staged)  # single winner per expiry
            except OSError:
                continue
            remainder = self._remainder_of(path.name, payload)
            self.events.emit(
                "lease_expired",
                key=path.name[: -len(".json")],
                worker=payload.get("worker"),
                jobs=[entry["key"] for entry in remainder],
                attempts=max(
                    (int(e.get("attempts", 1)) for e in remainder), default=1
                ),
                deadline=deadline,
            )
            self._republish_staged(staged, remainder)
            acted += 1
        # Orphan recovery: a reaper died after the rename above. The
        # staged file is untouched by anyone else, so age (mtime) older
        # than a lease means its owner is gone.
        _fs_ops()
        for staged in self.requeue_dir.glob("*.json"):
            try:
                if now - staged.stat().st_mtime < self.lease_s:
                    continue
            except OSError:
                continue
            payload = _read_json(staged)
            if payload is None:
                continue
            self._republish_staged(
                staged, self._remainder_of(staged.name, payload)
            )
            acted += 1
        return acted

    @staticmethod
    def _remainder_of(name: str, payload: dict) -> list[dict]:
        """The unsettled wire entries of one expired lease payload."""
        done = set(payload.get("done", ()))
        entries = _entries_of(payload)
        for entry in entries:
            if not entry.get("key"):
                entry["key"] = name[: -len(".json")]
        return [e for e in entries if e["key"] not in done]

    def _republish_staged(self, staged: Path, remainder: list[dict]) -> None:
        """Second half of a requeue: back to pending, or terminally failed."""
        survivors: list[dict] = []
        for entry in remainder:
            attempts = int(entry.get("attempts", 1))
            key = entry["key"]
            self.events.emit(
                "requeue",
                key=key,
                attempts=attempts,
                terminal=attempts >= self.max_attempts,
            )
            if attempts >= self.max_attempts:
                result = JobResult(
                    job_key=key,
                    ok=False,
                    error=(
                        f"gave up after {attempts} attempt(s): lease expired "
                        f"(last worker died or stalled)"
                    ),
                )
                self.record_failure(key, result, attempts)
            else:
                survivors.append(entry)
        if survivors:
            self._republish_entries(survivors, bump=False)
        _fs_ops()
        try:
            staged.unlink()
        except OSError:
            pass

    def _republish_entries(self, entries: list[dict], bump: bool) -> None:
        """Write wire entries back to pending with carried attempts.

        A single survivor goes back as a v1 per-key file (claimable by
        anyone); several go back together as one batch file, so a
        requeued remainder keeps its amortized claim cost.
        """
        if bump:
            entries = [
                dict(entry, attempts=int(entry.get("attempts", 0)) + 1)
                for entry in entries
            ]
        if len(entries) == 1:
            entry = entries[0]
            _write_json(
                self.jobs_dir / f"{entry['key']}.json",
                {
                    "job": entry["job"],
                    "attempts": int(entry.get("attempts", 0)),
                    "enqueued_at": time.time(),
                },
            )
            return
        self._write_batch(
            [
                {
                    "key": e["key"],
                    "job": e["job"],
                    "attempts": int(e.get("attempts", 0)),
                }
                for e in entries
            ]
        )

    # -- terminal failures ------------------------------------------------

    def record_failure(self, key: str, result: JobResult, attempts: int) -> None:
        """Persist a terminal failed result for the backend to collect."""
        _write_json(
            self.failed_dir / f"{key}.json",
            {"result": result.to_dict(), "attempts": attempts},
        )

    def failed_result(self, key: str) -> JobResult | None:
        payload = _read_json(self.failed_dir / f"{key}.json")
        if payload is None:
            return None
        try:
            return JobResult.from_dict(payload["result"])
        except (KeyError, TypeError, ValueError):
            return None

    # -- shutdown sentinel ------------------------------------------------

    @property
    def _stop_path(self) -> Path:
        return self.root / STOP_SENTINEL

    def request_stop(self) -> None:
        self.ensure()
        self._stop_path.touch()

    def clear_stop(self) -> None:
        try:
            self._stop_path.unlink()
        except OSError:
            pass

    def stop_requested(self) -> bool:
        return self._stop_path.exists()

    # -- observability ----------------------------------------------------

    def write_worker_stats(self, worker: str, payload: dict) -> None:
        """Publish one worker's stats snapshot (``workers/<id>.json``)."""
        _write_json(self.workers_dir / f"{worker}.json", payload)

    def worker_stats(self) -> dict[str, dict]:
        """All published worker stats, by worker id."""
        stats: dict[str, dict] = {}
        for path in self.workers_dir.glob("*.json"):
            payload = _read_json(path)
            if payload is not None:
                stats[path.name[: -len(".json")]] = payload
        return stats

    def pending_count(self) -> int:
        """Pending *jobs* (not files): batch names carry their size."""
        return sum(
            _job_count_of(path.name) for path in self.jobs_dir.glob("*.json")
        )

    def claimed_count(self) -> int:
        """Claimed *jobs* (not lease files), from file names alone.

        An upper bound under batching: settled jobs inside a live batch
        still count until the batch completes. Exact per-job accounting
        (used by ``deft status``) is :meth:`claim_snapshot`, which reads
        the lease payloads and excludes settled keys.
        """
        return sum(
            _job_count_of(path.name) for path in self.claims_dir.glob("*.json")
        )

    def claim_snapshot(self, now: float | None = None) -> list[dict]:
        """Read-only per-*job* view of every live lease (``deft status``).

        Batch leases expand into one entry per unsettled job, so the
        claimed/running depths always count jobs, never lease files.
        Each entry carries the key, the batch id, the claiming worker,
        the lease deadline and whether the lease is already stale
        relative to ``now`` (a stale lease means its worker died or
        stalled and the jobs await the next reaper sweep).
        """
        now = now if now is not None else time.time()
        snapshot: list[dict] = []
        if not self.claims_dir.is_dir():
            return snapshot
        for path in sorted(self.claims_dir.glob("*.json")):
            payload = _read_json(path)
            if payload is None:
                continue
            deadline = payload.get("deadline")
            valid = isinstance(deadline, (int, float))
            batch = payload.get("batch")
            for entry in self._remainder_of(path.name, payload):
                snapshot.append(
                    {
                        "key": entry["key"],
                        "batch": batch,
                        "worker": payload.get("worker"),
                        "attempts": int(entry.get("attempts", 1)),
                        "deadline": deadline if valid else None,
                        "stale": (deadline < now) if valid else True,
                    }
                )
        return snapshot
