"""Deterministic campaign sharding by job-key range.

A job's content address (:meth:`~repro.runner.spec.Job.key`, a SHA-256
hex digest) is uniformly distributed, so splitting the *key space* into
``num_shards`` contiguous ranges partitions any campaign into
near-equal, machine-assignable slices — with no coordination beyond
agreeing on ``num_shards``. Every machine computes its own slice from
the same campaign spec; the shared content-addressed
:class:`~repro.runner.cache.ResultCache` makes the merge trivial (each
machine simply runs the full campaign afterwards and is served every
other shard's points from cache).

The assignment is a pure function of the key, so it is stable across
processes, machines and Python versions, and re-sharding with a
different ``num_shards`` still covers every job exactly once.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..runner.spec import Campaign, Job

#: Hex digits of the key used for range assignment. 8 digits = 32 bits:
#: far finer than any realistic shard count, cheap to parse.
_PREFIX_DIGITS = 8
_KEY_SPACE = 1 << (4 * _PREFIX_DIGITS)


def shard_of_key(key: str, num_shards: int) -> int:
    """The 0-based shard owning a job key, by contiguous key range.

    Shard ``i`` owns keys whose leading 32 bits fall in
    ``[i * 2**32 / n, (i + 1) * 2**32 / n)``.
    """
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    prefix = int(key[:_PREFIX_DIGITS], 16)
    return (prefix * num_shards) >> (4 * _PREFIX_DIGITS)


def shard_bounds(index: int, num_shards: int) -> tuple[str, str]:
    """Shard ``index``'s key range as *inclusive* low/high 8-hex-digit
    prefixes (for operator tooling and logs)."""
    if not 0 <= index < num_shards:
        raise ValueError(f"shard index must be in [0, {num_shards}), got {index}")
    low = -(-index * _KEY_SPACE // num_shards)  # ceil division
    high = -(-(index + 1) * _KEY_SPACE // num_shards)
    width = _PREFIX_DIGITS
    return f"{low:0{width}x}", f"{min(high, _KEY_SPACE) - 1:0{width}x}"


def shard_jobs(
    jobs: Iterable[Job], num_shards: int, index: int
) -> list[Job]:
    """The slice of ``jobs`` owned by shard ``index`` (0-based)."""
    if not 0 <= index < num_shards:
        raise ValueError(f"shard index must be in [0, {num_shards}), got {index}")
    return [job for job in jobs if shard_of_key(job.key(), num_shards) == index]


def shard_campaign(campaign: Campaign, num_shards: int, index: int) -> Campaign:
    """A campaign restricted to one shard's key range.

    The shard is named after its 1-based position so progress lines and
    cache provenance read naturally on each machine.
    """
    return Campaign(
        name=f"{campaign.name}#shard-{index + 1}-of-{num_shards}",
        jobs=tuple(shard_jobs(campaign.jobs, num_shards, index)),
    )


def parse_shard(text: str) -> tuple[int, int]:
    """Parse the CLI's 1-based ``I/N`` syntax into ``(index0, num_shards)``.

    ``--shard 2/4`` means: run the second of four key-range slices.
    """
    head, sep, tail = text.partition("/")
    if not sep:
        raise ValueError(f"shard must be 'I/N' (e.g. 2/4), got {text!r}")
    try:
        position, num_shards = int(head), int(tail)
    except ValueError:
        raise ValueError(
            f"shard must be two integers 'I/N', got {text!r}"
        ) from None
    if num_shards < 1 or not 1 <= position <= num_shards:
        raise ValueError(
            f"shard position must satisfy 1 <= I <= N, got {text!r}"
        )
    return position - 1, num_shards


def coverage_check(jobs: Sequence[Job], num_shards: int) -> bool:
    """True iff the shards partition ``jobs`` exactly (tests, tooling)."""
    seen = 0
    for index in range(num_shards):
        seen += len(shard_jobs(jobs, num_shards, index))
    return seen == len(jobs)
