"""Round rendezvous for shard-composed adaptive campaigns.

Adaptive stopping needs *pooled* statistics: whether a point's interval
is narrow enough — and how the next extension round is allocated across
strata — depends on every shard's samples, not one shard's slice. The
rendezvous is the small filesystem barrier that lets N independent
shard drivers (``--shard I/N``) take those decisions identically:

1. every driver deterministically derives the FULL round job list from
   the campaign spec and executes only its own shard slice;
2. after executing, each driver atomically publishes a round marker
   (``round-00042.shard-2of3.json``) carrying the keys of its failed
   jobs — successful results are already in the shared content-addressed
   cache, published by the spool workers, so the marker only needs to
   say which keys will never appear there;
3. :meth:`RoundRendezvous.gather` blocks until all N markers of the
   round exist, then every driver assembles the identical full-round
   outcome set (own results + cache reads for foreign shards) and runs
   the identical pooled estimate → identical extension decision.

Markers are tiny JSON files under the spool rendezvous directory, named
by campaign content hash so concurrent campaigns never collide, written
with the same atomic tmp-then-rename publish the spool uses. A marker
also records the driver's shard count: a driver gathering a round and
finding a marker with a different ``of N`` fails fast instead of
deadlocking against a mis-launched fleet.
"""

from __future__ import annotations

import json
import os
import re
import tempfile
import time
from pathlib import Path

from ..errors import ConfigurationError, ReproError


class RendezvousError(ReproError):
    """Raised when a shard rendezvous cannot complete (timeout, mismatch)."""


_MARKER = re.compile(r"^round-(\d+)\.shard-(\d+)of(\d+)\.json$")


class RoundRendezvous:
    """Publish/gather barrier for one sharded adaptive campaign.

    ``campaign_id`` must be a pure function of the sampling spec (the
    driver hashes it from the canonical campaign parameters) so that all
    N drivers of one campaign meet under the same directory while
    unrelated campaigns stay isolated.
    """

    def __init__(
        self,
        root: Path | str,
        campaign_id: str,
        shard_index: int,
        shard_count: int,
    ):
        if not campaign_id:
            raise ConfigurationError("rendezvous needs a campaign id")
        if shard_count < 1:
            raise ConfigurationError(f"shard count must be >= 1, got {shard_count}")
        if not 0 <= shard_index < shard_count:
            raise ConfigurationError(
                f"shard index {shard_index} outside [0, {shard_count})"
            )
        self.root = Path(root) / "mc-rounds" / campaign_id
        self.campaign_id = campaign_id
        self.shard_index = shard_index
        self.shard_count = shard_count

    # -- paths ----------------------------------------------------------

    def marker_path(self, round_index: int, shard_index: int) -> Path:
        return self.root / (
            f"round-{round_index:05d}"
            f".shard-{shard_index + 1}of{self.shard_count}.json"
        )

    # -- publish --------------------------------------------------------

    def publish(self, round_index: int, failed_keys: list[str]) -> None:
        """Atomically publish this shard's marker for one round.

        Re-publishing the same round (e.g. a driver restarted after a
        crash, re-served from cache) simply overwrites with identical
        content — the rename is the commit point either way.
        """
        payload = {
            "round": round_index,
            "shard": self.shard_index + 1,
            "of": self.shard_count,
            "failed": sorted(failed_keys),
        }
        path = self.marker_path(round_index, self.shard_index)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    # -- gather ---------------------------------------------------------

    def gather(
        self,
        round_index: int,
        timeout: float = 600.0,
        poll: float = 0.05,
    ) -> dict[int, list[str]]:
        """Wait for all N markers of a round; return failed keys by shard.

        Returns ``{shard_index_0based: [failed job keys]}`` covering
        every shard. Raises :class:`RendezvousError` on timeout or when
        a foreign marker for this round advertises a different shard
        count (two fleets launched with inconsistent ``--shard`` splits
        would otherwise deadlock waiting for each other).
        """
        deadline = time.monotonic() + timeout
        while True:
            self._check_foreign_split(round_index)
            missing = [
                shard
                for shard in range(self.shard_count)
                if not self.marker_path(round_index, shard).exists()
            ]
            if not missing:
                break
            if time.monotonic() >= deadline:
                raise RendezvousError(
                    f"campaign {self.campaign_id} round {round_index}: "
                    f"shards {[s + 1 for s in missing]} of "
                    f"{self.shard_count} never published within {timeout:.0f}s "
                    "— are all shard drivers running?"
                )
            time.sleep(poll)
        failed: dict[int, list[str]] = {}
        for shard in range(self.shard_count):
            path = self.marker_path(round_index, shard)
            try:
                payload = json.loads(path.read_text())
            except (OSError, json.JSONDecodeError) as exc:
                raise RendezvousError(
                    f"unreadable rendezvous marker {path.name}: {exc}"
                ) from exc
            failed[shard] = list(payload.get("failed", []))
        return failed

    def _check_foreign_split(self, round_index: int) -> None:
        """Fail fast when another driver used a different shard count."""
        try:
            names = os.listdir(self.root)
        except OSError:
            return
        for name in names:
            match = _MARKER.match(name)
            if not match:
                continue
            if int(match.group(1)) != round_index:
                continue
            of = int(match.group(3))
            if of != self.shard_count:
                raise RendezvousError(
                    f"campaign {self.campaign_id} round {round_index}: "
                    f"marker {name} was published by a {of}-shard driver "
                    f"but this driver runs --shard "
                    f"{self.shard_index + 1}/{self.shard_count}; all "
                    "drivers of one campaign must use the same split"
                )
