"""Exception hierarchy for the DeFT reproduction library.

All library-specific failures derive from :class:`ReproError` so callers can
catch one base class. Exceptions carry enough context to diagnose a bad
configuration without a debugger.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class TopologyError(ReproError):
    """Raised when a topology specification is inconsistent.

    Examples: overlapping chiplets, a vertical link placed outside its
    chiplet, an interposer too small for the chiplet grid.
    """


class ConfigurationError(ReproError):
    """Raised when a simulation or experiment configuration is invalid."""


class RoutingError(ReproError):
    """Raised when a routing algorithm cannot produce a legal decision.

    A well-formed algorithm only raises this for genuinely unroutable
    requests (e.g. a destination chiplet whose vertical links are all
    faulty under an algorithm without fault tolerance).
    """


class UnroutablePacketError(RoutingError):
    """Raised when a packet has no legal path under the current fault state.

    The simulator converts this into a *dropped-at-source* statistic, which
    is what the paper's reachability metric counts.
    """


class DeadlockError(ReproError):
    """Raised by the watchdog when the network makes no progress.

    Carries the cycle at which progress stopped and a snapshot of blocked
    packets to aid debugging.
    """

    def __init__(self, cycle: int, blocked: int, detail: str = ""):
        self.cycle = cycle
        self.blocked = blocked
        message = f"no network progress since cycle {cycle} with {blocked} flits in flight"
        if detail:
            message = f"{message}: {detail}"
        super().__init__(message)


class OptimizationError(ReproError):
    """Raised when a VL-selection optimizer cannot find a feasible selection."""


class FaultModelError(ReproError):
    """Raised for invalid fault specifications (unknown VL, duplicate fault)."""
