"""Fault state over directed vertical-link channels.

The paper injects faults on unidirectional VL channels ("1-8 faulty VLs"
out of 32 directed channels in the 4-chiplet system) and excludes patterns
that disconnect a chiplet completely — i.e. patterns where *all* down
channels or *all* up channels of one chiplet are faulty.
"""

from __future__ import annotations

import enum
import itertools
import random
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from ..errors import FaultModelError
from ..topology.builder import System


class VLDirection(enum.IntEnum):
    """Traversal direction of a directed VL channel."""

    DOWN = 0  # chiplet -> interposer
    UP = 1    # interposer -> chiplet


@dataclass(frozen=True, order=True)
class DirectedVL:
    """One directed VL channel: (bidirectional VL index, direction)."""

    vl_index: int
    direction: VLDirection

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"DirectedVL({self.vl_index}, {self.direction.name})"


class FaultState:
    """An immutable set of faulty directed VL channels for one system.

    Provides the queries every routing algorithm needs:

    * :meth:`down_ok` / :meth:`up_ok` — is a VL usable in a direction?
    * :meth:`alive_down_vls` / :meth:`alive_up_vls` — usable VLs per chiplet.
    * :meth:`chiplet_down_pattern` / :meth:`chiplet_up_pattern` — the
      frozen per-chiplet local fault pattern, which indexes DeFT's
      pre-optimized selection tables.
    * :meth:`disconnects_any_chiplet` — the exclusion rule of Fig. 7.
    """

    def __init__(self, system: System, faulty: Iterable[DirectedVL] = ()):
        self._system = system
        faults = frozenset(faulty)
        num_vls = len(system.vls)
        for fault in faults:
            if not (0 <= fault.vl_index < num_vls):
                raise FaultModelError(
                    f"fault on unknown VL {fault.vl_index} (system has {num_vls})"
                )
        self._faults = faults
        # Per-chiplet caches of alive VL local indices.
        self._alive_down: dict[int, tuple[int, ...]] = {}
        self._alive_up: dict[int, tuple[int, ...]] = {}
        for chiplet in range(system.spec.num_chiplets):
            links = system.vls_of_chiplet(chiplet)
            self._alive_down[chiplet] = tuple(
                link.local_index for link in links if self.down_ok(link.index)
            )
            self._alive_up[chiplet] = tuple(
                link.local_index for link in links if self.up_ok(link.index)
            )

    # -- basic queries --------------------------------------------------

    @property
    def system(self) -> System:
        return self._system

    @property
    def faults(self) -> frozenset[DirectedVL]:
        return self._faults

    @property
    def num_faults(self) -> int:
        return len(self._faults)

    def is_faulty(self, vl_index: int, direction: VLDirection) -> bool:
        return DirectedVL(vl_index, direction) in self._faults

    def down_ok(self, vl_index: int) -> bool:
        """Whether the chiplet -> interposer channel of a VL is usable."""
        return not self.is_faulty(vl_index, VLDirection.DOWN)

    def up_ok(self, vl_index: int) -> bool:
        """Whether the interposer -> chiplet channel of a VL is usable."""
        return not self.is_faulty(vl_index, VLDirection.UP)

    # -- per-chiplet views ----------------------------------------------

    def alive_down_vls(self, chiplet: int) -> tuple[int, ...]:
        """Local indices of the chiplet's VLs with a working down channel."""
        return self._alive_down[chiplet]

    def alive_up_vls(self, chiplet: int) -> tuple[int, ...]:
        """Local indices of the chiplet's VLs with a working up channel."""
        return self._alive_up[chiplet]

    def chiplet_down_pattern(self, chiplet: int) -> frozenset[int]:
        """Local indices of *faulty* down channels (DeFT's LUT key)."""
        links = self._system.vls_of_chiplet(chiplet)
        return frozenset(
            link.local_index for link in links if not self.down_ok(link.index)
        )

    def chiplet_up_pattern(self, chiplet: int) -> frozenset[int]:
        """Local indices of *faulty* up channels (DeFT's LUT key)."""
        links = self._system.vls_of_chiplet(chiplet)
        return frozenset(
            link.local_index for link in links if not self.up_ok(link.index)
        )

    def disconnects_any_chiplet(self) -> bool:
        """True when some chiplet lost all down or all up channels.

        These patterns are excluded from the paper's reachability study
        ("excluding those that disconnected chiplets completely").
        """
        for chiplet in range(self._system.spec.num_chiplets):
            if not self._alive_down[chiplet] or not self._alive_up[chiplet]:
                return True
        return False

    # -- derivation ------------------------------------------------------

    def with_faults(self, extra: Iterable[DirectedVL]) -> "FaultState":
        """A new state with additional faults."""
        return FaultState(self._system, self._faults | frozenset(extra))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, FaultState) and self._faults == other._faults

    def __hash__(self) -> int:
        return hash(self._faults)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"FaultState({sorted(self._faults)})"


def fault_free(system: System) -> FaultState:
    """The empty fault state."""
    return FaultState(system)


#: Canonical job-spec direction tokens (see ``repro.runner.spec``).
_SPEC_DIRECTIONS = {"down": VLDirection.DOWN, "up": VLDirection.UP}


def faults_from_spec(
    system: System, faults: Iterable[tuple[int, str]]
) -> FaultState:
    """Build a fault state from canonical ``(vl_index, "down"|"up")`` pairs.

    The inverse of :func:`repro.runner.spec.faults_to_spec` and the single
    home of the spec -> :class:`FaultState` translation, shared by the
    sessionless executor and the session memo so the two paths can never
    diverge.
    """
    return FaultState(
        system,
        [
            DirectedVL(index, _SPEC_DIRECTIONS[direction])
            for index, direction in faults
        ],
    )


def all_fault_patterns(
    system: System,
    num_faults: int,
    exclude_disconnecting: bool = True,
) -> Iterator[FaultState]:
    """Enumerate every ``num_faults``-sized fault pattern of the system.

    Warning: combinatorial — C(32, k) patterns for the 4-chiplet baseline.
    Use :mod:`repro.analysis.reachability` for exact aggregate statistics
    without enumeration; this iterator exists for validation on small k.
    """
    channels = [
        DirectedVL(link.index, direction)
        for link in system.vls
        for direction in (VLDirection.DOWN, VLDirection.UP)
    ]
    for combo in itertools.combinations(channels, num_faults):
        state = FaultState(system, combo)
        if exclude_disconnecting and state.disconnects_any_chiplet():
            continue
        yield state


def chiplet_fault_pattern(
    system: System,
    chiplet: int,
    down_faulty: Iterable[int] = (),
    up_faulty: Iterable[int] = (),
) -> FaultState:
    """Build a fault state from per-chiplet *local* VL indices.

    Convenience for tests and examples: ``down_faulty``/``up_faulty`` are
    local indices (0..V-1) of the chiplet's VLs.
    """
    links = system.vls_of_chiplet(chiplet)
    by_local = {link.local_index: link for link in links}
    faults: list[DirectedVL] = []
    for local in down_faulty:
        if local not in by_local:
            raise FaultModelError(f"chiplet {chiplet} has no VL with local index {local}")
        faults.append(DirectedVL(by_local[local].index, VLDirection.DOWN))
    for local in up_faulty:
        if local not in by_local:
            raise FaultModelError(f"chiplet {chiplet} has no VL with local index {local}")
        faults.append(DirectedVL(by_local[local].index, VLDirection.UP))
    return FaultState(system, faults)


def random_stratified_fault_state(
    system: System,
    composition: Sequence[int],
    rng: random.Random,
    max_tries: int = 10_000,
) -> FaultState:
    """Sample a pattern with fixed per-chiplet directed-fault counts.

    Two composition layouts are accepted for a system of M chiplets:

    * **Split (length 2M)** — ``composition[2c]`` down faults and
      ``composition[2c + 1]`` up faults on chiplet ``c``. Admissibility
      (at least one alive channel per direction) is then a property of
      the composition itself (``d < V`` and ``u < V``), so each
      direction's channels are drawn *directly* — no rejection loop —
      uniformly over the chiplet's size-``d`` down and size-``u`` up
      subsets. This is the layout :func:`repro.montecarlo.strata.\\
      enumerate_strata` produces.
    * **Totals (length M)** — ``composition[c]`` faulty directed
      channels on chiplet ``c``, drawn uniformly over the chiplet's
      admissible local patterns by rejection.

    Either way the disconnection exclusion factorizes per chiplet, so
    drawing every chiplet independently yields a uniform sample over the
    admissible global patterns *within the stratum* — exactly the
    conditional distribution the stratified estimator weights by its
    exact combinatorial stratum probability.

    Chiplets are drawn in index order (downs before ups in the split
    layout) from the single ``rng`` stream, so the pattern is a pure
    function of ``(composition, rng state)``.
    """
    num_chiplets = system.spec.num_chiplets
    if len(composition) == 2 * num_chiplets:
        return _split_stratified_state(system, composition, rng)
    if len(composition) != num_chiplets:
        raise FaultModelError(
            f"composition has {len(composition)} entries, expected "
            f"{num_chiplets} per-chiplet totals or {2 * num_chiplets} "
            "per-direction counts"
        )
    faults: list[DirectedVL] = []
    for chiplet, count in enumerate(composition):
        links = system.vls_of_chiplet(chiplet)
        if count < 0 or count > 2 * len(links):
            raise FaultModelError(
                f"chiplet {chiplet} has {2 * len(links)} directed channels, "
                f"cannot fault {count}"
            )
        if count == 0:
            continue
        channels = [
            DirectedVL(link.index, direction)
            for link in links
            for direction in (VLDirection.DOWN, VLDirection.UP)
        ]
        down = frozenset(c for c in channels if c.direction is VLDirection.DOWN)
        up = frozenset(c for c in channels if c.direction is VLDirection.UP)
        for _ in range(max_tries):
            drawn = frozenset(rng.sample(channels, count))
            if not (down <= drawn or up <= drawn):
                faults.extend(sorted(drawn))
                break
        else:
            raise FaultModelError(
                f"no admissible {count}-fault pattern on chiplet {chiplet} "
                f"found in {max_tries} tries"
            )
    return FaultState(system, faults)


def _split_stratified_state(
    system: System, composition: Sequence[int], rng: random.Random
) -> FaultState:
    """Direct (rejection-free) draw for a per-direction composition."""
    faults: list[DirectedVL] = []
    for chiplet in range(system.spec.num_chiplets):
        links = system.vls_of_chiplet(chiplet)
        down_count = composition[2 * chiplet]
        up_count = composition[2 * chiplet + 1]
        for count, direction in (
            (down_count, VLDirection.DOWN),
            (up_count, VLDirection.UP),
        ):
            if count < 0 or count >= len(links):
                raise FaultModelError(
                    f"chiplet {chiplet} needs an alive {direction.name.lower()} "
                    f"channel: count {count} not in [0, {len(links) - 1}]"
                )
            if count == 0:
                continue
            channels = [DirectedVL(link.index, direction) for link in links]
            faults.extend(sorted(rng.sample(channels, count)))
    return FaultState(system, faults)


def random_fault_state(
    system: System,
    num_faults: int,
    rng: random.Random,
    exclude_disconnecting: bool = True,
    max_tries: int = 10_000,
) -> FaultState:
    """Sample a uniform random fault pattern with ``num_faults`` channels.

    Uses rejection sampling to honour the chiplet-disconnection exclusion;
    raises :class:`FaultModelError` when no admissible pattern exists (for
    example ``num_faults`` larger than the number of channels).
    """
    channels = [
        DirectedVL(link.index, direction)
        for link in system.vls
        for direction in (VLDirection.DOWN, VLDirection.UP)
    ]
    if num_faults > len(channels):
        raise FaultModelError(
            f"cannot place {num_faults} faults on {len(channels)} directed channels"
        )
    for _ in range(max_tries):
        state = FaultState(system, rng.sample(channels, num_faults))
        if not exclude_disconnecting or not state.disconnects_any_chiplet():
            return state
    raise FaultModelError(
        f"no admissible pattern with {num_faults} faults found in {max_tries} tries"
    )
