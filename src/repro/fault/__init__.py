"""Vertical-link fault model.

Faults live on *directed* VL channels: the down channel (chiplet ->
interposer) and the up channel (interposer -> chiplet) of each bidirectional
vertical link fail independently, matching the paper's fault accounting
(32 VLs for the 4-chiplet system = 16 bidirectional links x 2 directions).
"""

from .model import (
    VLDirection,
    DirectedVL,
    FaultState,
    all_fault_patterns,
    chiplet_fault_pattern,
    fault_free,
    random_fault_state,
)

__all__ = [
    "VLDirection",
    "DirectedVL",
    "FaultState",
    "all_fault_patterns",
    "chiplet_fault_pattern",
    "fault_free",
    "random_fault_state",
]
