"""The campaign service: HTTP routes over one spool directory.

Design constraints, in order:

* **The spool stays the source of truth.** ``POST /campaigns`` writes
  exactly what :class:`~repro.distributed.backend.SpoolBackend` would
  (manifest + ``campaign_started`` event + batched pending files) and
  then gets out of the way — external ``deft worker`` processes drain
  the queue and settle results into the shared cache. Every ``GET`` is
  recomputed from the filesystem, so a restarted server picks up
  mid-campaign with no state handoff.
* **Stdlib only.** ``ThreadingHTTPServer`` with one thread per
  request; SSE is a plain chunked-less ``text/event-stream`` response
  that polls the append-only event segments (:class:`SpoolEventTailer`
  survives rotation) and pushes frames until the client hangs up.
* **Readers never block writers.** Event streams are append-only JSONL
  with per-record flushes; status snapshots open files read-only. Many
  concurrent scrapes/tails against a live fleet are safe by
  construction — the tests hammer exactly that.

Routes::

    GET  /                      service + endpoint index
    POST /campaigns             submit a campaign spec (JSON)
    GET  /campaigns             every campaign's progress snapshot
    GET  /campaigns/<name>      one campaign (name, id, or shard base)
    GET  /campaigns/<name>/trace  Chrome/Catapult trace_event JSON
    GET  /metrics               Prometheus: fleet + server process
    GET  /events[?campaign=X&replay=0]   Server-Sent-Events tail
"""

from __future__ import annotations

import json
import os
import threading
import time
import urllib.parse
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path

from ..config import SimulationConfig
from ..errors import ConfigurationError
from ..distributed.spool import MAX_BATCH, Spool
from ..runner.cache import ResultCache
from ..runner.spec import Campaign, Job, SystemRef
from ..telemetry.manifest import SpoolEventTailer, write_campaign_manifest
from ..telemetry.metrics import get_registry
from ..telemetry.status import fleet_status, render_prom
from ..telemetry.trace import chrome_trace, job_traces, resolve_campaign_keys

DEFAULT_PORT = 8321

#: Submission bodies larger than this are rejected outright.
MAX_BODY_BYTES = 16 * 1024 * 1024

#: How often an SSE stream with nothing to say proves it is alive.
KEEPALIVE_S = 10.0


def campaign_from_spec(payload: dict) -> Campaign:
    """A JSON campaign spec -> :class:`Campaign`, validation included.

    Two shapes are accepted. The sweep shape mirrors ``deft campaign``'s
    flags::

        {"name": "fig4-remote", "system": "4", "algorithms": ["deft"],
         "traffic": "uniform", "rates": [0.004, 0.008], "seeds": 2,
         "warmup": 600, "cycles": 2000, "drain": 10000,
         "faults": [[3, "down"]], "kernel": "auto"}

    And the explicit shape carries full canonical job dicts (what
    ``Job.canonical()`` emits), for clients that build their own grids::

        {"name": "custom", "jobs": [{...}, {...}]}

    Raises ``ValueError``/``ConfigurationError`` on anything malformed —
    the HTTP layer maps those to 400s.
    """
    if not isinstance(payload, dict):
        raise ValueError("campaign spec must be a JSON object")
    if "jobs" in payload:
        raw_jobs = payload["jobs"]
        if not isinstance(raw_jobs, list) or not raw_jobs:
            raise ValueError("'jobs' must be a non-empty list of canonical job dicts")
        jobs = [Job.from_canonical(raw) for raw in raw_jobs]
        name = str(payload.get("name") or f"submitted-{jobs[0].key()[:8]}")
        return Campaign(name=name, jobs=tuple(jobs))

    from ..experiments.common import sweep_jobs

    system = SystemRef.from_cli(str(payload.get("system", "4")))
    algorithms = payload.get("algorithms") or ["deft"]
    if isinstance(algorithms, str):
        algorithms = [algorithms]
    if not isinstance(algorithms, list) or not all(
        isinstance(a, str) for a in algorithms
    ):
        raise ValueError("'algorithms' must be a list of algorithm names")
    traffic = str(payload.get("traffic", "uniform"))
    rates = payload.get("rates", [0.004])
    if not isinstance(rates, list) or not rates:
        raise ValueError("'rates' must be a non-empty list of numbers")
    rates = [float(rate) for rate in rates]
    seeds = tuple(range(1, int(payload.get("seeds", 1)) + 1))
    if not seeds:
        raise ValueError("'seeds' must be >= 1")
    config = SimulationConfig(
        warmup_cycles=int(payload.get("warmup", 600)),
        measure_cycles=int(payload.get("cycles", 2_000)),
        drain_cycles=int(payload.get("drain", 10_000)),
    )
    faults = tuple(
        (int(index), str(direction)) for index, direction in payload.get("faults", [])
    )
    traffic_params = payload.get("traffic_params") or {}
    if not isinstance(traffic_params, dict):
        raise ValueError("'traffic_params' must be an object")
    jobs = sweep_jobs(
        system,
        tuple(algorithms),
        traffic,
        rates,
        config,
        seeds,
        traffic_params=traffic_params,
        faults=faults,
        kernel=str(payload.get("kernel", "auto")),
    )
    name = str(payload.get("name") or f"{traffic}-{system.label}-{'+'.join(algorithms)}")
    return Campaign(name=name, jobs=tuple(jobs))


class CampaignService:
    """Everything the HTTP layer does, minus HTTP.

    Also usable directly (the benchmark drives it in-process). One
    instance per spool; submissions are serialised under a lock so two
    concurrent POSTs cannot interleave their manifest/enqueue writes.
    """

    def __init__(
        self,
        spool_dir: str | Path,
        cache_dir: str | Path | None = None,
        *,
        lease_s: float | None = None,
        batch: int | str = "auto",
        poll_s: float = 0.2,
        keepalive_s: float = KEEPALIVE_S,
        janitor: bool = True,
        window_s: float | None = None,
        stale_worker_s: float | None = None,
    ):
        spool_args = {} if lease_s is None else {"lease_s": lease_s}
        self.spool = Spool(spool_dir, **spool_args).ensure()
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        if self.cache_dir is not None:
            # Instantiating eagerly validates the path once, at startup.
            ResultCache(self.cache_dir)
        if batch != "auto":
            batch = max(1, min(int(batch), MAX_BATCH))
        self.batch = batch
        self.poll_s = poll_s
        self.keepalive_s = keepalive_s
        self._status_args = {}
        if window_s is not None:
            self._status_args["window_s"] = window_s
        if stale_worker_s is not None:
            self._status_args["stale_worker_s"] = stale_worker_s
        self.closing = threading.Event()
        self._submit_lock = threading.Lock()
        self.events = self.spool.attach_events(
            f"serve-{os.uname().nodename}-{os.getpid()}"
        )
        self._janitor: threading.Thread | None = None
        if janitor:
            self._janitor = threading.Thread(
                target=self._sweep_loop, name="deft-serve-janitor", daemon=True
            )
            self._janitor.start()

    def _sweep_loop(self) -> None:
        # Idle workers already reap expired leases between claims; the
        # service sweeps too so a fleet that died entirely still gets
        # its leases requeued while operators watch the dashboards.
        interval = max(1.0, self.spool.lease_s / 2.0)
        while not self.closing.wait(interval):
            try:
                self.spool.requeue_expired()
            except OSError:
                continue

    # -- submission --------------------------------------------------------

    def submit(self, payload: dict) -> dict:
        """Validate, announce, and enqueue one campaign spec."""
        campaign = campaign_from_spec(payload)
        batch = payload.get("batch", self.batch)
        if batch != "auto":
            batch = max(1, min(int(batch), MAX_BATCH))
        with self._submit_lock:
            write_campaign_manifest(
                self.spool.root, campaign, source=self.events.source
            )
            total = len({job.key() for job in campaign.jobs})
            self.events.emit(
                "campaign_started", campaign=campaign.name, total=total
            )
            if batch == "auto":
                from ..distributed.backend import auto_batch_size

                batch = auto_batch_size(self.spool.root)
            enqueued = self.spool.enqueue(campaign.jobs, batch_size=batch)
        get_registry().counter(
            "deft_serve_submissions_total",
            "Campaigns accepted via POST /campaigns",
        ).inc()
        return {
            "campaign": campaign.name,
            "id": _campaign_id(campaign),
            "total": total,
            "enqueued": enqueued,
            "batch_size": batch,
        }

    # -- snapshots ---------------------------------------------------------

    def status(self) -> dict:
        return fleet_status(self.spool.root, self.cache_dir, **self._status_args)

    def campaigns(self) -> dict:
        status = self.status()
        return {
            "generated_at": status["generated_at"],
            "campaigns": status["campaigns"],
            "workers": status["workers"],
            "spool": status["spool"],
        }

    def campaign(self, name: str) -> dict | None:
        """Aggregate snapshot of one campaign (name, id, or shard base)."""
        status = self.status()
        entries = [
            entry
            for entry in status["campaigns"]
            if name in (
                entry["campaign"],
                entry["id"],
                (entry["shard"] or {}).get("base"),
            )
        ]
        if not entries:
            return None
        total = sum(entry["total"] for entry in entries)
        done = sum(entry["done"] for entry in entries)
        failed = sum(entry["failed"] for entry in entries)
        return {
            "campaign": name,
            "generated_at": status["generated_at"],
            "entries": entries,
            "total": total,
            "done": done,
            "failed": failed,
            "running": sum(entry["running"] for entry in entries),
            "complete": total > 0 and done + failed >= total,
        }

    def campaign_keys(self, name: str) -> set[str]:
        return resolve_campaign_keys(self.spool.root, name)

    def trace(self, name: str | None = None) -> dict:
        return chrome_trace(job_traces(self.spool.root, campaign=name))

    def metrics_text(self) -> str:
        """Fleet metrics (spool + worker stats files) + this process's."""
        get_registry().counter(
            "deft_serve_scrapes_total", "GET /metrics requests served"
        ).inc()
        return render_prom(self.status()) + get_registry().render_prom()

    def index(self) -> dict:
        return {
            "service": "deft serve",
            "spool": str(self.spool.root),
            "cache": str(self.cache_dir) if self.cache_dir else None,
            "endpoints": [
                "POST /campaigns",
                "GET /campaigns",
                "GET /campaigns/<name>",
                "GET /campaigns/<name>/trace",
                "GET /metrics",
                "GET /events?campaign=<name>&replay=0|1",
            ],
        }

    def close(self) -> None:
        self.closing.set()
        if self._janitor is not None:
            self._janitor.join(timeout=2.0)
        self.events.close()


def _campaign_id(campaign: Campaign) -> str:
    from ..telemetry.manifest import campaign_id

    return campaign_id(campaign.name, sorted({job.key() for job in campaign.jobs}))


class _CampaignHandler(BaseHTTPRequestHandler):
    service: CampaignService  # injected via subclassing in CampaignServer

    server_version = "deft-serve"

    def log_message(self, format: str, *args) -> None:
        pass  # scrapes and SSE polls would otherwise flood the log

    # -- helpers -----------------------------------------------------------

    def _send_json(self, payload: dict, code: int = 200) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, text: str, content_type: str) -> None:
        body = text.encode("utf-8")
        self.send_response(200)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    # -- routes ------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        parsed = urllib.parse.urlsplit(self.path)
        parts = [
            urllib.parse.unquote(part)
            for part in parsed.path.split("/")
            if part
        ]
        query = urllib.parse.parse_qs(parsed.query)
        try:
            if not parts:
                self._send_json(self.service.index())
            elif parts == ["metrics"]:
                self._send_text(
                    self.service.metrics_text(), "text/plain; version=0.0.4"
                )
            elif parts == ["events"]:
                campaign = query.get("campaign", [None])[0]
                replay = query.get("replay", ["1"])[0].lower() not in (
                    "0", "false", "no",
                )
                self._stream_events(campaign, replay)
            elif parts == ["campaigns"]:
                self._send_json(self.service.campaigns())
            elif parts[0] == "campaigns" and len(parts) == 2:
                snapshot = self.service.campaign(parts[1])
                if snapshot is None:
                    self._send_json(
                        {"error": f"unknown campaign {parts[1]!r}"}, 404
                    )
                else:
                    self._send_json(snapshot)
            elif parts[0] == "campaigns" and len(parts) == 3 and parts[2] == "trace":
                try:
                    self._send_json(self.service.trace(parts[1]))
                except ValueError as exc:
                    self._send_json({"error": str(exc)}, 404)
            else:
                self._send_json({"error": f"no route for {parsed.path}"}, 404)
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away; nothing to clean up

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        parsed = urllib.parse.urlsplit(self.path)
        if parsed.path.rstrip("/") != "/campaigns":
            self._send_json({"error": f"no route for {parsed.path}"}, 404)
            return
        try:
            length = int(self.headers.get("Content-Length", 0))
        except ValueError:
            length = -1
        if not 0 < length <= MAX_BODY_BYTES:
            self._send_json(
                {"error": f"body must be 1..{MAX_BODY_BYTES} bytes"}, 400
            )
            return
        try:
            payload = json.loads(self.rfile.read(length).decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            self._send_json({"error": f"invalid JSON body: {exc}"}, 400)
            return
        try:
            receipt = self.service.submit(payload)
        except (ConfigurationError, ValueError, KeyError, TypeError) as exc:
            self._send_json({"error": f"invalid campaign spec: {exc}"}, 400)
            return
        self._send_json(receipt, 201)

    # -- SSE ---------------------------------------------------------------

    def _stream_events(self, campaign: str | None, replay: bool) -> None:
        """Tail the spool's merged event streams as Server-Sent Events.

        Job-scoped records (those carrying a ``key``) are filtered to
        the campaign when one is requested; fleet-level records
        (heartbeats, lease renewals/expiries, campaign announcements)
        always flow — they are what liveness looks like. The stream
        runs until the client disconnects or the server shuts down,
        with comment keep-alives while idle so dead peers surface.
        """
        keys = None
        if campaign is not None:
            try:
                keys = self.service.campaign_keys(campaign)
            except ValueError as exc:
                self._send_json({"error": str(exc)}, 404)
                return
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-cache")
        self.send_header("Connection", "close")
        self.end_headers()
        tailer = SpoolEventTailer(self.service.spool.root, replay=replay)
        try:
            self.wfile.write(b"retry: 2000\n\n")
            self.wfile.flush()
            last_write = time.monotonic()
            while not self.service.closing.is_set():
                wrote = False
                for record in tailer.poll():
                    key = record.get("key")
                    if keys is not None and key is not None and key not in keys:
                        continue
                    frame = (
                        f"event: {record.get('event', 'message')}\n"
                        f"data: {json.dumps(record, sort_keys=True)}\n\n"
                    )
                    self.wfile.write(frame.encode("utf-8"))
                    wrote = True
                if wrote:
                    self.wfile.flush()
                    last_write = time.monotonic()
                elif time.monotonic() - last_write >= self.service.keepalive_s:
                    self.wfile.write(b": keep-alive\n\n")
                    self.wfile.flush()
                    last_write = time.monotonic()
                time.sleep(self.service.poll_s)
        except (BrokenPipeError, ConnectionResetError, OSError):
            return


class CampaignServer:
    """The HTTP server bound to one :class:`CampaignService`.

    ``serve_forever`` runs in the calling thread (the CLI's mode);
    :meth:`start_background` spawns a daemon thread instead (tests and
    the benchmark). ``port=0`` binds an ephemeral port — read
    :attr:`port` back.
    """

    def __init__(
        self,
        service: CampaignService,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
    ):
        handler = type("Handler", (_CampaignHandler,), {"service": service})
        self.service = service
        self.httpd = ThreadingHTTPServer((host, port), handler)
        self.httpd.daemon_threads = True
        self._thread: threading.Thread | None = None

    @property
    def host(self) -> str:
        return self.httpd.server_address[0]

    @property
    def port(self) -> int:
        return self.httpd.server_port

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start_background(self) -> "CampaignServer":
        self._thread = threading.Thread(
            target=self.httpd.serve_forever, name="deft-serve", daemon=True
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        self.httpd.serve_forever()

    def close(self) -> None:
        # Order matters: wake SSE loops first so their request threads
        # finish, then stop accepting, then release the socket.
        self.service.closing.set()
        self.httpd.shutdown()
        self.httpd.server_close()
        self.service.close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)

    def __enter__(self) -> "CampaignServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def serve_campaigns(
    spool_dir: str | Path,
    cache_dir: str | Path | None = None,
    *,
    host: str = "127.0.0.1",
    port: int = DEFAULT_PORT,
    background: bool = True,
    **service_options,
) -> CampaignServer:
    """Construct and start a campaign server over ``spool_dir``.

    With ``background=True`` (default) the server runs on a daemon
    thread and the call returns immediately; call ``close()`` to stop.
    """
    service = CampaignService(spool_dir, cache_dir, **service_options)
    server = CampaignServer(service, host=host, port=port)
    if background:
        server.start_background()
    return server
