"""``deft serve``: the long-running HTTP+JSON layer over a spool.

Turns a spool directory from something you poll into a service you
watch: submit campaign specs over HTTP for the external fleet to
drain, read live :func:`~repro.telemetry.status.fleet_status`
snapshots per campaign, scrape aggregated Prometheus metrics, tail the
manifest event streams as Server-Sent Events, and download per-job
Chrome trace JSON — all stdlib, all reconstructable from the spool
filesystem, so the service can die and restart without losing a thing.
"""

from .app import (
    DEFAULT_PORT,
    CampaignServer,
    CampaignService,
    campaign_from_spec,
    serve_campaigns,
)

__all__ = [
    "DEFAULT_PORT",
    "CampaignServer",
    "CampaignService",
    "campaign_from_spec",
    "serve_campaigns",
]
