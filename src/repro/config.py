"""Simulation configuration objects.

:class:`SimulationConfig` collects the microarchitectural parameters of the
network (packet size, buffer depth, number of virtual channels, flit width)
plus the run-control knobs (warm-up, measurement window, drain limit).

The defaults are the paper's evaluation parameters (Section IV-A):

* packet size: 8 flits,
* input buffer depth: 4 flits per virtual channel,
* flit width: 32 bits,
* 2 virtual channels (one per virtual network for DeFT; the baselines use
  both VCs round-robin as the paper does "to have a fair comparison").
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Any

from .errors import ConfigurationError


@dataclass(frozen=True)
class SimulationConfig:
    """Parameters of a cycle-accurate simulation run.

    Attributes:
        packet_size: number of flits per packet (head + body + tail).
        buffer_depth: flits of storage per input virtual channel.
        num_vcs: virtual channels per physical port. DeFT requires >= 2
            (one per virtual network); extra VCs are shared round-robin
            inside each virtual network.
        flit_width_bits: payload width of one flit; only used by the
            area/power model and for bandwidth book-keeping.
        hop_latency: cycles a flit takes from winning switch allocation at
            one router to becoming visible in the next router's input
            buffer — the router pipeline (RC/VA/SA/ST) plus link
            traversal. The default of 4 matches the latency scale of the
            paper's Noxim configuration.
        credit_latency: cycles for a credit to travel back upstream after
            a flit vacates a buffer slot. Together with ``buffer_depth``
            this bounds per-VC link throughput at
            ``buffer_depth / (hop_latency + credit_latency)`` under
            congestion, which is the saturation mechanism of credit-based
            NoCs with shallow buffers.
        vl_serialization: vertical links accept one flit every this many
            cycles. ``1`` models full-width microbump stacks (the paper's
            baseline); larger factors model the serialized vertical
            interconnects of Section IV-A's cost-reduction option
            (Pasricha, DAC 2009 [18]).
        warmup_cycles: cycles simulated before statistics are recorded.
        measure_cycles: cycles during which injected packets are tagged as
            measured; latency statistics cover exactly these packets.
        drain_cycles: extra cycles after the measurement window that let
            tagged packets reach their destination. The simulator stops
            early once every measured packet has been delivered or dropped.
        seed: master seed for every stochastic component (traffic,
            round-robin tie-breaks are deterministic and unaffected).
        watchdog_cycles: a :class:`~repro.errors.DeadlockError` is raised if
            no flit moves for this many consecutive cycles while flits are
            in flight. ``0`` disables the watchdog.
    """

    packet_size: int = 8
    buffer_depth: int = 4
    num_vcs: int = 2
    flit_width_bits: int = 32
    hop_latency: int = 4
    credit_latency: int = 4
    vl_serialization: int = 1
    warmup_cycles: int = 1_000
    measure_cycles: int = 4_000
    drain_cycles: int = 20_000
    seed: int = 1
    watchdog_cycles: int = 10_000

    def __post_init__(self) -> None:
        if self.packet_size < 1:
            raise ConfigurationError(f"packet_size must be >= 1, got {self.packet_size}")
        if self.buffer_depth < 1:
            raise ConfigurationError(f"buffer_depth must be >= 1, got {self.buffer_depth}")
        if self.num_vcs < 1:
            raise ConfigurationError(f"num_vcs must be >= 1, got {self.num_vcs}")
        if self.flit_width_bits < 1:
            raise ConfigurationError(f"flit_width_bits must be >= 1, got {self.flit_width_bits}")
        if self.hop_latency < 1:
            raise ConfigurationError(f"hop_latency must be >= 1, got {self.hop_latency}")
        if self.credit_latency < 1:
            raise ConfigurationError(
                f"credit_latency must be >= 1, got {self.credit_latency}"
            )
        if self.vl_serialization < 1:
            raise ConfigurationError(
                f"vl_serialization must be >= 1, got {self.vl_serialization}"
            )
        for name in ("warmup_cycles", "measure_cycles", "drain_cycles", "watchdog_cycles"):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be >= 0")

    @property
    def total_cycles(self) -> int:
        """Upper bound on simulated cycles (warmup + measure + drain)."""
        return self.warmup_cycles + self.measure_cycles + self.drain_cycles

    def replace(self, **changes: Any) -> "SimulationConfig":
        """Return a copy with the given fields changed."""
        return dataclasses.replace(self, **changes)

    def to_dict(self) -> dict[str, Any]:
        """Serialize to a plain dictionary (JSON-compatible)."""
        return dataclasses.asdict(self)

    def to_json(self) -> str:
        """Serialize to a JSON string."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "SimulationConfig":
        """Build a config from :meth:`to_dict` output; unknown keys rejected."""
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(f"unknown SimulationConfig fields: {sorted(unknown)}")
        return cls(**data)

    @classmethod
    def from_json(cls, text: str) -> "SimulationConfig":
        """Inverse of :meth:`to_json`."""
        return cls.from_dict(json.loads(text))


@dataclass(frozen=True)
class SweepConfig:
    """An injection-rate sweep specification used by the experiment harness.

    Attributes:
        rates: packet injection rates (packets/cycle/core) to simulate.
        sim: base simulation configuration shared by all points.
        repeats: independent seeds averaged per point.
    """

    rates: tuple[float, ...]
    sim: SimulationConfig = field(default_factory=SimulationConfig)
    repeats: int = 1

    def __post_init__(self) -> None:
        if not self.rates:
            raise ConfigurationError("sweep needs at least one injection rate")
        if any(r < 0 for r in self.rates):
            raise ConfigurationError("injection rates must be non-negative")
        if self.repeats < 1:
            raise ConfigurationError("repeats must be >= 1")
