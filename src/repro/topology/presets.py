"""Preset systems used throughout the paper's evaluation.

* :func:`baseline_4_chiplets` — Fig. 1: four 4x4 CPU chiplets in a 2x2
  arrangement on an 8x8 active interposer, 4 border VLs per chiplet
  (32 directed VL channels), four DRAMs on the interposer edges.
* :func:`baseline_6_chiplets` — the scaling study: six 4x4 chiplets in a
  3x2 arrangement on a 12x8 interposer (48 directed VL channels).
* :func:`chiplet_grid` — the general constructor both presets use.
* :func:`single_chiplet` — a one-chiplet system for unit tests.
"""

from __future__ import annotations

from ..errors import TopologyError
from .builder import System, build_system
from .spec import ChipletSpec, SystemSpec, rectangular_vl_border_positions


def chiplet_grid(
    chiplet_cols: int,
    chiplet_rows: int,
    chiplet_width: int = 4,
    chiplet_height: int = 4,
    vl_positions: tuple[tuple[int, int], ...] | None = None,
    dram_positions: tuple[tuple[int, int], ...] | None = None,
    name: str | None = None,
) -> System:
    """Build a regular grid of identical chiplets over a tight interposer.

    Args:
        chiplet_cols / chiplet_rows: chiplet grid arrangement.
        chiplet_width / chiplet_height: per-chiplet mesh size.
        vl_positions: chiplet-local VL coordinates; defaults to the border
            placement of [7] (see :func:`rectangular_vl_border_positions`).
        dram_positions: interposer coordinates of DRAM PEs; defaults to two
            per vertical edge at one-third and two-thirds height, matching
            the four edge DRAMs of Fig. 1.
        name: label for reports; defaults to a descriptive string.
    """
    if chiplet_cols < 1 or chiplet_rows < 1:
        raise TopologyError("chiplet grid must be at least 1x1")
    if vl_positions is None:
        vl_positions = rectangular_vl_border_positions(chiplet_width, chiplet_height)
    interposer_width = chiplet_cols * chiplet_width
    interposer_height = chiplet_rows * chiplet_height
    chiplets = tuple(
        ChipletSpec(
            origin=(col * chiplet_width, row * chiplet_height),
            width=chiplet_width,
            height=chiplet_height,
            vl_positions=vl_positions,
        )
        for row in range(chiplet_rows)
        for col in range(chiplet_cols)
    )
    if dram_positions is None:
        third = max(1, interposer_height // 3)
        two_thirds = min(interposer_height - 1, 2 * interposer_height // 3)
        dram_positions = (
            (0, third),
            (0, two_thirds),
            (interposer_width - 1, third),
            (interposer_width - 1, two_thirds),
        )
        dram_positions = tuple(dict.fromkeys(dram_positions))
    spec = SystemSpec(
        chiplets=chiplets,
        interposer_width=interposer_width,
        interposer_height=interposer_height,
        dram_positions=dram_positions,
        name=name or f"{chiplet_cols}x{chiplet_rows} grid of {chiplet_width}x{chiplet_height} chiplets",
    )
    return build_system(spec)


def baseline_4_chiplets() -> System:
    """The paper's baseline system (Fig. 1): 4 chiplets, 64 cores, 32 directed VLs."""
    return chiplet_grid(2, 2, name="baseline-4-chiplets")


def baseline_6_chiplets() -> System:
    """The paper's scaled system: 6 chiplets, 96 cores, 48 directed VLs."""
    return chiplet_grid(3, 2, name="baseline-6-chiplets")


def single_chiplet(width: int = 4, height: int = 4) -> System:
    """A one-chiplet system over a matching interposer (for unit tests)."""
    return chiplet_grid(1, 1, width, height, name="single-chiplet", dram_positions=())
