"""System builder: turns a :class:`SystemSpec` into a router graph.

The built :class:`System` is the single source of truth about connectivity
used by the simulator, the routing algorithms, and all analyses. Router
identifiers are dense integers: interposer routers first (row-major), then
each chiplet's routers (row-major, in chiplet order), so arrays indexed by
router id are compact.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..errors import TopologyError
from .geometry import Direction, INTERPOSER_LAYER, manhattan
from .spec import ChipletSpec, SystemSpec


class PEKind(enum.IntEnum):
    """Processing element attached to a router (if any)."""

    NONE = 0
    CORE = 1
    DRAM = 2


@dataclass
class Router:
    """One router of the 2.5D system.

    Attributes:
        id: dense integer identifier.
        layer: ``INTERPOSER_LAYER`` (-1) or the chiplet index.
        x / y: layer-local mesh coordinates.
        gx / gy: footprint (interposer-grid) coordinates; for interposer
            routers these equal ``x``/``y``, for chiplet routers they are
            offset by the chiplet origin. Two routers with equal ``gx, gy``
            on different layers are vertically aligned.
        pe: attached processing element kind.
        neighbors: mesh neighbours by direction (same layer only).
        vertical_neighbor: id of the router at the other end of this
            router's vertical link, or ``None``.
        vl_index: index into :attr:`System.vls` when this router terminates
            a vertical link (on either side), else ``None``.
    """

    id: int
    layer: int
    x: int
    y: int
    gx: int
    gy: int
    pe: PEKind = PEKind.NONE
    neighbors: dict[Direction, int] = field(default_factory=dict)
    vertical_neighbor: int | None = None
    vl_index: int | None = None

    @property
    def is_interposer(self) -> bool:
        return self.layer == INTERPOSER_LAYER

    @property
    def is_boundary(self) -> bool:
        """True for chiplet routers that own a vertical link (paper's term)."""
        return not self.is_interposer and self.vertical_neighbor is not None

    @property
    def has_vertical(self) -> bool:
        return self.vertical_neighbor is not None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        where = "ip" if self.is_interposer else f"c{self.layer}"
        return f"Router({self.id}, {where}({self.x},{self.y}), pe={self.pe.name})"


@dataclass(frozen=True)
class VerticalLink:
    """A bidirectional vertical link (microbump stack) between layers.

    The fault model treats the two directions independently: the *down*
    channel carries chiplet -> interposer traffic, the *up* channel carries
    interposer -> chiplet traffic.

    Attributes:
        index: global VL index (dense, grouped by chiplet).
        chiplet: owning chiplet index.
        local_index: index of this VL among the chiplet's VLs (0-based).
        chiplet_router: id of the boundary router on the chiplet side.
        interposer_router: id of the interposer router underneath.
        cx / cy: chiplet-local coordinates of the boundary router,
            used by the distance cost (paper eq. 4).
    """

    index: int
    chiplet: int
    local_index: int
    chiplet_router: int
    interposer_router: int
    cx: int
    cy: int


class System:
    """A built 2.5D system: routers, links and lookup tables.

    Construct via :func:`build_system`; instances are immutable in practice
    (nothing in the library mutates a built system).
    """

    def __init__(self, spec: SystemSpec):
        self.spec = spec
        self.routers: list[Router] = []
        self.vls: list[VerticalLink] = []
        self._by_coord: dict[tuple[int, int, int], int] = {}
        self._vls_of_chiplet: dict[int, list[VerticalLink]] = {}
        self._build_interposer()
        self._build_chiplets()
        self._build_vertical_links()
        self._index_pes()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def _add_router(self, layer: int, x: int, y: int, gx: int, gy: int, pe: PEKind) -> Router:
        router = Router(id=len(self.routers), layer=layer, x=x, y=y, gx=gx, gy=gy, pe=pe)
        self.routers.append(router)
        self._by_coord[(layer, x, y)] = router.id
        return router

    def _build_interposer(self) -> None:
        spec = self.spec
        drams = set(spec.dram_positions)
        for y in range(spec.interposer_height):
            for x in range(spec.interposer_width):
                pe = PEKind.DRAM if (x, y) in drams else PEKind.NONE
                self._add_router(INTERPOSER_LAYER, x, y, x, y, pe)
        self._connect_mesh(INTERPOSER_LAYER, spec.interposer_width, spec.interposer_height)

    def _build_chiplets(self) -> None:
        for index, chiplet in enumerate(self.spec.chiplets):
            ox, oy = chiplet.origin
            for y in range(chiplet.height):
                for x in range(chiplet.width):
                    self._add_router(index, x, y, ox + x, oy + y, PEKind.CORE)
            self._connect_mesh(index, chiplet.width, chiplet.height)

    def _connect_mesh(self, layer: int, width: int, height: int) -> None:
        for y in range(height):
            for x in range(width):
                router = self.routers[self._by_coord[(layer, x, y)]]
                for direction in Direction:
                    nx, ny = x + direction.dx, y + direction.dy
                    neighbor = self._by_coord.get((layer, nx, ny))
                    if neighbor is not None:
                        router.neighbors[direction] = neighbor

    def _build_vertical_links(self) -> None:
        for index, chiplet in enumerate(self.spec.chiplets):
            ox, oy = chiplet.origin
            links: list[VerticalLink] = []
            for local_index, (cx, cy) in enumerate(chiplet.vl_positions):
                top_id = self._by_coord[(index, cx, cy)]
                bottom_id = self._by_coord.get((INTERPOSER_LAYER, ox + cx, oy + cy))
                if bottom_id is None:
                    raise TopologyError(
                        f"no interposer router beneath chiplet {index} VL ({cx},{cy})"
                    )
                top, bottom = self.routers[top_id], self.routers[bottom_id]
                if bottom.vertical_neighbor is not None:
                    raise TopologyError(
                        f"interposer router ({bottom.x},{bottom.y}) already has a VL"
                    )
                link = VerticalLink(
                    index=len(self.vls),
                    chiplet=index,
                    local_index=local_index,
                    chiplet_router=top_id,
                    interposer_router=bottom_id,
                    cx=cx,
                    cy=cy,
                )
                self.vls.append(link)
                links.append(link)
                top.vertical_neighbor = bottom_id
                top.vl_index = link.index
                bottom.vertical_neighbor = top_id
                bottom.vl_index = link.index
            self._vls_of_chiplet[index] = links

    def _index_pes(self) -> None:
        self.cores: tuple[int, ...] = tuple(
            r.id for r in self.routers if r.pe is PEKind.CORE
        )
        self.drams: tuple[int, ...] = tuple(
            r.id for r in self.routers if r.pe is PEKind.DRAM
        )
        self.pes: tuple[int, ...] = self.cores + self.drams

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------

    @property
    def num_routers(self) -> int:
        return len(self.routers)

    @property
    def num_interposer_routers(self) -> int:
        return self.spec.interposer_width * self.spec.interposer_height

    def router_id(self, layer: int, x: int, y: int) -> int:
        """Router id at layer-local coordinates; raises for unknown coords."""
        try:
            return self._by_coord[(layer, x, y)]
        except KeyError:
            raise TopologyError(f"no router at layer {layer} ({x},{y})") from None

    def router(self, router_id: int) -> Router:
        return self.routers[router_id]

    def layer_of(self, router_id: int) -> int:
        return self.routers[router_id].layer

    def chiplet_routers(self, chiplet: int) -> list[Router]:
        """All routers of one chiplet, row-major order."""
        spec = self.spec.chiplets[chiplet]
        return [
            self.routers[self._by_coord[(chiplet, x, y)]]
            for y in range(spec.height)
            for x in range(spec.width)
        ]

    def interposer_routers(self) -> list[Router]:
        return self.routers[: self.num_interposer_routers]

    def vls_of_chiplet(self, chiplet: int) -> list[VerticalLink]:
        """The chiplet's vertical links in local-index order."""
        return list(self._vls_of_chiplet[chiplet])

    def vl(self, index: int) -> VerticalLink:
        return self.vls[index]

    def distance_on_layer(self, a: int, b: int) -> int:
        """Hop count between two routers of the same layer (paper eq. 4)."""
        ra, rb = self.routers[a], self.routers[b]
        if ra.layer != rb.layer:
            raise TopologyError(f"routers {a} and {b} are on different layers")
        return manhattan(ra.x, ra.y, rb.x, rb.y)

    def same_chiplet(self, a: int, b: int) -> bool:
        ra, rb = self.routers[a], self.routers[b]
        return ra.layer == rb.layer and not ra.is_interposer

    def signature(self) -> str:
        """A stable string identifying the topology (used for caching)."""
        spec = self.spec
        parts = [f"ip{spec.interposer_width}x{spec.interposer_height}"]
        for chiplet in spec.chiplets:
            vl_text = ",".join(f"{x}.{y}" for x, y in chiplet.vl_positions)
            parts.append(
                f"c@{chiplet.origin[0]}.{chiplet.origin[1]}"
                f"+{chiplet.width}x{chiplet.height}[{vl_text}]"
            )
        if spec.dram_positions:
            parts.append("d" + ",".join(f"{x}.{y}" for x, y in spec.dram_positions))
        return "|".join(parts)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"System({self.spec.describe()})"


def build_system(spec: SystemSpec) -> System:
    """Build the router graph for ``spec``.

    Raises:
        TopologyError: if a vertical link has no interposer router beneath
            it or two VLs collide on the same interposer router.
    """
    return System(spec)
