"""2.5D chiplet topology model.

The topology package describes the physical structure of a 2.5D system:
chiplets (2D meshes of routers, each with a core PE), an active interposer
(a 2D mesh covering the full footprint, optionally with DRAM/L2/directory
PEs on selected routers), and the vertical links (VLs) connecting chiplet
boundary routers to the interposer routers directly beneath them.

Public entry points:

* :func:`build_system` — construct a :class:`System` from a
  :class:`SystemSpec`.
* :func:`repro.topology.presets.baseline_4_chiplets` /
  :func:`repro.topology.presets.baseline_6_chiplets` — the paper's two
  evaluation systems.
"""

from .geometry import (
    Direction,
    PortKind,
    INTERPOSER_LAYER,
    direction_between,
    manhattan,
    opposite,
)
from .spec import ChipletSpec, SystemSpec
from .builder import PEKind, Router, System, VerticalLink, build_system
from .presets import (
    baseline_4_chiplets,
    baseline_6_chiplets,
    chiplet_grid,
    single_chiplet,
)

__all__ = [
    "Direction",
    "PortKind",
    "INTERPOSER_LAYER",
    "direction_between",
    "manhattan",
    "opposite",
    "ChipletSpec",
    "SystemSpec",
    "PEKind",
    "Router",
    "System",
    "VerticalLink",
    "build_system",
    "baseline_4_chiplets",
    "baseline_6_chiplets",
    "chiplet_grid",
    "single_chiplet",
]
