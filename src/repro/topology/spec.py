"""Declarative topology specifications.

A :class:`SystemSpec` is a pure-data description of a 2.5D system that can
be validated and serialized independently of the built router graph. Use
:func:`repro.topology.builder.build_system` to turn a spec into a
:class:`~repro.topology.builder.System`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..errors import TopologyError


@dataclass(frozen=True)
class ChipletSpec:
    """One chiplet: a ``width`` x ``height`` mesh placed on the interposer.

    Attributes:
        origin: interposer-grid coordinate of the chiplet's north-west
            (minimum x, minimum y) router. Chiplet router with local
            coordinate ``(x, y)`` sits directly above interposer router
            ``(origin[0] + x, origin[1] + y)``.
        width / height: mesh dimensions in routers.
        vl_positions: chiplet-local coordinates of the boundary routers
            that own a vertical link. The default (set by the presets) is
            the border placement of Yin et al. [7], which the paper calls
            optimal for a 4x4 chiplet.
    """

    origin: tuple[int, int]
    width: int
    height: int
    vl_positions: tuple[tuple[int, int], ...]

    def __post_init__(self) -> None:
        if self.width < 1 or self.height < 1:
            raise TopologyError(f"chiplet dimensions must be >= 1, got {self.width}x{self.height}")
        if not self.vl_positions:
            raise TopologyError("a chiplet needs at least one vertical link")
        seen: set[tuple[int, int]] = set()
        for (x, y) in self.vl_positions:
            if not (0 <= x < self.width and 0 <= y < self.height):
                raise TopologyError(
                    f"VL position ({x},{y}) outside {self.width}x{self.height} chiplet"
                )
            if (x, y) in seen:
                raise TopologyError(f"duplicate VL position ({x},{y})")
            seen.add((x, y))

    @property
    def num_routers(self) -> int:
        return self.width * self.height

    @property
    def num_vls(self) -> int:
        return len(self.vl_positions)

    def covers(self, gx: int, gy: int) -> bool:
        """Whether interposer coordinate ``(gx, gy)`` lies under this chiplet."""
        ox, oy = self.origin
        return ox <= gx < ox + self.width and oy <= gy < oy + self.height


@dataclass(frozen=True)
class SystemSpec:
    """A full 2.5D system: chiplets + interposer mesh + interposer PEs.

    Attributes:
        chiplets: the chiplet placements; chiplet index = list position.
        interposer_width / interposer_height: interposer mesh dimensions.
        dram_positions: interposer-grid coordinates of routers with an
            attached DRAM processing element (packet sources/sinks on the
            interposer, as in Fig. 1 of the paper).
        name: human-readable label used in reports.
    """

    chiplets: tuple[ChipletSpec, ...]
    interposer_width: int
    interposer_height: int
    dram_positions: tuple[tuple[int, int], ...] = field(default_factory=tuple)
    name: str = "custom"

    def __post_init__(self) -> None:
        if self.interposer_width < 1 or self.interposer_height < 1:
            raise TopologyError("interposer dimensions must be >= 1")
        if not self.chiplets:
            raise TopologyError("a system needs at least one chiplet")
        self._check_chiplet_bounds()
        self._check_chiplet_overlap()
        self._check_dram_positions()

    def _check_chiplet_bounds(self) -> None:
        for index, chiplet in enumerate(self.chiplets):
            ox, oy = chiplet.origin
            if ox < 0 or oy < 0:
                raise TopologyError(f"chiplet {index} origin {chiplet.origin} is negative")
            if ox + chiplet.width > self.interposer_width or oy + chiplet.height > self.interposer_height:
                raise TopologyError(
                    f"chiplet {index} at {chiplet.origin} size "
                    f"{chiplet.width}x{chiplet.height} exceeds the "
                    f"{self.interposer_width}x{self.interposer_height} interposer"
                )

    def _check_chiplet_overlap(self) -> None:
        claimed: dict[tuple[int, int], int] = {}
        for index, chiplet in enumerate(self.chiplets):
            ox, oy = chiplet.origin
            for x in range(ox, ox + chiplet.width):
                for y in range(oy, oy + chiplet.height):
                    if (x, y) in claimed:
                        raise TopologyError(
                            f"chiplets {claimed[(x, y)]} and {index} overlap at ({x},{y})"
                        )
                    claimed[(x, y)] = index

    def _check_dram_positions(self) -> None:
        seen: set[tuple[int, int]] = set()
        for (x, y) in self.dram_positions:
            if not (0 <= x < self.interposer_width and 0 <= y < self.interposer_height):
                raise TopologyError(f"DRAM position ({x},{y}) outside the interposer")
            if (x, y) in seen:
                raise TopologyError(f"duplicate DRAM position ({x},{y})")
            seen.add((x, y))

    @property
    def num_chiplets(self) -> int:
        return len(self.chiplets)

    @property
    def num_cores(self) -> int:
        """Total core PEs (one per chiplet router)."""
        return sum(c.num_routers for c in self.chiplets)

    @property
    def num_vertical_links(self) -> int:
        """Bidirectional vertical links in the system."""
        return sum(c.num_vls for c in self.chiplets)

    @property
    def num_directed_vls(self) -> int:
        """Unidirectional VL channels — the unit of the paper's fault counts.

        The paper's Fig. 7 caption counts 32 VLs for the 4-chiplet system
        (4 chiplets x 4 bidirectional VLs x 2 directions) and 48 for the
        6-chiplet system.
        """
        return 2 * self.num_vertical_links

    def chiplet_at(self, gx: int, gy: int) -> int | None:
        """Chiplet index covering interposer coordinate ``(gx, gy)``, if any."""
        for index, chiplet in enumerate(self.chiplets):
            if chiplet.covers(gx, gy):
                return index
        return None

    def describe(self) -> str:
        """One-line human-readable summary of the system."""
        return (
            f"{self.name}: {self.num_chiplets} chiplets, "
            f"{self.num_cores} cores, interposer "
            f"{self.interposer_width}x{self.interposer_height}, "
            f"{self.num_vertical_links} bidirectional VLs "
            f"({self.num_directed_vls} directed), "
            f"{len(self.dram_positions)} DRAM PEs"
        )


def rectangular_vl_border_positions(width: int, height: int) -> tuple[tuple[int, int], ...]:
    """The paper's default border VL placement for a ``width`` x ``height`` chiplet.

    For the 4x4 chiplet of the baseline system this yields the four border
    tiles highlighted in Fig. 3: two on the north edge and two on the south
    edge, at the middle columns. For other sizes the same pattern is used
    (middle two columns of the top and bottom rows), which keeps the VLs on
    the chiplet border as [7] recommends.
    """
    if width < 2 or height < 1:
        raise TopologyError("border VL placement needs a chiplet at least 2 wide")
    left = (width - 1) // 2
    right = left + 1 if width > 1 else left
    top, bottom = 0, height - 1
    positions: list[tuple[int, int]] = [(left, top), (right, top)]
    if bottom != top:
        positions += [(left, bottom), (right, bottom)]
    return tuple(dict.fromkeys(positions))


def iter_positions(width: int, height: int) -> Iterable[tuple[int, int]]:
    """Row-major iteration over all ``(x, y)`` positions of a mesh."""
    for y in range(height):
        for x in range(width):
            yield (x, y)
