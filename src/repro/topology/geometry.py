"""Geometric primitives: directions, port kinds, coordinates.

Coordinate convention: ``x`` grows eastward, ``y`` grows southward (screen
coordinates, matching the figures in the paper). ``NORTH`` is ``-y``.

Port naming follows the paper (Section III-A):

* "Horizontal" ports are EAST/WEST/NORTH/SOUTH — intra-chiplet and
  intra-interposer mesh links.
* The "Down" port carries a packet from a chiplet boundary router to the
  interposer router beneath it; the "Up" port carries a packet from an
  interposer router to the chiplet boundary router above it. In this
  implementation each vertically-connected router has a single *vertical*
  port whose traversal direction (up/down) is implied by which layer the
  router is on.
* The "Local" port connects a router to its processing element.
"""

from __future__ import annotations

import enum

#: Layer index used for interposer routers; chiplets use indices 0..N-1.
INTERPOSER_LAYER = -1


class Direction(enum.IntEnum):
    """A mesh link direction (also used as an output-port identifier)."""

    EAST = 0
    WEST = 1
    NORTH = 2
    SOUTH = 3

    @property
    def dx(self) -> int:
        return {Direction.EAST: 1, Direction.WEST: -1}.get(self, 0)

    @property
    def dy(self) -> int:
        return {Direction.SOUTH: 1, Direction.NORTH: -1}.get(self, 0)


class PortKind(enum.IntEnum):
    """Classification of a router port as used by the VN rules.

    ``VERTICAL`` is the single up/down port of a vertically connected
    router; whether its traversal is "Up" or "Down" in the paper's sense
    depends on the router's layer (chiplet side sends down, interposer side
    sends up).
    """

    LOCAL = 0
    HORIZONTAL = 1
    VERTICAL = 2


_OPPOSITE = {
    Direction.EAST: Direction.WEST,
    Direction.WEST: Direction.EAST,
    Direction.NORTH: Direction.SOUTH,
    Direction.SOUTH: Direction.NORTH,
}


def opposite(direction: Direction) -> Direction:
    """Return the opposing mesh direction (EAST <-> WEST, NORTH <-> SOUTH)."""
    return _OPPOSITE[direction]


def manhattan(ax: int, ay: int, bx: int, by: int) -> int:
    """Hop count between two routers of the same mesh (paper eq. 4)."""
    return abs(ax - bx) + abs(ay - by)


def direction_between(ax: int, ay: int, bx: int, by: int) -> Direction:
    """Direction of the single-hop move from ``(ax, ay)`` to ``(bx, by)``.

    Raises:
        ValueError: if the two coordinates are not mesh neighbours.
    """
    dx, dy = bx - ax, by - ay
    if (dx, dy) == (1, 0):
        return Direction.EAST
    if (dx, dy) == (-1, 0):
        return Direction.WEST
    if (dx, dy) == (0, -1):
        return Direction.NORTH
    if (dx, dy) == (0, 1):
        return Direction.SOUTH
    raise ValueError(f"({ax},{ay}) and ({bx},{by}) are not mesh neighbours")


def xy_first_step(ax: int, ay: int, bx: int, by: int) -> Direction:
    """First hop of the XY-minimal route from ``a`` to ``b`` (X, then Y).

    Raises:
        ValueError: if ``a == b`` (no step needed).
    """
    if ax < bx:
        return Direction.EAST
    if ax > bx:
        return Direction.WEST
    if ay > by:
        return Direction.NORTH
    if ay < by:
        return Direction.SOUTH
    raise ValueError("source and destination coincide; no XY step exists")


def xy_path(ax: int, ay: int, bx: int, by: int) -> list[tuple[int, int]]:
    """All coordinates of the XY-minimal route from ``a`` to ``b``, inclusive."""
    path = [(ax, ay)]
    x, y = ax, ay
    while x != bx:
        x += 1 if bx > x else -1
        path.append((x, y))
    while y != by:
        y += 1 if by > y else -1
        path.append((x, y))
    return path


def xy_arrival_direction(ax: int, ay: int, bx: int, by: int) -> Direction:
    """Direction of the *last* hop of the XY route from ``a`` to ``b``.

    This is the direction a packet is travelling when it arrives at ``b``;
    the packet enters ``b`` through the port opposite to it. Used by the
    MTR turn-restriction model to decide whether a route may turn into a
    vertical link at ``b``.

    Raises:
        ValueError: if ``a == b``.
    """
    if ay != by:
        return Direction.SOUTH if by > ay else Direction.NORTH
    if ax != bx:
        return Direction.EAST if bx > ax else Direction.WEST
    raise ValueError("source and destination coincide; no arrival direction")


def xy_departure_direction(ax: int, ay: int, bx: int, by: int) -> Direction:
    """Direction of the *first* hop of the XY route from ``a`` to ``b``.

    Alias of :func:`xy_first_step`, named for the MTR up-turn model.
    """
    return xy_first_step(ax, ay, bx, by)
