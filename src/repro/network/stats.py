"""Statistics collection for simulation runs.

Collects exactly what the paper's evaluation reports:

* average packet latency over measured packets (Figs. 4, 6, 8);
* VC utilization per region — interposer and each chiplet (Fig. 5);
* delivered/dropped packet counts — in-simulation reachability (Fig. 7
  is computed analytically, but the simulator cross-checks it);
* per-VL load distribution (diagnostics for the selection optimizer).
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass, field

from ..topology.builder import System
from ..topology.geometry import INTERPOSER_LAYER


@dataclass
class LatencySummary:
    """Aggregate latency over the measured packet population.

    Keeps the raw samples so tail percentiles are available — mean latency
    alone hides the congestion tail that saturation studies care about.
    """

    count: int = 0
    total: float = 0.0
    maximum: int = 0
    minimum: int = 0
    samples: list[int] = field(default_factory=list)

    def record(self, latency: int) -> None:
        if self.count == 0:
            self.minimum = latency
            self.maximum = latency
        else:
            self.minimum = min(self.minimum, latency)
            self.maximum = max(self.maximum, latency)
        self.count += 1
        self.total += latency
        self.samples.append(latency)

    @property
    def average(self) -> float:
        return self.total / self.count if self.count else float("nan")

    def percentile(self, p: float) -> float:
        """Latency percentile ``p`` in [0, 100] (nearest-rank method)."""
        if not self.samples:
            return float("nan")
        if not 0 <= p <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        ordered = sorted(self.samples)
        rank = max(1, math.ceil(p / 100 * len(ordered)))
        return float(ordered[rank - 1])

    @property
    def p50(self) -> float:
        return self.percentile(50)

    @property
    def p95(self) -> float:
        return self.percentile(95)

    @property
    def p99(self) -> float:
        return self.percentile(99)


class StatsCollector:
    """Mutable statistics accumulated by one simulation run."""

    def __init__(self, system: System, num_vcs: int):
        self.system = system
        self.num_vcs = num_vcs
        self.latency = LatencySummary()
        self.hops = LatencySummary()
        self.packets_created = 0
        self.packets_measured = 0
        self.packets_delivered = 0
        self.packets_delivered_measured = 0
        self.packets_dropped_unroutable = 0
        self.packets_dropped_measured = 0
        self.flit_hops = 0
        # region (-1 interposer, else chiplet id) x vc -> flit traversals
        self.vc_flits: dict[int, list[int]] = defaultdict(lambda: [0] * num_vcs)
        # directed VL channel loads: (vl_index, direction 0=down,1=up) -> flits
        self.vl_flits: dict[tuple[int, int], int] = defaultdict(int)
        self.cycles_run = 0

    # -- recording hooks ----------------------------------------------------

    def on_packet_created(self, measured: bool) -> None:
        self.packets_created += 1
        if measured:
            self.packets_measured += 1

    def on_packet_dropped(self, measured: bool) -> None:
        self.packets_dropped_unroutable += 1
        if measured:
            self.packets_dropped_measured += 1

    def on_packet_delivered(self, latency: int, hops: int, measured: bool) -> None:
        self.packets_delivered += 1
        if measured:
            self.packets_delivered_measured += 1
            self.latency.record(latency)
            self.hops.record(hops)

    def on_flit_transfer(self, dest_layer: int, vc: int) -> None:
        """A flit moved across a link into a router of ``dest_layer``."""
        self.flit_hops += 1
        self.vc_flits[dest_layer][vc] += 1

    def on_vl_traversal(self, vl_index: int, direction: int) -> None:
        self.vl_flits[(vl_index, direction)] += 1

    # -- derived metrics ------------------------------------------------------

    @property
    def average_latency(self) -> float:
        return self.latency.average

    @property
    def delivered_ratio(self) -> float:
        """Delivered / (delivered + dropped) over measured packets.

        This is the simulator-side analogue of the paper's reachability
        metric ("ratio of packets that can be successfully routed, to the
        total number of injected packets").
        """
        attempted = self.packets_delivered_measured + self.packets_dropped_measured
        if attempted == 0:
            return float("nan")
        return self.packets_delivered_measured / attempted

    def vc_utilization(self, region: int) -> list[float]:
        """Per-VC share of flit traversals in a region (sums to 1.0).

        ``region`` is ``INTERPOSER_LAYER`` or a chiplet index. Regions with
        no traffic return an even split (no information).
        """
        counts = self.vc_flits.get(region)
        if not counts or sum(counts) == 0:
            return [1.0 / self.num_vcs] * self.num_vcs
        total = sum(counts)
        return [c / total for c in counts]

    def vc_utilization_report(self) -> dict[str, list[float]]:
        """VC utilization for the interposer and every chiplet (Fig. 5)."""
        report = {"interposer": self.vc_utilization(INTERPOSER_LAYER)}
        for chiplet in range(self.system.spec.num_chiplets):
            report[f"chiplet-{chiplet}"] = self.vc_utilization(chiplet)
        return report

    def vl_load_report(self) -> dict[int, tuple[int, int]]:
        """Per-VL (down_flits, up_flits) totals."""
        report: dict[int, tuple[int, int]] = {}
        for link in self.system.vls:
            down = self.vl_flits.get((link.index, 0), 0)
            up = self.vl_flits.get((link.index, 1), 0)
            report[link.index] = (down, up)
        return report
