"""The cycle-kernel contract.

A :class:`CycleKernel` advances one simulation by whole cycles. The
engine (:class:`~repro.network.simulator.Simulator`) owns configuration,
the run loop, reporting and telemetry; the kernel owns the per-cycle
state and the semantics of one step. Two kernels ship:

* ``reference`` — the object-based phase pipeline, the semantic ground
  truth (:mod:`repro.network.kernels.reference`);
* ``vector`` — numpy struct-of-arrays execution of the same semantics
  (:mod:`repro.network.kernels.vector`).

Equivalence contract: for the same (system, algorithm, traffic, config,
routes), both kernels must produce identical :func:`canonical snapshots
<repro.network.state.snapshot_state>` after every step. Anything
observable — buffer contents, credits, allocations, round-robin
counters, staged arrivals, statistics, algorithm callbacks and their
order — is part of that contract; wall-clock is the only degree of
freedom.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..nic import Nic
    from ..simulator import Simulator
    from ..state import RouterView


class CycleKernel(abc.ABC):
    """Behavior over one simulation's state: advance it by one cycle."""

    #: Registry name (``reference`` / ``vector``).
    name: str = "base"

    def __init__(self, sim: "Simulator"):
        self.sim = sim

    # -- stepping -------------------------------------------------------

    @abc.abstractmethod
    def step(self, generate: bool) -> None:
        """Advance one cycle (traffic, injection, routers, commit, watchdog)."""

    # -- state the engine and tests observe -----------------------------

    cycle: int
    packet_counter: int
    flits_in_flight: int
    last_progress: int
    measured_outstanding: int

    @abc.abstractmethod
    def router_states(self) -> list["RouterView"]:
        """Per-router state views in the legacy ``sim.routers`` shape."""

    @abc.abstractmethod
    def nic_states(self) -> list["Nic"]:
        """The NICs (live objects in both kernels)."""

    @abc.abstractmethod
    def snapshot(self) -> tuple:
        """Canonical snapshot for cross-kernel equivalence checks."""

    # -- idle fast-forward (engine drain loop) ---------------------------

    @abc.abstractmethod
    def is_idle(self) -> bool:
        """No occupied buffers, busy NICs or RC flits — only staged events."""

    @abc.abstractmethod
    def next_event_cycle(self) -> int | None:
        """Earliest staged arrival/credit cycle, or None when none pending."""

    @abc.abstractmethod
    def fast_forward(self, cycle: int) -> None:
        """Jump an idle kernel's clock forward (no cycle may be skipped that
        would have generated traffic, moved a flit or tripped the watchdog —
        the engine guarantees the target respects all three)."""

    # -- reporting ------------------------------------------------------

    def finalize(self) -> None:
        """Flush any internal accumulators into the shared stats object."""

    def dispatch_counts(self) -> tuple[int, int]:
        """(table-served hops, live-dispatch hops) for telemetry; the
        reference kernel reports zeros — the split only exists where a
        dense table is in play."""
        return (0, 0)
