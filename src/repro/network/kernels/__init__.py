"""Cycle kernels: interchangeable per-cycle execution strategies.

Selection (:func:`create_kernel`):

* ``"reference"`` — always available; object-based ground truth.
* ``"vector"`` — numpy struct-of-arrays execution; requires numpy and a
  compiled route table. When the algorithm is compilable but the
  simulator was built without routes, a table is compiled on the spot;
  when the algorithm cannot be compiled at all, the request falls back
  to ``reference`` and the reason is recorded on the simulator.
* ``"auto"`` — honours the ``DEFT_KERNEL`` environment variable if set
  (for external fleets where plumbing a flag is impractical), otherwise
  picks ``vector`` exactly when numpy is importable and compiled routes
  are in play, else ``reference``.

Precedence across the stack: ``--kernel`` CLI flag > per-job ``kernel``
field > ``DEFT_KERNEL`` env > auto heuristic. The CLI flag simply
rewrites the job field, and the env var only applies to jobs that reach
the simulator still saying ``auto``.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING

from ...errors import ConfigurationError
from .base import CycleKernel
from .reference import ReferenceKernel

if TYPE_CHECKING:  # pragma: no cover
    from ..simulator import Simulator

__all__ = [
    "CycleKernel",
    "ReferenceKernel",
    "KERNEL_ENV",
    "KERNEL_NAMES",
    "create_kernel",
    "numpy_available",
]

#: Environment variable consulted by ``auto`` selection.
KERNEL_ENV = "DEFT_KERNEL"

#: Accepted kernel requests, in documentation order.
KERNEL_NAMES = ("auto", "reference", "vector")


def numpy_available() -> bool:
    try:
        import numpy  # noqa: F401
    except ImportError:  # pragma: no cover - numpy ships in the image
        return False
    return True


def create_kernel(
    sim: "Simulator", requested: str
) -> tuple[CycleKernel, str | None]:
    """Instantiate the kernel for ``requested``; returns (kernel, fallback).

    ``fallback`` is a human-readable reason when a ``vector`` request had
    to be served by ``reference``, else None. May compile (and assign)
    ``sim.routes`` when an explicit ``vector`` request arrives without a
    route table.
    """
    if requested not in KERNEL_NAMES:
        raise ConfigurationError(
            f"unknown kernel {requested!r}; expected one of {KERNEL_NAMES}"
        )
    name = requested
    if name == "auto":
        env = os.environ.get(KERNEL_ENV)
        if env:
            if env not in KERNEL_NAMES:
                raise ConfigurationError(
                    f"{KERNEL_ENV}={env!r} is not one of {KERNEL_NAMES}"
                )
            name = env
    if name == "auto":
        name = "vector" if numpy_available() and sim.routes is not None else "reference"
    if name == "reference":
        return ReferenceKernel(sim), None
    # -- vector ---------------------------------------------------------
    if not numpy_available():
        raise ConfigurationError(
            "kernel 'vector' requires numpy, which is not importable"
        )
    if sim.routes is None:
        if not sim.algorithm.compilable:
            return ReferenceKernel(sim), (
                f"vector kernel needs a compiled route table and algorithm "
                f"{sim.algorithm.name!r} is not compilable"
            )
        from ...routing.compiled import compile_routes

        sim.routes = compile_routes(sim.algorithm)
    from .vector import VectorKernel

    return VectorKernel(sim), None
