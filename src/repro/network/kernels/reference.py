"""The object-based reference cycle kernel (semantic ground truth).

This is the pre-refactor ``Simulator._step`` pipeline ported onto
:class:`~repro.network.state.SimState`, with one deliberate semantic
tightening: every iteration that used to follow Python *set* order
(active routers, active input VCs, busy NICs) is **canonicalized to
sorted order**, and router processing is split into two global phases —
first route-compute/VC-allocate for every router, then switch-allocate/
send for every router. Within one cycle nothing a router's send phase
mutates is read by another router's plan phase (transfers and credits
are staged, per-router state is per-router), so the phase split changes
results only through the canonical ordering itself. A deterministic,
specification-friendly order is what makes an independent numpy kernel
able to reproduce the run bit-for-bit — set iteration order is not a
semantics anyone can re-implement.

Per-cycle phases (unchanged from the original engine):

1. **Traffic** — the generator creates packets into NIC source queues.
2. **Injection** — each NIC pushes at most one flit into its router's
   LOCAL input VC (respecting buffer space, routability and the routing
   algorithm's injection-permission hook).
3. **Plan** — for every active router in id order, every occupied input
   VC in (port, vc) order: route computation for fresh heads (served
   from a compiled route table when available), output-VC allocation,
   switch-allocation request collection.
4. **Serve** — per router: round-robin switch allocation (one flit per
   output port and per input port), flit departure, RC-buffer
   absorption/drain. Departing flits and credit returns are *staged*.
5. **Commit** — staged flits enter their destination buffers; staged
   credits return upstream.

The watchdog raises :class:`~repro.errors.DeadlockError` when flits are
in flight but nothing has moved for ``watchdog_cycles``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ...errors import DeadlockError, UnroutablePacketError
from ...fault.model import VLDirection
from ...routing.base import Port
from ..flit import Flit, Packet
from ..nic import Nic
from ..state import NUM_PORTS, RC_PORT, SimState, partition_vcs, snapshot_state
from .base import CycleKernel

if TYPE_CHECKING:  # pragma: no cover
    from ..simulator import Simulator
    from ..state import RouterView


class ReferenceKernel(CycleKernel):
    """Canonical object-based execution of the cycle semantics."""

    name = "reference"

    def __init__(self, sim: "Simulator"):
        super().__init__(sim)
        self.system = sim.system
        self.algorithm = sim.algorithm
        self.traffic = sim.traffic
        self.config = sim.config
        self.stats = sim.stats
        self._route = sim.routes.route if sim.routes is not None else sim.algorithm.route
        self._num_vcs = sim.config.num_vcs
        self._depth = sim.config.buffer_depth
        self._vn_vcs = partition_vcs(self._num_vcs)
        self._rr_mod = NUM_PORTS * self._num_vcs
        self._vl_serialization = sim.config.vl_serialization
        self.state = SimState(sim.system, sim.algorithm, sim.config)

    # -- counters the engine observes -----------------------------------

    @property
    def cycle(self) -> int:
        return self.state.cycle

    @property
    def packet_counter(self) -> int:
        return self.state.packet_counter

    @property
    def flits_in_flight(self) -> int:
        return self.state.flits_in_flight

    @property
    def last_progress(self) -> int:
        return self.state.last_progress

    @property
    def measured_outstanding(self) -> int:
        return self.state.measured_outstanding

    def router_states(self) -> list["RouterView"]:
        return self.state.router_views()

    def nic_states(self) -> list[Nic]:
        return self.state.nics

    def snapshot(self) -> tuple:
        return snapshot_state(self.state, self.stats)

    def is_idle(self) -> bool:
        st = self.state
        return not st.active_routers and not st.busy_nics

    def next_event_cycle(self) -> int | None:
        st = self.state
        dues = list(st.arrivals) + list(st.credit_arrivals)
        return min(dues) if dues else None

    def fast_forward(self, cycle: int) -> None:
        assert cycle > self.state.cycle
        self.state.cycle = cycle

    # ------------------------------------------------------------------
    # per-cycle phases
    # ------------------------------------------------------------------

    def step(self, generate: bool) -> None:
        st = self.state
        if generate:
            self._generate_traffic()
        self._inject()
        transfers, credit_returns = self._process_routers()
        self._commit(transfers, credit_returns)
        self._check_watchdog()
        st.cycle += 1

    def _generate_traffic(self) -> None:
        st = self.state
        measured_window = st.cycle >= self.config.warmup_cycles
        for src, dst in self.traffic.packets_for_cycle(st.cycle):
            packet = Packet(
                st.packet_counter, src, dst, self.config.packet_size, st.cycle
            )
            st.packet_counter += 1
            packet.measured = measured_window
            self.stats.on_packet_created(packet.measured)
            if packet.measured:
                st.measured_outstanding += 1
            st.nics[src].enqueue(packet)
            st.busy_nics.add(src)

    def _inject(self) -> None:
        st = self.state
        done: list[int] = []
        for nid in sorted(st.busy_nics):
            nic = st.nics[nid]
            if not nic.busy:
                if not self._start_next_packet(nic):
                    if not nic.queue and not nic.busy:
                        done.append(nid)
                    continue
            flit = nic.next_flit()
            if flit is None:
                continue
            vc = nic.inject_vc
            buffer = st.buffers[nid][Port.LOCAL][vc]
            if len(buffer) < self._depth:
                buffer.append(flit)
                st.active[nid].add((int(Port.LOCAL), vc))
                st.active_routers.add(nid)
                st.flits_in_flight += 1
                st.last_progress = st.cycle
                nic.advance()
            if not nic.busy and not nic.queue:
                done.append(nid)
        for nid in done:
            st.busy_nics.discard(nid)

    def _start_next_packet(self, nic: Nic) -> bool:
        """Pop queued packets until one starts injecting; False if none can."""
        st = self.state
        algo = self.algorithm
        while nic.queue:
            packet = nic.queue[0]
            if not algo.is_routable(packet.src, packet.dst):
                nic.queue.popleft()
                self.stats.on_packet_dropped(packet.measured)
                if packet.measured:
                    st.measured_outstanding -= 1
                continue
            if not algo.may_inject(packet, st.cycle):
                return False  # head-of-line wait (RC permission network)
            try:
                algo.prepare_packet(packet)
            except UnroutablePacketError:
                nic.queue.popleft()
                self.stats.on_packet_dropped(packet.measured)
                if packet.measured:
                    st.measured_outstanding -= 1
                continue
            nic.queue.popleft()
            vc = self._injection_vc(packet)
            nic.start_packet(packet, vc, st.cycle)
            return True
        return False

    def _injection_vc(self, packet: Packet) -> int:
        """Input VC for a fresh packet: emptiest VC of its assigned VN."""
        vcs = self._vn_vcs[packet.vn]
        buffers = self.state.buffers[packet.src][Port.LOCAL]
        return min(vcs, key=lambda vc: len(buffers[vc]))

    # -- router processing ---------------------------------------------

    def _process_routers(
        self,
    ) -> tuple[list[tuple[int, int, int, Flit]], list[tuple[int, int, int]]]:
        st = self.state
        transfers: list[tuple[int, int, int, Flit]] = []  # (dst, in_port, vc, flit)
        credit_returns: list[tuple[int, int, int]] = []  # (router, out_port, vc)
        rids = sorted(st.active_routers)
        plans = []
        for rid in rids:
            plan = self._plan_router(rid)
            if plan is not None:
                plans.append((rid, plan))
        for rid, (requests, rc_requests) in plans:
            self._serve_router(rid, requests, rc_requests, transfers, credit_returns)
        for rid in rids:
            rc = st.rc_buffers[rid]
            if not st.active[rid] and not (rc is not None and rc.flits):
                st.active_routers.discard(rid)
        return transfers, credit_returns

    def _plan_router(
        self, rid: int
    ) -> tuple[dict[int, list[tuple[int, int]]], list[tuple[int, int]]] | None:
        """Route-compute, allocate and collect SA requests for one router."""
        st = self.state
        buffers = st.buffers[rid]
        assigned = st.assigned[rid]
        decisions = st.decision[rid]
        credits = st.credits[rid]
        rc_buffer = st.rc_buffers[rid]
        requests: dict[int, list[tuple[int, int]]] = {}
        rc_requests: list[tuple[int, int]] = []
        for (port, vc) in sorted(st.active[rid]):
            buffer = buffers[port][vc]
            if not buffer:
                continue
            flit = buffer[0]
            target = assigned[port][vc]
            if target is None:
                if not flit.is_head:
                    continue  # waits for its head's allocation (cannot happen mid-packet)
                decision = decisions[port][vc]
                if decision is None:
                    decision = self._route(flit.packet, rid, Port(port))
                    decisions[port][vc] = decision
                out_port = int(decision.out_port)
                if (
                    out_port == Port.VERTICAL
                    and rc_buffer is not None
                    and flit.packet.needs_rc
                ):
                    if rc_buffer.owner is None:
                        rc_buffer.owner = flit.packet
                    if rc_buffer.owner is flit.packet:
                        assigned[port][vc] = (RC_PORT, 0)
                        rc_requests.append((port, vc))
                    continue
                out_vc = self._allocate_out_vc(
                    rid, out_port, decision.allowed_vns, flit.packet
                )
                if out_vc is None:
                    continue
                assigned[port][vc] = (out_port, out_vc)
                target = (out_port, out_vc)
            out_port, out_vc = target
            if out_port == RC_PORT:
                rc_requests.append((port, vc))
            elif out_port == Port.LOCAL:
                requests.setdefault(out_port, []).append((port, vc))
            elif credits[out_port][out_vc] > 0:
                if out_port == Port.VERTICAL and not self._vl_available(rid):
                    continue  # serialized vertical link still busy
                requests.setdefault(out_port, []).append((port, vc))
        if not requests and not rc_requests and not (
            rc_buffer is not None and rc_buffer.complete
        ):
            return None
        return requests, rc_requests

    def _serve_router(
        self,
        rid: int,
        requests: dict[int, list[tuple[int, int]]],
        rc_requests: list[tuple[int, int]],
        transfers: list[tuple[int, int, int, Flit]],
        credit_returns: list[tuple[int, int, int]],
    ) -> None:
        """Switch-allocate and send for one router's collected requests."""
        st = self.state
        used_in_ports: set[int] = set()
        # Rotate output-port service order for long-term fairness.
        out_ports = sorted(requests)
        if out_ports:
            offset = st.sa_rr[rid] % len(out_ports)
            out_ports = out_ports[offset:] + out_ports[:offset]
            st.sa_rr[rid] += 1
        sa_rr = st.sa_rr[rid]
        for out_port in out_ports:
            candidates = [c for c in requests[out_port] if c[0] not in used_in_ports]
            if not candidates:
                continue
            winner = min(
                candidates,
                key=lambda c: (c[0] * self._num_vcs + c[1] - sa_rr) % self._rr_mod,
            )
            in_port, vc = winner
            used_in_ports.add(in_port)
            self._send_flit(rid, in_port, vc, out_port, transfers, credit_returns)
        if rc_requests:
            in_port, vc = rc_requests[0]
            if in_port not in used_in_ports:
                self._absorb_into_rc(rid, in_port, vc, credit_returns)
        self._drain_rc(rid, transfers)

    def _allocate_out_vc(
        self,
        rid: int,
        out_port: int,
        allowed_vns: tuple[int, ...],
        packet: Packet,
    ) -> int | None:
        """Claim a free output VC belonging to one of the allowed VNs."""
        if out_port == Port.LOCAL:
            return 0  # ejection needs no VC allocation; arbitration suffices
        owners = self.state.out_owner[rid][out_port]
        for vn in allowed_vns:
            for vc in self._vn_vcs[vn]:
                if owners[vc] is None:
                    owners[vc] = packet
                    packet.vn = vn
                    return vc
        return None

    def _send_flit(
        self,
        rid: int,
        in_port: int,
        vc: int,
        out_port: int,
        transfers: list[tuple[int, int, int, Flit]],
        credit_returns: list[tuple[int, int, int]],
    ) -> None:
        st = self.state
        buffer = st.buffers[rid][in_port][vc]
        flit = buffer.popleft()
        if not buffer:
            st.active[rid].discard((in_port, vc))
        if in_port != Port.LOCAL:
            credit_returns.append(self._upstream_credit(rid, in_port, vc))
        st.last_progress = st.cycle
        if out_port == Port.LOCAL:
            self._eject(flit)
        else:
            assigned = st.assigned[rid][in_port][vc]
            assert assigned is not None
            out_vc = assigned[1]
            st.credits[rid][out_port][out_vc] -= 1
            link = st.link_to[rid][out_port]
            assert link is not None, "route decision used a non-existent port"
            dst, dst_in_port = link
            transfers.append((dst, dst_in_port, out_vc, flit))
            if flit.is_head:
                flit.packet.hops += 1
            if out_port == Port.VERTICAL:
                router = self.system.routers[rid]
                direction = (
                    VLDirection.UP if router.is_interposer else VLDirection.DOWN
                )
                assert router.vl_index is not None
                self.stats.on_vl_traversal(router.vl_index, int(direction))
                self._mark_vl_busy(rid)
            if flit.is_tail:
                st.out_owner[rid][out_port][out_vc] = None
        if flit.is_tail:
            st.assigned[rid][in_port][vc] = None
            st.decision[rid][in_port][vc] = None

    def _upstream_credit(
        self, router_id: int, in_port: int, vc: int
    ) -> tuple[int, int, int]:
        """Locate the upstream (router, out_port, vc) to credit for a pop."""
        from ...routing.base import opposite_port

        router = self.system.routers[router_id]
        if in_port == Port.VERTICAL:
            upstream = router.vertical_neighbor
            assert upstream is not None
            return (upstream, int(Port.VERTICAL), vc)
        direction = Port(in_port)
        upstream = router.neighbors[direction]  # type: ignore[index]
        return (upstream, int(opposite_port(direction)), vc)

    def _eject(self, flit: Flit) -> None:
        st = self.state
        packet = flit.packet
        packet.flits_ejected += 1
        st.flits_in_flight -= 1
        if flit.is_tail:
            packet.delivered_cycle = st.cycle
            latency = packet.delivered_cycle - packet.created_cycle
            self.stats.on_packet_delivered(latency, packet.hops, packet.measured)
            self.algorithm.on_packet_delivered(packet, st.cycle)
            if packet.measured:
                st.measured_outstanding -= 1

    # -- RC buffer ------------------------------------------------------

    def _absorb_into_rc(
        self,
        rid: int,
        in_port: int,
        vc: int,
        credit_returns: list[tuple[int, int, int]],
    ) -> None:
        st = self.state
        unit = st.rc_buffers[rid]
        assert unit is not None
        buffer = st.buffers[rid][in_port][vc]
        if not buffer:
            return
        flit = buffer.popleft()
        if not buffer:
            st.active[rid].discard((in_port, vc))
        if in_port != Port.LOCAL:
            credit_returns.append(self._upstream_credit(rid, in_port, vc))
        unit.flits.append(flit)
        st.last_progress = st.cycle
        if flit.is_tail:
            unit.complete = True
            st.assigned[rid][in_port][vc] = None
            st.decision[rid][in_port][vc] = None
        st.active_routers.add(rid)

    def _drain_rc(
        self, rid: int, transfers: list[tuple[int, int, int, Flit]]
    ) -> None:
        st = self.state
        unit = st.rc_buffers[rid]
        if unit is None or not unit.complete or not unit.flits:
            return
        if unit.out_vc is None:
            owners = st.out_owner[rid][Port.VERTICAL]
            for vc in range(self._num_vcs):
                if owners[vc] is None:
                    owners[vc] = unit.owner
                    unit.out_vc = vc
                    break
            if unit.out_vc is None:
                return
        out_vc = unit.out_vc
        if st.credits[rid][Port.VERTICAL][out_vc] <= 0:
            return
        if not self._vl_available(rid):
            return  # serialized vertical link still busy
        flit = unit.flits.popleft()
        st.credits[rid][Port.VERTICAL][out_vc] -= 1
        link = st.link_to[rid][Port.VERTICAL]
        assert link is not None
        dst, dst_in_port = link
        transfers.append((dst, dst_in_port, out_vc, flit))
        st.last_progress = st.cycle
        if flit.is_head:
            flit.packet.hops += 1
        router = self.system.routers[rid]
        assert router.vl_index is not None
        self.stats.on_vl_traversal(router.vl_index, int(VLDirection.DOWN))
        self._mark_vl_busy(rid)
        if flit.is_tail:
            st.out_owner[rid][Port.VERTICAL][out_vc] = None
            packet = unit.owner
            assert packet is not None
            unit.reset()
            self.algorithm.on_rc_buffer_drained(rid, packet, st.cycle)

    # -- serialized vertical links --------------------------------------

    def _vl_available(self, router_id: int) -> bool:
        if self._vl_serialization <= 1:
            return True
        return self.state.cycle >= self.state.vl_next_free.get(router_id, 0)

    def _mark_vl_busy(self, router_id: int) -> None:
        if self._vl_serialization > 1:
            self.state.vl_next_free[router_id] = (
                self.state.cycle + self._vl_serialization
            )

    # -- commit ---------------------------------------------------------

    def _commit(
        self,
        transfers: list[tuple[int, int, int, Flit]],
        credit_returns: list[tuple[int, int, int]],
    ) -> None:
        st = self.state
        # Stage this cycle's departures into the future...
        if transfers:
            due = st.cycle + self.config.hop_latency - 1
            st.arrivals.setdefault(due, []).extend(transfers)
        if credit_returns:
            due = st.cycle + self.config.credit_latency - 1
            st.credit_arrivals.setdefault(due, []).extend(credit_returns)
        # ...and materialize everything due now.
        for dst, in_port, vc, flit in st.arrivals.pop(st.cycle, ()):
            buffer = st.buffers[dst][in_port][vc]
            assert len(buffer) < self._depth, "credit protocol violated"
            buffer.append(flit)
            st.active[dst].add((in_port, vc))
            st.active_routers.add(dst)
            self.stats.on_flit_transfer(self.system.routers[dst].layer, vc)
        for router_id, out_port, vc in st.credit_arrivals.pop(st.cycle, ()):
            st.credits[router_id][out_port][vc] += 1

    # -- watchdog --------------------------------------------------------

    def _check_watchdog(self) -> None:
        st = self.state
        limit = self.config.watchdog_cycles
        if limit <= 0 or st.flits_in_flight <= 0:
            return
        if st.cycle - st.last_progress >= limit:
            raise DeadlockError(st.last_progress, st.flits_in_flight)
