"""The numpy struct-of-arrays cycle kernel.

Same semantics as :mod:`repro.network.kernels.reference`, executed as
array sweeps. The kernel keeps a numeric mirror of the simulation state
— one flat *channel* axis indexes every input VC of every router
(``channel = (router * NUM_PORTS + port) * num_vcs + vc``), so ascending
channel order *is* the reference kernel's canonical ``(router, port,
vc)`` order — plus integer registries for packets and flits (a flit is
``first_fid[packet] + seq``). Per cycle:

* **Plan** — gather the front flit of every occupied channel; fresh
  heads get their route decision from the compiled table's dense view
  (:meth:`~repro.routing.compiled.CompiledRoutes.dense_table`) in one
  ``searchsorted`` batch. Hops the algorithm flags as stateful (via
  :meth:`~repro.routing.base.RoutingAlgorithm.stateful_boundary_router`),
  unbound-VL hops and dense misses fall back to live Python dispatch,
  in ascending channel order — exactly the call sequence the reference
  kernel would make, so RNGs, round-robins and load counters advance
  identically. Output-VC allocation pre-filters hopeless channels
  vectorially, then first-fits the rest in canonical order.
* **Serve** — switch allocation is a grouped segmented argmin: requests
  are sorted by (router, out port), each group's service round comes
  from the per-router rotation, and each round's winners are the
  arbitration-key minima per group (keys are distinct within a router,
  so winners are unambiguous). Winning transfers pop, debit credits,
  stage arrivals and return credits entirely as array ops; ejections
  and RC-buffer traffic (rare, hook-bearing) stay in Python, sorted by
  router id.
* **Commit** — staged arrivals/credits land via flat index adds.

Statistics accumulate into small shadow arrays during the sweep and are
folded into the shared :class:`~repro.network.stats.StatsCollector` at
the end of *every* step, so ``sim.stats`` is always exact and the
per-cycle snapshot digests match the reference bit for bit.

``router_states()``/``snapshot()`` materialize an object-based
:class:`~repro.network.state.SimState` from the arrays on demand
(memoized until the next step). The views are therefore *copies*:
reading through ``sim.routers`` is supported everywhere, mutating
through it is not (nothing in the repository does).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ...errors import DeadlockError, UnroutablePacketError
from ...fault.model import VLDirection
from ...routing.base import Port, opposite_port
from ...routing.compiled import PHASE_TO_DOWN, PHASE_TO_DST, PHASE_TO_UP
from ...topology.geometry import INTERPOSER_LAYER
from ..flit import Packet
from ..nic import Nic
from ..state import (
    NUM_PORTS,
    RC_PORT,
    RcBuffer,
    SimState,
    partition_vcs,
    snapshot_state,
)
from .base import CycleKernel

if TYPE_CHECKING:  # pragma: no cover
    from ..simulator import Simulator
    from ..state import RouterView

_LOCAL = int(Port.LOCAL)
_VERT = int(Port.VERTICAL)

#: Sentinel for "no assignment/decision" in the int mirrors.
_NONE = -2

#: "VC not allowed" rank in the first-fit walk tables (int16-safe).
_RANK_INF = 0x7FFF


class VectorKernel(CycleKernel):
    """Array-sweep execution of the cycle semantics (requires numpy)."""

    name = "vector"

    def __init__(self, sim: "Simulator"):
        super().__init__(sim)
        import numpy as np

        self._np = np
        self.system = sim.system
        self.algorithm = sim.algorithm
        self.traffic = sim.traffic
        self.config = sim.config
        self.stats = sim.stats
        assert sim.routes is not None, "vector kernel requires compiled routes"
        self._routes = sim.routes
        self._dense = sim.routes.dense_table()
        self._anchors = sim.routes._anchors
        self._vn_vcs = partition_vcs(sim.config.num_vcs)
        self._vl_ser = sim.config.vl_serialization

        P = NUM_PORTS
        V = sim.config.num_vcs
        D = sim.config.buffer_depth
        R = len(sim.system.routers)
        self._P, self._V, self._D, self._R = P, V, D, R
        self._PV = P * V
        self._NC = R * P * V
        self._rr_mod = P * V

        # -- static topology arrays -------------------------------------
        self.layer_arr = np.array(
            [r.layer for r in sim.system.routers], dtype=np.int64
        )
        # (router, out_port) -> destination channel base ((dst*P+in)*V), -1 none
        self.link_base = np.full(R * P, -1, dtype=np.int64)
        # (router, in_port) -> upstream channel base to credit, -1 for LOCAL
        self.upstream_base = np.full(R * P, -1, dtype=np.int64)
        self.vl_of = np.full(R, -1, dtype=np.int64)
        self.vl_send_dir = np.zeros(R, dtype=np.int64)
        self.has_rc = np.zeros(R, dtype=bool)
        for router in sim.system.routers:
            rid = router.id
            for direction, neighbor in router.neighbors.items():
                d = int(direction)
                dst_in = int(opposite_port(Port(d)))
                self.link_base[rid * P + d] = (neighbor * P + dst_in) * V
                self.upstream_base[rid * P + d] = (
                    neighbor * P + int(opposite_port(Port(d)))
                ) * V
            if router.vertical_neighbor is not None:
                self.link_base[rid * P + _VERT] = (
                    router.vertical_neighbor * P + _VERT
                ) * V
                self.upstream_base[rid * P + _VERT] = (
                    router.vertical_neighbor * P + _VERT
                ) * V
            if router.vl_index is not None:
                self.vl_of[rid] = router.vl_index
            self.vl_send_dir[rid] = int(
                VLDirection.UP if router.is_interposer else VLDirection.DOWN
            )

        # -- channel state ----------------------------------------------
        self.buf = np.zeros((self._NC, D), dtype=np.int64)  # circular fid queues
        self.bhead = np.zeros(self._NC, dtype=np.int64)
        self.blen = np.zeros(self._NC, dtype=np.int64)
        self.chan_active = np.zeros(self._NC, dtype=bool)  # invariant: blen > 0
        self.credits_arr = np.full(self._NC, D, dtype=np.int64)
        self.owner_arr = np.full(self._NC, -1, dtype=np.int64)  # packet id
        self.asg_port = np.full(self._NC, _NONE, dtype=np.int64)  # -1 = RC
        self.asg_vc = np.zeros(self._NC, dtype=np.int64)
        self.dec_port = np.full(self._NC, _NONE, dtype=np.int64)
        self.dec_code = np.zeros(self._NC, dtype=np.int64)
        self.sa_rr = np.zeros(R, dtype=np.int64)
        self.vl_next_free = np.zeros(R, dtype=np.int64)

        # -- packet / flit registries ------------------------------------
        self.pkt_objs: list[Packet | None] = []
        self.pkt_dst = np.zeros(0, dtype=np.int64)
        self.pkt_vn = np.zeros(0, dtype=np.int64)
        self.pkt_down = np.zeros(0, dtype=np.int64)
        self.pkt_up = np.zeros(0, dtype=np.int64)
        self.pkt_boundary = np.zeros(0, dtype=np.int64)
        self.pkt_needs_rc = np.zeros(0, dtype=bool)
        self.pkt_hops = np.zeros(0, dtype=np.int64)
        self.first_fid = np.zeros(0, dtype=np.int64)
        self.fid_objs: list = []
        self.fid_pkt = np.zeros(0, dtype=np.int64)
        self.fid_head = np.zeros(0, dtype=bool)
        self.fid_tail = np.zeros(0, dtype=bool)
        self._nfids = 0

        # -- objects that stay objects -----------------------------------
        self.nics = [Nic(r.id) for r in sim.system.routers]
        self.rc_buffers: list[RcBuffer | None] = [
            RcBuffer() if sim.algorithm.uses_rc_buffer(r.id) else None
            for r in sim.system.routers
        ]
        self._rc_units = [
            (rid, unit)
            for rid, unit in enumerate(self.rc_buffers)
            if unit is not None
        ]
        for rid, _ in self._rc_units:
            self.has_rc[rid] = True
        self.busy_nics: set[int] = set()
        #: Busy NICs blocked on a full LOCAL channel; skipped by
        #: `_inject` until `_send_winners` pops a LOCAL input of theirs.
        #: Always a subset of `busy_nics` — purely an iteration filter,
        #: never part of snapshots.
        self.stalled_nics: set[int] = set()

        # Staged events, keyed by materialization cycle; values are lists
        # of (dest-channel array, fid array) / flat-channel index arrays.
        self.arrivals: dict[int, list] = {}
        self.credit_arrivals: dict[int, list] = {}

        # -- run counters -------------------------------------------------
        self.cycle = 0
        self.packet_counter = 0
        self.flits_in_flight = 0
        self.last_progress = 0
        self.measured_outstanding = 0

        # -- stats shadows (folded into self.stats every step) ------------
        n_regions = int(self.layer_arr.max()) + 2 if R else 1
        self.shadow_vc = np.zeros((n_regions, V), dtype=np.int64)
        self.shadow_vl = np.zeros((max(len(sim.system.vls), 1), 2), dtype=np.int64)
        self.shadow_flit_hops = 0
        self._vc_dirty = False
        self._vl_dirty = False

        # -- decision-code mirrors (parallel to dense.decisions) ----------
        self._code_ports: list[int] = []
        self._code_vns: list[tuple[int, ...]] = []
        self.code_port_arr = np.zeros(0, dtype=np.int64)
        self.code_vnmask = np.zeros((0, V), dtype=bool)

        # -- scratch -------------------------------------------------------
        self._used = np.zeros(R * P, dtype=bool)
        self._vcr = np.arange(V, dtype=np.int64)
        self._mat: SimState | None = None

        # -- telemetry ----------------------------------------------------
        self._table_decisions = 0
        self._live_decisions = 0

    # ------------------------------------------------------------------
    # engine-facing surface
    # ------------------------------------------------------------------

    def router_states(self) -> list["RouterView"]:
        return self._materialize().router_views()

    def nic_states(self) -> list[Nic]:
        return self.nics

    def snapshot(self) -> tuple:
        self._fold_stats()
        return snapshot_state(self._materialize(), self.stats)

    def is_idle(self) -> bool:
        return (
            not self.busy_nics
            and not bool(self.chan_active.any())
            and not any(unit.flits for _, unit in self._rc_units)
        )

    def next_event_cycle(self) -> int | None:
        dues = list(self.arrivals) + list(self.credit_arrivals)
        return min(dues) if dues else None

    def fast_forward(self, cycle: int) -> None:
        assert cycle > self.cycle
        self.cycle = cycle
        self._mat = None

    def finalize(self) -> None:
        self._fold_stats()

    def dispatch_counts(self) -> tuple[int, int]:
        return (self._table_decisions, self._live_decisions)

    # ------------------------------------------------------------------
    # per-cycle phases
    # ------------------------------------------------------------------

    def step(self, generate: bool) -> None:
        self._mat = None
        if generate:
            self._generate_traffic()
        self._inject()
        req_chan, rcq = self._plan()
        transfers, credits = self._serve(req_chan, rcq)
        self._commit(transfers, credits)
        self._check_watchdog()
        self.cycle += 1

    # -- traffic and injection (cold path, plain Python) -----------------

    def _generate_traffic(self) -> None:
        measured_window = self.cycle >= self.config.warmup_cycles
        for src, dst in self.traffic.packets_for_cycle(self.cycle):
            packet = Packet(
                self.packet_counter, src, dst, self.config.packet_size, self.cycle
            )
            self.packet_counter += 1
            packet.measured = measured_window
            self.stats.on_packet_created(packet.measured)
            if packet.measured:
                self.measured_outstanding += 1
            self._register_packet(packet)
            self.nics[src].enqueue(packet)
            self.busy_nics.add(src)

    def _register_packet(self, packet: Packet) -> None:
        pid = packet.id
        if pid >= len(self.pkt_dst):
            self._grow_packets(pid + 1)
        self.pkt_objs.append(packet)
        assert len(self.pkt_objs) == pid + 1
        self.pkt_dst[pid] = packet.dst

    def _grow_packets(self, need: int) -> None:
        np = self._np
        cap = max(need, 2 * len(self.pkt_dst), 256)

        def grow(arr, fill):
            out = np.full(cap, fill, dtype=arr.dtype)
            out[: arr.size] = arr
            return out

        self.pkt_dst = grow(self.pkt_dst, 0)
        self.pkt_vn = grow(self.pkt_vn, 0)
        self.pkt_down = grow(self.pkt_down, -1)
        self.pkt_up = grow(self.pkt_up, -1)
        self.pkt_boundary = grow(self.pkt_boundary, _NONE)
        self.pkt_needs_rc = grow(self.pkt_needs_rc, False)
        self.pkt_hops = grow(self.pkt_hops, 0)
        self.first_fid = grow(self.first_fid, -1)

    def _grow_fids(self, need: int) -> None:
        np = self._np
        cap = max(need, 2 * len(self.fid_pkt), 1024)

        def grow(arr, fill):
            out = np.full(cap, fill, dtype=arr.dtype)
            out[: arr.size] = arr
            return out

        self.fid_pkt = grow(self.fid_pkt, 0)
        self.fid_head = grow(self.fid_head, False)
        self.fid_tail = grow(self.fid_tail, False)

    def _inject(self) -> None:
        np = self._np
        stalled = self.stalled_nics
        done: list[int] = []
        cand: list[Nic] = []
        cand_c: list[int] = []
        cand_pid: list[int] = []
        cand_seq: list[int] = []
        P, V = self._P, self._V
        # Stalled NICs (backpressured on a full LOCAL channel) cannot
        # change until `_send_winners` pops one of their channels; drop
        # them before the sort — under saturation they are the majority.
        for nid in sorted(self.busy_nics - stalled):
            nic = self.nics[nid]
            if nic.current_flits is None:
                if not self._start_next_packet(nic):
                    if not nic.queue:
                        done.append(nid)
                    continue
            cand.append(nic)
            cand_c.append((nid * P + _LOCAL) * V + nic.inject_vc)
            cand_pid.append(nic.current_flits[0].packet.id)
            cand_seq.append(nic.current_index)
        if cand:
            # Channels are distinct (one NIC per router), so the batch
            # is equivalent to the sequential per-NIC insertion.
            carr = np.array(cand_c, dtype=np.int64)
            lens = self.blen[carr]
            room = lens < self._D
            for i in np.flatnonzero(~room):
                stalled.add(cand[i].router_id)
            ok = np.flatnonzero(room)
            if ok.size:
                oc = carr[ok]
                fids = (
                    self.first_fid[np.array(cand_pid, dtype=np.int64)[ok]]
                    + np.array(cand_seq, dtype=np.int64)[ok]
                )
                self.buf[oc, (self.bhead[oc] + lens[ok]) % self._D] = fids
                self.blen[oc] += 1
                self.chan_active[oc] = True
                self.flits_in_flight += int(ok.size)
                self.last_progress = self.cycle
                for i in ok:
                    nic = cand[i]
                    nic.advance()
                    if nic.current_flits is None and not nic.queue:
                        done.append(nic.router_id)
        for nid in done:
            self.busy_nics.discard(nid)

    def _start_next_packet(self, nic: Nic) -> bool:
        algo = self.algorithm
        while nic.queue:
            packet = nic.queue[0]
            if not algo.is_routable(packet.src, packet.dst):
                nic.queue.popleft()
                self.stats.on_packet_dropped(packet.measured)
                if packet.measured:
                    self.measured_outstanding -= 1
                continue
            if not algo.may_inject(packet, self.cycle):
                return False  # head-of-line wait (RC permission network)
            try:
                algo.prepare_packet(packet)
            except UnroutablePacketError:
                nic.queue.popleft()
                self.stats.on_packet_dropped(packet.measured)
                if packet.measured:
                    self.measured_outstanding -= 1
                continue
            nic.queue.popleft()
            vc = self._injection_vc(packet)
            nic.start_packet(packet, vc, self.cycle)
            self._register_start(packet, nic)
            return True
        return False

    def _injection_vc(self, packet: Packet) -> int:
        base = (packet.src * self._P + _LOCAL) * self._V
        return min(self._vn_vcs[packet.vn], key=lambda v: int(self.blen[base + v]))

    def _register_start(self, packet: Packet, nic: Nic) -> None:
        """Mirror the packet's bound routing state after ``prepare_packet``."""
        pid = packet.id
        self.pkt_vn[pid] = packet.vn
        self.pkt_down[pid] = -1 if packet.down_vl is None else packet.down_vl
        self.pkt_up[pid] = -1 if packet.up_vl is None else packet.up_vl
        self.pkt_needs_rc[pid] = bool(packet.needs_rc)
        boundary = self.algorithm.stateful_boundary_router(packet)
        self.pkt_boundary[pid] = _NONE if boundary is None else boundary
        flits = nic.current_flits
        assert flits is not None
        n = self._nfids
        m = len(flits)
        self.first_fid[pid] = n
        if n + m > len(self.fid_pkt):
            self._grow_fids(n + m)
        # Wormhole framing: the first flit is the head, the last the tail
        # (a single-flit packet is both); the grown arrays default False.
        self.fid_objs.extend(flits)
        self.fid_pkt[n : n + m] = pid
        self.fid_head[n] = True
        self.fid_tail[n + m - 1] = True
        self._nfids = n + m

    # -- plan -------------------------------------------------------------

    def _plan(self):
        """Decisions, RC claims, VC allocations, SA-request eligibility."""
        np = self._np
        act = np.flatnonzero(self.chan_active)  # ascending == canonical order
        if act.size:
            # Only channels without an assignment can need planning; under
            # load that is a small minority, so gather their fronts only.
            na = act[self.asg_port[act] == _NONE]
            front = self.buf[na, self.bhead[na]]
            sel = self.fid_head[front]
            consider = na[sel]
            cfront = front[sel]
            if consider.size:
                have = self.dec_port[consider] != _NONE
                if not have.all():
                    self._compute_decisions(consider[~have], cfront[~have])
                self._claim_and_allocate(consider, cfront)
        # -- build SA requests over the (possibly updated) assignments
        if act.size:
            ap = self.asg_port[act]
            rcq = act[ap == RC_PORT]
            am = ap >= 0
            a_chan = act[am]
            a_out = ap[am]
            ok = np.ones(a_chan.size, dtype=bool)
            nl = a_out != _LOCAL
            ar = a_chan // self._PV
            oc = (ar * self._P + a_out) * self._V + self.asg_vc[a_chan]
            ok[nl] = self.credits_arr[oc[nl]] > 0
            if self._vl_ser > 1:
                vm = nl & (a_out == _VERT)
                ok[vm] &= self.cycle >= self.vl_next_free[ar[vm]]
            req_chan = a_chan[ok]
        else:
            rcq = act
            req_chan = act
        return req_chan, rcq

    def _compute_decisions(self, chans, fids) -> None:
        """Route fresh heads: one dense batch plus ordered live fallbacks."""
        np = self._np
        routes = self._routes
        algo = self.algorithm
        if algo.fault_state is not routes._fault_state:
            routes._rebind(algo.fault_state)
        pids = self.fid_pkt[fids]
        r = chans // self._PV
        in_port = (chans // self._V) % self._P
        dst = self.pkt_dst[pids]
        rlayer = self.layer_arr[r]
        n = chans.size
        phase = np.zeros(n, dtype=np.int64)
        anchor = np.zeros(n, dtype=np.int64)
        live = np.zeros(n, dtype=bool)
        same = rlayer == self.layer_arr[dst]
        phase[same] = PHASE_TO_DST
        anchor[same] = dst[same]
        interp = ~same & (rlayer == INTERPOSER_LAYER)
        up = self.pkt_up[pids]
        live |= interp & (up < 0)  # up-VL binds inside the live call
        okup = interp & (up >= 0)
        phase[okup] = PHASE_TO_UP
        anchor[okup] = up[okup]
        downp = ~same & ~interp
        down = self.pkt_down[pids]
        live |= downp & (down < 0)  # live path raises the descriptive error
        okdown = downp & (down >= 0)
        phase[okdown] = PHASE_TO_DOWN
        anchor[okdown] = down[okdown]
        boundary = self.pkt_boundary[pids]
        live |= (boundary == _NONE) | (boundary == r)  # stateful hops
        table = ~live
        if table.any():
            key = (
                (phase[table] * self._anchors + anchor[table]) * self._R + r[table]
            ) * (self._P * 2) + in_port[table] * 2 + self.pkt_vn[pids[table]]
            self._dense.maybe_resync()
            codes, found = self._dense.lookup(key)
            tchans = chans[table]
            hit = tchans[found]
            self.dec_code[hit] = codes[found]
            self._table_decisions += hit.size
            miss = np.flatnonzero(table)[~found]
            live[miss] = True
        for i in np.flatnonzero(live):  # ascending channels == canonical
            c = int(chans[i])
            pid = int(pids[i])
            packet = self.pkt_objs[pid]
            assert packet is not None
            decision = routes.route(packet, int(r[i]), Port(int(in_port[i])))
            self.dec_code[c] = self._dense.code_for(decision)
            self._live_decisions += 1
            if packet.up_vl is not None:  # the live call may have bound it
                self.pkt_up[pid] = packet.up_vl
        self._sync_codes()
        self.dec_port[chans] = self.code_port_arr[self.dec_code[chans]]

    def _sync_codes(self) -> None:
        """Track the dense table's decision interning with numpy mirrors."""
        decs = self._dense.decisions
        if len(decs) == len(self._code_ports):
            return
        np = self._np
        for i in range(len(self._code_ports), len(decs)):
            d = decs[i]
            self._code_ports.append(int(d.out_port))
            self._code_vns.append(tuple(int(v) for v in d.allowed_vns))
        self.code_port_arr = np.array(self._code_ports, dtype=np.int64)
        mask = np.zeros((len(decs), self._V), dtype=bool)
        # First-fit walk order (vn preference major, vn's vc order minor)
        # as ranks, so an uncontended allocation is argmin(rank) over the
        # free VCs — identical to the reference's nested-loop walk.
        rank = np.full((len(decs), self._V), _RANK_INF, dtype=np.int16)
        walk_vn = np.zeros((len(decs), self._V), dtype=np.int16)
        for i, vns in enumerate(self._code_vns):
            step = 0
            for vn in vns:
                for vc in self._vn_vcs[vn]:
                    mask[i, vc] = True
                    if rank[i, vc] == _RANK_INF:
                        rank[i, vc] = step
                        walk_vn[i, vc] = vn
                    step += 1
        self.code_vnmask = mask
        self.code_vc_rank = rank
        self.code_vc_vn = walk_vn

    def _claim_and_allocate(self, consider, cfront) -> None:
        np = self._np
        pidc = self.fid_pkt[cfront]
        outp = self.dec_port[consider]
        rc_mask = (
            (outp == _VERT)
            & self.has_rc[consider // self._PV]
            & self.pkt_needs_rc[pidc]
        )
        for i in np.flatnonzero(rc_mask):  # ascending == canonical
            c = int(consider[i])
            unit = self.rc_buffers[c // self._PV]
            assert unit is not None
            packet = self.pkt_objs[int(pidc[i])]
            if unit.owner is None:
                unit.owner = packet
            if unit.owner is packet:
                self.asg_port[c] = RC_PORT
                self.asg_vc[c] = 0
        al = consider[~rc_mask]
        al_front = cfront[~rc_mask]
        if not al.size:
            return
        out = self.dec_port[al]
        loc = out == _LOCAL
        self.asg_port[al[loc]] = _LOCAL
        self.asg_vc[al[loc]] = 0
        rest = al[~loc]
        if not rest.size:
            return
        rest_front = al_front[~loc]
        base = (rest // self._PV * self._P + self.dec_port[rest]) * self._V
        owners = self.owner_arr[base[:, None] + self._vcr]
        allowed = self.code_vnmask[self.dec_code[rest]]
        # Owners are only claimed (never freed) during plan, so a channel
        # with no free allowed VC now cannot gain one before its turn —
        # the filter only skips channels the first-fit would reject.
        feasible = ((owners < 0) & allowed).any(axis=1)
        feas = np.flatnonzero(feasible)
        if not feas.size:
            return
        # Rows alone on their (router, out port) cannot contend for VCs
        # with any other row this cycle, so their first-fit walks are
        # independent and vectorize as argmin over the walk-rank table.
        fbase = base[feas]
        contended = np.bincount(fbase)[fbase] > 1
        solo = feas[~contended]
        if solo.size:
            codes_s = self.dec_code[rest[solo]]
            crank = np.where(
                owners[solo] < 0, self.code_vc_rank[codes_s], _RANK_INF
            )
            vc = crank.argmin(axis=1)
            pid_s = self.fid_pkt[rest_front[solo]]
            self.owner_arr[base[solo] + vc] = pid_s
            vns = self.code_vc_vn[codes_s, vc]
            self.pkt_vn[pid_s] = vns
            self.asg_port[rest[solo]] = self.code_port_arr[codes_s]
            self.asg_vc[rest[solo]] = vc
            for pid, vn in zip(pid_s.tolist(), vns.tolist()):
                self.pkt_objs[pid].vn = vn
        for i in feas[contended]:  # ascending == canonical
            c = int(rest[i])
            b = int(base[i])
            code = int(self.dec_code[c])
            pid = int(self.fid_pkt[int(rest_front[i])])
            packet = self.pkt_objs[pid]
            assert packet is not None
            claimed = False
            for vn in self._code_vns[code]:
                for vc in self._vn_vcs[vn]:
                    if self.owner_arr[b + vc] < 0:
                        self.owner_arr[b + vc] = pid
                        packet.vn = vn
                        self.pkt_vn[pid] = vn
                        self.asg_port[c] = self._code_ports[code]
                        self.asg_vc[c] = vc
                        claimed = True
                        break
                if claimed:
                    break

    # -- serve ------------------------------------------------------------

    def _serve(self, req_chan, rcq):
        np = self._np
        transfers_dc: list = []
        transfers_fid: list = []
        credit_idx: list = []
        used = self._used
        used[:] = False
        if req_chan.size:
            r = req_chan // self._PV
            inp = (req_chan // self._V) % self._P
            vcs = req_chan % self._V
            out = self.asg_port[req_chan]
            # Arbitration rank under the *post-increment* round-robin
            # pointer: every requesting router's pointer advances by
            # exactly one this cycle, so the incremented value is
            # ``sa_rr[r] + 1`` and the rank is computable before the
            # sort — letting one lexsort produce both the (router, out)
            # grouping and the within-group arbitration order.
            arb = (inp * self._V + vcs - self.sa_rr[r] - 1) % self._rr_mod
            order = np.lexsort((arb, out, r))
            ro, oo = r[order], out[order]
            newg = np.empty(ro.size, dtype=bool)
            newg[0] = True
            newg[1:] = (ro[1:] != ro[:-1]) | (oo[1:] != oo[:-1])
            gid = np.cumsum(newg) - 1
            gfirst = np.flatnonzero(newg)
            g_r = ro[gfirst]
            newr = np.empty(g_r.size, dtype=bool)
            newr[0] = True
            newr[1:] = g_r[1:] != g_r[:-1]
            rfirst = np.flatnonzero(newr)
            r_ids = g_r[rfirst]
            r_gcount = np.diff(np.append(rfirst, g_r.size))
            off = self.sa_rr[r_ids] % r_gcount
            self.sa_rr[r_ids] += 1
            g_rank = np.arange(g_r.size) - np.repeat(rfirst, r_gcount)
            g_nouts = np.repeat(r_gcount, r_gcount)
            g_round = (g_rank - np.repeat(off, r_gcount)) % g_nouts
            req_round = g_round[gid]
            inflat = ro * self._P + inp[order]
            # The ordered arrays are already sorted by (group, arb), so
            # each round only filters by round tag and input availability
            # — a boolean selection preserves the arbitration order, and
            # the first eligible entry of each group is its winner.
            win_parts = []
            for t in range(int(g_round.max()) + 1):
                elig = (req_round == t) & ~used[inflat]
                if not elig.any():
                    continue
                sk = np.flatnonzero(elig)
                gk = gid[sk]
                firsts = np.empty(sk.size, dtype=bool)
                firsts[0] = True
                firsts[1:] = gk[1:] != gk[:-1]
                w = sk[firsts]
                used[inflat[w]] = True
                win_parts.append(w)
            if win_parts:
                win = np.concatenate(win_parts)
                self._send_winners(
                    req_chan[order][win],
                    ro[win],
                    oo[win],
                    inp[order][win],
                    vcs[order][win],
                    transfers_dc,
                    transfers_fid,
                    credit_idx,
                )
        if rcq.size:
            self._absorb_rc(rcq, used, credit_idx)
        self._drain_rc(transfers_dc, transfers_fid)
        return (transfers_dc, transfers_fid), credit_idx

    def _send_winners(
        self, wc, wr, wo, wi, wv, transfers_dc, transfers_fid, credit_idx
    ) -> None:
        np = self._np
        fid = self.buf[wc, self.bhead[wc]]
        self.bhead[wc] = (self.bhead[wc] + 1) % self._D
        self.blen[wc] -= 1
        self.chan_active[wc] = self.blen[wc] > 0
        self.last_progress = self.cycle
        lm = wi == _LOCAL
        if lm.any() and self.stalled_nics:
            # A LOCAL input popped: its NIC may have space again.
            self.stalled_nics.difference_update(wr[lm].tolist())
        upm = wi != _LOCAL
        if upm.any():
            credit_idx.append(self.upstream_base[wr[upm] * self._P + wi[upm]] + wv[upm])
        heads = self.fid_head[fid]
        tails = self.fid_tail[fid]
        em = wo == _LOCAL
        if em.any():
            eidx = np.flatnonzero(em)
            eidx = eidx[np.argsort(wr[eidx], kind="stable")]  # router order
            for i in eidx:
                self._eject(int(fid[i]))
        tm = ~em
        if tm.any():
            tc = wc[tm]
            tr = wr[tm]
            to = wo[tm]
            tvc = self.asg_vc[tc]
            oc = (tr * self._P + to) * self._V + tvc
            self.credits_arr[oc] -= 1
            dc = self.link_base[tr * self._P + to] + tvc
            transfers_dc.append(dc)
            transfers_fid.append(fid[tm])
            hp = self.fid_pkt[fid[tm][heads[tm]]]
            self.pkt_hops[hp] += 1  # one head per packet per cycle: no dupes
            vm = to == _VERT
            if vm.any():
                vr = tr[vm]  # one VERTICAL group per router: no dupes
                self.shadow_vl[self.vl_of[vr], self.vl_send_dir[vr]] += 1
                self._vl_dirty = True
                if self._vl_ser > 1:
                    self.vl_next_free[vr] = self.cycle + self._vl_ser
            tl = tails[tm]
            self.owner_arr[oc[tl]] = -1
        done = wc[tails]
        self.asg_port[done] = _NONE
        self.dec_port[done] = _NONE

    def _eject(self, fid: int) -> None:
        flit = self.fid_objs[fid]
        packet = flit.packet
        packet.flits_ejected += 1
        self.flits_in_flight -= 1
        if flit.is_tail:
            packet.delivered_cycle = self.cycle
            packet.hops = int(self.pkt_hops[packet.id])
            latency = packet.delivered_cycle - packet.created_cycle
            self.stats.on_packet_delivered(latency, packet.hops, packet.measured)
            self.algorithm.on_packet_delivered(packet, self.cycle)
            if packet.measured:
                self.measured_outstanding -= 1
            self.pkt_objs[packet.id] = None
        self.fid_objs[fid] = None

    def _absorb_rc(self, rcq, used, credit_idx) -> None:
        np = self._np
        rr = rcq // self._PV
        first = np.empty(rcq.size, dtype=bool)
        first[0] = True
        first[1:] = rr[1:] != rr[:-1]
        for c64 in rcq[first]:  # ascending routers, lowest channel each
            c = int(c64)
            rid = c // self._PV
            port = (c // self._V) % self._P
            if used[rid * self._P + port]:
                continue
            unit = self.rc_buffers[rid]
            assert unit is not None
            if not self.blen[c]:
                continue
            fid = int(self.buf[c, self.bhead[c]])
            self.bhead[c] = (self.bhead[c] + 1) % self._D
            self.blen[c] -= 1
            self.chan_active[c] = self.blen[c] > 0
            if port != _LOCAL:
                vc = c % self._V
                credit_idx.append(
                    self.upstream_base[rid * self._P + port : rid * self._P + port + 1]
                    + vc
                )
            flit = self.fid_objs[fid]
            unit.flits.append(flit)
            self.last_progress = self.cycle
            if flit.is_tail:
                unit.complete = True
                self.asg_port[c] = _NONE
                self.dec_port[c] = _NONE

    def _drain_rc(self, transfers_dc, transfers_fid) -> None:
        np = self._np
        for rid, unit in self._rc_units:  # ascending router order
            if not unit.complete or not unit.flits:
                continue
            vbase = (rid * self._P + _VERT) * self._V
            if unit.out_vc is None:
                owner_pid = unit.owner
                assert owner_pid is not None
                for vc in range(self._V):
                    if self.owner_arr[vbase + vc] < 0:
                        self.owner_arr[vbase + vc] = owner_pid.id
                        unit.out_vc = vc
                        break
                if unit.out_vc is None:
                    continue
            out_vc = unit.out_vc
            if self.credits_arr[vbase + out_vc] <= 0:
                continue
            if self._vl_ser > 1 and self.cycle < self.vl_next_free[rid]:
                continue
            flit = unit.flits.popleft()
            self.credits_arr[vbase + out_vc] -= 1
            dc = int(self.link_base[rid * self._P + _VERT]) + out_vc
            fid = int(self.first_fid[flit.packet.id]) + flit.seq
            transfers_dc.append(np.array([dc], dtype=np.int64))
            transfers_fid.append(np.array([fid], dtype=np.int64))
            self.last_progress = self.cycle
            if flit.is_head:
                self.pkt_hops[flit.packet.id] += 1
            self.shadow_vl[self.vl_of[rid], int(VLDirection.DOWN)] += 1
            self._vl_dirty = True
            if self._vl_ser > 1:
                self.vl_next_free[rid] = self.cycle + self._vl_ser
            if flit.is_tail:
                self.owner_arr[vbase + out_vc] = -1
                packet = unit.owner
                assert packet is not None
                unit.reset()
                self.algorithm.on_rc_buffer_drained(rid, packet, self.cycle)

    # -- commit ------------------------------------------------------------

    def _commit(self, transfers, credit_idx) -> None:
        np = self._np
        transfers_dc, transfers_fid = transfers
        if transfers_dc:
            due = self.cycle + self.config.hop_latency - 1
            self.arrivals.setdefault(due, []).append(
                (np.concatenate(transfers_dc), np.concatenate(transfers_fid))
            )
        if credit_idx:
            due = self.cycle + self.config.credit_latency - 1
            self.credit_arrivals.setdefault(due, []).append(
                np.concatenate(credit_idx)
            )
        batches = self.arrivals.pop(self.cycle, None)
        if batches:
            if len(batches) == 1:
                dc, fid = batches[0]
            else:
                dc = np.concatenate([b[0] for b in batches])
                fid = np.concatenate([b[1] for b in batches])
            # Destination channels are unique within a cycle (1:1 links,
            # one send per (router, out port)), so plain fancy writes work.
            slot = (self.bhead[dc] + self.blen[dc]) % self._D
            self.buf[dc, slot] = fid
            self.blen[dc] += 1
            self.chan_active[dc] = True
            np.add.at(
                self.shadow_vc, (self.layer_arr[dc // self._PV] + 1, dc % self._V), 1
            )
            self._vc_dirty = True
            self.shadow_flit_hops += int(dc.size)
        credits = self.credit_arrivals.pop(self.cycle, None)
        if credits:
            idx = credits[0] if len(credits) == 1 else np.concatenate(credits)
            np.add.at(self.credits_arr, idx, 1)

    # -- stats fold --------------------------------------------------------

    def _fold_stats(self) -> None:
        """Flush the shadow accumulators into the shared StatsCollector.

        Folding is lazy: ``step`` only accumulates into the numpy shadows
        and the flush happens at observation points — ``snapshot()`` and
        ``finalize()`` (the engine finalizes after every run loop and at
        the end of ``run_cycles``). Addition commutes, so deferring the
        flush never changes the totals the collector reports.
        """
        np = self._np
        stats = self.stats
        if self.shadow_flit_hops:
            stats.flit_hops += self.shadow_flit_hops
            self.shadow_flit_hops = 0
        if self._vc_dirty:
            for li, vci in zip(*np.nonzero(self.shadow_vc)):
                stats.vc_flits[int(li) - 1][int(vci)] += int(self.shadow_vc[li, vci])
            self.shadow_vc[:] = 0
            self._vc_dirty = False
        if self._vl_dirty:
            for vli, diri in zip(*np.nonzero(self.shadow_vl)):
                stats.vl_flits[(int(vli), int(diri))] += int(self.shadow_vl[vli, diri])
            self.shadow_vl[:] = 0
            self._vl_dirty = False

    # -- watchdog ----------------------------------------------------------

    def _check_watchdog(self) -> None:
        limit = self.config.watchdog_cycles
        if limit <= 0 or self.flits_in_flight <= 0:
            return
        if self.cycle - self.last_progress >= limit:
            raise DeadlockError(self.last_progress, self.flits_in_flight)

    # -- object-state materialization --------------------------------------

    def _materialize(self) -> SimState:
        """An object-based :class:`SimState` equal to the array state.

        Memoized until the next ``step``; the result is a *copy* —
        mutations through it do not reach the arrays.
        """
        if self._mat is not None:
            return self._mat
        np = self._np
        st = SimState(self.system, self.algorithm, self.config)
        st.cycle = self.cycle
        st.packet_counter = self.packet_counter
        st.flits_in_flight = self.flits_in_flight
        st.last_progress = self.last_progress
        st.measured_outstanding = self.measured_outstanding
        st.sa_rr = [int(x) for x in self.sa_rr]
        st.rc_buffers = self.rc_buffers
        st.nics = self.nics
        st.busy_nics = set(self.busy_nics)
        for pid in range(self.packet_counter):
            packet = self.pkt_objs[pid]
            if packet is not None:
                packet.hops = int(self.pkt_hops[pid])
        P, V, PV, D = self._P, self._V, self._PV, self._D
        for c64 in np.flatnonzero(self.blen > 0):
            c = int(c64)
            rid, port, vc = c // PV, (c // V) % P, c % V
            dq = st.buffers[rid][port][vc]
            head, length = int(self.bhead[c]), int(self.blen[c])
            for i in range(length):
                dq.append(self.fid_objs[int(self.buf[c, (head + i) % D])])
            st.active[rid].add((port, vc))
            st.active_routers.add(rid)
        for c64 in np.flatnonzero(self.asg_port != _NONE):
            c = int(c64)
            rid, port, vc = c // PV, (c // V) % P, c % V
            ap = int(self.asg_port[c])
            st.assigned[rid][port][vc] = (
                (RC_PORT, 0) if ap == RC_PORT else (ap, int(self.asg_vc[c]))
            )
        for c64 in np.flatnonzero(self.dec_port != _NONE):
            c = int(c64)
            rid, port, vc = c // PV, (c // V) % P, c % V
            st.decision[rid][port][vc] = self._dense.decisions[int(self.dec_code[c])]
        for c64 in np.flatnonzero(self.owner_arr >= 0):
            c = int(c64)
            rid, port, vc = c // PV, (c // V) % P, c % V
            st.out_owner[rid][port][vc] = self.pkt_objs[int(self.owner_arr[c])]
        for c64 in np.flatnonzero(self.credits_arr != D):
            c = int(c64)
            rid, port, vc = c // PV, (c // V) % P, c % V
            st.credits[rid][port][vc] = int(self.credits_arr[c])
        for rid, unit in self._rc_units:
            if unit.flits:
                st.active_routers.add(rid)
        for due, batch in self.arrivals.items():
            entries = st.arrivals.setdefault(due, [])
            for dc_arr, fid_arr in batch:
                for dc64, fid64 in zip(dc_arr, fid_arr):
                    dc = int(dc64)
                    entries.append(
                        (dc // PV, (dc // V) % P, dc % V, self.fid_objs[int(fid64)])
                    )
        for due, batch in self.credit_arrivals.items():
            entries = st.credit_arrivals.setdefault(due, [])
            for idx_arr in batch:
                for f64 in idx_arr:
                    f = int(f64)
                    entries.append((f // PV, (f // V) % P, f % V))
        for rid64 in np.flatnonzero(self.vl_next_free > 0):
            rid = int(rid64)
            st.vl_next_free[rid] = int(self.vl_next_free[rid])
        self._mat = st
        return st
