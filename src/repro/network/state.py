"""Simulation state, held as struct-of-arrays, plus canonical snapshots.

The engine (:mod:`repro.network.simulator`) owns *no* per-cycle state of
its own: everything a cycle kernel advances lives here, organized as
parallel per-router arrays (``buffers[rid][port][vc]``,
``credits[rid][port][vc]``, ...) rather than per-router objects. The
object-based :class:`~repro.network.kernels.reference.ReferenceKernel`
walks these arrays directly; the numpy kernel keeps its own numeric
mirror with the same shapes (see :mod:`repro.network.kernels.vector`).

:class:`RouterView` and :class:`RcBuffer` preserve the pre-refactor
``_RouterState``/``_RcBuffer`` shapes as *views* over one router's slice
of a :class:`SimState` — tests and diagnostics keep indexing
``sim.routers[rid].buffers[port][vc]`` unchanged.

The canonical-snapshot helpers at the bottom define the kernel-agnostic
observable state of a simulation mid-flight. Two kernels are considered
bit-identical when their :func:`snapshot digests <snapshot_digest>`
match at every cycle — the contract the differential fuzz suite
enforces. Iteration-order artifacts (set ordering, sample append order,
dict insertion order) are canonicalized away; everything semantically
meaningful (buffer contents in order, credit counts, allocations,
round-robin counters, staged arrivals, statistics) is included.
"""

from __future__ import annotations

import hashlib
from collections import deque
from typing import TYPE_CHECKING, Any

from ..routing.base import Port, opposite_port
from .flit import Flit, Packet
from .nic import Nic

if TYPE_CHECKING:  # pragma: no cover
    from ..config import SimulationConfig
    from ..routing.base import RoutingAlgorithm
    from ..topology.builder import System
    from .stats import StatsCollector

#: Pseudo output port used for absorption into an RC buffer.
RC_PORT = -1

#: Number of physical ports modelled per router.
NUM_PORTS = len(Port)


def partition_vcs(num_vcs: int) -> tuple[tuple[int, ...], tuple[int, ...]]:
    """Split VC indices between the two virtual networks.

    VN.0 gets the lower half, VN.1 the upper half; with an odd count VN.1
    gets the extra VC (it carries delivery traffic, which must not starve).
    """
    if num_vcs == 1:
        return ((0,), (0,))
    half = num_vcs // 2
    return (tuple(range(half)), tuple(range(half, num_vcs)))


class RcBuffer:
    """Whole-packet store-and-forward buffer of the RC baseline."""

    __slots__ = ("owner", "flits", "complete", "out_vc")

    def __init__(self) -> None:
        self.owner: Packet | None = None
        self.flits: deque[Flit] = deque()
        self.complete = False
        self.out_vc: int | None = None

    def reset(self) -> None:
        self.owner = None
        self.flits.clear()
        self.complete = False
        self.out_vc = None


class RouterView:
    """One router's slice of a :class:`SimState` in the legacy shape.

    Attribute lists are the *same* objects the state arrays hold, so
    reads and writes through a view are reads and writes of the state;
    only the scalar ``sa_rr`` needs a property indirection.
    """

    __slots__ = (
        "_state",
        "id",
        "buffers",
        "assigned",
        "decision",
        "out_owner",
        "credits",
        "active",
    )

    def __init__(self, state: "SimState", router_id: int):
        self._state = state
        self.id = router_id
        self.buffers = state.buffers[router_id]
        self.assigned = state.assigned[router_id]
        self.decision = state.decision[router_id]
        self.out_owner = state.out_owner[router_id]
        self.credits = state.credits[router_id]
        self.active = state.active[router_id]

    @property
    def sa_rr(self) -> int:
        return self._state.sa_rr[self.id]

    @sa_rr.setter
    def sa_rr(self, value: int) -> None:
        self._state.sa_rr[self.id] = value

    @property
    def rc_buffer(self) -> RcBuffer | None:
        return self._state.rc_buffers[self.id]


class SimState:
    """All mutable state of one simulation, as parallel per-router arrays.

    Indexing convention: ``array[router_id][port][vc]`` for the per-VC
    structures, ``array[router_id]`` for the per-router scalars. The
    scalar run counters (cycle, in-flight flits, ...) live here too so a
    kernel is a pure *behavior* over this data.
    """

    def __init__(
        self,
        system: "System",
        algorithm: "RoutingAlgorithm",
        config: "SimulationConfig",
    ):
        num_vcs, depth = config.num_vcs, config.buffer_depth
        n = len(system.routers)
        self.num_vcs = num_vcs
        self.depth = depth
        # -- per-VC structures (struct-of-arrays) -----------------------
        self.buffers: list[list[list[deque[Flit]]]] = [
            [[deque() for _ in range(num_vcs)] for _ in range(NUM_PORTS)]
            for _ in range(n)
        ]
        # Per input VC: (out_port, out_vc) held by the packet at the front.
        self.assigned: list[list[list[tuple[int, int] | None]]] = [
            [[None] * num_vcs for _ in range(NUM_PORTS)] for _ in range(n)
        ]
        # Cached RouteDecision for a head flit awaiting VC allocation.
        self.decision: list[list[list[Any]]] = [
            [[None] * num_vcs for _ in range(NUM_PORTS)] for _ in range(n)
        ]
        # Per output VC: packet currently owning it (wormhole), or None.
        self.out_owner: list[list[list[Packet | None]]] = [
            [[None] * num_vcs for _ in range(NUM_PORTS)] for _ in range(n)
        ]
        # Per output VC: credits = free buffer slots downstream.
        self.credits: list[list[list[int]]] = [
            [[depth] * num_vcs for _ in range(NUM_PORTS)] for _ in range(n)
        ]
        # -- per-router scalars -----------------------------------------
        self.sa_rr: list[int] = [0] * n
        self.active: list[set[tuple[int, int]]] = [set() for _ in range(n)]
        self.rc_buffers: list[RcBuffer | None] = [
            RcBuffer() if algorithm.uses_rc_buffer(r.id) else None
            for r in system.routers
        ]
        # link_to[router][out_port] = (neighbor_id, neighbor_in_port)
        self.link_to: list[list[tuple[int, int] | None]] = [
            [None] * NUM_PORTS for _ in range(n)
        ]
        for router in system.routers:
            for direction, neighbor in router.neighbors.items():
                self.link_to[router.id][int(direction)] = (
                    neighbor,
                    int(opposite_port(Port(int(direction)))),
                )
            if router.vertical_neighbor is not None:
                self.link_to[router.id][Port.VERTICAL] = (
                    router.vertical_neighbor,
                    int(Port.VERTICAL),
                )
        self.nics = [Nic(r.id) for r in system.routers]
        # -- work lists --------------------------------------------------
        self.active_routers: set[int] = set()
        self.busy_nics: set[int] = set()
        # Flits/credits in flight, keyed by the cycle they materialize.
        self.arrivals: dict[int, list[tuple[int, int, int, Flit]]] = {}
        self.credit_arrivals: dict[int, list[tuple[int, int, int]]] = {}
        # Serialized vertical links: router id -> next cycle the VL is free.
        self.vl_next_free: dict[int, int] = {}
        # -- run counters ------------------------------------------------
        self.cycle = 0
        self.packet_counter = 0
        self.flits_in_flight = 0
        self.last_progress = 0
        self.measured_outstanding = 0
        self._views: list[RouterView] | None = None

    def router_views(self) -> list[RouterView]:
        """Per-router views in the legacy ``sim.routers`` shape."""
        if self._views is None:
            self._views = [RouterView(self, rid) for rid in range(len(self.sa_rr))]
        return self._views


# ----------------------------------------------------------------------
# canonical snapshots (the kernel-equivalence contract)
# ----------------------------------------------------------------------


def canonical_packet(packet: Packet) -> tuple:
    """The packet fields that influence future simulation behavior."""
    return (
        packet.id,
        packet.src,
        packet.dst,
        packet.size,
        packet.created_cycle,
        -1 if packet.injected_cycle is None else packet.injected_cycle,
        packet.measured,
        packet.vn,
        -1 if packet.down_vl is None else packet.down_vl,
        -1 if packet.up_vl is None else packet.up_vl,
        packet.needs_rc,
        packet.hops,
        packet.flits_ejected,
    )


def canonical_stats(stats: "StatsCollector") -> tuple:
    """Order-independent canonical form of a :class:`StatsCollector`.

    Sample lists are sorted: within one cycle the delivery order of
    distinct packets is an iteration artifact, and no derived metric
    (mean, percentile, min/max) depends on it.
    """
    lat, hops = stats.latency, stats.hops
    return (
        stats.packets_created,
        stats.packets_measured,
        stats.packets_delivered,
        stats.packets_delivered_measured,
        stats.packets_dropped_unroutable,
        stats.packets_dropped_measured,
        stats.flit_hops,
        (lat.count, lat.total, lat.minimum, lat.maximum, tuple(sorted(lat.samples))),
        (hops.count, hops.total, hops.minimum, hops.maximum, tuple(sorted(hops.samples))),
        tuple(
            sorted(
                (region, tuple(counts))
                for region, counts in stats.vc_flits.items()
                if any(counts)
            )
        ),
        tuple(sorted((key, n) for key, n in stats.vl_flits.items() if n)),
    )


def _canonical_decision(decision: Any) -> tuple:
    return (int(decision.out_port), tuple(int(vn) for vn in decision.allowed_vns))


def snapshot_state(state: SimState, stats: "StatsCollector") -> tuple:
    """Canonical snapshot of object-based state (the reference kernel's)."""
    packets: dict[int, Packet] = {}

    def flit_ref(flit: Flit) -> tuple[int, int]:
        packets.setdefault(flit.packet.id, flit.packet)
        return (flit.packet.id, flit.seq)

    routers = []
    num_vcs, depth = state.num_vcs, state.depth
    for rid in range(len(state.sa_rr)):
        buffers = state.buffers[rid]
        assigned = state.assigned[rid]
        decision = state.decision[rid]
        out_owner = state.out_owner[rid]
        credits = state.credits[rid]
        buf_items, asg_items, dec_items, own_items, credit_items = [], [], [], [], []
        for port in range(NUM_PORTS):
            for vc in range(num_vcs):
                if buffers[port][vc]:
                    buf_items.append(
                        (port, vc, tuple(flit_ref(f) for f in buffers[port][vc]))
                    )
                if assigned[port][vc] is not None:
                    asg_items.append((port, vc, tuple(assigned[port][vc])))
                if decision[port][vc] is not None:
                    dec_items.append((port, vc, _canonical_decision(decision[port][vc])))
                owner = out_owner[port][vc]
                if owner is not None:
                    packets.setdefault(owner.id, owner)
                    own_items.append((port, vc, owner.id))
                if credits[port][vc] != depth:
                    credit_items.append((port, vc, credits[port][vc]))
        rc = state.rc_buffers[rid]
        if rc is not None and (rc.owner is not None or rc.flits):
            assert rc.owner is not None
            packets.setdefault(rc.owner.id, rc.owner)
            rc_item = (
                rc.owner.id,
                tuple(flit_ref(f) for f in rc.flits),
                rc.complete,
                -1 if rc.out_vc is None else rc.out_vc,
            )
        else:
            rc_item = None
        sa = state.sa_rr[rid]
        if buf_items or asg_items or dec_items or own_items or credit_items or rc_item or sa:
            routers.append(
                (
                    rid,
                    tuple(buf_items),
                    tuple(asg_items),
                    tuple(dec_items),
                    tuple(own_items),
                    tuple(credit_items),
                    sa,
                    rc_item,
                )
            )
    nics = []
    for nic in state.nics:
        if nic.queue or nic.busy:
            for packet in nic.queue:
                packets.setdefault(packet.id, packet)
            current = -1
            if nic.current_flits is not None:
                current_packet = nic.current_flits[0].packet
                packets.setdefault(current_packet.id, current_packet)
                current = current_packet.id
            nics.append(
                (
                    nic.router_id,
                    tuple(p.id for p in nic.queue),
                    current,
                    nic.current_index,
                    nic.inject_vc,
                )
            )
    arrivals = tuple(
        sorted(
            (due, dst, port, vc) + flit_ref(flit)
            for due, batch in state.arrivals.items()
            for dst, port, vc, flit in batch
        )
    )
    credit_arrivals = tuple(
        sorted(
            (due,) + tuple(entry)
            for due, batch in state.credit_arrivals.items()
            for entry in batch
        )
    )
    vl_busy = tuple(
        sorted(
            (rid, free_at)
            for rid, free_at in state.vl_next_free.items()
            if free_at > state.cycle
        )
    )
    return (
        state.cycle,
        state.packet_counter,
        state.flits_in_flight,
        state.last_progress,
        state.measured_outstanding,
        tuple(routers),
        tuple(nics),
        arrivals,
        credit_arrivals,
        vl_busy,
        tuple(canonical_packet(packets[pid]) for pid in sorted(packets)),
        canonical_stats(stats),
    )


def snapshot_digest(snapshot: tuple) -> str:
    """Stable SHA-256 of a canonical snapshot (tuples of scalars only)."""
    return hashlib.sha256(repr(snapshot).encode("utf-8")).hexdigest()
