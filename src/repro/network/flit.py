"""Packets and flits.

A packet is serialized into ``size`` flits: one HEAD, ``size - 2`` BODY,
one TAIL (or a single HEAD_TAIL when ``size == 1``). Routing state
travels with the packet object, which every flit references — the software
equivalent of the header fields DeFT writes at the source (the selected
VL address) and of the VC-allocation state.
"""

from __future__ import annotations

import enum


class FlitKind(enum.IntEnum):
    """Position of a flit within its packet."""

    HEAD = 0
    BODY = 1
    TAIL = 2
    HEAD_TAIL = 3

    @property
    def is_head(self) -> bool:
        return self in (FlitKind.HEAD, FlitKind.HEAD_TAIL)

    @property
    def is_tail(self) -> bool:
        return self in (FlitKind.TAIL, FlitKind.HEAD_TAIL)


class Packet:
    """One network packet and its routing state.

    Attributes:
        id: unique packet identifier.
        src / dst: router ids of the source and destination PEs.
        size: flit count.
        created_cycle: cycle the traffic generator produced the packet
            (start of source queueing — latency is measured from here, so
            saturation shows up as unbounded latency, as in the paper's
            latency/injection-rate curves).
        injected_cycle: cycle the head flit entered the source router.
        delivered_cycle: cycle the tail flit was ejected at ``dst``.
        measured: whether the packet belongs to the measurement window.
        vn: the virtual network of the buffer currently holding the head
            flit (updated on every VC allocation; used for rule checking
            and VC-utilization statistics).
        down_vl / up_vl: bound vertical-link indices (intermediate
            destinations); ``up_vl`` is bound lazily when the packet
            enters the interposer.
        needs_rc: RC baseline - packet must traverse an RC buffer.
        rc_boundary: RC baseline - router id of the RC buffer in use.
    """

    __slots__ = (
        "id",
        "src",
        "dst",
        "size",
        "created_cycle",
        "injected_cycle",
        "delivered_cycle",
        "measured",
        "vn",
        "down_vl",
        "up_vl",
        "needs_rc",
        "rc_boundary",
        "hops",
        "flits_ejected",
    )

    def __init__(self, packet_id: int, src: int, dst: int, size: int, created_cycle: int):
        self.id = packet_id
        self.src = src
        self.dst = dst
        self.size = size
        self.created_cycle = created_cycle
        self.injected_cycle: int | None = None
        self.delivered_cycle: int | None = None
        self.measured = False
        self.vn = 0
        self.down_vl: int | None = None
        self.up_vl: int | None = None
        self.needs_rc = False
        self.rc_boundary: int | None = None
        self.hops = 0
        self.flits_ejected = 0

    @property
    def latency(self) -> int | None:
        """End-to-end latency (creation to tail ejection), if delivered."""
        if self.delivered_cycle is None:
            return None
        return self.delivered_cycle - self.created_cycle

    def flits(self) -> list["Flit"]:
        """Serialize the packet into its flit sequence."""
        if self.size == 1:
            return [Flit(self, FlitKind.HEAD_TAIL, 0)]
        kinds = [FlitKind.HEAD] + [FlitKind.BODY] * (self.size - 2) + [FlitKind.TAIL]
        return [Flit(self, kind, seq) for seq, kind in enumerate(kinds)]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Packet({self.id}, {self.src}->{self.dst}, size={self.size})"


class Flit:
    """One flow-control unit of a packet."""

    __slots__ = ("packet", "kind", "seq")

    def __init__(self, packet: Packet, kind: FlitKind, seq: int):
        self.packet = packet
        self.kind = kind
        self.seq = seq

    @property
    def is_head(self) -> bool:
        return self.kind.is_head

    @property
    def is_tail(self) -> bool:
        return self.kind.is_tail

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Flit(p{self.packet.id}.{self.seq} {self.kind.name})"
