"""The cycle-accurate simulation engine.

See :mod:`repro.network` for the microarchitecture modelled. Since the
engine/kernel split, this module owns *policy*: configuration, route
compilation, kernel selection, the warmup/measure/drain run loop,
reporting and telemetry. The per-cycle *mechanism* — what one simulated
cycle does to the network state — lives behind the
:class:`~repro.network.kernels.base.CycleKernel` interface:

* :mod:`repro.network.state` holds all mutable simulation state as
  struct-of-arrays (``buffers[rid][port][vc]``, credit matrices, staged
  arrivals, NIC queues);
* :mod:`repro.network.kernels.reference` advances it with the
  object-based phase pipeline (semantic ground truth);
* :mod:`repro.network.kernels.vector` advances the same semantics as
  numpy array sweeps over a dense route table
  (:meth:`~repro.routing.compiled.CompiledRoutes.dense_table`), falling
  back to live per-hop dispatch for stateful hops.

Both kernels are bit-identical by contract (enforced by the differential
fuzz suite via :func:`repro.network.state.snapshot_digest`); selection
is a pure performance choice — ``Simulator(kernel="auto")`` picks the
fastest one available. The watchdog raises
:class:`~repro.errors.DeadlockError` when flits are in flight but
nothing has moved for ``watchdog_cycles`` — this is how the test-suite
demonstrates that the unprotected baseline network *does* deadlock
(Fig. 1's motivation) while DeFT/MTR/RC never do.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, TYPE_CHECKING

from ..config import SimulationConfig
from ..errors import DeadlockError
from ..topology.builder import System
from ..routing.base import RoutingAlgorithm
from ..routing.compiled import CompiledRoutes, compile_routes
from .kernels import create_kernel
from .state import (
    RC_PORT as _RC_PORT,  # noqa: F401  (re-exported legacy name)
    RcBuffer as _RcBuffer,
    RouterView as _RouterState,
    partition_vcs as _partition_vcs,
    snapshot_digest,
)
from .stats import StatsCollector

if TYPE_CHECKING:  # pragma: no cover
    from ..traffic.base import TrafficGenerator
    from .kernels.base import CycleKernel
    from .nic import Nic

__all__ = [
    "Simulator",
    "SimulationReport",
    "_partition_vcs",
    "_RouterState",
    "_RcBuffer",
]


@dataclass
class SimulationReport:
    """Result bundle of one simulation run."""

    algorithm: str
    traffic: str
    stats: StatsCollector
    config: SimulationConfig
    cycles: int
    deadlocked: bool = False
    metadata: dict[str, Any] = field(default_factory=dict)

    @property
    def average_latency(self) -> float:
        return self.stats.average_latency

    @property
    def delivered_ratio(self) -> float:
        return self.stats.delivered_ratio

    def summary(self) -> str:
        """Multi-line human-readable run summary."""
        s = self.stats
        lines = [
            f"algorithm={self.algorithm} traffic={self.traffic} cycles={self.cycles}",
            f"  packets: created={s.packets_created} delivered={s.packets_delivered} "
            f"dropped={s.packets_dropped_unroutable}",
            f"  measured: {s.packets_delivered_measured}/{s.packets_measured} delivered, "
            f"avg latency={s.average_latency:.2f} cycles "
            f"(min={s.latency.minimum}, p50={s.latency.p50:.0f}, "
            f"p95={s.latency.p95:.0f}, p99={s.latency.p99:.0f}, "
            f"max={s.latency.maximum})",
            f"  avg hops={s.hops.average:.2f} flit-hops={s.flit_hops}",
        ]
        kernel = self.metadata.get("kernel")
        if kernel:
            line = f"  kernel={kernel}"
            rate = self.metadata.get("cycles_per_sec")
            if rate:
                line += f" cycles/sec={rate:,.0f}"
            fallback = self.metadata.get("kernel_fallback")
            if fallback:
                line += f" (fallback: {fallback})"
            lines.append(line)
        for region, shares in s.vc_utilization_report().items():
            formatted = "/".join(f"{share * 100:.1f}%" for share in shares)
            lines.append(f"  vc-util {region}: {formatted}")
        return "\n".join(lines)


class Simulator:
    """Drives one network, one routing algorithm and one traffic source.

    Args:
        system: the built 2.5D system.
        algorithm: the routing algorithm (its current fault state is used).
        traffic: the traffic generator.
        config: simulation parameters.
        routes: route-decision source. The default ``"auto"`` compiles the
            algorithm into a :class:`~repro.routing.compiled.CompiledRoutes`
            table when it declares itself compilable (bit-identical to live
            dispatch — the table is filled through ``algorithm.route``);
            pass an existing table to reuse one across runs (session
            workers), or ``None`` to force per-hop live dispatch.
        kernel: ``"auto"`` (default), ``"reference"`` or ``"vector"`` —
            see :mod:`repro.network.kernels`. Selection never changes
            results, only speed; when a ``vector`` request cannot be
            honoured the reason lands in :attr:`kernel_fallback_reason`
            and in the report's ``kernel_fallback`` metadata.
    """

    def __init__(
        self,
        system: System,
        algorithm: RoutingAlgorithm,
        traffic: "TrafficGenerator",
        config: SimulationConfig | None = None,
        routes: CompiledRoutes | None | str = "auto",
        kernel: str = "auto",
    ):
        self.system = system
        self.algorithm = algorithm
        self.traffic = traffic
        self.config = config or SimulationConfig()
        if routes == "auto":
            routes = compile_routes(algorithm)
        elif routes is not None and routes.algorithm is not algorithm:
            raise ValueError("compiled routes were built for a different algorithm")
        self.routes = routes
        self.stats = StatsCollector(system, self.config.num_vcs)
        self.kernel_requested = kernel
        self._kernel, self.kernel_fallback_reason = create_kernel(self, kernel)
        algorithm.reset_runtime_state()

    # ------------------------------------------------------------------
    # kernel-owned state, exposed in the legacy shape
    # ------------------------------------------------------------------

    @property
    def kernel(self) -> "CycleKernel":
        return self._kernel

    @property
    def kernel_name(self) -> str:
        return self._kernel.name

    @property
    def cycle(self) -> int:
        return self._kernel.cycle

    @property
    def routers(self) -> list[_RouterState]:
        return self._kernel.router_states()

    @property
    def nics(self) -> list["Nic"]:
        return self._kernel.nic_states()

    @property
    def _flits_in_flight(self) -> int:
        return self._kernel.flits_in_flight

    @property
    def _measured_outstanding(self) -> int:
        return self._kernel.measured_outstanding

    def state_digest(self) -> str:
        """SHA-256 over the canonical snapshot of all observable state.

        Equal digests between two simulators mean the runs are
        indistinguishable from this point on — the cross-kernel
        equivalence oracle.
        """
        return snapshot_digest(self._kernel.snapshot())

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def run(self) -> SimulationReport:
        """Execute warmup + measurement + drain and return the report."""
        cfg = self.config
        kernel = self._kernel
        inject_until = cfg.warmup_cycles + cfg.measure_cycles
        watchdog = cfg.watchdog_cycles
        deadlocked = False
        # Telemetry is recorded once per run (span + aggregate counters),
        # never per cycle — the per-cycle loop is the hottest path in the
        # repository and must not pay even a no-op call per step.
        from ..telemetry.metrics import get_registry

        registry = get_registry()
        start = time.perf_counter()
        with registry.span(
            "deft_sim_run_seconds", "Wall-clock of one Simulator.run"
        ):
            try:
                while kernel.cycle < inject_until:
                    kernel.step(True)
                drain_deadline = kernel.cycle + cfg.drain_cycles
                while (
                    kernel.measured_outstanding > 0
                    and kernel.cycle < drain_deadline
                ):
                    if kernel.is_idle():
                        # Nothing can move until a staged event lands, the
                        # watchdog trips, or the deadline arrives — jump
                        # straight to the earliest of the three (same final
                        # cycle count as stepping through the no-op cycles).
                        target = drain_deadline
                        due = kernel.next_event_cycle()
                        if due is not None and due < target:
                            target = due
                        if watchdog > 0 and kernel.flits_in_flight > 0:
                            target = min(target, kernel.last_progress + watchdog)
                        if target > kernel.cycle:
                            kernel.fast_forward(target)
                            if kernel.cycle >= drain_deadline:
                                break
                    kernel.step(False)
            except DeadlockError:
                deadlocked = True
        elapsed = time.perf_counter() - start
        kernel.finalize()
        cycles = kernel.cycle
        rate = cycles / elapsed if elapsed > 0 else 0.0
        if registry.enabled:
            registry.counter(
                "deft_sim_runs_total", "Completed Simulator.run calls"
            ).inc()
            registry.counter(
                "deft_sim_cycles_total", "Simulated cycles across all runs"
            ).inc(cycles)
            registry.counter(
                "deft_sim_flit_hops_total", "Flit-hops across all runs"
            ).inc(self.stats.flit_hops)
            if deadlocked:
                registry.counter(
                    "deft_sim_deadlocks_total", "Runs ended by the deadlock watchdog"
                ).inc()
            registry.counter(
                f"deft_sim_kernel_{kernel.name}_runs_total",
                "Runs executed by this cycle kernel",
            ).inc()
            registry.histogram(
                "deft_sim_kernel_cycles_per_sec",
                "Simulated cycles per wall-clock second",
            ).observe(rate)
            table_hops, live_hops = kernel.dispatch_counts()
            if table_hops:
                registry.counter(
                    "deft_sim_kernel_vector_hops_total",
                    "Route decisions served from the dense table",
                ).inc(table_hops)
            if live_hops:
                registry.counter(
                    "deft_sim_kernel_fallback_hops_total",
                    "Route decisions that needed live Python dispatch",
                ).inc(live_hops)
        self.stats.cycles_run = cycles
        metadata: dict[str, Any] = {
            "kernel": kernel.name,
            "cycles_per_sec": round(rate, 1),
        }
        if self.kernel_fallback_reason:
            metadata["kernel_fallback"] = self.kernel_fallback_reason
        return SimulationReport(
            algorithm=self.algorithm.name,
            traffic=getattr(self.traffic, "name", type(self.traffic).__name__),
            stats=self.stats,
            config=cfg,
            cycles=cycles,
            deadlocked=deadlocked,
            metadata=metadata,
        )

    def run_cycles(self, cycles: int, generate: bool = True) -> None:
        """Advance the simulation by a fixed number of cycles (for tests)."""
        try:
            for _ in range(cycles):
                self._kernel.step(generate)
        finally:
            # Kernels may defer stats folding to observation points; make
            # direct ``sim.stats`` reads after a stepped run exact too.
            self._kernel.finalize()

    def _step(self, generate: bool) -> None:
        self._kernel.step(generate)
