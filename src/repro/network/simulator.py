"""The cycle-accurate simulation engine.

See :mod:`repro.network` for the microarchitecture modelled. The engine is
deliberately written with flat data structures (lists indexed by port/VC)
and an active-set work list so that pure-Python simulation of the paper's
128-router baseline runs at usable speed.

Per-cycle phases:

1. **Traffic** — the generator creates packets into NIC source queues.
2. **Injection** — each NIC pushes at most one flit into its router's
   LOCAL input VC (respecting buffer space, routability and the routing
   algorithm's injection-permission hook).
3. **Router processing** — for every router with occupied input VCs:
   route computation for fresh heads (served from a compiled route table
   when the algorithm is compilable — see
   :mod:`repro.routing.compiled`), output-VC allocation, switch
   allocation (round-robin, one flit per output port and per input port),
   RC-buffer absorption/drain. Departing flits and credit returns are
   *staged*.
4. **Commit** — staged flits enter their destination buffers; staged
   credits return upstream. This two-phase update makes the router
   evaluation order irrelevant within a cycle.

The watchdog raises :class:`~repro.errors.DeadlockError` when flits are in
flight but nothing has moved for ``watchdog_cycles`` — this is how the
test-suite demonstrates that the unprotected baseline network *does*
deadlock (Fig. 1's motivation) while DeFT/MTR/RC never do.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, TYPE_CHECKING

from ..config import SimulationConfig
from ..errors import DeadlockError, UnroutablePacketError
from ..topology.builder import System
from ..topology.geometry import INTERPOSER_LAYER
from ..routing.base import Port, RoutingAlgorithm, opposite_port
from ..routing.compiled import CompiledRoutes, compile_routes
from ..fault.model import VLDirection
from .flit import Flit, Packet
from .nic import Nic
from .stats import StatsCollector

if TYPE_CHECKING:  # pragma: no cover
    from ..traffic.base import TrafficGenerator

#: Pseudo output port used for absorption into an RC buffer.
_RC_PORT = -1


class _RcBuffer:
    """Whole-packet store-and-forward buffer of the RC baseline."""

    __slots__ = ("owner", "flits", "complete", "out_vc")

    def __init__(self) -> None:
        self.owner: Packet | None = None
        self.flits: deque[Flit] = deque()
        self.complete = False
        self.out_vc: int | None = None

    def reset(self) -> None:
        self.owner = None
        self.flits.clear()
        self.complete = False
        self.out_vc = None


class _RouterState:
    """Flat per-router simulation state (buffers, credits, allocations)."""

    __slots__ = (
        "id",
        "buffers",
        "assigned",
        "decision",
        "out_owner",
        "credits",
        "sa_rr",
        "active",
        "rc_buffer",
    )

    def __init__(self, router_id: int, num_ports: int, num_vcs: int, depth: int):
        self.id = router_id
        self.buffers: list[list[deque[Flit]]] = [
            [deque() for _ in range(num_vcs)] for _ in range(num_ports)
        ]
        # Per input VC: (out_port, out_vc) held by the packet at the front.
        self.assigned: list[list[tuple[int, int] | None]] = [
            [None] * num_vcs for _ in range(num_ports)
        ]
        # Cached RouteDecision for a head flit awaiting VC allocation.
        self.decision: list[list[Any]] = [[None] * num_vcs for _ in range(num_ports)]
        # Per output VC: packet currently owning it (wormhole), or None.
        self.out_owner: list[list[Packet | None]] = [
            [None] * num_vcs for _ in range(num_ports)
        ]
        # Per output VC: credits = free buffer slots downstream.
        self.credits: list[list[int]] = [[depth] * num_vcs for _ in range(num_ports)]
        self.sa_rr = 0
        self.active: set[tuple[int, int]] = set()
        self.rc_buffer: _RcBuffer | None = None


@dataclass
class SimulationReport:
    """Result bundle of one simulation run."""

    algorithm: str
    traffic: str
    stats: StatsCollector
    config: SimulationConfig
    cycles: int
    deadlocked: bool = False
    metadata: dict[str, Any] = field(default_factory=dict)

    @property
    def average_latency(self) -> float:
        return self.stats.average_latency

    @property
    def delivered_ratio(self) -> float:
        return self.stats.delivered_ratio

    def summary(self) -> str:
        """Multi-line human-readable run summary."""
        s = self.stats
        lines = [
            f"algorithm={self.algorithm} traffic={self.traffic} cycles={self.cycles}",
            f"  packets: created={s.packets_created} delivered={s.packets_delivered} "
            f"dropped={s.packets_dropped_unroutable}",
            f"  measured: {s.packets_delivered_measured}/{s.packets_measured} delivered, "
            f"avg latency={s.average_latency:.2f} cycles "
            f"(min={s.latency.minimum}, p50={s.latency.p50:.0f}, "
            f"p95={s.latency.p95:.0f}, p99={s.latency.p99:.0f}, "
            f"max={s.latency.maximum})",
            f"  avg hops={s.hops.average:.2f} flit-hops={s.flit_hops}",
        ]
        for region, shares in s.vc_utilization_report().items():
            formatted = "/".join(f"{share * 100:.1f}%" for share in shares)
            lines.append(f"  vc-util {region}: {formatted}")
        return "\n".join(lines)


class Simulator:
    """Drives one network, one routing algorithm and one traffic source.

    Args:
        system: the built 2.5D system.
        algorithm: the routing algorithm (its current fault state is used).
        traffic: the traffic generator.
        config: simulation parameters.
        routes: route-decision source. The default ``"auto"`` compiles the
            algorithm into a :class:`~repro.routing.compiled.CompiledRoutes`
            table when it declares itself compilable (bit-identical to live
            dispatch — the table is filled through ``algorithm.route``);
            pass an existing table to reuse one across runs (session
            workers), or ``None`` to force per-hop live dispatch.
    """

    def __init__(
        self,
        system: System,
        algorithm: RoutingAlgorithm,
        traffic: "TrafficGenerator",
        config: SimulationConfig | None = None,
        routes: CompiledRoutes | None | str = "auto",
    ):
        self.system = system
        self.algorithm = algorithm
        self.traffic = traffic
        self.config = config or SimulationConfig()
        if routes == "auto":
            routes = compile_routes(algorithm)
        elif routes is not None and routes.algorithm is not algorithm:
            raise ValueError("compiled routes were built for a different algorithm")
        self.routes = routes
        self._route = routes.route if routes is not None else algorithm.route
        self.stats = StatsCollector(system, self.config.num_vcs)
        self.cycle = 0
        self._packet_counter = 0
        self._flits_in_flight = 0
        self._last_progress = 0
        self._measured_outstanding = 0
        self._num_vcs = self.config.num_vcs
        self._depth = self.config.buffer_depth
        self._vn_vcs = _partition_vcs(self._num_vcs)
        self._rr_mod = len(Port) * self._num_vcs
        # Flits/credits in flight, keyed by the cycle they materialize.
        self._arrivals: dict[int, list[tuple[int, int, int, Flit]]] = {}
        self._credit_arrivals: dict[int, list[tuple[int, int, int]]] = {}
        # Serialized vertical links: router id -> next cycle the VL is free.
        self._vl_serialization = self.config.vl_serialization
        self._vl_next_free: dict[int, int] = {}
        self._build_fabric()
        algorithm.reset_runtime_state()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def _build_fabric(self) -> None:
        num_vcs, depth = self._num_vcs, self._depth
        self.routers = [
            _RouterState(r.id, len(Port), num_vcs, depth) for r in self.system.routers
        ]
        # link_to[router][out_port] = (neighbor_id, neighbor_in_port)
        self.link_to: list[list[tuple[int, int] | None]] = [
            [None] * len(Port) for _ in self.system.routers
        ]
        for router in self.system.routers:
            for direction, neighbor in router.neighbors.items():
                self.link_to[router.id][int(direction)] = (
                    neighbor,
                    int(opposite_port(Port(int(direction)))),
                )
            if router.vertical_neighbor is not None:
                self.link_to[router.id][Port.VERTICAL] = (
                    router.vertical_neighbor,
                    int(Port.VERTICAL),
                )
        self.nics = [Nic(r.id) for r in self.system.routers]
        for router in self.system.routers:
            if self.algorithm.uses_rc_buffer(router.id):
                self.routers[router.id].rc_buffer = _RcBuffer()
        self._active_routers: set[int] = set()
        self._busy_nics: set[int] = set()

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def run(self) -> SimulationReport:
        """Execute warmup + measurement + drain and return the report."""
        cfg = self.config
        inject_until = cfg.warmup_cycles + cfg.measure_cycles
        deadlocked = False
        # Telemetry is recorded once per run (span + aggregate counters),
        # never per cycle — the per-cycle loop is the hottest path in the
        # repository and must not pay even a no-op call per step.
        from ..telemetry.metrics import get_registry

        registry = get_registry()
        with registry.span(
            "deft_sim_run_seconds", "Wall-clock of one Simulator.run"
        ):
            try:
                while self.cycle < inject_until:
                    self._step(generate=True)
                drain_deadline = self.cycle + cfg.drain_cycles
                while self._measured_outstanding > 0 and self.cycle < drain_deadline:
                    self._step(generate=False)
            except DeadlockError:
                deadlocked = True
        if registry.enabled:
            registry.counter(
                "deft_sim_runs_total", "Completed Simulator.run calls"
            ).inc()
            registry.counter(
                "deft_sim_cycles_total", "Simulated cycles across all runs"
            ).inc(self.cycle)
            registry.counter(
                "deft_sim_flit_hops_total", "Flit-hops across all runs"
            ).inc(self.stats.flit_hops)
            if deadlocked:
                registry.counter(
                    "deft_sim_deadlocks_total", "Runs ended by the deadlock watchdog"
                ).inc()
        self.stats.cycles_run = self.cycle
        return SimulationReport(
            algorithm=self.algorithm.name,
            traffic=getattr(self.traffic, "name", type(self.traffic).__name__),
            stats=self.stats,
            config=cfg,
            cycles=self.cycle,
            deadlocked=deadlocked,
        )

    def run_cycles(self, cycles: int, generate: bool = True) -> None:
        """Advance the simulation by a fixed number of cycles (for tests)."""
        for _ in range(cycles):
            self._step(generate=generate)

    # ------------------------------------------------------------------
    # per-cycle phases
    # ------------------------------------------------------------------

    def _step(self, generate: bool) -> None:
        if generate:
            self._generate_traffic()
        self._inject()
        transfers, credit_returns = self._process_routers()
        self._commit(transfers, credit_returns)
        self._check_watchdog()
        self.cycle += 1

    def _generate_traffic(self) -> None:
        measured_window = self.cycle >= self.config.warmup_cycles
        for src, dst in self.traffic.packets_for_cycle(self.cycle):
            packet = Packet(
                self._packet_counter, src, dst, self.config.packet_size, self.cycle
            )
            self._packet_counter += 1
            packet.measured = measured_window
            self.stats.on_packet_created(packet.measured)
            if packet.measured:
                self._measured_outstanding += 1
            self.nics[src].enqueue(packet)
            self._busy_nics.add(src)

    def _inject(self) -> None:
        done: list[int] = []
        for nid in self._busy_nics:
            nic = self.nics[nid]
            if not nic.busy:
                if not self._start_next_packet(nic):
                    if not nic.queue and not nic.busy:
                        done.append(nid)
                    continue
            flit = nic.next_flit()
            if flit is None:
                continue
            state = self.routers[nid]
            vc = nic.inject_vc
            buffer = state.buffers[Port.LOCAL][vc]
            if len(buffer) < self._depth:
                buffer.append(flit)
                state.active.add((int(Port.LOCAL), vc))
                self._active_routers.add(nid)
                self._flits_in_flight += 1
                self._last_progress = self.cycle
                nic.advance()
            if not nic.busy and not nic.queue:
                done.append(nid)
        for nid in done:
            self._busy_nics.discard(nid)

    def _start_next_packet(self, nic: Nic) -> bool:
        """Pop queued packets until one starts injecting; False if none can."""
        algo = self.algorithm
        while nic.queue:
            packet = nic.queue[0]
            if not algo.is_routable(packet.src, packet.dst):
                nic.queue.popleft()
                self.stats.on_packet_dropped(packet.measured)
                if packet.measured:
                    self._measured_outstanding -= 1
                continue
            if not algo.may_inject(packet, self.cycle):
                return False  # head-of-line wait (RC permission network)
            try:
                algo.prepare_packet(packet)
            except UnroutablePacketError:
                nic.queue.popleft()
                self.stats.on_packet_dropped(packet.measured)
                if packet.measured:
                    self._measured_outstanding -= 1
                continue
            nic.queue.popleft()
            vc = self._injection_vc(packet)
            nic.start_packet(packet, vc, self.cycle)
            return True
        return False

    def _injection_vc(self, packet: Packet) -> int:
        """Input VC for a fresh packet: first VC of its assigned VN."""
        vcs = self._vn_vcs[packet.vn]
        state = self.routers[packet.src]
        # Prefer the emptiest VC of the VN to avoid needless serialization.
        return min(vcs, key=lambda vc: len(state.buffers[Port.LOCAL][vc]))

    # -- router processing ---------------------------------------------------

    def _process_routers(
        self,
    ) -> tuple[list[tuple[int, int, int, Flit]], list[tuple[int, int, int]]]:
        transfers: list[tuple[int, int, int, Flit]] = []  # (dst, in_port, vc, flit)
        credit_returns: list[tuple[int, int, int]] = []  # (router, out_port, vc)
        idle: list[int] = []
        for rid in tuple(self._active_routers):
            state = self.routers[rid]
            self._process_one_router(state, transfers, credit_returns)
            if not state.active and not (
                state.rc_buffer is not None and state.rc_buffer.flits
            ):
                idle.append(rid)
        for rid in idle:
            self._active_routers.discard(rid)
        return transfers, credit_returns

    def _process_one_router(
        self,
        state: _RouterState,
        transfers: list[tuple[int, int, int, Flit]],
        credit_returns: list[tuple[int, int, int]],
    ) -> None:
        rid = state.id
        requests: dict[int, list[tuple[int, int]]] = {}
        rc_requests: list[tuple[int, int]] = []
        for (port, vc) in state.active:
            buffer = state.buffers[port][vc]
            if not buffer:
                continue
            flit = buffer[0]
            target = state.assigned[port][vc]
            if target is None:
                if not flit.is_head:
                    continue  # waits for its head's allocation (cannot happen mid-packet)
                decision = state.decision[port][vc]
                if decision is None:
                    decision = self._route(flit.packet, rid, Port(port))
                    state.decision[port][vc] = decision
                out_port = int(decision.out_port)
                if (
                    out_port == Port.VERTICAL
                    and state.rc_buffer is not None
                    and flit.packet.needs_rc
                ):
                    unit = state.rc_buffer
                    if unit.owner is None:
                        unit.owner = flit.packet
                    if unit.owner is flit.packet:
                        state.assigned[port][vc] = (_RC_PORT, 0)
                        rc_requests.append((port, vc))
                    continue
                out_vc = self._allocate_out_vc(state, out_port, decision.allowed_vns, flit.packet)
                if out_vc is None:
                    continue
                state.assigned[port][vc] = (out_port, out_vc)
                target = (out_port, out_vc)
            out_port, out_vc = target
            if out_port == _RC_PORT:
                rc_requests.append((port, vc))
            elif out_port == Port.LOCAL:
                requests.setdefault(out_port, []).append((port, vc))
            elif state.credits[out_port][out_vc] > 0:
                if out_port == Port.VERTICAL and not self._vl_available(rid):
                    continue  # serialized vertical link still busy
                requests.setdefault(out_port, []).append((port, vc))
        if not requests and not rc_requests and not (
            state.rc_buffer is not None and state.rc_buffer.complete
        ):
            return
        used_in_ports: set[int] = set()
        # Rotate output-port service order for long-term fairness.
        out_ports = sorted(requests)
        if out_ports:
            offset = state.sa_rr % len(out_ports)
            out_ports = out_ports[offset:] + out_ports[:offset]
            state.sa_rr += 1
        for out_port in out_ports:
            candidates = [c for c in requests[out_port] if c[0] not in used_in_ports]
            if not candidates:
                continue
            winner = min(
                candidates,
                key=lambda c: (c[0] * self._num_vcs + c[1] - state.sa_rr) % self._rr_mod,
            )
            in_port, vc = winner
            used_in_ports.add(in_port)
            self._send_flit(state, in_port, vc, out_port, transfers, credit_returns)
        if rc_requests:
            in_port, vc = rc_requests[0]
            if in_port not in used_in_ports:
                self._absorb_into_rc(state, in_port, vc, credit_returns)
        self._drain_rc(state, transfers)

    def _allocate_out_vc(
        self,
        state: _RouterState,
        out_port: int,
        allowed_vns: tuple[int, ...],
        packet: Packet,
    ) -> int | None:
        """Claim a free output VC belonging to one of the allowed VNs."""
        if out_port == Port.LOCAL:
            return 0  # ejection needs no VC allocation; arbitration suffices
        owners = state.out_owner[out_port]
        for vn in allowed_vns:
            for vc in self._vn_vcs[vn]:
                if owners[vc] is None:
                    owners[vc] = packet
                    packet.vn = vn
                    return vc
        return None

    def _send_flit(
        self,
        state: _RouterState,
        in_port: int,
        vc: int,
        out_port: int,
        transfers: list[tuple[int, int, int, Flit]],
        credit_returns: list[tuple[int, int, int]],
    ) -> None:
        buffer = state.buffers[in_port][vc]
        flit = buffer.popleft()
        if not buffer:
            state.active.discard((in_port, vc))
        if in_port != Port.LOCAL:
            credit_returns.append(self._upstream_credit(state.id, in_port, vc))
        self._last_progress = self.cycle
        if out_port == Port.LOCAL:
            self._eject(flit)
        else:
            assigned = state.assigned[in_port][vc]
            assert assigned is not None
            out_vc = assigned[1]
            state.credits[out_port][out_vc] -= 1
            link = self.link_to[state.id][out_port]
            assert link is not None, "route decision used a non-existent port"
            dst, dst_in_port = link
            transfers.append((dst, dst_in_port, out_vc, flit))
            if flit.is_head:
                flit.packet.hops += 1
            if out_port == Port.VERTICAL:
                router = self.system.routers[state.id]
                direction = (
                    VLDirection.UP if router.is_interposer else VLDirection.DOWN
                )
                assert router.vl_index is not None
                self.stats.on_vl_traversal(router.vl_index, int(direction))
                self._mark_vl_busy(state.id)
            if flit.is_tail:
                state.out_owner[out_port][out_vc] = None
        if flit.is_tail:
            state.assigned[in_port][vc] = None
            state.decision[in_port][vc] = None

    def _upstream_credit(self, router_id: int, in_port: int, vc: int) -> tuple[int, int, int]:
        """Locate the upstream (router, out_port, vc) to credit for a pop."""
        router = self.system.routers[router_id]
        if in_port == Port.VERTICAL:
            upstream = router.vertical_neighbor
            assert upstream is not None
            return (upstream, int(Port.VERTICAL), vc)
        direction = Port(in_port)
        upstream = router.neighbors[direction]  # type: ignore[index]
        return (upstream, int(opposite_port(direction)), vc)

    def _eject(self, flit: Flit) -> None:
        packet = flit.packet
        packet.flits_ejected += 1
        self._flits_in_flight -= 1
        if flit.is_tail:
            packet.delivered_cycle = self.cycle
            latency = packet.delivered_cycle - packet.created_cycle
            self.stats.on_packet_delivered(latency, packet.hops, packet.measured)
            self.algorithm.on_packet_delivered(packet, self.cycle)
            if packet.measured:
                self._measured_outstanding -= 1

    # -- RC buffer ------------------------------------------------------------

    def _absorb_into_rc(
        self,
        state: _RouterState,
        in_port: int,
        vc: int,
        credit_returns: list[tuple[int, int, int]],
    ) -> None:
        unit = state.rc_buffer
        assert unit is not None
        buffer = state.buffers[in_port][vc]
        if not buffer:
            return
        flit = buffer.popleft()
        if not buffer:
            state.active.discard((in_port, vc))
        if in_port != Port.LOCAL:
            credit_returns.append(self._upstream_credit(state.id, in_port, vc))
        unit.flits.append(flit)
        self._last_progress = self.cycle
        if flit.is_tail:
            unit.complete = True
            state.assigned[in_port][vc] = None
            state.decision[in_port][vc] = None
        self._active_routers.add(state.id)

    def _drain_rc(self, state: _RouterState, transfers: list[tuple[int, int, int, Flit]]) -> None:
        unit = state.rc_buffer
        if unit is None or not unit.complete or not unit.flits:
            return
        if unit.out_vc is None:
            owners = state.out_owner[Port.VERTICAL]
            for vc in range(self._num_vcs):
                if owners[vc] is None:
                    owners[vc] = unit.owner
                    unit.out_vc = vc
                    break
            if unit.out_vc is None:
                return
        out_vc = unit.out_vc
        if state.credits[Port.VERTICAL][out_vc] <= 0:
            return
        if not self._vl_available(state.id):
            return  # serialized vertical link still busy
        flit = unit.flits.popleft()
        state.credits[Port.VERTICAL][out_vc] -= 1
        link = self.link_to[state.id][Port.VERTICAL]
        assert link is not None
        dst, dst_in_port = link
        transfers.append((dst, dst_in_port, out_vc, flit))
        self._last_progress = self.cycle
        if flit.is_head:
            flit.packet.hops += 1
        router = self.system.routers[state.id]
        assert router.vl_index is not None
        self.stats.on_vl_traversal(router.vl_index, int(VLDirection.DOWN))
        self._mark_vl_busy(state.id)
        if flit.is_tail:
            state.out_owner[Port.VERTICAL][out_vc] = None
            packet = unit.owner
            assert packet is not None
            unit.reset()
            self.algorithm.on_rc_buffer_drained(state.id, packet, self.cycle)

    # -- serialized vertical links ---------------------------------------------

    def _vl_available(self, router_id: int) -> bool:
        """Whether the router's vertical link can accept a flit this cycle."""
        if self._vl_serialization <= 1:
            return True
        return self.cycle >= self._vl_next_free.get(router_id, 0)

    def _mark_vl_busy(self, router_id: int) -> None:
        """Occupy the serialized vertical link for ``vl_serialization`` cycles."""
        if self._vl_serialization > 1:
            self._vl_next_free[router_id] = self.cycle + self._vl_serialization

    # -- commit ---------------------------------------------------------------

    def _commit(
        self,
        transfers: list[tuple[int, int, int, Flit]],
        credit_returns: list[tuple[int, int, int]],
    ) -> None:
        # Stage this cycle's departures into the future...
        if transfers:
            due = self.cycle + self.config.hop_latency - 1
            self._arrivals.setdefault(due, []).extend(transfers)
        if credit_returns:
            due = self.cycle + self.config.credit_latency - 1
            self._credit_arrivals.setdefault(due, []).extend(credit_returns)
        # ...and materialize everything due now.
        for dst, in_port, vc, flit in self._arrivals.pop(self.cycle, ()):
            state = self.routers[dst]
            buffer = state.buffers[in_port][vc]
            assert len(buffer) < self._depth, "credit protocol violated"
            buffer.append(flit)
            state.active.add((in_port, vc))
            self._active_routers.add(dst)
            self.stats.on_flit_transfer(self.system.routers[dst].layer, vc)
        for router_id, out_port, vc in self._credit_arrivals.pop(self.cycle, ()):
            self.routers[router_id].credits[out_port][vc] += 1

    # -- watchdog ---------------------------------------------------------------

    def _check_watchdog(self) -> None:
        limit = self.config.watchdog_cycles
        if limit <= 0 or self._flits_in_flight <= 0:
            return
        if self.cycle - self._last_progress >= limit:
            raise DeadlockError(self._last_progress, self._flits_in_flight)


def _partition_vcs(num_vcs: int) -> tuple[tuple[int, ...], tuple[int, ...]]:
    """Split VC indices between the two virtual networks.

    VN.0 gets the lower half, VN.1 the upper half; with an odd count VN.1
    gets the extra VC (it carries delivery traffic, which must not starve).
    """
    if num_vcs == 1:
        return ((0,), (0,))
    half = num_vcs // 2
    return (tuple(range(half)), tuple(range(half, num_vcs)))
