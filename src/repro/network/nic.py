"""Network interface controllers (NICs).

One NIC per PE-attached router. The NIC owns the source queue (unbounded,
open-loop injection), serializes packets into flits, and feeds them into
the router's LOCAL input port one flit per cycle, subject to buffer space.
It also performs packet reassembly on ejection.

Latency is measured from packet *creation* (entry into the source queue),
so congestion at the source counts — this is what makes the latency curves
blow up past saturation, as in the paper's Fig. 4.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING

from .flit import Flit, Packet

if TYPE_CHECKING:  # pragma: no cover
    from ..routing.base import RoutingAlgorithm


class Nic:
    """Injection queue + serializer for one router's local port."""

    __slots__ = ("router_id", "queue", "current_flits", "current_index", "inject_vc")

    def __init__(self, router_id: int):
        self.router_id = router_id
        self.queue: deque[Packet] = deque()
        self.current_flits: list[Flit] | None = None
        self.current_index = 0
        self.inject_vc = 0

    def enqueue(self, packet: Packet) -> None:
        self.queue.append(packet)

    @property
    def busy(self) -> bool:
        """Whether a packet is currently being serialized into the router."""
        return self.current_flits is not None

    @property
    def backlog(self) -> int:
        """Packets waiting in the source queue (excluding the one in flight)."""
        return len(self.queue)

    def start_packet(self, packet: Packet, vc: int, cycle: int) -> None:
        """Begin serializing ``packet`` into input VC ``vc``."""
        packet.injected_cycle = cycle
        self.current_flits = packet.flits()
        self.current_index = 0
        self.inject_vc = vc

    def next_flit(self) -> Flit | None:
        """The flit waiting to enter the router, if any."""
        if self.current_flits is None:
            return None
        return self.current_flits[self.current_index]

    def advance(self) -> None:
        """Mark the pending flit as injected."""
        assert self.current_flits is not None
        self.current_index += 1
        if self.current_index >= len(self.current_flits):
            self.current_flits = None
            self.current_index = 0
