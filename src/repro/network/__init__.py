"""Cycle-accurate 2.5D NoC substrate.

A from-scratch, flit-level, wormhole-switched, credit-flow-controlled
network simulator playing the role of the paper's enhanced Noxim. The
microarchitecture is the classic input-buffered VC router:

* per-input-port, per-VC FIFO buffers (default 4 flits);
* route computation per packet head at each hop (delegated to a
  :class:`~repro.routing.base.RoutingAlgorithm`);
* output-VC allocation with per-packet ownership (wormhole: a packet holds
  its output VC from head to tail);
* switch allocation with round-robin arbitration, one flit per output port
  and one flit per input port per cycle;
* credit-based backpressure per (output port, VC);
* one-cycle link traversal.

The RC baseline additionally registers whole-packet "RC buffers" on
boundary routers (see :mod:`repro.routing.rc`), which the simulator models
as a store-and-forward side buffer feeding the vertical output port.
"""

from .flit import Flit, FlitKind, Packet
from .simulator import Simulator, SimulationReport
from .stats import StatsCollector

__all__ = [
    "Flit",
    "FlitKind",
    "Packet",
    "Simulator",
    "SimulationReport",
    "StatsCollector",
]
