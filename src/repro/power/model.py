"""Component-level router area/power model (45 nm, 1 GHz).

Structure mirrors ORION's decomposition of an input-buffered VC router:

* input buffers  — ``ports x VCs x depth x flit_width`` bits of storage;
* crossbar       — ``ports x ports x flit_width`` bit crosspoints;
* allocators     — VC + switch allocation, quadratic in request count;
* routing logic  — fixed per-router control;

plus the per-algorithm structures of the paper:

* DeFT: the VL-selection lookup table (one VL address per fault scenario;
  14 faulty scenarios + the fault-free default for a 4-VL chiplet) and the
  VN-assignment logic (Rules 1-3 + round-robin state);
* RC non-boundary: the permission-request logic every chiplet router
  needs to talk to the permission network;
* RC boundary: a whole-packet RC buffer (packet_size x flit_width bits)
  and the grant arbiter of the shared buffer.

The per-bit/per-gate constants are calibrated so the *MTR* 6-port router
matches the paper's Genus/ORION anchor (45878 um^2, 11.644 mW); every
other number is then produced by the structure sizes. The paper's Table I
values are reproduced within ~1% — the residual sits in the analog of
layout overheads our linear model does not capture.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.fault_scenarios import scenario_count


@dataclass(frozen=True)
class Technology:
    """Per-structure constants of a process node (calibrated, 45 nm).

    Areas in um^2 per bit (or per unit noted); powers in mW per bit at the
    calibration clock (1 GHz) and activity.
    """

    name: str
    buffer_area_per_bit: float
    crossbar_area_per_bit: float
    allocator_area_per_request_pair: float
    control_area: float
    lut_area_per_bit: float
    vn_logic_area: float
    permission_requester_area: float
    permission_arbiter_area: float
    buffer_power_per_bit: float
    sidebuffer_power_per_bit: float
    crossbar_power_per_bit: float
    allocator_power_per_request_pair: float
    control_power: float
    lut_power_per_bit: float
    vn_logic_power: float
    permission_requester_power: float
    permission_arbiter_power: float


#: Constants calibrated against the paper's MTR anchor at 45 nm / 1 GHz.
TECHNOLOGY_45NM = Technology(
    name="45nm-1GHz",
    buffer_area_per_bit=20.0,
    crossbar_area_per_bit=8.0,
    allocator_area_per_request_pair=20.0,
    control_area=3_062.0,
    lut_area_per_bit=7.5,
    vn_logic_area=323.0,
    permission_requester_area=785.0,
    permission_arbiter_area=986.0,
    buffer_power_per_bit=5.0e-3,
    sidebuffer_power_per_bit=3.5e-3,   # RC buffer: lower switching activity
    crossbar_power_per_bit=1.5e-3,
    allocator_power_per_request_pair=8.0e-3,
    control_power=1.084,
    lut_power_per_bit=0.5e-3,
    vn_logic_power=0.019,
    permission_requester_power=0.116,
    permission_arbiter_power=0.301,
)


@dataclass(frozen=True)
class RouterParams:
    """Microarchitectural parameters of the estimated router.

    Defaults are the paper's configuration: a six-port router (4 mesh +
    local + vertical), 2 VCs, 4-flit buffers, 32-bit flits, 8-flit
    packets, 4 VLs per chiplet.
    """

    ports: int = 6
    num_vcs: int = 2
    buffer_depth: int = 4
    flit_width: int = 32
    packet_size: int = 8
    vls_per_chiplet: int = 4

    @property
    def buffer_bits(self) -> int:
        return self.ports * self.num_vcs * self.buffer_depth * self.flit_width

    @property
    def crossbar_bits(self) -> int:
        return self.ports * self.ports * self.flit_width

    @property
    def request_pairs(self) -> int:
        requests = self.ports * self.num_vcs
        return requests * requests

    @property
    def rc_buffer_bits(self) -> int:
        return self.packet_size * self.flit_width

    @property
    def lut_bits(self) -> int:
        """DeFT per-router LUT: one VL address per stored scenario.

        ``scenario_count(V) + 1`` entries (the 14 faulty scenarios of the
        paper plus the fault-free default), each a ``ceil(log2 V)``-bit VL
        address, stored twice (down-selection and up-selection sides).
        """
        entries = scenario_count(self.vls_per_chiplet) + 1
        address_bits = max(1, (self.vls_per_chiplet - 1).bit_length())
        return 2 * entries * address_bits


@dataclass(frozen=True)
class RouterEstimate:
    """Area/power breakdown of one router configuration."""

    label: str
    area_um2: float
    power_mw: float
    area_breakdown: dict[str, float]
    power_breakdown: dict[str, float]

    def normalized_to(self, baseline: "RouterEstimate") -> tuple[float, float]:
        """(area, power) relative to a baseline router (Table I's rows)."""
        return self.area_um2 / baseline.area_um2, self.power_mw / baseline.power_mw


def _base_router(params: RouterParams, tech: Technology) -> tuple[dict[str, float], dict[str, float]]:
    area = {
        "buffers": params.buffer_bits * tech.buffer_area_per_bit,
        "crossbar": params.crossbar_bits * tech.crossbar_area_per_bit,
        "allocators": params.request_pairs * tech.allocator_area_per_request_pair,
        "control": tech.control_area,
    }
    power = {
        "buffers": params.buffer_bits * tech.buffer_power_per_bit,
        "crossbar": params.crossbar_bits * tech.crossbar_power_per_bit,
        "allocators": params.request_pairs * tech.allocator_power_per_request_pair,
        "control": tech.control_power,
    }
    return area, power


def _finish(label: str, area: dict[str, float], power: dict[str, float]) -> RouterEstimate:
    return RouterEstimate(
        label=label,
        area_um2=sum(area.values()),
        power_mw=sum(power.values()),
        area_breakdown=area,
        power_breakdown=power,
    )


def estimate_mtr_router(
    params: RouterParams = RouterParams(), tech: Technology = TECHNOLOGY_45NM
) -> RouterEstimate:
    """MTR router: the plain six-port VC router (turn restrictions are
    routing-table content, not extra hardware)."""
    area, power = _base_router(params, tech)
    return _finish("MTR", area, power)


def estimate_rc_nonboundary_router(
    params: RouterParams = RouterParams(), tech: Technology = TECHNOLOGY_45NM
) -> RouterEstimate:
    """RC non-boundary router: base + permission-request logic."""
    area, power = _base_router(params, tech)
    area["permission"] = tech.permission_requester_area
    power["permission"] = tech.permission_requester_power
    return _finish("RC non-boundary", area, power)


def estimate_rc_boundary_router(
    params: RouterParams = RouterParams(), tech: Technology = TECHNOLOGY_45NM
) -> RouterEstimate:
    """RC boundary router: base + whole-packet RC buffer + grant arbiter."""
    area, power = _base_router(params, tech)
    area["rc-buffer"] = params.rc_buffer_bits * tech.buffer_area_per_bit
    area["permission"] = tech.permission_arbiter_area
    power["rc-buffer"] = params.rc_buffer_bits * tech.sidebuffer_power_per_bit
    power["permission"] = tech.permission_arbiter_power
    return _finish("RC boundary", area, power)


def estimate_deft_router(
    params: RouterParams = RouterParams(), tech: Technology = TECHNOLOGY_45NM
) -> RouterEstimate:
    """DeFT router: base + selection LUT + VN-assignment logic."""
    area, power = _base_router(params, tech)
    area["vl-lut"] = params.lut_bits * tech.lut_area_per_bit
    area["vn-logic"] = tech.vn_logic_area
    power["vl-lut"] = params.lut_bits * tech.lut_power_per_bit
    power["vn-logic"] = tech.vn_logic_power
    return _finish("DeFT", area, power)


def table1(
    params: RouterParams = RouterParams(), tech: Technology = TECHNOLOGY_45NM
) -> dict[str, RouterEstimate]:
    """All four router estimates of the paper's Table I."""
    return {
        "MTR": estimate_mtr_router(params, tech),
        "RC non-boundary": estimate_rc_nonboundary_router(params, tech),
        "RC boundary": estimate_rc_boundary_router(params, tech),
        "DeFT": estimate_deft_router(params, tech),
    }
