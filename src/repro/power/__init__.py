"""ORION-style analytical router area/power estimation (Table I).

The paper used Cadence Genus + ORION 3.0 at 45 nm / 1 GHz. This package
provides a component-level analytical model (buffers, crossbar,
allocators, routing logic, plus the algorithm-specific structures: DeFT's
selection LUTs and VN logic, RC's packet buffer and permission logic)
with per-bit technology constants calibrated against the paper's
published MTR anchor values. Relative overheads — the quantity Table I
compares — emerge from the modelled structure sizes.
"""

from .model import (
    RouterParams,
    RouterEstimate,
    TECHNOLOGY_45NM,
    Technology,
    estimate_deft_router,
    estimate_mtr_router,
    estimate_rc_boundary_router,
    estimate_rc_nonboundary_router,
    table1,
)

__all__ = [
    "RouterParams",
    "RouterEstimate",
    "Technology",
    "TECHNOLOGY_45NM",
    "estimate_mtr_router",
    "estimate_rc_nonboundary_router",
    "estimate_rc_boundary_router",
    "estimate_deft_router",
    "table1",
]
