"""Job outcomes: the metrics every experiment consumes.

:class:`JobResult` carries exactly what the repo's figures need from one
simulation — latency aggregates (Figs. 4, 6, 8), VC utilization (Fig. 5),
per-VL loads (wear analysis), delivery counts (in-simulation
reachability) — plus error/timeout capture so a failed job never takes a
campaign down with it. Results are plain JSON for the on-disk cache.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Mapping


@dataclass
class JobResult:
    """Outcome of executing one :class:`~repro.runner.spec.Job`.

    ``ok`` is False when the simulation raised (including deadlock
    watchdog trips) or timed out, in which case ``error`` holds the
    reason and every metric keeps its NaN/zero default.

    ``duration_s`` and ``cached`` are provenance, not results: they are
    excluded from equality so a cache hit compares equal to the run that
    produced it. Equality is NaN-tolerant — a packet-less run's NaN
    latency must still compare equal after a pickle or JSON round-trip,
    or the serial/parallel/cache equivalence contract would break on
    exactly those results.
    """

    job_key: str
    ok: bool = True
    error: str | None = None
    average_latency: float = math.nan
    p50_latency: float = math.nan
    p95_latency: float = math.nan
    p99_latency: float = math.nan
    delivered_ratio: float = math.nan
    average_hops: float = math.nan
    packets_measured: int = 0
    packets_delivered_measured: int = 0
    packets_dropped_measured: int = 0
    cycles: int = 0
    deadlocked: bool = False
    vc_utilization: dict[str, list[float]] = field(default_factory=dict)
    vl_loads: dict[int, tuple[int, int]] = field(default_factory=dict)
    #: Analytic reachable core-pair fraction (``kind="reachability"``
    #: jobs only; NaN for simulation jobs).
    reachability: float = math.nan
    #: The concrete fault pattern a sample-mode job drew — provenance for
    #: Monte Carlo campaigns, in the same ``(vl_index, direction)`` form
    #: as :attr:`repro.runner.spec.Job.faults`.
    sampled_faults: tuple[tuple[int, str], ...] = ()
    duration_s: float = field(default=0.0, compare=False)
    cached: bool = field(default=False, compare=False)

    def _comparable(self) -> dict[str, Any]:
        """Equality key: the serialized result with NaNs made comparable."""

        def canonical(value: Any) -> Any:
            if isinstance(value, float) and math.isnan(value):
                return "__nan__"
            if isinstance(value, dict):
                return {key: canonical(item) for key, item in value.items()}
            if isinstance(value, (list, tuple)):
                return [canonical(item) for item in value]
            return value

        data = self.to_dict()
        del data["duration_s"]  # provenance, not a result
        return canonical(data)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, JobResult):
            return NotImplemented
        return self._comparable() == other._comparable()

    def raise_if_failed(self) -> "JobResult":
        """Return self, or raise ``RuntimeError`` for failed jobs.

        Experiment harnesses call this when a missing data point would
        silently corrupt a figure.
        """
        if not self.ok:
            raise RuntimeError(f"job {self.job_key[:12]} failed: {self.error}")
        return self

    # -- serialization --------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "job_key": self.job_key,
            "ok": self.ok,
            "error": self.error,
            "average_latency": self.average_latency,
            "p50_latency": self.p50_latency,
            "p95_latency": self.p95_latency,
            "p99_latency": self.p99_latency,
            "delivered_ratio": self.delivered_ratio,
            "average_hops": self.average_hops,
            "packets_measured": self.packets_measured,
            "packets_delivered_measured": self.packets_delivered_measured,
            "packets_dropped_measured": self.packets_dropped_measured,
            "cycles": self.cycles,
            "deadlocked": self.deadlocked,
            "vc_utilization": self.vc_utilization,
            # JSON objects require string keys; inverted in from_dict.
            "vl_loads": {str(k): list(v) for k, v in self.vl_loads.items()},
            "reachability": self.reachability,
            "sampled_faults": [list(fault) for fault in self.sampled_faults],
            "duration_s": self.duration_s,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "JobResult":
        return cls(
            job_key=data["job_key"],
            ok=bool(data.get("ok", True)),
            error=data.get("error"),
            average_latency=float(data.get("average_latency", math.nan)),
            p50_latency=float(data.get("p50_latency", math.nan)),
            p95_latency=float(data.get("p95_latency", math.nan)),
            p99_latency=float(data.get("p99_latency", math.nan)),
            delivered_ratio=float(data.get("delivered_ratio", math.nan)),
            average_hops=float(data.get("average_hops", math.nan)),
            packets_measured=int(data.get("packets_measured", 0)),
            packets_delivered_measured=int(data.get("packets_delivered_measured", 0)),
            packets_dropped_measured=int(data.get("packets_dropped_measured", 0)),
            cycles=int(data.get("cycles", 0)),
            deadlocked=bool(data.get("deadlocked", False)),
            vc_utilization={
                region: [float(v) for v in shares]
                for region, shares in data.get("vc_utilization", {}).items()
            },
            vl_loads={
                int(index): (int(loads[0]), int(loads[1]))
                for index, loads in data.get("vl_loads", {}).items()
            },
            reachability=float(data.get("reachability", math.nan)),
            sampled_faults=tuple(
                (int(i), str(d)) for i, d in data.get("sampled_faults", ())
            ),
            duration_s=float(data.get("duration_s", 0.0)),
        )
