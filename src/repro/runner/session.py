"""Reusable per-worker simulation sessions.

Every campaign job used to rebuild the world from scratch: the
:class:`~repro.topology.builder.System`, the routing algorithm (for DeFT
that means re-running the Algorithm 2 offline optimization over every
fault scenario), the fault state and — since the compiled-routes
refactor — the route tables. For the Monte Carlo subsystem, which fires
thousands of same-topology jobs per campaign, that rebuild dominated the
hot path.

A :class:`SessionContext` is the warm state one worker keeps between
jobs: memoized Systems, algorithms, explicit fault states and compiled
route tables, keyed by their canonical spec forms (the same canonical
dictionaries the content-addressed result cache hashes). Reuse is sound
because jobs already guarantee run isolation by contract:

* built Systems are immutable in practice (nothing in the library
  mutates one);
* the executor installs the job's fault state on the memoized algorithm
  *every* job (including the empty state), so nothing leaks between
  fault scenarios;
* the simulator calls ``reset_runtime_state()`` at construction, which
  restores round-robin counters, RC tokens and strategy RNGs to their
  constructor values — exactly the state a freshly built algorithm has;
* compiled route tables auto-invalidate when the installed fault state
  changes, while their per-pattern reachability rows are keyed by fault
  pattern and survive (Monte Carlo samples share them).

Each process owns one implicit session (:func:`get_session`):
``SerialBackend`` uses the caller's, every ``ProcessPoolBackend`` worker
uses its own. Sessions are also exactly the unit a remote worker would
keep warm — the ROADMAP's sharded mega-grids hand a key range to a
machine and let its session amortize the builds.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any, Callable

from ..fault.model import FaultState, faults_from_spec
from .spec import Job, SystemRef

if TYPE_CHECKING:  # pragma: no cover
    from ..routing.base import RoutingAlgorithm
    from ..routing.compiled import CompiledRoutes
    from ..topology.builder import System


class SessionContext:
    """Memoized build artifacts shared by the jobs of one worker.

    All getters are keyed by canonical spec forms and build through the
    same constructors the sessionless executor uses, so a session changes
    wall-clock only — never results.
    """

    def __init__(self) -> None:
        self._systems: dict[str, "System"] = {}
        self._algorithms: dict[tuple[str, str, tuple], "RoutingAlgorithm"] = {}
        self._routes: dict[tuple[str, str, tuple], "CompiledRoutes | None"] = {}
        self._fault_states: dict[tuple[str, tuple], FaultState] = {}
        #: (category, "hit"|"miss") -> count, for tests and benchmarks.
        self.stats: dict[tuple[str, str], int] = {}

    def _count(self, category: str, hit: bool) -> None:
        key = (category, "hit" if hit else "miss")
        self.stats[key] = self.stats.get(key, 0) + 1

    # -- systems ---------------------------------------------------------

    @staticmethod
    def system_key(ref: SystemRef) -> str:
        return json.dumps(ref.to_dict(), sort_keys=True)

    def system(self, ref: SystemRef) -> "System":
        """The built system for a reference, constructed at most once."""
        key = self.system_key(ref)
        system = self._systems.get(key)
        self._count("system", system is not None)
        if system is None:
            system = ref.build()
            self._systems[key] = system
        return system

    # -- algorithms + compiled tables ------------------------------------

    def algorithm(
        self,
        ref: SystemRef,
        system: "System",
        name: str,
        params: tuple[tuple[str, Any], ...],
        build: Callable[[], "RoutingAlgorithm"],
    ) -> "RoutingAlgorithm":
        """The memoized algorithm instance for (system, name, params).

        ``build`` runs on a miss only — for DeFT it carries the offline
        selection-table optimization, the single most expensive per-job
        build the session removes. Build errors are never cached, so
        invalid specs keep failing per job.
        """
        key = (self.system_key(ref), name, params)
        algorithm = self._algorithms.get(key)
        self._count("algorithm", algorithm is not None)
        if algorithm is None:
            algorithm = build()
            self._algorithms[key] = algorithm
        return algorithm

    def routes(
        self, ref: SystemRef, name: str, params: tuple[tuple[str, Any], ...],
        algorithm: "RoutingAlgorithm",
    ) -> "CompiledRoutes | None":
        """The compiled route table bound to a memoized algorithm.

        One table per algorithm instance: same-fault jobs share its rows,
        fault changes invalidate only the route rows (the per-pattern
        reachability rows survive by design). The vector kernel's dense
        int-indexed view rides along for free: ``CompiledRoutes``
        memoizes its ``dense_table()`` on the instance, so every job of
        a warm session reuses one dense table as well.
        """
        key = (self.system_key(ref), name, params)
        if key not in self._routes:
            from ..routing.compiled import compile_routes

            self._routes[key] = compile_routes(algorithm)
            self._count("routes", False)
        else:
            self._count("routes", True)
        return self._routes[key]

    # -- fault states ----------------------------------------------------

    def fault_state(self, ref: SystemRef, system: "System", job: Job) -> FaultState | None:
        """The job's fault state; explicit (and empty) states are memoized.

        Sampled states are *not* memoized — every (seed, k, sample) triple
        is unique within a campaign, so caching them would only grow the
        session; the executor derives them per job exactly as before.
        Returns ``None`` for sample mode to signal "derive it yourself".
        """
        if job.faults_mode == "sample":
            return None
        key = (self.system_key(ref), job.faults)
        state = self._fault_states.get(key)
        self._count("fault_state", state is not None)
        if state is None:
            state = faults_from_spec(system, job.faults)
            self._fault_states[key] = state
        return state

    # -- maintenance -----------------------------------------------------

    def clear(self) -> None:
        """Drop every memoized artifact (tests, long-lived daemons)."""
        self._systems.clear()
        self._algorithms.clear()
        self._routes.clear()
        self._fault_states.clear()

    def __len__(self) -> int:
        """Total number of memoized artifacts (introspection)."""
        return (
            len(self._systems)
            + len(self._algorithms)
            + len(self._routes)
            + len(self._fault_states)
        )


#: The process-wide session used by the backends; created on first use.
_PROCESS_SESSION: SessionContext | None = None


def get_session() -> SessionContext:
    """The calling process's session (one per worker, created lazily)."""
    global _PROCESS_SESSION
    if _PROCESS_SESSION is None:
        _PROCESS_SESSION = SessionContext()
    return _PROCESS_SESSION


def reset_session() -> None:
    """Discard the process session (tests; workers never need this)."""
    global _PROCESS_SESSION
    _PROCESS_SESSION = None
