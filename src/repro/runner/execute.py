"""Job materialization and execution.

:func:`execute_job` is a *pure function* of its :class:`Job`: it builds
the system, algorithm, fault state and traffic from the declarative spec
and runs the simulator with the job's seed. Purity is what makes the
content-addressed cache sound and guarantees serial/parallel result
equivalence — backends may execute jobs in any order, on any worker.

Every exception (configuration errors, deadlock-watchdog trips, ...) is
captured into the returned :class:`JobResult` so one bad point never
aborts a campaign; the traceback is preserved in ``result.error``.
"""

from __future__ import annotations

import hashlib
import random
import time
import traceback

from ..config import SimulationConfig
from ..errors import ConfigurationError
from ..fault.model import DirectedVL, FaultState, VLDirection, random_fault_state
from ..network.simulator import Simulator
from ..routing.base import RoutingAlgorithm
from ..routing.registry import make_algorithm
from ..topology.builder import System
from .result import JobResult
from .spec import Job, faults_to_spec

_DIRECTIONS = {"down": VLDirection.DOWN, "up": VLDirection.UP}


def sample_rng(seed: int, fault_k: int, fault_sample: int) -> random.Random:
    """The deterministic RNG of one Monte Carlo sample.

    Derived by hashing the (seed, k, sample index) triple so every sample
    of a campaign draws an independent stream, identical across backends,
    platforms and scheduling orders.
    """
    digest = hashlib.sha256(
        f"deft-mc:{seed}:{fault_k}:{fault_sample}".encode("utf-8")
    ).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))


def _build_algorithm(job: Job, system: System) -> RoutingAlgorithm:
    params = dict(job.algorithm_params)
    if not params:
        return make_algorithm(job.algorithm, system)
    unknown = set(params) - {"rho"}
    if unknown:
        raise ConfigurationError(
            f"unsupported algorithm parameters {sorted(unknown)} for {job.algorithm!r}"
        )
    if job.algorithm != "deft":
        raise ConfigurationError(
            f"'rho' only parameterizes the 'deft' tables, not {job.algorithm!r}"
        )
    from ..routing.deft import DeftRouting

    return DeftRouting(system, rho=float(params["rho"]))


def _build_fault_state(job: Job, system: System) -> FaultState:
    if job.faults_mode == "sample":
        rng = sample_rng(job.seed, job.fault_k, job.fault_sample)
        return random_fault_state(system, job.fault_k, rng)
    return FaultState(
        system,
        [DirectedVL(index, _DIRECTIONS[direction]) for index, direction in job.faults],
    )


def execute_job(job: Job) -> JobResult:
    """Run one job to completion, capturing any failure into the result."""
    start = time.perf_counter()
    key = job.key()
    try:
        system = job.system.build()
        algorithm = _build_algorithm(job, system)
        fault_state: FaultState | None = None
        if job.faults or job.faults_mode == "sample":
            fault_state = _build_fault_state(job, system)
            algorithm.set_fault_state(fault_state)
        sampled = (
            faults_to_spec(fault_state)
            if job.faults_mode == "sample" and fault_state is not None
            else ()
        )
        if job.kind == "reachability":
            from ..analysis.reachability import reachability_of_state

            value = reachability_of_state(
                system, algorithm, fault_state or FaultState(system)
            )
            return JobResult(
                job_key=key,
                ok=True,
                reachability=value,
                sampled_faults=sampled,
                duration_s=time.perf_counter() - start,
            )
        traffic = job.traffic.build(system, seed=job.seed)
        config: SimulationConfig = job.config.replace(seed=job.seed)
        report = Simulator(system, algorithm, traffic, config).run()
    except Exception:
        return JobResult(
            job_key=key,
            ok=False,
            error=traceback.format_exc(limit=20),
            duration_s=time.perf_counter() - start,
        )
    stats = report.stats
    return JobResult(
        job_key=key,
        ok=True,
        average_latency=stats.average_latency,
        p50_latency=stats.latency.p50,
        p95_latency=stats.latency.p95,
        p99_latency=stats.latency.p99,
        delivered_ratio=stats.delivered_ratio,
        average_hops=stats.hops.average,
        packets_measured=stats.packets_measured,
        packets_delivered_measured=stats.packets_delivered_measured,
        packets_dropped_measured=stats.packets_dropped_measured,
        cycles=report.cycles,
        deadlocked=report.deadlocked,
        vc_utilization=stats.vc_utilization_report(),
        vl_loads=stats.vl_load_report(),
        sampled_faults=sampled,
        duration_s=time.perf_counter() - start,
    )
