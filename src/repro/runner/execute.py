"""Job materialization and execution.

:func:`execute_job` is a *pure function* of its :class:`Job`: it builds
the system, algorithm, fault state and traffic from the declarative spec
and runs the simulator with the job's seed. Purity is what makes the
content-addressed cache sound and guarantees serial/parallel result
equivalence — backends may execute jobs in any order, on any worker.

Passing a :class:`~repro.runner.session.SessionContext` serves the
builds from the worker's warm memo instead of reconstructing them —
results are identical by contract (the session memoizes only immutable
or per-job-reset artifacts); only wall-clock changes. The fault state is
(re)installed on the algorithm every job, empty state included, so a
memoized algorithm never carries a previous job's faults.

Every exception (configuration errors, deadlock-watchdog trips, ...) is
captured into the returned :class:`JobResult` so one bad point never
aborts a campaign; the traceback is preserved in ``result.error``.
"""

from __future__ import annotations

import hashlib
import random
import time
import traceback

from ..config import SimulationConfig
from ..errors import ConfigurationError
from ..fault.model import (
    FaultState,
    faults_from_spec,
    random_fault_state,
    random_stratified_fault_state,
)
from ..network.simulator import Simulator
from ..routing.base import RoutingAlgorithm
from ..routing.registry import make_algorithm
from ..topology.builder import System
from ..telemetry.metrics import get_registry
from .result import JobResult
from .session import SessionContext
from .spec import Job, faults_to_spec


def sample_rng(seed: int, fault_k: int, fault_sample: int) -> random.Random:
    """The deterministic RNG of one Monte Carlo sample.

    Derived by hashing the (seed, k, sample index) triple so every sample
    of a campaign draws an independent stream, identical across backends,
    platforms and scheduling orders.
    """
    digest = hashlib.sha256(
        f"deft-mc:{seed}:{fault_k}:{fault_sample}".encode("utf-8")
    ).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))


def stratum_rng(
    seed: int, fault_k: int, stratum: tuple[int, ...], fault_sample: int
) -> random.Random:
    """The deterministic RNG of one *stratified* Monte Carlo sample.

    The stratum coordinates enter the hash, so ordinal ``i`` of stratum
    ``(2, 0, 1, 1)`` is a stream independent from ordinal ``i`` of any
    other stratum — and independent from uniform sample ``i`` of the
    same campaign (different domain prefix).
    """
    coords = ",".join(str(c) for c in stratum)
    digest = hashlib.sha256(
        f"deft-mc-stratum:{seed}:{fault_k}:[{coords}]:{fault_sample}".encode("utf-8")
    ).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))


def _build_algorithm(job: Job, system: System) -> RoutingAlgorithm:
    params = dict(job.algorithm_params)
    if not params:
        return make_algorithm(job.algorithm, system)
    unknown = set(params) - {"rho"}
    if unknown:
        raise ConfigurationError(
            f"unsupported algorithm parameters {sorted(unknown)} for {job.algorithm!r}"
        )
    if job.algorithm != "deft":
        raise ConfigurationError(
            f"'rho' only parameterizes the 'deft' tables, not {job.algorithm!r}"
        )
    from ..routing.deft import DeftRouting

    return DeftRouting(system, rho=float(params["rho"]))


def _build_fault_state(job: Job, system: System) -> FaultState:
    if job.faults_mode == "sample":
        if job.fault_stratum:
            rng = stratum_rng(
                job.seed, job.fault_k, job.fault_stratum, job.fault_sample
            )
            return random_stratified_fault_state(system, job.fault_stratum, rng)
        rng = sample_rng(job.seed, job.fault_k, job.fault_sample)
        return random_fault_state(system, job.fault_k, rng)
    return faults_from_spec(system, job.faults)


def _observe_phases(
    phases: dict | None,
    ok: bool,
    setup_s: float,
    compile_s: float,
    simulate_s: float,
    total_s: float,
) -> None:
    """Record one execution's phase split into ``phases`` + the registry.

    Shared by every exit path of :func:`execute_job` (reachability,
    simulation, failure) so the accounting can never drift between them.
    """
    if phases is not None:
        phases.update(
            setup_s=setup_s,
            compile_s=compile_s,
            simulate_s=simulate_s,
            total_s=total_s,
        )
    registry = get_registry()
    if not registry.enabled:
        return
    registry.counter(
        "deft_jobs_executed_total", "Jobs executed in this process"
    ).inc()
    if not ok:
        registry.counter(
            "deft_jobs_failed_total", "Jobs that ended in a failed result"
        ).inc()
    registry.histogram(
        "deft_job_phase_setup_seconds", "System/algorithm/fault build time"
    ).observe(setup_s)
    registry.histogram(
        "deft_job_phase_compile_seconds", "Route-table compilation time"
    ).observe(compile_s)
    registry.histogram(
        "deft_job_phase_simulate_seconds", "Simulation/analysis time"
    ).observe(simulate_s)
    registry.histogram(
        "deft_job_duration_seconds", "End-to-end job execution time"
    ).observe(total_s)


def execute_job(
    job: Job,
    session: SessionContext | None = None,
    phases: dict | None = None,
) -> JobResult:
    """Run one job to completion, capturing any failure into the result.

    ``session`` (a worker's :class:`~repro.runner.session.SessionContext`)
    reuses previously built systems, algorithms, fault states and
    compiled route tables across same-spec jobs; ``None`` rebuilds
    everything, exactly as the runner's original per-job path did.

    ``phases``, if given, is filled with this execution's wall-clock
    split (``setup_s`` builds + fault install, ``compile_s`` route-table
    compilation, ``simulate_s`` simulation or reachability analysis,
    ``total_s``) — the payload of the ``job_phase`` telemetry event. The
    same split also lands in the process metrics registry. Results are
    unaffected: the instrumentation only reads clocks.
    """
    start = time.perf_counter()
    key = job.key()
    built_mark = compiled_mark = sim_mark = start
    try:
        if session is not None:
            system = session.system(job.system)
            algorithm = session.algorithm(
                job.system, system, job.algorithm, job.algorithm_params,
                build=lambda: _build_algorithm(job, system),
            )
            built_mark = time.perf_counter()
            routes = session.routes(
                job.system, job.algorithm, job.algorithm_params, algorithm
            )
            compiled_mark = time.perf_counter()
        else:
            # The sessionless path is the pre-session seed behaviour in
            # full: per-job rebuilds AND live per-hop dispatch (no
            # compiled tables), so `--no-session` isolates the entire
            # new machinery for debugging and honest benchmarking.
            system = job.system.build()
            algorithm = _build_algorithm(job, system)
            built_mark = compiled_mark = time.perf_counter()
            routes = None
        fault_state: FaultState | None = None
        if job.faults_mode == "sample":
            fault_state = _build_fault_state(job, system)
        elif session is not None:
            # Memoized algorithms must not carry a previous job's faults:
            # install this job's state unconditionally (empty included).
            fault_state = session.fault_state(job.system, system, job)
        elif job.faults:
            fault_state = _build_fault_state(job, system)
        if fault_state is not None:
            algorithm.set_fault_state(fault_state)
        sampled = (
            faults_to_spec(fault_state)
            if job.faults_mode == "sample" and fault_state is not None
            else ()
        )
        sim_mark = time.perf_counter()
        setup_s = (built_mark - start) + (sim_mark - compiled_mark)
        compile_s = compiled_mark - built_mark
        if job.kind == "reachability":
            from ..analysis.reachability import reachability_of_state

            value = reachability_of_state(
                system, algorithm, fault_state or FaultState(system),
                routes=routes,
            )
            end = time.perf_counter()
            _observe_phases(
                phases, True,
                setup_s, compile_s, end - sim_mark, end - start,
            )
            return JobResult(
                job_key=key,
                ok=True,
                reachability=value,
                sampled_faults=sampled,
                duration_s=end - start,
            )
        traffic = job.traffic.build(system, seed=job.seed)
        config: SimulationConfig = job.config.replace(seed=job.seed)
        report = Simulator(
            system, algorithm, traffic, config, routes=routes, kernel=job.kernel
        ).run()
    except Exception:
        end = time.perf_counter()
        # Phase marks up to the failure point still describe where the
        # time went; monotone clamping keeps every phase non-negative
        # regardless of which stage raised, and everything after the
        # last reached mark counts as simulate.
        built = max(built_mark, start)
        compiled = max(compiled_mark, built)
        sim = max(sim_mark, compiled)
        _observe_phases(
            phases, False,
            (built - start) + (sim - compiled),
            compiled - built,
            end - sim,
            end - start,
        )
        return JobResult(
            job_key=key,
            ok=False,
            error=traceback.format_exc(limit=20),
            duration_s=end - start,
        )
    stats = report.stats
    end = time.perf_counter()
    _observe_phases(
        phases, True, setup_s, compile_s, end - sim_mark, end - start
    )
    return JobResult(
        job_key=key,
        ok=True,
        average_latency=stats.average_latency,
        p50_latency=stats.latency.p50,
        p95_latency=stats.latency.p95,
        p99_latency=stats.latency.p99,
        delivered_ratio=stats.delivered_ratio,
        average_hops=stats.hops.average,
        packets_measured=stats.packets_measured,
        packets_delivered_measured=stats.packets_delivered_measured,
        packets_dropped_measured=stats.packets_dropped_measured,
        cycles=report.cycles,
        deadlocked=report.deadlocked,
        vc_utilization=stats.vc_utilization_report(),
        vl_loads=stats.vl_load_report(),
        sampled_faults=sampled,
        duration_s=end - start,
    )
