"""Content-addressed on-disk JSON result cache.

A job's cache path is derived from ``job.key()`` — a SHA-256 over the
canonical job spec (including the spec version) — so repeated or
overlapping campaigns are incremental: any point already simulated under
the same spec is served from disk. Files are sharded by the first two
hex digits (``<root>/ab/abcdef....json``) to keep directories small, and
written atomically (temp file + rename) so a killed run never leaves a
truncated entry behind.

Only successful results are persisted: errors and timeouts are
environment artefacts, not properties of the spec, and must be retried
on the next campaign.

Entries can optionally be gzip-compressed (``ResultCache(root,
compress=True)`` writes ``<key>.json.gz``); reads transparently accept
both forms, so a cache can be migrated — or shared between compressing
and non-compressing campaigns — without invalidation. Large Monte Carlo
caches are mostly repetitive JSON structure and compress well.
"""

from __future__ import annotations

import gzip
import json
import os
import tempfile
import zlib
from dataclasses import dataclass
from pathlib import Path

from ..telemetry.metrics import get_registry
from .result import JobResult
from .spec import SPEC_VERSION, Job

#: Default cache directory (relative to the working directory) used by
#: the ``deft campaign`` CLI when ``--cache-dir`` is not given.
DEFAULT_CACHE_DIR = ".deft-cache"


@dataclass(frozen=True)
class CacheStats:
    """On-disk census of a cache directory (``deft cache stats``)."""

    entries: int      #: servable entries written under the current SPEC_VERSION
    stale: int        #: entries from other spec versions — never served
    corrupt: int      #: unreadable/garbled entries — treated as misses
    tmp_files: int    #: orphaned ``.tmp`` files left behind by killed runs
    total_bytes: int  #: bytes across everything counted above
    compressed: int = 0  #: how many of ``entries`` are gzip-compressed

    def summary(self) -> str:
        line = (
            f"{self.entries} cached result(s), {self.total_bytes / 1024:.1f} KiB"
        )
        if self.entries:
            line += (
                f" ({self.compressed} compressed, "
                f"{self.entries - self.compressed} uncompressed)"
            )
        extras = []
        if self.stale:
            extras.append(f"{self.stale} stale")
        if self.corrupt:
            extras.append(f"{self.corrupt} corrupt")
        if self.tmp_files:
            extras.append(f"{self.tmp_files} orphaned tmp")
        if extras:
            line += " (" + ", ".join(extras) + ")"
        return line

    def to_dict(self) -> dict:
        """Machine-readable census (``deft cache stats --json``)."""
        return {
            "entries": self.entries,
            "stale": self.stale,
            "corrupt": self.corrupt,
            "tmp_files": self.tmp_files,
            "total_bytes": self.total_bytes,
            "compressed": self.compressed,
        }


class ResultCache:
    """Maps canonical job specs to stored :class:`JobResult` JSON files.

    Args:
        root: cache directory.
        compress: gzip new entries (``<key>.json.gz``). Reads always
            accept both forms regardless of this flag, so mixed caches
            stay fully servable.
    """

    def __init__(self, root: str | Path, compress: bool = False):
        self.root = Path(root)
        self.compress = compress
        self.hits = 0
        self.misses = 0

    def path_for(self, job: Job) -> Path:
        """Where :meth:`put` would write this job's entry."""
        key = job.key()
        suffix = ".json.gz" if self.compress else ".json"
        return self.root / key[:2] / f"{key}{suffix}"

    def _candidate_paths(self, job: Job) -> tuple[Path, Path]:
        """Both storable forms, the configured one first."""
        key = job.key()
        shard = self.root / key[:2]
        plain = shard / f"{key}.json"
        packed = shard / f"{key}.json.gz"
        return (packed, plain) if self.compress else (plain, packed)

    @staticmethod
    def _read_payload(path: Path) -> dict:
        """Load one entry, decompressing by file name."""
        if path.name.endswith(".gz"):
            with gzip.open(path, "rt", encoding="utf-8") as handle:
                return json.load(handle)
        return json.loads(path.read_text())

    def get(self, job: Job) -> JobResult | None:
        """The cached result for a job, or None (corrupt entries = miss)."""
        for path in self._candidate_paths(job):
            try:
                payload = self._read_payload(path)
                result = JobResult.from_dict(payload["result"])
            except FileNotFoundError:
                continue
            except (OSError, EOFError, zlib.error, json.JSONDecodeError,
                    KeyError, TypeError, ValueError):
                # A truncated/garbled entry — EOFError/zlib.error are
                # gzip's truncation/corruption signals, e.g. from a
                # partial copy of a shared cache — is treated as a miss
                # and will be overwritten by the fresh result.
                continue
            if payload.get("version") != SPEC_VERSION or not result.ok:
                continue
            self.hits += 1
            get_registry().counter(
                "deft_cache_hits_total", "Result-cache lookups served from disk"
            ).inc()
            result.cached = True
            return result
        self.misses += 1
        get_registry().counter(
            "deft_cache_misses_total", "Result-cache lookups that missed"
        ).inc()
        return None

    def has_key(self, key: str) -> bool:
        """Whether a servable-looking entry exists for a raw job key.

        A cheap existence probe for progress accounting (``deft
        status``): no JSON parse, no version validation — the authority
        on servability remains :meth:`get`.
        """
        shard = self.root / key[:2]
        return (shard / f"{key}.json").exists() or (
            shard / f"{key}.json.gz"
        ).exists()

    def _encode(self, job: Job, result: JobResult) -> str:
        return json.dumps(
            {
                "version": SPEC_VERSION,
                "job": job.canonical(),
                "result": result.to_dict(),
            }
        )

    def _stage(self, parent: Path, text: str) -> str:
        """Write one entry to a ``.tmp`` in its shard; returns the name."""
        fd, tmp_name = tempfile.mkstemp(dir=parent, suffix=".tmp")
        try:
            if self.compress:
                with os.fdopen(fd, "wb") as handle:
                    # mtime=0 keeps same-content writes byte-identical.
                    with gzip.GzipFile(
                        fileobj=handle, mode="wb", mtime=0
                    ) as packed:
                        packed.write(text.encode("utf-8"))
            else:
                with os.fdopen(fd, "w") as handle:
                    handle.write(text)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return tmp_name

    def put(self, job: Job, result: JobResult) -> None:
        """Persist a successful result; failed results are never cached."""
        if not result.ok:
            return
        get_registry().counter(
            "deft_cache_writes_total", "Results persisted into the cache"
        ).inc()
        path = self.path_for(job)
        path.parent.mkdir(parents=True, exist_ok=True)
        # Atomic publish: concurrent writers of the same key race benignly
        # (identical content), and readers never observe partial files.
        tmp_name = self._stage(path.parent, self._encode(job, result))
        try:
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def put_many(self, items) -> int:
        """Persist a batch of successful results; returns how many landed.

        One staging pass (shard mkdirs deduplicated, every entry written
        to its ``.tmp``) followed by one rename pass, instead of per-job
        mkdir/write/rename churn — the write half of the batched spool
        protocol. Each rename is still individually atomic, so readers
        observe a prefix of the batch mid-flush, never a partial file.
        Failed results are skipped exactly as :meth:`put` skips them.
        """
        staged: list[tuple[str, Path]] = []
        made_dirs: set[Path] = set()
        landed = 0
        try:
            for job, result in items:
                if not result.ok:
                    continue
                path = self.path_for(job)
                if path.parent not in made_dirs:
                    path.parent.mkdir(parents=True, exist_ok=True)
                    made_dirs.add(path.parent)
                staged.append(
                    (self._stage(path.parent, self._encode(job, result)), path)
                )
            while staged:
                tmp_name, path = staged.pop()
                os.replace(tmp_name, path)
                landed += 1
        except BaseException:
            for tmp_name, _ in staged:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
            raise
        if landed:
            get_registry().counter(
                "deft_cache_writes_total", "Results persisted into the cache"
            ).inc(landed)
        return landed

    # -- census & maintenance --------------------------------------------

    def _classify(self, path: Path) -> str | None:
        """One entry's census bucket: 'entries', 'stale' or 'corrupt'.

        ``None`` means the file vanished between glob and read (a
        concurrent writer renaming a ``.tmp``, or another prune) — the
        census simply skips it rather than miscounting or crashing.
        """
        try:
            payload = self._read_payload(path)
            version = payload["version"]
            JobResult.from_dict(payload["result"])
        except FileNotFoundError:
            return None
        except (OSError, EOFError, zlib.error, json.JSONDecodeError, KeyError,
                TypeError, ValueError):
            return "corrupt"
        return "entries" if version == SPEC_VERSION else "stale"

    def _entry_paths(self):
        """Every stored entry, both plain and gzip-compressed forms."""
        yield from self.root.glob("*/*.json")
        yield from self.root.glob("*/*.json.gz")

    @staticmethod
    def _size(path: Path) -> int | None:
        try:
            return path.stat().st_size
        except OSError:
            return None

    @staticmethod
    def _mtime(path: Path) -> float:
        """Last-modified time; a vanished file counts as brand new (kept)."""
        try:
            return path.stat().st_mtime
        except OSError:
            return float("inf")

    def stats(self) -> CacheStats:
        """Walk the cache directory and classify everything in it.

        Unlike the old ``len(cache)`` (which blindly counted ``*.json``
        files), entries written under a different ``SPEC_VERSION`` — which
        :meth:`get` will never serve — are reported separately, and
        orphaned ``.tmp`` files from killed runs are surfaced instead of
        silently accumulating.
        """
        counts = {"entries": 0, "stale": 0, "corrupt": 0}
        compressed = 0
        tmp_files = 0
        total_bytes = 0
        if not self.root.is_dir():
            return CacheStats(0, 0, 0, 0, 0)
        for path in self._entry_paths():
            bucket = self._classify(path)
            if bucket is None:
                continue
            counts[bucket] += 1
            if bucket == "entries" and path.name.endswith(".gz"):
                compressed += 1
            total_bytes += self._size(path) or 0
        for path in self.root.glob("*/*.tmp"):
            size = self._size(path)
            if size is None:
                continue
            tmp_files += 1
            total_bytes += size
        return CacheStats(
            entries=counts["entries"],
            stale=counts["stale"],
            corrupt=counts["corrupt"],
            tmp_files=tmp_files,
            total_bytes=total_bytes,
            compressed=compressed,
        )

    def prune(
        self,
        remove_all: bool = False,
        older_than_days: float | None = None,
        now: float | None = None,
    ) -> CacheStats:
        """Delete dead weight; returns a census of what was removed.

        By default removes stale-version entries, corrupt entries and
        orphaned ``.tmp`` files while keeping every servable result;
        ``older_than_days`` additionally sweeps servable entries whose
        file mtime is older than that many days (age-based retirement for
        long-lived caches — results are reproducible from their specs, so
        old entries only cost disk); ``remove_all`` empties the cache
        entirely. ``now`` overrides the reference time (tests). Assumes
        no campaign is concurrently writing to this cache directory.
        """
        cutoff: float | None = None
        if older_than_days is not None:
            import math
            import time

            # NaN would make every mtime comparison False and silently
            # sweep the whole cache — the loss --all is meant to gate.
            if not math.isfinite(older_than_days) or older_than_days < 0:
                raise ValueError(
                    f"older_than_days must be a finite value >= 0, got {older_than_days}"
                )
            cutoff = (now if now is not None else time.time()) - older_than_days * 86_400
        removed = {"entries": 0, "stale": 0, "corrupt": 0}
        compressed_removed = 0
        tmp_removed = 0
        bytes_removed = 0
        if not self.root.is_dir():
            return CacheStats(0, 0, 0, 0, 0)
        for path in self._entry_paths():
            bucket = self._classify(path)
            if bucket is None:
                continue
            if bucket == "entries" and not remove_all:
                if cutoff is None or self._mtime(path) >= cutoff:
                    continue
            size = self._size(path)
            try:
                path.unlink()
            except OSError:
                continue
            removed[bucket] += 1
            if bucket == "entries" and path.name.endswith(".gz"):
                compressed_removed += 1
            bytes_removed += size or 0
        for path in self.root.glob("*/*.tmp"):
            size = self._size(path)
            try:
                path.unlink()
            except OSError:
                continue
            tmp_removed += 1
            bytes_removed += size or 0
        for shard in self.root.iterdir():
            try:
                if shard.is_dir() and not any(shard.iterdir()):
                    shard.rmdir()
            except OSError:
                pass
        return CacheStats(
            entries=removed["entries"],
            stale=removed["stale"],
            corrupt=removed["corrupt"],
            tmp_files=tmp_removed,
            total_bytes=bytes_removed,
            compressed=compressed_removed,
        )

    def __len__(self) -> int:
        """Number of *servable* entries (current spec version only)."""
        return self.stats().entries
