"""Content-addressed on-disk JSON result cache.

A job's cache path is derived from ``job.key()`` — a SHA-256 over the
canonical job spec (including the spec version) — so repeated or
overlapping campaigns are incremental: any point already simulated under
the same spec is served from disk. Files are sharded by the first two
hex digits (``<root>/ab/abcdef....json``) to keep directories small, and
written atomically (temp file + rename) so a killed run never leaves a
truncated entry behind.

Only successful results are persisted: errors and timeouts are
environment artefacts, not properties of the spec, and must be retried
on the next campaign.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path

from .result import JobResult
from .spec import SPEC_VERSION, Job

#: Default cache directory (relative to the working directory) used by
#: the ``deft campaign`` CLI when ``--cache-dir`` is not given.
DEFAULT_CACHE_DIR = ".deft-cache"


class ResultCache:
    """Maps canonical job specs to stored :class:`JobResult` JSON files."""

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.hits = 0
        self.misses = 0

    def path_for(self, job: Job) -> Path:
        key = job.key()
        return self.root / key[:2] / f"{key}.json"

    def get(self, job: Job) -> JobResult | None:
        """The cached result for a job, or None (corrupt entries = miss)."""
        path = self.path_for(job)
        try:
            payload = json.loads(path.read_text())
            result = JobResult.from_dict(payload["result"])
        except FileNotFoundError:
            self.misses += 1
            return None
        except (json.JSONDecodeError, KeyError, TypeError, ValueError):
            # A truncated/garbled entry is treated as a miss and will be
            # overwritten by the fresh result.
            self.misses += 1
            return None
        if payload.get("version") != SPEC_VERSION or not result.ok:
            self.misses += 1
            return None
        self.hits += 1
        result.cached = True
        return result

    def put(self, job: Job, result: JobResult) -> None:
        """Persist a successful result; failed results are never cached."""
        if not result.ok:
            return
        path = self.path_for(job)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "version": SPEC_VERSION,
            "job": job.canonical(),
            "result": result.to_dict(),
        }
        # Atomic publish: concurrent writers of the same key race benignly
        # (identical content), and readers never observe partial files.
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))
