"""Content-addressed on-disk JSON result cache.

A job's cache path is derived from ``job.key()`` — a SHA-256 over the
canonical job spec (including the spec version) — so repeated or
overlapping campaigns are incremental: any point already simulated under
the same spec is served from disk. Files are sharded by the first two
hex digits (``<root>/ab/abcdef....json``) to keep directories small, and
written atomically (temp file + rename) so a killed run never leaves a
truncated entry behind.

Only successful results are persisted: errors and timeouts are
environment artefacts, not properties of the spec, and must be retried
on the next campaign.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path

from .result import JobResult
from .spec import SPEC_VERSION, Job

#: Default cache directory (relative to the working directory) used by
#: the ``deft campaign`` CLI when ``--cache-dir`` is not given.
DEFAULT_CACHE_DIR = ".deft-cache"


@dataclass(frozen=True)
class CacheStats:
    """On-disk census of a cache directory (``deft cache stats``)."""

    entries: int      #: servable entries written under the current SPEC_VERSION
    stale: int        #: entries from other spec versions — never served
    corrupt: int      #: unreadable/garbled entries — treated as misses
    tmp_files: int    #: orphaned ``.tmp`` files left behind by killed runs
    total_bytes: int  #: bytes across everything counted above

    def summary(self) -> str:
        line = (
            f"{self.entries} cached result(s), {self.total_bytes / 1024:.1f} KiB"
        )
        extras = []
        if self.stale:
            extras.append(f"{self.stale} stale")
        if self.corrupt:
            extras.append(f"{self.corrupt} corrupt")
        if self.tmp_files:
            extras.append(f"{self.tmp_files} orphaned tmp")
        if extras:
            line += " (" + ", ".join(extras) + ")"
        return line


class ResultCache:
    """Maps canonical job specs to stored :class:`JobResult` JSON files."""

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.hits = 0
        self.misses = 0

    def path_for(self, job: Job) -> Path:
        key = job.key()
        return self.root / key[:2] / f"{key}.json"

    def get(self, job: Job) -> JobResult | None:
        """The cached result for a job, or None (corrupt entries = miss)."""
        path = self.path_for(job)
        try:
            payload = json.loads(path.read_text())
            result = JobResult.from_dict(payload["result"])
        except FileNotFoundError:
            self.misses += 1
            return None
        except (json.JSONDecodeError, KeyError, TypeError, ValueError):
            # A truncated/garbled entry is treated as a miss and will be
            # overwritten by the fresh result.
            self.misses += 1
            return None
        if payload.get("version") != SPEC_VERSION or not result.ok:
            self.misses += 1
            return None
        self.hits += 1
        result.cached = True
        return result

    def put(self, job: Job, result: JobResult) -> None:
        """Persist a successful result; failed results are never cached."""
        if not result.ok:
            return
        path = self.path_for(job)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "version": SPEC_VERSION,
            "job": job.canonical(),
            "result": result.to_dict(),
        }
        # Atomic publish: concurrent writers of the same key race benignly
        # (identical content), and readers never observe partial files.
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    # -- census & maintenance --------------------------------------------

    def _classify(self, path: Path) -> str | None:
        """One entry's census bucket: 'entries', 'stale' or 'corrupt'.

        ``None`` means the file vanished between glob and read (a
        concurrent writer renaming a ``.tmp``, or another prune) — the
        census simply skips it rather than miscounting or crashing.
        """
        try:
            payload = json.loads(path.read_text())
            version = payload["version"]
            JobResult.from_dict(payload["result"])
        except FileNotFoundError:
            return None
        except (OSError, json.JSONDecodeError, KeyError, TypeError, ValueError):
            return "corrupt"
        return "entries" if version == SPEC_VERSION else "stale"

    @staticmethod
    def _size(path: Path) -> int | None:
        try:
            return path.stat().st_size
        except OSError:
            return None

    @staticmethod
    def _mtime(path: Path) -> float:
        """Last-modified time; a vanished file counts as brand new (kept)."""
        try:
            return path.stat().st_mtime
        except OSError:
            return float("inf")

    def stats(self) -> CacheStats:
        """Walk the cache directory and classify everything in it.

        Unlike the old ``len(cache)`` (which blindly counted ``*.json``
        files), entries written under a different ``SPEC_VERSION`` — which
        :meth:`get` will never serve — are reported separately, and
        orphaned ``.tmp`` files from killed runs are surfaced instead of
        silently accumulating.
        """
        counts = {"entries": 0, "stale": 0, "corrupt": 0}
        tmp_files = 0
        total_bytes = 0
        if not self.root.is_dir():
            return CacheStats(0, 0, 0, 0, 0)
        for path in self.root.glob("*/*.json"):
            bucket = self._classify(path)
            if bucket is None:
                continue
            counts[bucket] += 1
            total_bytes += self._size(path) or 0
        for path in self.root.glob("*/*.tmp"):
            size = self._size(path)
            if size is None:
                continue
            tmp_files += 1
            total_bytes += size
        return CacheStats(
            entries=counts["entries"],
            stale=counts["stale"],
            corrupt=counts["corrupt"],
            tmp_files=tmp_files,
            total_bytes=total_bytes,
        )

    def prune(
        self,
        remove_all: bool = False,
        older_than_days: float | None = None,
        now: float | None = None,
    ) -> CacheStats:
        """Delete dead weight; returns a census of what was removed.

        By default removes stale-version entries, corrupt entries and
        orphaned ``.tmp`` files while keeping every servable result;
        ``older_than_days`` additionally sweeps servable entries whose
        file mtime is older than that many days (age-based retirement for
        long-lived caches — results are reproducible from their specs, so
        old entries only cost disk); ``remove_all`` empties the cache
        entirely. ``now`` overrides the reference time (tests). Assumes
        no campaign is concurrently writing to this cache directory.
        """
        cutoff: float | None = None
        if older_than_days is not None:
            import math
            import time

            # NaN would make every mtime comparison False and silently
            # sweep the whole cache — the loss --all is meant to gate.
            if not math.isfinite(older_than_days) or older_than_days < 0:
                raise ValueError(
                    f"older_than_days must be a finite value >= 0, got {older_than_days}"
                )
            cutoff = (now if now is not None else time.time()) - older_than_days * 86_400
        removed = {"entries": 0, "stale": 0, "corrupt": 0}
        tmp_removed = 0
        bytes_removed = 0
        if not self.root.is_dir():
            return CacheStats(0, 0, 0, 0, 0)
        for path in self.root.glob("*/*.json"):
            bucket = self._classify(path)
            if bucket is None:
                continue
            if bucket == "entries" and not remove_all:
                if cutoff is None or self._mtime(path) >= cutoff:
                    continue
            size = self._size(path)
            try:
                path.unlink()
            except OSError:
                continue
            removed[bucket] += 1
            bytes_removed += size or 0
        for path in self.root.glob("*/*.tmp"):
            size = self._size(path)
            try:
                path.unlink()
            except OSError:
                continue
            tmp_removed += 1
            bytes_removed += size or 0
        for shard in self.root.iterdir():
            try:
                if shard.is_dir() and not any(shard.iterdir()):
                    shard.rmdir()
            except OSError:
                pass
        return CacheStats(
            entries=removed["entries"],
            stale=removed["stale"],
            corrupt=removed["corrupt"],
            tmp_files=tmp_removed,
            total_bytes=bytes_removed,
        )

    def __len__(self) -> int:
        """Number of *servable* entries (current spec version only)."""
        return self.stats().entries
