"""The campaign runner: cache-aware, backend-agnostic batch execution.

``CampaignRunner.run`` resolves every job in three steps:

1. **Dedup** — identical jobs (same content address) are resolved once.
2. **Cache lookup** — previously simulated points are served from the
   :class:`~repro.runner.cache.ResultCache` without touching a backend.
3. **Execution** — the remaining misses are dispatched to the configured
   backend (serial or multi-process) and written back to the cache.

The returned :class:`CampaignReport` keeps results aligned with the
submitted jobs, so callers can zip their sweep grid against it directly.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Sequence

from ..telemetry.metrics import percentile
from .backends import ExecutionBackend, ProgressFn, SerialBackend
from .cache import ResultCache
from .result import JobResult
from .spec import Campaign, Job


@dataclass
class CampaignReport:
    """Outcome of one ``CampaignRunner.run`` call."""

    name: str
    jobs: tuple[Job, ...]
    results: list[JobResult]
    cache_hits: int = 0
    executed: int = 0
    deduplicated: int = 0
    duration_s: float = 0.0
    _by_key: dict[str, JobResult] = field(default_factory=dict, repr=False)

    @property
    def total(self) -> int:
        return len(self.jobs)

    @property
    def errors(self) -> list[JobResult]:
        seen: set[str] = set()
        failed = []
        for result in self.results:
            if not result.ok and result.job_key not in seen:
                seen.add(result.job_key)
                failed.append(result)
        return failed

    @property
    def hit_ratio(self) -> float:
        """Fraction of *required* work served from cache.

        Computed over unique jobs (hits + executions); duplicates are
        free regardless of the cache and would skew the ratio.
        """
        resolved = self.cache_hits + self.executed
        return self.cache_hits / resolved if resolved else 0.0

    def result_for(self, job: Job) -> JobResult:
        return self._by_key[job.key()]

    def result_for_key(self, key: str) -> JobResult | None:
        """The result for a job key, or None if this run never saw it.

        Sharded drivers assemble full-round outcome sets from their own
        report plus cache reads for foreign shards; this is the "own
        report" half of that lookup.
        """
        return self._by_key.get(key)

    @classmethod
    def merge(cls, name: str, reports: Sequence["CampaignReport"]) -> "CampaignReport":
        """Fold several runs into one provenance record (adaptive rounds)."""
        if len(reports) == 1:
            return reports[0]
        by_key: dict[str, JobResult] = {}
        for report in reports:
            by_key.update(report._by_key)
        return cls(
            name=name,
            jobs=tuple(job for report in reports for job in report.jobs),
            results=[result for report in reports for result in report.results],
            cache_hits=sum(report.cache_hits for report in reports),
            executed=sum(report.executed for report in reports),
            deduplicated=sum(report.deduplicated for report in reports),
            duration_s=sum(report.duration_s for report in reports),
            _by_key=by_key,
        )

    def raise_if_failed(self) -> "CampaignReport":
        failed = self.errors
        if failed:
            first = failed[0]
            raise RuntimeError(
                f"{len(failed)} job(s) failed in campaign {self.name!r}; "
                f"first: {first.error}"
            )
        return self

    def job_durations(self) -> list[float]:
        """Per-job execution times across unique results.

        ``duration_s`` is provenance (it travels with cached results and
        records the original execution), so the distribution describes
        the campaign's true compute cost even when much of it was served
        from cache. Zero-duration placeholders (backend-synthesized
        failures that never ran) are excluded.
        """
        unique = self._by_key.values() if self._by_key else {
            result.job_key: result for result in self.results
        }.values()
        return [
            result.duration_s for result in unique if result.duration_s > 0.0
        ]

    def summary(self) -> str:
        line = (
            f"campaign {self.name!r}: {self.total} jobs "
            f"({self.deduplicated} duplicate) — {self.cache_hits} cached, "
            f"{self.executed} executed in {self.duration_s:.1f}s"
        )
        durations = self.job_durations()
        if durations:
            line += (
                f" (job p50 {percentile(durations, 0.50):.2f}s, "
                f"p95 {percentile(durations, 0.95):.2f}s, "
                f"{sum(durations):.1f}s total job time)"
            )
        failed = self.errors
        if failed:
            line += f", {len(failed)} FAILED"
        return line


class CampaignRunner:
    """Runs campaigns through a cache and an execution backend.

    Args:
        backend: execution backend; defaults to :class:`SerialBackend`.
        cache: result cache; ``None`` disables caching entirely.
    """

    def __init__(
        self,
        backend: ExecutionBackend | None = None,
        cache: ResultCache | None = None,
    ):
        self.backend = backend or SerialBackend()
        self.cache = cache

    def close(self) -> None:
        """Release the backend's long-lived resources (persistent pools,
        autospawned spool workers). Safe to call on any backend."""
        self.backend.close()

    def __enter__(self) -> "CampaignRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def run(
        self,
        campaign: Campaign | Sequence[Job],
        progress: ProgressFn | None = None,
    ) -> CampaignReport:
        if not isinstance(campaign, Campaign):
            campaign = Campaign(name="ad-hoc", jobs=tuple(campaign))
        self.backend.announce_campaign(campaign)
        start = time.perf_counter()
        resolved: dict[str, JobResult] = {}

        # Dedup while preserving first-occurrence order.
        unique: dict[str, Job] = {}
        for job in campaign.jobs:
            unique.setdefault(job.key(), job)
        deduplicated = len(campaign.jobs) - len(unique)

        hits = 0
        pending: list[Job] = []
        for key, job in unique.items():
            cached = self.cache.get(job) if self.cache is not None else None
            if cached is not None:
                resolved[key] = cached
                hits += 1
            else:
                pending.append(job)

        done_so_far = hits
        total = len(unique)
        if progress is not None:
            emitted = 0
            for key, job in unique.items():
                if key in resolved:
                    emitted += 1
                    progress(emitted, total, job, resolved[key])

        def on_result(done: int, _pending_total: int, job: Job, result: JobResult) -> None:
            if progress is not None:
                progress(done_so_far + done, total, job, result)

        if pending:
            executed = self.backend.run(pending, on_result=on_result)
            # Backends that already persist results into this same cache
            # as part of executing (the spool's workers write each
            # success before the backend even sees it) must not pay a
            # second serialize + atomic-replace per job — on the shared
            # network mounts spool campaigns run over, that write is the
            # slowest path in the system.
            write_back = self.cache is not None and not (
                getattr(self.backend, "persists_results", False)
                and getattr(self.backend, "cache", None) is not None
                and self.backend.cache.root == self.cache.root
            )
            for job, result in zip(pending, executed):
                resolved[job.key()] = result
                if write_back:
                    self.cache.put(job, result)

        report = CampaignReport(
            name=campaign.name,
            jobs=campaign.jobs,
            results=[resolved[job.key()] for job in campaign.jobs],
            cache_hits=hits,
            executed=len(pending),
            deduplicated=deduplicated,
            duration_s=time.perf_counter() - start,
            _by_key=resolved,
        )
        return report
