"""Pluggable execution backends.

A backend turns a list of jobs into a list of results, in order. Because
:func:`~repro.runner.execute.execute_job` is a pure function of the job
(each job carries its own seed), every backend produces *identical*
results for the same jobs — parallelism changes wall-clock, never
numbers.

* :class:`SerialBackend` — in-process loop; zero overhead, the default.
* :class:`ProcessPoolBackend` — ``concurrent.futures`` process pool with
  per-job timeout and crash capture. Simulation points are embarrassingly
  parallel (no shared state), so this scales with cores. The pool is
  *persistent* by default: it (and each worker's warm session) survives
  across ``run`` calls until :meth:`~ExecutionBackend.close`, so
  multi-round callers like adaptive Monte Carlo stop re-paying startup
  and offline-optimization costs per round.
* :class:`repro.distributed.SpoolBackend` (separate subsystem) — the
  same contract over a filesystem job spool and long-lived worker
  processes, for campaigns spanning machines.

Both backends run jobs through their worker's
:class:`~repro.runner.session.SessionContext` by default (serial: the
calling process's; pool: one per worker process), so repeated-topology
campaigns stop rebuilding systems, algorithms and route tables per job.
``use_session=False`` restores the rebuild-everything path — results are
identical either way; only wall-clock differs.
"""

from __future__ import annotations

import abc
import concurrent.futures
import math
import os
import signal
import time
import weakref
from typing import Callable, Sequence

from .execute import execute_job
from .result import JobResult
from .session import get_session
from .spec import Job

#: Progress callback: (completed_count, total, job, result).
ProgressFn = Callable[[int, int, Job, JobResult], None]


def _abandon_executor(executor: concurrent.futures.ProcessPoolExecutor) -> None:
    """Finalizer for persistent pools whose backend was garbage-collected."""
    executor.shutdown(wait=False, cancel_futures=True)


class JobTimeout(Exception):
    """Raised inside a worker when a job exceeds its wall-clock budget."""


def _execute_with_timeout(
    job: Job, timeout: float | None, use_session: bool = True
) -> JobResult:
    """Worker entry point: run a job under an optional SIGALRM deadline.

    Enforcing the timeout *inside* the worker (POSIX interval timer)
    frees the worker the moment a job overruns, so queued jobs behind a
    stuck one still run and the pool always shuts down cleanly. The
    simulator is pure Python, so the signal handler is guaranteed to
    interrupt it between bytecodes.

    ``use_session`` reuses the worker process's
    :class:`~repro.runner.session.SessionContext` across the jobs it is
    handed — the warm state that makes repeated-topology campaigns cheap.
    """
    session = get_session() if use_session else None
    if not timeout or not hasattr(signal, "SIGALRM"):
        return execute_job(job, session=session)

    def _on_alarm(signum, frame):
        raise JobTimeout(f"job timed out after {timeout}s ({job.label})")

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, timeout)
    try:
        # A firing alarm raises JobTimeout inside execute_job's try block,
        # which captures it as a failed JobResult like any other error.
        return execute_job(job, session=session)
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)


class ExecutionBackend(abc.ABC):
    """Executes a batch of jobs and reports per-job completion."""

    @abc.abstractmethod
    def run(self, jobs: Sequence[Job], on_result: ProgressFn | None = None) -> list[JobResult]:
        """Execute ``jobs``; the result list is aligned with the input."""

    #: True when ``run`` already lands successful results in a result
    #: cache (exposed as a ``cache`` attribute) as part of executing —
    #: the runner then skips its own redundant write-back.
    persists_results = False

    def announce_campaign(self, campaign) -> None:
        """Telemetry hook: the runner is about to execute ``campaign``.

        Called once per ``CampaignRunner.run`` before any cache lookup
        or dispatch. Backends with a durable telemetry channel (the
        spool writes a campaign manifest + ``campaign_started`` event)
        override this; the default is a no-op so announcing is always
        safe.
        """

    #: Optional :class:`~repro.telemetry.events.EventWriter` this
    #: backend emits job lifecycle events through (``None`` = silent).
    events = None

    def _emit_finished(self, result: JobResult) -> None:
        if self.events is None:
            return
        self.events.emit(
            "job_finished",
            key=result.job_key,
            worker=type(self).__name__,
            ok=result.ok,
            cached=bool(result.cached),
            duration_s=result.duration_s,
            attempts=1,
        )

    def close(self) -> None:
        """Release long-lived resources (worker processes, executors).

        Backends that keep workers alive between ``run`` calls override
        this; running after ``close`` is backend-defined. The default is
        a no-op so callers can close any backend unconditionally.
        """

    @property
    def workers(self) -> int:
        return 1


class SerialBackend(ExecutionBackend):
    """Run jobs one after another in the calling process.

    Args:
        use_session: reuse the calling process's session between jobs
            (and between campaigns). ``False`` rebuilds every job's world
            from its spec — the original seed behaviour, kept for
            benchmarking and equivalence testing.
        events: optional :class:`~repro.telemetry.events.EventWriter`;
            when given, every job emits ``job_phase`` (setup/compile/
            simulate splits) and ``job_finished`` events.
    """

    def __init__(self, use_session: bool = True, events=None):
        self.use_session = use_session
        self.events = events

    def run(self, jobs: Sequence[Job], on_result: ProgressFn | None = None) -> list[JobResult]:
        session = get_session() if self.use_session else None
        results: list[JobResult] = []
        for index, job in enumerate(jobs):
            if self.events is None:
                result = execute_job(job, session=session)
            else:
                phases: dict = {}
                result = execute_job(job, session=session, phases=phases)
                self.events.emit(
                    "job_phase",
                    key=result.job_key,
                    worker=type(self).__name__,
                    setup_s=round(phases.get("setup_s", 0.0), 6),
                    compile_s=round(phases.get("compile_s", 0.0), 6),
                    simulate_s=round(phases.get("simulate_s", 0.0), 6),
                    cache_s=0.0,
                )
                self._emit_finished(result)
            results.append(result)
            if on_result is not None:
                on_result(index + 1, len(jobs), job, result)
        return results


class ProcessPoolBackend(ExecutionBackend):
    """Fan jobs out over a ``ProcessPoolExecutor``.

    Args:
        workers: pool size; defaults to the machine's CPU count.
        timeout: per-job wall-clock ceiling in seconds, enforced inside
            each worker via SIGALRM (see :func:`_execute_with_timeout`).
            A timed-out job yields a failed :class:`JobResult` whose
            ``error`` mentions the timeout; the worker is freed
            immediately and the campaign continues. On platforms without
            SIGALRM the ceiling is enforced while collecting results
            instead, against a *shared wall-clock deadline* for the whole
            batch (``timeout`` x the number of serial waves the pool
            needs) — one slow early job spends from the same budget as
            every later job rather than granting them fresh time. This
            fallback cannot reclaim a stuck worker.
        start_method: multiprocessing start method (``fork`` on Linux by
            default; ``spawn`` works everywhere the package is importable).
        use_session: let each worker process keep a
            :class:`~repro.runner.session.SessionContext` warm across the
            jobs it executes (systems, algorithms, compiled route
            tables). ``False`` restores per-job rebuilds.
        persistent: keep the executor — and therefore the worker
            processes and their warm sessions — alive across ``run``
            calls. Multi-round callers (adaptive Monte Carlo doubling)
            stop re-paying pool startup and DeFT's offline optimization
            per round; :meth:`close` (or garbage collection) releases the
            pool. ``False`` restores the shut-down-per-batch behaviour.
        events: optional :class:`~repro.telemetry.events.EventWriter`;
            ``job_finished`` events are emitted in the parent as results
            are collected (writers hold file handles and locks, so they
            never cross the process boundary; per-phase splits live in
            each worker's own metrics registry instead).
    """

    def __init__(
        self,
        workers: int | None = None,
        timeout: float | None = None,
        start_method: str | None = None,
        use_session: bool = True,
        persistent: bool = True,
        events=None,
    ):
        self._workers = max(1, workers if workers is not None else (os.cpu_count() or 1))
        self.timeout = timeout
        self.use_session = use_session
        self.persistent = persistent
        self.events = events
        self._executor: concurrent.futures.ProcessPoolExecutor | None = None
        self._finalizer = None
        self._context = None
        if start_method is not None:
            import multiprocessing

            self._context = multiprocessing.get_context(start_method)

    @property
    def workers(self) -> int:
        return self._workers

    def _persistent_executor(self) -> concurrent.futures.ProcessPoolExecutor:
        """The shared executor, created on first use.

        Sized to the full worker count regardless of batch size —
        ``ProcessPoolExecutor`` spawns processes on demand, and a later,
        larger round must not be capped by an earlier small one.
        """
        if self._executor is None:
            self._executor = concurrent.futures.ProcessPoolExecutor(
                max_workers=self._workers, mp_context=self._context
            )
            # GC safety net: a dropped backend must not leak its pool.
            self._finalizer = weakref.finalize(
                self, _abandon_executor, self._executor
            )
        return self._executor

    def _discard_executor(self, stuck: bool) -> None:
        """Drop the shared executor (stuck worker, broken pool)."""
        if self._executor is None:
            return
        executor, self._executor = self._executor, None
        if self._finalizer is not None:
            self._finalizer.detach()
            self._finalizer = None
        executor.shutdown(wait=not stuck, cancel_futures=stuck)

    def close(self) -> None:
        """Shut the persistent pool down; the next ``run`` re-creates it."""
        self._discard_executor(stuck=False)

    def run(self, jobs: Sequence[Job], on_result: ProgressFn | None = None) -> list[JobResult]:
        if not jobs:
            return []
        # Fallback ceiling for platforms without SIGALRM, where a worker
        # cannot interrupt itself: one shared wall-clock deadline sized
        # for the whole batch (per-job budget x serial waves), consumed
        # by every result collection. Measuring each job's wait from its
        # own collection time would let a slow early job silently grant
        # later jobs extra budget.
        pool_size = min(self._workers, len(jobs))
        deadline: float | None = None
        if self.timeout is not None and not hasattr(signal, "SIGALRM"):
            waves = math.ceil(len(jobs) / pool_size)
            deadline = time.monotonic() + self.timeout * waves
        timed_out = False
        broken = False
        results: list[JobResult] = []
        if self.persistent:
            executor = self._persistent_executor()
        else:
            executor = concurrent.futures.ProcessPoolExecutor(
                max_workers=pool_size, mp_context=self._context
            )
        try:
            futures = [
                executor.submit(
                    _execute_with_timeout, job, self.timeout, self.use_session
                )
                for job in jobs
            ]
            for index, (job, future) in enumerate(zip(jobs, futures)):
                try:
                    collect_timeout = (
                        None if deadline is None
                        else max(0.0, deadline - time.monotonic())
                    )
                    result = future.result(timeout=collect_timeout)
                except concurrent.futures.TimeoutError:
                    timed_out = True
                    future.cancel()
                    result = JobResult(
                        job_key=job.key(),
                        ok=False,
                        error=f"job timed out after {self.timeout}s ({job.label})",
                    )
                except Exception as exc:  # e.g. BrokenProcessPool, pickling
                    # Only a broken executor poisons the pool; a per-job
                    # failure (unpicklable result, ...) must not cost a
                    # persistent backend its warm worker sessions.
                    if isinstance(exc, concurrent.futures.BrokenExecutor):
                        broken = True
                    result = JobResult(
                        job_key=job.key(),
                        ok=False,
                        error=f"{type(exc).__name__}: {exc}",
                    )
                results.append(result)
                self._emit_finished(result)
                if on_result is not None:
                    on_result(index + 1, len(jobs), job, result)
        finally:
            # A parent-side timeout (no-SIGALRM platforms) means a worker
            # may genuinely be stuck; abandon it instead of blocking the
            # campaign on a shutdown join it can never finish. A broken
            # pool cannot be reused either — a persistent backend drops
            # it and re-creates a fresh pool on the next run.
            if not self.persistent:
                executor.shutdown(wait=not timed_out, cancel_futures=timed_out)
            elif timed_out or broken:
                self._discard_executor(stuck=timed_out)
        return results
