"""Parallel campaign runner with content-addressed result caching.

The subsystem that turns the repo's embarrassingly-parallel evaluation
grids (topology x algorithm x traffic x fault scenario x seed) into
batched, cached, multi-worker pipelines:

* :mod:`repro.runner.spec` — declarative :class:`Job`/:class:`Campaign`
  descriptions with a canonical hashable form;
* :mod:`repro.runner.execute` — the pure job executor;
* :mod:`repro.runner.backends` — :class:`SerialBackend` and the
  multiprocessing :class:`ProcessPoolBackend`;
* :mod:`repro.runner.cache` — the on-disk content-addressed result cache;
* :mod:`repro.runner.session` — :class:`SessionContext`, the per-worker
  memo of built systems, algorithms, fault states and compiled route
  tables that repeated-topology campaigns reuse between jobs;
* :mod:`repro.runner.runner` — :class:`CampaignRunner`, tying the three
  together (dedup -> cache lookup -> backend execution -> write-back).
"""

from .backends import ExecutionBackend, ProcessPoolBackend, SerialBackend
from .cache import DEFAULT_CACHE_DIR, CacheStats, ResultCache
from .execute import execute_job, sample_rng
from .result import JobResult
from .runner import CampaignReport, CampaignRunner
from .session import SessionContext, get_session, reset_session
from .spec import (
    FAULTS_MODES,
    JOB_KINDS,
    SPEC_VERSION,
    Campaign,
    Job,
    SystemRef,
    TrafficSpec,
    faults_to_spec,
)

__all__ = [
    "CacheStats",
    "Campaign",
    "CampaignReport",
    "CampaignRunner",
    "DEFAULT_CACHE_DIR",
    "ExecutionBackend",
    "FAULTS_MODES",
    "JOB_KINDS",
    "Job",
    "JobResult",
    "ProcessPoolBackend",
    "ResultCache",
    "SPEC_VERSION",
    "SerialBackend",
    "SessionContext",
    "SystemRef",
    "TrafficSpec",
    "execute_job",
    "faults_to_spec",
    "get_session",
    "reset_session",
    "sample_rng",
]
