"""Parallel campaign runner with content-addressed result caching.

The subsystem that turns the repo's embarrassingly-parallel evaluation
grids (topology x algorithm x traffic x fault scenario x seed) into
batched, cached, multi-worker pipelines:

* :mod:`repro.runner.spec` — declarative :class:`Job`/:class:`Campaign`
  descriptions with a canonical hashable form;
* :mod:`repro.runner.execute` — the pure job executor;
* :mod:`repro.runner.backends` — :class:`SerialBackend` and the
  multiprocessing :class:`ProcessPoolBackend`;
* :mod:`repro.runner.cache` — the on-disk content-addressed result cache;
* :mod:`repro.runner.runner` — :class:`CampaignRunner`, tying the three
  together (dedup -> cache lookup -> backend execution -> write-back).
"""

from .backends import ExecutionBackend, ProcessPoolBackend, SerialBackend
from .cache import DEFAULT_CACHE_DIR, ResultCache
from .execute import execute_job
from .result import JobResult
from .runner import CampaignReport, CampaignRunner
from .spec import SPEC_VERSION, Campaign, Job, SystemRef, TrafficSpec, faults_to_spec

__all__ = [
    "Campaign",
    "CampaignReport",
    "CampaignRunner",
    "DEFAULT_CACHE_DIR",
    "ExecutionBackend",
    "Job",
    "JobResult",
    "ProcessPoolBackend",
    "ResultCache",
    "SPEC_VERSION",
    "SerialBackend",
    "SystemRef",
    "TrafficSpec",
    "execute_job",
    "faults_to_spec",
]
