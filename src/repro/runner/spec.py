"""Declarative simulation-point specifications.

A :class:`Job` is a *canonical, hashable description* of one simulation:
which system, which routing algorithm, which traffic (name + parameters),
which fault scenario, and which :class:`~repro.config.SimulationConfig`.
Nothing in a job references live objects — systems are named by
:class:`SystemRef`, traffic by :class:`TrafficSpec` — so jobs can be
serialized to JSON, shipped to worker processes, and content-addressed
for the on-disk result cache.

Two jobs with the same canonical form are the same simulation: the
executor (:mod:`repro.runner.execute`) is a pure function of the job, so
``job.key()`` (a SHA-256 of the canonical JSON) is a safe cache key.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable, Mapping

from ..config import SimulationConfig
from ..errors import ConfigurationError
from ..network.kernels import KERNEL_NAMES

if TYPE_CHECKING:  # pragma: no cover
    from ..fault.model import FaultState
    from ..topology.builder import System

#: Bumped whenever the canonical job form or the executor's semantics
#: change incompatibly; part of every cache key so stale on-disk results
#: from older schema versions are never returned.
SPEC_VERSION = 1

#: How a job obtains its fault scenario: ``explicit`` uses the literal
#: :attr:`Job.faults` tuple; ``sample`` draws a seeded random pattern of
#: :attr:`Job.fault_k` directed-VL faults (Monte Carlo campaigns).
FAULTS_MODES = ("explicit", "sample")

#: What the executor computes: ``simulate`` runs the cycle-accurate
#: simulator; ``reachability`` analytically scores the fault scenario via
#: :func:`repro.analysis.reachability.reachability_of_state` (no traffic).
JOB_KINDS = ("simulate", "reachability")

_SCALARS = (str, int, float, bool, type(None))


def _canonical_params(params: Mapping[str, Any] | Iterable[tuple[str, Any]],
                      what: str) -> tuple[tuple[str, Any], ...]:
    """Sort parameters by key and reject non-JSON-scalar values."""
    items = dict(params).items()
    for key, value in items:
        if not isinstance(value, _SCALARS):
            raise ConfigurationError(
                f"{what} parameter {key!r} must be a JSON scalar, got {type(value).__name__}"
            )
    return tuple(sorted(items))


@dataclass(frozen=True)
class SystemRef:
    """A buildable reference to a :class:`~repro.topology.builder.System`.

    Either a named preset (``baseline-4-chiplets``, ``baseline-6-chiplets``,
    ``single-chiplet``) or a regular chiplet grid given as
    ``(cols, rows, chiplet_width, chiplet_height)``.
    """

    preset: str | None = None
    grid: tuple[int, int, int, int] | None = None

    def __post_init__(self) -> None:
        if (self.preset is None) == (self.grid is None):
            raise ConfigurationError("SystemRef needs exactly one of preset/grid")

    # -- constructors ---------------------------------------------------

    @classmethod
    def baseline4(cls) -> "SystemRef":
        return cls(preset="baseline-4-chiplets")

    @classmethod
    def baseline6(cls) -> "SystemRef":
        return cls(preset="baseline-6-chiplets")

    @classmethod
    def from_grid(cls, cols: int, rows: int, width: int = 4, height: int = 4) -> "SystemRef":
        return cls(grid=(cols, rows, width, height))

    @classmethod
    def from_cli(cls, text: str) -> "SystemRef":
        """Parse the CLI's ``--system`` syntax: '4', '6', or 'COLSxROWS'."""
        if text == "4":
            return cls.baseline4()
        if text == "6":
            return cls.baseline6()
        cols, rows = (int(part) for part in text.split("x"))
        return cls.from_grid(cols, rows)

    # -- materialization ------------------------------------------------

    def build(self) -> "System":
        from ..topology import presets

        if self.preset is not None:
            factories = {
                "baseline-4-chiplets": presets.baseline_4_chiplets,
                "baseline-6-chiplets": presets.baseline_6_chiplets,
                "single-chiplet": presets.single_chiplet,
            }
            try:
                return factories[self.preset]()
            except KeyError:
                raise ConfigurationError(
                    f"unknown system preset {self.preset!r}; "
                    f"available: {sorted(factories)}"
                ) from None
        cols, rows, width, height = self.grid  # type: ignore[misc]
        return presets.chiplet_grid(cols, rows, width, height)

    @property
    def label(self) -> str:
        if self.preset is not None:
            return self.preset
        cols, rows, width, height = self.grid  # type: ignore[misc]
        return f"{cols}x{rows}-grid-{width}x{height}"

    # -- serialization --------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        if self.preset is not None:
            return {"preset": self.preset}
        return {"grid": list(self.grid)}  # type: ignore[arg-type]

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SystemRef":
        if "preset" in data:
            return cls(preset=data["preset"])
        return cls(grid=tuple(data["grid"]))


@dataclass(frozen=True)
class TrafficSpec:
    """A traffic generator by registry name + canonical parameters.

    Parameters are stored as a sorted tuple of ``(key, value)`` pairs so
    two specs built with differently-ordered keyword arguments hash
    identically.
    """

    name: str
    params: tuple[tuple[str, Any], ...] = ()

    @classmethod
    def make(cls, name: str, **params: Any) -> "TrafficSpec":
        return cls(name=name, params=_canonical_params(params, "traffic"))

    def build(self, system: "System", seed: int):
        from ..traffic.registry import make_traffic

        return make_traffic(self.name, system, seed=seed, **dict(self.params))

    @property
    def label(self) -> str:
        rate = dict(self.params).get("rate")
        return f"{self.name}@{rate}" if rate is not None else self.name

    def to_dict(self) -> dict[str, Any]:
        return {"name": self.name, "params": {k: v for k, v in self.params}}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TrafficSpec":
        return cls.make(data["name"], **data.get("params", {}))


def faults_to_spec(state: "FaultState") -> tuple[tuple[int, str], ...]:
    """Canonical fault tuple for a :class:`~repro.fault.model.FaultState`."""
    return tuple(
        sorted((fault.vl_index, fault.direction.name.lower()) for fault in state.faults)
    )


@dataclass(frozen=True)
class Job:
    """One simulation point, fully described by value.

    Attributes:
        system: the topology to build.
        algorithm: routing-algorithm registry name (e.g. ``deft``, ``mtr``).
        traffic: traffic spec (registry name + parameters).
        config: simulation configuration; its ``seed`` field is ignored in
            favour of :attr:`seed` so sweeps over seeds share one config.
        faults: sorted ``(vl_index, "down"|"up")`` pairs of faulty directed
            VL channels.
        seed: the job's master seed, applied to both the traffic generator
            and the simulation config. Making the seed part of the spec is
            what gives parallel backends deterministic per-job seeding
            regardless of scheduling order.
        algorithm_params: extra canonical algorithm parameters (currently
            ``rho`` for DeFT's offline table construction).
        faults_mode: ``explicit`` (default) or ``sample``. In sample mode
            the executor draws a random admissible ``fault_k``-fault
            pattern from a deterministic RNG seeded by
            ``(seed, fault_k, fault_sample)``, so each sample index is a
            distinct, reproducible, cacheable simulation point.
        fault_k: number of sampled faulty directed channels (sample mode).
        fault_sample: the sample index within a Monte Carlo campaign
            (sample mode). Part of the canonical form — and therefore the
            cache key — so re-running a campaign with the same seed and
            sample count is served from cache.
        fault_stratum: optional directed-fault-count composition (the
            stratum coordinates of a stratified Monte Carlo sample).
            When set, the executor draws a pattern with exactly these
            counts (uniform over the stratum's admissible patterns):
            with one entry per chiplet the counts are per-chiplet
            totals; with two entries per chiplet they are per-direction
            ``(down, up)`` pairs — the layout
            :func:`repro.montecarlo.strata.enumerate_strata` produces.
            The RNG is seeded by
            ``(seed, fault_k, fault_stratum, fault_sample)`` —
            ``fault_sample`` is then the ordinal *within the stratum*.
            Part of the canonical form only when set, so uniform-sample
            jobs keep their pre-stratification cache keys, and a
            (stratum, ordinal) job is shared between any campaigns that
            draw it (proportional, Neyman or importance allocation).
        kind: ``simulate`` (default) or ``reachability`` — the latter
            skips the simulator and analytically scores the fault
            scenario's reachable core-pair fraction.
        kernel: cycle-kernel request forwarded to the simulator
            (``auto``, ``reference`` or ``vector``). Deliberately *not*
            part of the canonical form: kernels are bit-identical by
            contract, so the same point computed under either kernel
            must share one cache entry.
    """

    system: SystemRef
    algorithm: str
    traffic: TrafficSpec
    config: SimulationConfig = field(default_factory=SimulationConfig)
    faults: tuple[tuple[int, str], ...] = ()
    seed: int = 1
    algorithm_params: tuple[tuple[str, Any], ...] = ()
    faults_mode: str = "explicit"
    fault_k: int = 0
    fault_sample: int = 0
    fault_stratum: tuple[int, ...] = ()
    kind: str = "simulate"
    kernel: str = "auto"

    def __post_init__(self) -> None:
        for vl_index, direction in self.faults:
            if direction not in ("down", "up"):
                raise ConfigurationError(
                    f"fault direction must be 'down' or 'up', got {direction!r}"
                )
            if vl_index < 0:
                raise ConfigurationError(f"fault VL index must be >= 0, got {vl_index}")
        if self.faults_mode not in FAULTS_MODES:
            raise ConfigurationError(
                f"faults_mode must be one of {FAULTS_MODES}, got {self.faults_mode!r}"
            )
        if self.kind not in JOB_KINDS:
            raise ConfigurationError(
                f"job kind must be one of {JOB_KINDS}, got {self.kind!r}"
            )
        if self.kernel not in KERNEL_NAMES:
            raise ConfigurationError(
                f"job kernel must be one of {KERNEL_NAMES}, got {self.kernel!r}"
            )
        if self.faults_mode == "sample":
            if self.faults:
                raise ConfigurationError(
                    "sampled-fault jobs must not also carry explicit faults"
                )
            if self.fault_k < 1:
                raise ConfigurationError(
                    f"sample mode needs fault_k >= 1, got {self.fault_k}"
                )
            if self.fault_sample < 0:
                raise ConfigurationError(
                    f"fault_sample must be >= 0, got {self.fault_sample}"
                )
            if self.fault_stratum:
                if any(count < 0 for count in self.fault_stratum):
                    raise ConfigurationError(
                        f"fault_stratum counts must be >= 0, got {self.fault_stratum}"
                    )
                if sum(self.fault_stratum) != self.fault_k:
                    raise ConfigurationError(
                        f"fault_stratum {self.fault_stratum} sums to "
                        f"{sum(self.fault_stratum)}, expected fault_k={self.fault_k}"
                    )
        elif self.fault_k or self.fault_sample or self.fault_stratum:
            raise ConfigurationError(
                "fault_k/fault_sample/fault_stratum only apply to "
                "faults_mode='sample'"
            )
        object.__setattr__(self, "faults", tuple(sorted(self.faults)))
        object.__setattr__(
            self, "fault_stratum", tuple(int(c) for c in self.fault_stratum)
        )
        object.__setattr__(
            self,
            "algorithm_params",
            _canonical_params(self.algorithm_params, "algorithm"),
        )

    @classmethod
    def make(
        cls,
        system: SystemRef,
        algorithm: str,
        traffic: TrafficSpec,
        config: SimulationConfig,
        *,
        faults: Iterable[tuple[int, str]] = (),
        seed: int = 1,
        algorithm_params: Mapping[str, Any] | None = None,
        faults_mode: str = "explicit",
        fault_k: int = 0,
        fault_sample: int = 0,
        fault_stratum: Iterable[int] = (),
        kind: str = "simulate",
        kernel: str = "auto",
    ) -> "Job":
        return cls(
            system=system,
            algorithm=algorithm,
            traffic=traffic,
            config=config,
            faults=tuple(faults),
            seed=seed,
            algorithm_params=tuple((algorithm_params or {}).items()),
            faults_mode=faults_mode,
            fault_k=fault_k,
            fault_sample=fault_sample,
            fault_stratum=tuple(fault_stratum),
            kind=kind,
            kernel=kernel,
        )

    # -- canonical form & content address -------------------------------

    def canonical(self) -> dict[str, Any]:
        """The canonical JSON-compatible description hashed for caching.

        The config is normalized with the job seed applied, so a job is
        identified by exactly what the executor will simulate.

        Sample-mode and non-simulate fields are only present when they
        deviate from the defaults, so every pre-existing explicit
        ``simulate`` job keeps its original key and stays cache-valid.

        :attr:`kernel` is deliberately excluded: kernel selection is an
        execution detail that never changes results (kernels are
        bit-identical by contract), so the same point simulated under
        either kernel shares one cache entry. Transports that need to
        ship the preference (the spool queue) add a ``kernel`` key to
        this dict themselves; :meth:`from_canonical` reads it back.
        """
        data: dict[str, Any] = {
            "version": SPEC_VERSION,
            "system": self.system.to_dict(),
            "algorithm": self.algorithm,
            "algorithm_params": {k: v for k, v in self.algorithm_params},
            "traffic": self.traffic.to_dict(),
            "faults": [list(fault) for fault in self.faults],
            "config": self.config.replace(seed=self.seed).to_dict(),
            "seed": self.seed,
        }
        if self.faults_mode != "explicit":
            data["faults_mode"] = self.faults_mode
            data["fault_k"] = self.fault_k
            data["fault_sample"] = self.fault_sample
            # Only when set: uniform-sample jobs keep their legacy keys.
            if self.fault_stratum:
                data["fault_stratum"] = list(self.fault_stratum)
        if self.kind != "simulate":
            data["kind"] = self.kind
        return data

    def canonical_json(self) -> str:
        return json.dumps(self.canonical(), sort_keys=True, separators=(",", ":"))

    def key(self) -> str:
        """Content address: SHA-256 of the canonical JSON.

        Memoized — the runner, cache and executor each ask for the key,
        and the job is immutable.
        """
        cached = self.__dict__.get("_key")
        if cached is None:
            cached = hashlib.sha256(self.canonical_json().encode("utf-8")).hexdigest()
            object.__setattr__(self, "_key", cached)
        return cached

    @property
    def label(self) -> str:
        """Short human-readable description for progress lines."""
        parts = [self.algorithm]
        if self.kind != "simulate":
            parts.append(self.kind)
        else:
            parts.append(self.traffic.label)
        parts.append(f"seed={self.seed}")
        if self.faults_mode == "sample":
            if self.fault_stratum:
                stratum = ",".join(str(c) for c in self.fault_stratum)
                parts.append(f"k={self.fault_k}[{stratum}]#{self.fault_sample}")
            else:
                parts.append(f"k={self.fault_k}#{self.fault_sample}")
        elif self.faults:
            parts.append(f"{len(self.faults)}-faults")
        return " ".join(parts)

    @classmethod
    def from_canonical(cls, data: Mapping[str, Any]) -> "Job":
        """Rebuild a job from :meth:`canonical` output."""
        version = data.get("version", SPEC_VERSION)
        if version != SPEC_VERSION:
            raise ConfigurationError(
                f"job spec version {version} not supported (current {SPEC_VERSION})"
            )
        return cls.make(
            system=SystemRef.from_dict(data["system"]),
            algorithm=data["algorithm"],
            traffic=TrafficSpec.from_dict(data["traffic"]),
            config=SimulationConfig.from_dict(data["config"]),
            faults=tuple((int(i), str(d)) for i, d in data.get("faults", ())),
            seed=int(data["seed"]),
            algorithm_params=data.get("algorithm_params") or {},
            faults_mode=str(data.get("faults_mode", "explicit")),
            fault_k=int(data.get("fault_k", 0)),
            fault_sample=int(data.get("fault_sample", 0)),
            fault_stratum=tuple(int(c) for c in data.get("fault_stratum", ())),
            kind=str(data.get("kind", "simulate")),
            kernel=str(data.get("kernel", "auto")),
        )


@dataclass(frozen=True)
class Campaign:
    """A named batch of jobs submitted to the runner together."""

    name: str
    jobs: tuple[Job, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "jobs", tuple(self.jobs))

    def __len__(self) -> int:
        return len(self.jobs)
