"""Built-system invariants: wiring, coordinates, lookups, presets."""

import pytest

from repro.errors import TopologyError
from repro.topology.builder import PEKind, build_system
from repro.topology.geometry import Direction, INTERPOSER_LAYER, opposite
from repro.topology.spec import ChipletSpec, SystemSpec


class TestBaseline4(object):
    def test_counts(self, system4):
        # 8x8 interposer + 4 chiplets of 4x4.
        assert system4.num_routers == 64 + 64
        assert len(system4.cores) == 64
        assert len(system4.drams) == 4
        assert len(system4.vls) == 16
        assert system4.spec.num_directed_vls == 32

    def test_mesh_neighbours_are_symmetric(self, system4):
        for router in system4.routers:
            for direction, neighbor_id in router.neighbors.items():
                neighbor = system4.routers[neighbor_id]
                assert neighbor.neighbors[opposite(direction)] == router.id
                assert neighbor.layer == router.layer

    def test_neighbour_coordinates_are_adjacent(self, system4):
        for router in system4.routers:
            for direction, neighbor_id in router.neighbors.items():
                neighbor = system4.routers[neighbor_id]
                assert neighbor.x == router.x + direction.dx
                assert neighbor.y == router.y + direction.dy

    def test_vertical_links_are_symmetric_and_aligned(self, system4):
        for link in system4.vls:
            top = system4.routers[link.chiplet_router]
            bottom = system4.routers[link.interposer_router]
            assert top.vertical_neighbor == bottom.id
            assert bottom.vertical_neighbor == top.id
            assert top.vl_index == bottom.vl_index == link.index
            assert (top.gx, top.gy) == (bottom.gx, bottom.gy)
            assert top.layer == link.chiplet
            assert bottom.layer == INTERPOSER_LAYER

    def test_boundary_routers_flagged(self, system4):
        boundary = [r for r in system4.routers if r.is_boundary]
        assert len(boundary) == 16  # 4 per chiplet
        for router in boundary:
            assert not router.is_interposer
            assert router.has_vertical

    def test_interposer_routers_first(self, system4):
        for router in system4.interposer_routers():
            assert router.is_interposer
        assert len(system4.interposer_routers()) == 64

    def test_core_pes_on_every_chiplet_router(self, system4):
        for chiplet in range(4):
            for router in system4.chiplet_routers(chiplet):
                assert router.pe is PEKind.CORE

    def test_dram_pes_on_interposer_edges(self, system4):
        for dram_id in system4.drams:
            router = system4.routers[dram_id]
            assert router.is_interposer
            assert router.x in (0, system4.spec.interposer_width - 1)

    def test_router_id_lookup(self, system4):
        router = system4.routers[system4.router_id(2, 1, 3)]
        assert (router.layer, router.x, router.y) == (2, 1, 3)
        with pytest.raises(TopologyError):
            system4.router_id(2, 9, 9)

    def test_chiplet_routers_row_major(self, system4):
        routers = system4.chiplet_routers(0)
        assert [(r.x, r.y) for r in routers[:5]] == [
            (0, 0), (1, 0), (2, 0), (3, 0), (0, 1),
        ]

    def test_distance_on_layer(self, system4):
        a = system4.router_id(0, 0, 0)
        b = system4.router_id(0, 3, 3)
        assert system4.distance_on_layer(a, b) == 6

    def test_distance_rejects_cross_layer(self, system4):
        a = system4.router_id(0, 0, 0)
        b = system4.router_id(INTERPOSER_LAYER, 0, 0)
        with pytest.raises(TopologyError):
            system4.distance_on_layer(a, b)

    def test_same_chiplet(self, system4):
        a = system4.router_id(1, 0, 0)
        b = system4.router_id(1, 3, 3)
        c = system4.router_id(2, 0, 0)
        assert system4.same_chiplet(a, b)
        assert not system4.same_chiplet(a, c)

    def test_signature_stable_and_distinct(self, system4, system6):
        assert system4.signature() == system4.signature()
        assert system4.signature() != system6.signature()

    def test_vls_of_chiplet_in_local_order(self, system4):
        links = system4.vls_of_chiplet(1)
        assert [link.local_index for link in links] == [0, 1, 2, 3]
        assert all(link.chiplet == 1 for link in links)


class TestBaseline6(object):
    def test_counts(self, system6):
        assert len(system6.cores) == 96
        assert len(system6.vls) == 24
        assert system6.spec.num_directed_vls == 48
        assert system6.spec.interposer_width == 12

    def test_every_chiplet_has_four_vls(self, system6):
        for chiplet in range(6):
            assert len(system6.vls_of_chiplet(chiplet)) == 4


class TestBuilderErrors(object):
    def test_vl_collision_on_interposer(self):
        # Two chiplets cannot exist at the same interposer location, and a
        # single chiplet cannot have two VLs at one tile (spec catches it);
        # here we check the builder's own guard on missing interposer room.
        chiplet = ChipletSpec(origin=(0, 0), width=2, height=2, vl_positions=((0, 0),))
        spec = SystemSpec(chiplets=(chiplet,), interposer_width=2, interposer_height=2)
        system = build_system(spec)
        assert len(system.vls) == 1

    def test_single_chiplet_preset(self, lone_chiplet):
        assert lone_chiplet.spec.num_chiplets == 1
        assert len(lone_chiplet.drams) == 0
